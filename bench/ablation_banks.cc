/**
 * @file
 * Ablation: register-bank count sensitivity. BOW's performance gain
 * comes from relieving port contention, so shrinking the bank count
 * (more conflicts) should widen the gap to the baseline, and a very
 * wide RF should narrow it — evidence the mechanism works through
 * the contention channel the paper describes.
 */

#include "bench/bench_util.h"
#include "common/table.h"

using namespace bow;

int
main()
{
    const auto suite = bench::loadSuite(
        "Ablation - register-bank count (port-contention channel)");

    Table t("Bank-count sweep - suite averages (IW=3)");
    t.setHeader({"banks", "baseline IPC", "BOW-WR IPC", "IPC gain",
                 "baseline read conflicts/kinst"});

    for (unsigned banks : {8u, 16u, 32u, 64u}) {
        const auto baseRes = bench::runSuiteWith(
            suite, [&](const Workload &) {
                SimConfig base = configFor(Architecture::Baseline);
                base.numBanks = banks;
                return base;
            });
        const auto bowRes = bench::runSuiteWith(
            suite, [&](const Workload &) {
                SimConfig bow = configFor(Architecture::BOW_WR_OPT,
                                          3);
                bow.numBanks = banks;
                return bow;
            });

        double accBase = 0.0;
        double accBow = 0.0;
        double accGain = 0.0;
        double accConf = 0.0;
        for (std::size_t i = 0; i < suite.size(); ++i) {
            const auto &rb = baseRes[i];
            const auto &rw = bowRes[i];
            accBase += rb.stats.ipc();
            accBow += rw.stats.ipc();
            accGain += improvementPct(rw.stats.ipc(), rb.stats.ipc());
            accConf += static_cast<double>(
                           rb.stats.bankReadConflicts) /
                (static_cast<double>(rb.stats.instructions) / 1000.0);
        }
        const double n = static_cast<double>(suite.size());
        t.beginRow().cell(std::uint64_t{banks})
            .cell(accBase / n, 3).cell(accBow / n, 3)
            .cell(formatImprovement(accGain / n))
            .cell(accConf / n, 0);
    }
    t.print(std::cout);

    std::cout << "# expected shape: fewer banks -> more conflicts -> "
                 "larger BOW gain;\n"
                 "# a very wide RF leaves less contention for "
                 "bypassing to remove.\n";
    return 0;
}
