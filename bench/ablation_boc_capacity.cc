/**
 * @file
 * Ablation: BOC capacity sweep at IW=3 (12 down to 3 entries) —
 * the trade-off behind the paper's half-size decision, including the
 * safety write-backs forced by early evictions of compiler-tagged
 * transients (Sec. IV-C).
 */

#include "bench/bench_util.h"
#include "common/table.h"

using namespace bow;

int
main()
{
    const auto suite = bench::loadSuite(
        "Ablation - BOC capacity sweep (BOW-WR-opt, IW=3)");

    std::vector<double> baseIpc;
    for (const auto &res :
         bench::runSuite(suite, Architecture::Baseline))
        baseIpc.push_back(res.stats.ipc());

    Table t("Capacity sweep - suite averages");
    t.setHeader({"entries", "storage/SM", "IPC gain", "RF writes /"
                 " kinst", "safety writes / kinst"});

    const std::vector<unsigned> caps = {12u, 10u, 8u, 6u, 4u, 3u};
    std::vector<SimJob> jobs;
    for (unsigned cap : caps)
        for (const auto &wl : suite)
            jobs.emplace_back(wl, Architecture::BOW_WR_OPT, 3, cap);
    const auto results = bench::runMany(jobs);

    std::size_t r = 0;
    for (unsigned cap : caps) {
        double accIpc = 0.0;
        double accWrites = 0.0;
        double accSafety = 0.0;
        for (std::size_t i = 0; i < suite.size(); ++i) {
            const auto &res = results[r++];
            accIpc += improvementPct(res.stats.ipc(), baseIpc[i]);
            const double kinst =
                static_cast<double>(res.stats.instructions) / 1000.0;
            accWrites += static_cast<double>(res.stats.rfWrites) /
                kinst;
            accSafety += static_cast<double>(res.stats.safetyWrites) /
                kinst;
        }
        const double n = static_cast<double>(suite.size());
        t.beginRow().cell(std::uint64_t{cap})
            .cell(formatFixed(cap * 0.128 * 32, 1) + "KB")
            .cell(formatImprovement(accIpc / n))
            .cell(accWrites / n, 1)
            .cell(accSafety / n, 2);
    }
    t.print(std::cout);

    std::cout << "# expected shape: 12 -> 6 entries costs ~2% IPC "
                 "(paper Sec. V-A); below 6,\n"
                 "# forced early evictions (safety writes) climb and "
                 "erode the write savings.\n";
    return 0;
}
