/**
 * @file
 * Ablation of the paper's future-work variant (Sec. IV-C): bypassing
 * beyond the nominal window, with BOC residency limited only by
 * capacity. Compared against the nominal-window BOW-WR at both
 * buffer sizes.
 */

#include "bench/bench_util.h"
#include "common/table.h"

using namespace bow;

namespace {

SimConfig
extConfig(unsigned cap, bool extended)
{
    SimConfig config = configFor(Architecture::BOW_WR, 3, cap);
    config.extendedWindow = extended;
    return config;
}

} // namespace

int
main()
{
    const auto suite = bench::loadSuite(
        "Ablation - extended-window bypassing (capacity-limited "
        "residency)");

    Table t("Extended window vs nominal (BOW-WR, IW=3) - suite "
            "averages");
    t.setHeader({"config", "IPC gain", "reads bypassed/kinst",
                 "RF writes/kinst"});

    std::vector<double> baseIpc;
    for (const auto &res :
         bench::runSuite(suite, Architecture::Baseline))
        baseIpc.push_back(res.stats.ipc());

    struct Cfg
    {
        const char *name;
        unsigned cap;
        bool ext;
    };
    const Cfg cfgs[] = {
        {"nominal, 12 entries", 12, false},
        {"extended, 12 entries", 12, true},
        {"nominal, 6 entries", 6, false},
        {"extended, 6 entries", 6, true},
    };

    for (const Cfg &c : cfgs) {
        const auto results = bench::runSuiteWith(
            suite,
            [&](const Workload &) { return extConfig(c.cap, c.ext); });
        double accIpc = 0.0;
        double accFwd = 0.0;
        double accWr = 0.0;
        for (std::size_t i = 0; i < suite.size(); ++i) {
            const auto &res = results[i];
            const double kinst =
                static_cast<double>(res.stats.instructions) / 1000.0;
            accIpc += improvementPct(res.stats.ipc(), baseIpc[i]);
            accFwd += static_cast<double>(res.stats.bocForwards) /
                kinst;
            accWr += static_cast<double>(res.stats.rfWrites) / kinst;
        }
        const double n = static_cast<double>(suite.size());
        t.beginRow().cell(c.name)
            .cell(formatImprovement(accIpc / n))
            .cell(accFwd / n, 1).cell(accWr / n, 1);
    }
    t.print(std::cout);

    std::cout << "# expected shape: the extended window forwards more "
                 "operands (reads\n"
                 "# bypassed rise), buying a little extra IPC and "
                 "fewer RF reads - the\n"
                 "# upside the paper projects for removing the "
                 "nominal-window restriction.\n";
    return 0;
}
