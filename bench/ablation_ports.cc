/**
 * @file
 * Ablation: "why not just add collector ports?" (paper Sec. II: "the
 * cost of a port is extremely high when considering the width of a
 * warp register"). Compares the single-ported baseline, hypothetical
 * 2- and 4-ported baselines, and single-ported BOW-WR: bypassing
 * should recover most of what extra (expensive, 128-byte-wide) ports
 * would buy, at a fraction of the cost.
 */

#include "bench/bench_util.h"
#include "common/table.h"

using namespace bow;

int
main()
{
    const auto suite = bench::loadSuite(
        "Ablation - collector ports vs bypassing");

    Table t("IPC relative to the 1-port baseline - suite averages");
    t.setHeader({"configuration", "IPC vs baseline", "hardware cost"});

    std::vector<double> base1;
    for (const auto &res :
         bench::runSuite(suite, Architecture::Baseline))
        base1.push_back(res.stats.ipc());

    struct Cfg
    {
        const char *name;
        Architecture arch;
        unsigned ports;
        const char *cost;
    };
    const Cfg cfgs[] = {
        {"baseline, 2 ports", Architecture::Baseline, 2,
         "2x 128B-wide ports per OCU"},
        {"baseline, 4 ports", Architecture::Baseline, 4,
         "4x 128B-wide ports per OCU"},
        {"BOW-WR-opt, 1 port", Architecture::BOW_WR_OPT, 1,
         "12KB of buffering (half-size BOC)"},
    };
    for (const Cfg &c : cfgs) {
        const auto results = bench::runSuiteWith(
            suite, [&](const Workload &) {
                SimConfig config = configFor(
                    c.arch, 3,
                    c.arch == Architecture::BOW_WR_OPT ? 6 : 0);
                config.collectorPorts = c.ports;
                return config;
            });
        double acc = 0.0;
        for (std::size_t i = 0; i < suite.size(); ++i)
            acc += improvementPct(results[i].stats.ipc(), base1[i]);
        t.beginRow().cell(c.name)
            .cell(formatImprovement(
                acc / static_cast<double>(suite.size())))
            .cell(c.cost);
    }
    t.print(std::cout);

    std::cout << "# expected shape: single-ported BOW-WR approaches "
                 "(or beats) the multi-\n"
                 "# ported baselines while avoiding the wide-port "
                 "cost the paper rules out.\n";
    return 0;
}
