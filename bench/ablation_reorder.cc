/**
 * @file
 * Ablation of the bypass-aware compiler scheduling pass (the paper's
 * footnote-1 future work): reuse opportunity and IPC with and without
 * reordering, under BOW-WR-opt at IW=3.
 */

#include "bench/bench_util.h"
#include "common/table.h"
#include "compiler/reorder.h"
#include "compiler/reuse.h"
#include "sm/functional.h"

using namespace bow;

int
main()
{
    const auto suite = bench::loadSuite(
        "Ablation - bypass-aware instruction reordering (IW=3)");

    Table t("Reordering effect per benchmark");
    t.setHeader({"benchmark", "reads bypassed", "after reorder",
                 "IPC gain", "after reorder "});

    double accR0 = 0.0;
    double accR1 = 0.0;
    double accI0 = 0.0;
    double accI1 = 0.0;
    for (const auto &wl : suite) {
        const double baseIpc =
            bench::runOne(wl, Architecture::Baseline).stats.ipc();

        const auto fn0 = runFunctional(wl.launch);
        const double r0 =
            analyzeReuse(wl.launch.kernel, fn0.traces, 3)
                .readFraction();
        const double i0 = improvementPct(
            bench::runOne(wl, Architecture::BOW_WR_OPT, 3).stats.ipc(),
            baseIpc);

        Workload moved = wl;
        reorderForBypass(moved.launch.kernel, 3);
        const auto fn1 = runFunctional(moved.launch);
        const double r1 =
            analyzeReuse(moved.launch.kernel, fn1.traces, 3)
                .readFraction();
        const double i1 = improvementPct(
            bench::runOne(moved, Architecture::BOW_WR_OPT, 3)
                .stats.ipc(),
            baseIpc);

        t.beginRow().cell(wl.name).pct(r0).pct(r1)
            .cell(formatFixed(i0, 1) + "%")
            .cell(formatFixed(i1, 1) + "%");
        accR0 += r0;
        accR1 += r1;
        accI0 += i0;
        accI1 += i1;
    }
    const double n = static_cast<double>(suite.size());
    t.beginRow().cell("AVG").pct(accR0 / n).pct(accR1 / n)
        .cell(formatFixed(accI0 / n, 1) + "%")
        .cell(formatFixed(accI1 / n, 1) + "%");
    t.print(std::cout);

    std::cout << "# the scheduler pulls consumers toward producers, "
                 "raising the bypassable\n"
                 "# read fraction (energy win), but packing dependent "
                 "chains together also\n"
                 "# costs instruction-level parallelism, so the IPC "
                 "effect can go either way -\n"
                 "# the locality/ILP tension is likely why the paper "
                 "left this to future work.\n";
    return 0;
}
