/**
 * @file
 * Ablation of the bypass-aware compiler scheduling pass (the paper's
 * footnote-1 future work): reuse opportunity and IPC with and without
 * reordering, under BOW-WR-opt at IW=3.
 */

#include "bench/bench_util.h"
#include "common/table.h"
#include "compiler/reorder.h"
#include "compiler/reuse.h"
#include "sm/functional.h"

using namespace bow;

int
main()
{
    const auto suite = bench::loadSuite(
        "Ablation - bypass-aware instruction reordering (IW=3)");

    Table t("Reordering effect per benchmark");
    t.setHeader({"benchmark", "reads bypassed", "after reorder",
                 "IPC gain", "after reorder "});

    // The reordered twin of every workload. The result cache keys on
    // launch *content*, so these can never alias the pristine runs
    // despite sharing a registry name.
    std::vector<Workload> moved;
    moved.reserve(suite.size());
    for (const auto &wl : suite) {
        Workload m = wl;
        reorderForBypass(m.launch.kernel, 3);
        moved.push_back(std::move(m));
    }

    const auto baseRes =
        bench::runSuite(suite, Architecture::Baseline);
    const auto optRes =
        bench::runSuite(suite, Architecture::BOW_WR_OPT, 3);
    const auto movedRes =
        bench::runSuite(moved, Architecture::BOW_WR_OPT, 3);

    double accR0 = 0.0;
    double accR1 = 0.0;
    double accI0 = 0.0;
    double accI1 = 0.0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const Workload &wl = suite[i];
        const double baseIpc = baseRes[i].stats.ipc();

        const auto fn0 = runFunctional(wl.launch);
        const double r0 =
            analyzeReuse(wl.launch.kernel, fn0.traces, 3)
                .readFraction();
        const double i0 = improvementPct(optRes[i].stats.ipc(),
                                         baseIpc);

        const auto fn1 = runFunctional(moved[i].launch);
        const double r1 =
            analyzeReuse(moved[i].launch.kernel, fn1.traces, 3)
                .readFraction();
        const double i1 = improvementPct(movedRes[i].stats.ipc(),
                                         baseIpc);

        t.beginRow().cell(wl.name).pct(r0).pct(r1)
            .cell(formatImprovement(i0))
            .cell(formatImprovement(i1));
        accR0 += r0;
        accR1 += r1;
        accI0 += i0;
        accI1 += i1;
    }
    const double n = static_cast<double>(suite.size());
    t.beginRow().cell("AVG").pct(accR0 / n).pct(accR1 / n)
        .cell(formatImprovement(accI0 / n))
        .cell(formatImprovement(accI1 / n));
    t.print(std::cout);

    std::cout << "# the scheduler pulls consumers toward producers, "
                 "raising the bypassable\n"
                 "# read fraction (energy win), but packing dependent "
                 "chains together also\n"
                 "# costs instruction-level parallelism, so the IPC "
                 "effect can go either way -\n"
                 "# the locality/ILP tension is likely why the paper "
                 "left this to future work.\n";
    return 0;
}
