/**
 * @file
 * Ablation: scheduler-policy sensitivity (GTO vs LRR). BOW's benefit
 * comes from operand forwarding inside a warp's own window, so it
 * should persist under both policies.
 */

#include "bench/bench_util.h"
#include "common/table.h"

using namespace bow;

namespace {

SimConfig
schedConfig(Architecture arch, SchedPolicy policy)
{
    SimConfig config = configFor(arch, 3);
    config.schedPolicy = policy;
    return config;
}

} // namespace

int
main()
{
    const auto suite = bench::loadSuite(
        "Ablation - warp-scheduler policy (GTO, LRR, two-level)");

    Table t("BOW-WR-opt IPC gain under each scheduler");
    t.setHeader({"benchmark", "GTO base IPC", "gain (GTO)",
                 "gain (LRR)", "gain (two-level)"});

    const SchedPolicy policies[] = {SchedPolicy::GTO,
                                    SchedPolicy::LRR,
                                    SchedPolicy::TWO_LEVEL};
    std::vector<SimResult> baseRes[3];
    std::vector<SimResult> bowRes[3];
    for (int p = 0; p < 3; ++p) {
        baseRes[p] = bench::runSuiteWith(
            suite, [&](const Workload &) {
                return schedConfig(Architecture::Baseline,
                                   policies[p]);
            });
        bowRes[p] = bench::runSuiteWith(
            suite, [&](const Workload &) {
                return schedConfig(Architecture::BOW_WR_OPT,
                                   policies[p]);
            });
    }

    double accG = 0.0;
    double accL = 0.0;
    double accT = 0.0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        double gains[3];
        for (int p = 0; p < 3; ++p) {
            gains[p] = improvementPct(bowRes[p][i].stats.ipc(),
                                      baseRes[p][i].stats.ipc());
        }
        t.beginRow().cell(suite[i].name)
            .cell(baseRes[0][i].stats.ipc(), 2)
            .cell(formatImprovement(gains[0]))
            .cell(formatImprovement(gains[1]))
            .cell(formatImprovement(gains[2]));
        accG += gains[0];
        accL += gains[1];
        accT += gains[2];
    }
    const double n = static_cast<double>(suite.size());
    t.beginRow().cell("AVG").cell("-")
        .cell(formatImprovement(accG / n))
        .cell(formatImprovement(accL / n))
        .cell(formatImprovement(accT / n));
    t.print(std::cout);

    std::cout << "# BOW's benefit is intra-warp forwarding, so it "
                 "persists under every policy\n"
                 "# (two-level is the scheduler RFC was originally "
                 "proposed with).\n";
    return 0;
}
