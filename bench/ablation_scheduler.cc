/**
 * @file
 * Ablation: scheduler-policy sensitivity (GTO vs LRR). BOW's benefit
 * comes from operand forwarding inside a warp's own window, so it
 * should persist under both policies.
 */

#include "bench/bench_util.h"
#include "common/table.h"

using namespace bow;

namespace {

double
ipcOf(const Workload &wl, Architecture arch, SchedPolicy policy)
{
    SimConfig config = configFor(arch, 3);
    config.schedPolicy = policy;
    Simulator sim(config);
    return sim.run(wl.launch).stats.ipc();
}

} // namespace

int
main()
{
    const auto suite = bench::loadSuite(
        "Ablation - warp-scheduler policy (GTO, LRR, two-level)");

    Table t("BOW-WR-opt IPC gain under each scheduler");
    t.setHeader({"benchmark", "GTO base IPC", "gain (GTO)",
                 "gain (LRR)", "gain (two-level)"});

    double accG = 0.0;
    double accL = 0.0;
    double accT = 0.0;
    for (const auto &wl : suite) {
        double gains[3];
        double baseG = 0.0;
        const SchedPolicy policies[] = {SchedPolicy::GTO,
                                        SchedPolicy::LRR,
                                        SchedPolicy::TWO_LEVEL};
        for (int p = 0; p < 3; ++p) {
            const double base = ipcOf(wl, Architecture::Baseline,
                                      policies[p]);
            const double bow = ipcOf(wl, Architecture::BOW_WR_OPT,
                                     policies[p]);
            gains[p] = improvementPct(bow, base);
            if (p == 0)
                baseG = base;
        }
        t.beginRow().cell(wl.name).cell(baseG, 2)
            .cell(formatFixed(gains[0], 1) + "%")
            .cell(formatFixed(gains[1], 1) + "%")
            .cell(formatFixed(gains[2], 1) + "%");
        accG += gains[0];
        accL += gains[1];
        accT += gains[2];
    }
    const double n = static_cast<double>(suite.size());
    t.beginRow().cell("AVG").cell("-")
        .cell(formatFixed(accG / n, 1) + "%")
        .cell(formatFixed(accL / n, 1) + "%")
        .cell(formatFixed(accT / n, 1) + "%");
    t.print(std::cout);

    std::cout << "# BOW's benefit is intra-warp forwarding, so it "
                 "persists under every policy\n"
                 "# (two-level is the scheduler RFC was originally "
                 "proposed with).\n";
    return 0;
}
