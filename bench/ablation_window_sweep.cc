/**
 * @file
 * Ablation (beyond the paper's IW=2..4): window sizes 2..7 for
 * BOW-WR-opt — IPC improvement, normalized energy and the BOC
 * storage each window implies. Shows where the paper's IW=3 sweet
 * spot comes from.
 */

#include "bench/bench_util.h"
#include "common/table.h"
#include "energy/energy_model.h"

using namespace bow;

int
main()
{
    const auto suite = bench::loadSuite(
        "Ablation - window-size sweep (BOW-WR-opt, conservative "
        "BOC)");

    Table t("Window sweep - suite averages");
    t.setHeader({"IW", "BOC entries", "storage/SM", "IPC gain",
                 "norm. energy"});

    constexpr unsigned kMinIw = 2;
    constexpr unsigned kMaxIw = 7;

    std::vector<double> baseIpc;
    std::vector<EnergyBreakdown> baseE;
    for (const auto &b :
         bench::runSuite(suite, Architecture::Baseline)) {
        baseIpc.push_back(b.stats.ipc());
        baseE.push_back(b.energy);
    }

    // One batch across the whole (window x workload) grid.
    std::vector<SimJob> jobs;
    for (unsigned iw = kMinIw; iw <= kMaxIw; ++iw)
        for (const auto &wl : suite)
            jobs.emplace_back(wl, Architecture::BOW_WR_OPT, iw);
    const auto results = bench::runMany(jobs);

    std::size_t r = 0;
    for (unsigned iw = kMinIw; iw <= kMaxIw; ++iw) {
        double accIpc = 0.0;
        double accE = 0.0;
        for (std::size_t i = 0; i < suite.size(); ++i) {
            const auto &res = results[r++];
            accIpc += improvementPct(res.stats.ipc(), baseIpc[i]);
            accE += res.energy.normalizedTo(baseE[i]);
        }
        const double n = static_cast<double>(suite.size());
        const unsigned entries = 4 * iw;
        const double kb =
            EnergyParams::bocKb(entries) * 32;
        t.beginRow().cell(std::uint64_t{iw})
            .cell(std::uint64_t{entries})
            .cell(formatFixed(kb, 0) + "KB")
            .cell(formatImprovement(accIpc / n))
            .pct(accE / n);
    }
    t.print(std::cout);

    std::cout << "# expected shape: IPC and energy improve quickly "
                 "up to IW=3, then flatten\n"
                 "# while storage keeps growing linearly - the "
                 "paper's IW=3 choice.\n";
    return 0;
}
