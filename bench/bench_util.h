/**
 * @file
 * Shared scaffolding for the bench harnesses: workload iteration and
 * result caching so each binary reads as the experiment it encodes.
 */

#ifndef BOWSIM_BENCH_BENCH_UTIL_H
#define BOWSIM_BENCH_BENCH_UTIL_H

#include <functional>
#include <iostream>
#include <vector>

#include "core/simulator.h"
#include "core/sweep.h"
#include "workloads/registry.h"

namespace bow {
namespace bench {

/** Build all benchmarks at the harness scale and print the banner. */
inline std::vector<Workload>
loadSuite(const std::string &title)
{
    const double scale = benchScale();
    std::cout << "==================================================="
                 "=============\n";
    std::cout << "bowsim bench: " << title << "\n";
    printConfigBanner(std::cout, SimConfig::titanXPascal());
    std::cout << "# workload scale " << scale
              << " (set BOWSIM_BENCH_SCALE to change)\n";
    std::cout << "==================================================="
                 "=============\n\n";
    return workloads::makeAll(scale);
}

/** Run one workload under (arch, iw, bocEntries). */
inline SimResult
runOne(const Workload &wl, Architecture arch, unsigned iw = 3,
       unsigned bocEntries = 0)
{
    Simulator sim(configFor(arch, iw, bocEntries));
    return sim.run(wl.launch);
}

} // namespace bench
} // namespace bow

#endif // BOWSIM_BENCH_BENCH_UTIL_H
