/**
 * @file
 * Shared scaffolding for the bench harnesses: workload iteration,
 * the parallel batch-execution API every bench funnels its
 * simulations through, and the end-of-run throughput/cache summary.
 *
 * All simulation goes through the process-wide ParallelRunner +
 * ResultCache, so a bench that references the same (workload,
 * configuration) twice — every Baseline column — simulates it once,
 * and independent simulations in a batch run concurrently
 * (BOWSIM_JOBS workers, default hardware_concurrency). Results come
 * back in submission order, so tables print byte-identically at any
 * job count; the timing summary goes to stderr to keep stdout
 * comparable across runs.
 */

#ifndef BOWSIM_BENCH_BENCH_UTIL_H
#define BOWSIM_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "common/table.h"
#include "core/parallel_runner.h"
#include "core/result_cache.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "workloads/registry.h"

namespace bow {
namespace bench {

/** The bench's start-of-run timestamp; first call pins it. */
inline std::chrono::steady_clock::time_point
benchStartTime()
{
    static const auto start = std::chrono::steady_clock::now();
    return start;
}

/** Wall-clock + simulation throughput summary, printed (to stderr)
 *  when the bench exits so stdout stays byte-comparable. */
inline void
printRunSummary()
{
    const auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - benchStartTime());
    const double secs = elapsed.count();
    const std::uint64_t sims = ParallelRunner::simulationsRun();
    const ResultCache &cache = globalResultCache();
    std::cerr << "# bench summary: " << sims << " simulations in "
              << formatFixed(secs, 2) << "s ("
              << formatFixed(secs > 0.0
                                 ? static_cast<double>(sims) / secs
                                 : 0.0,
                             1)
              << " sims/sec, " << ParallelRunner::defaultJobs()
              << " jobs); result cache: " << cache.hits()
              << " hits, " << cache.misses() << " misses\n";

    // BOWSIM_METRICS_OUT=<file> dumps the aggregate of every job the
    // bench simulated. Never touches stdout, so bench output stays
    // byte-comparable whether or not the snapshot is requested.
    const std::string metricsPath = metricsOutPath();
    if (!metricsPath.empty())
        writeMetricsFile(metricsPath, globalMetrics());
}

/** Build all benchmarks at the harness scale and print the banner. */
inline std::vector<Workload>
loadSuite(const std::string &title)
{
    const double scale = benchScale();
    // Pin the summary's clock before any simulation runs, and print
    // the summary however the bench exits. Querying the metrics path
    // here arms job-level aggregation before the first simulation.
    benchStartTime();
    metricsOutPath();
    static const bool registered =
        std::atexit([] { printRunSummary(); }) == 0;
    (void)registered;

    std::cout << "==================================================="
                 "=============\n";
    std::cout << "bowsim bench: " << title << "\n";
    printConfigBanner(std::cout, SimConfig::titanXPascal());
    std::cout << "# workload scale " << scale
              << " (set BOWSIM_BENCH_SCALE to change)\n";
    std::cout << "==================================================="
                 "=============\n\n";
    return workloads::makeAll(scale);
}

/**
 * Run a batch of jobs concurrently; results come back indexed like
 * @p jobs. This is the API every bench loop should funnel through:
 * build the full cross product first, runMany() once, then format.
 */
inline std::vector<SimResult>
runMany(const std::vector<SimJob> &jobs)
{
    return ParallelRunner().run(jobs);
}

/** Run every workload of @p suite under one configuration; result i
 *  belongs to suite[i]. */
inline std::vector<SimResult>
runSuite(const std::vector<Workload> &suite, Architecture arch,
         unsigned iw = 3, unsigned bocEntries = 0)
{
    std::vector<SimJob> jobs;
    jobs.reserve(suite.size());
    for (const Workload &wl : suite)
        jobs.emplace_back(wl, arch, iw, bocEntries);
    return runMany(jobs);
}

/** As runSuite(), but with a fully custom per-suite configuration
 *  built by @p makeConfig(workload). */
template <typename MakeConfig>
inline std::vector<SimResult>
runSuiteWith(const std::vector<Workload> &suite,
             MakeConfig &&makeConfig)
{
    std::vector<SimJob> jobs;
    jobs.reserve(suite.size());
    for (const Workload &wl : suite)
        jobs.emplace_back(wl, makeConfig(wl));
    return runMany(jobs);
}

/** Run one workload under (arch, iw, bocEntries), memoized. */
inline SimResult
runOne(const Workload &wl, Architecture arch, unsigned iw = 3,
       unsigned bocEntries = 0)
{
    return ParallelRunner().runOne(SimJob(wl, arch, iw, bocEntries));
}

/**
 * Range-checked accumulator keyed by instruction-window size (or any
 * small unsigned key). Replaces the raw `std::vector<double> acc(5)`
 * pattern the figure benches used to index with the IW value itself,
 * which silently depended on the sweep's upper bound.
 */
class KeyedAccum
{
  public:
    /** Accumulate over keys in [lo, hi] inclusive. */
    KeyedAccum(unsigned lo, unsigned hi) : lo_(lo), acc_(hi - lo + 1)
    {
        if (hi < lo)
            panic("KeyedAccum: empty key range");
    }

    void
    add(unsigned key, double v)
    {
        acc_.at(checkedIndex(key)) += v;
    }

    double
    sum(unsigned key) const
    {
        return acc_.at(checkedIndex(key));
    }

    /** Mean over @p n contributions (NaN when n == 0). */
    double
    avg(unsigned key, std::size_t n) const
    {
        return n ? sum(key) / static_cast<double>(n)
                 : std::numeric_limits<double>::quiet_NaN();
    }

  private:
    std::size_t
    checkedIndex(unsigned key) const
    {
        if (key < lo_ || key - lo_ >= acc_.size())
            panic(strf("KeyedAccum: key ", key, " outside [", lo_,
                       ", ", lo_ + acc_.size() - 1, "]"));
        return key - lo_;
    }

    unsigned lo_;
    std::vector<double> acc_;
};

} // namespace bench
} // namespace bow

#endif // BOWSIM_BENCH_BENCH_UTIL_H
