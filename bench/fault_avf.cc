/**
 * @file
 * Resilience study: single-bit-flip AVF of the operand-storage
 * hierarchy across the paper's designs at IW=6.
 *
 * Table 1 injects faults into RF banks plus each design's bypass
 * structure and classifies every trial against the functional
 * oracle (masked / SDC / detected / hang). The interesting contrast
 * is BOW vs BOW-WR: write-through keeps the RF copy fresh, so BOC
 * flips are repairable; write-back makes dirty BOC entries the only
 * live copy, so the same flips become SDCs — the reliability price
 * of the energy win.
 *
 * Table 2 prices the fix: parity (detect) or SECDED (correct) on
 * the BOW-WR BOC, with the per-access code energy charged by the
 * energy model.
 *
 * Everything is seeded and runs through the deterministic campaign
 * engine: output is byte-identical at any --jobs count.
 */

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/fault_campaign.h"

using namespace bow;

namespace {

constexpr std::uint64_t kSeed = 0xB0B5EED;
constexpr unsigned kTrials = 40;
constexpr unsigned kIw = 6;

const Workload &
byName(const std::vector<Workload> &suite, const std::string &name)
{
    for (const Workload &wl : suite) {
        if (wl.name == name)
            return wl;
    }
    fatal(strf("fault_avf: workload '", name, "' not in suite"));
}

struct Design
{
    const char *label;
    Architecture arch;
    std::vector<FaultSite> sites;
};

} // namespace

int
main(int argc, char **argv)
{
    // --jobs N mirrors the CLI flag so the determinism contract
    // (byte-identical stdout at any worker count) is easy to check.
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            ParallelRunner::setDefaultJobs(
                static_cast<unsigned>(std::atoi(argv[++i])));
        } else {
            fatal(strf("fault_avf: unknown argument '", arg,
                       "' (only --jobs N)"));
        }
    }

    const auto suite = bench::loadSuite(
        "Resilience - bit-flip AVF of the operand hierarchy (IW=6)");

    const std::vector<const Workload *> targets = {
        &byName(suite, "VECTORADD"),
        &byName(suite, "BTREE"),
        &byName(suite, "BFS"),
    };

    const std::vector<Design> designs = {
        {"Baseline", Architecture::Baseline, {FaultSite::RfBank}},
        {"RFC", Architecture::RFC,
         {FaultSite::RfBank, FaultSite::RfcEntry}},
        {"BOW", Architecture::BOW,
         {FaultSite::RfBank, FaultSite::BocEntry}},
        {"BOW-WR", Architecture::BOW_WR,
         {FaultSite::RfBank, FaultSite::BocEntry}},
    };

    const ParallelRunner runner;

    {
        Table t(strf("AVF - ", kTrials, " trials per design, seed 0x",
                     "B0B5EED"));
        t.setHeader({"benchmark", "design", "masked", "sdc",
                     "detected", "hang", "landed", "AVF"});
        for (const Workload *wl : targets) {
            for (const Design &d : designs) {
                CampaignSpec spec;
                spec.trials = kTrials;
                spec.seed = kSeed;
                spec.sites = d.sites;
                const CampaignSummary s = runFaultCampaign(
                    *wl, configFor(d.arch, kIw), spec, runner);
                t.beginRow().cell(wl->name).cell(d.label)
                    .cell(std::uint64_t{s.masked})
                    .cell(std::uint64_t{s.sdc})
                    .cell(std::uint64_t{s.detected})
                    .cell(std::uint64_t{s.hang})
                    .cell(std::uint64_t{s.landed})
                    .pct(s.avfPct() / 100.0);
            }
        }
        t.print(std::cout);
    }

    {
        Table t("Protecting the BOW-WR BOC (IW=6, sites rf+boc)");
        t.setHeader({"benchmark", "protection", "masked", "sdc",
                     "detected", "AVF", "energy cost"});
        const std::vector<FaultProtection> protections = {
            FaultProtection::None, FaultProtection::Parity,
            FaultProtection::Secded};
        for (const Workload *wl : targets) {
            SimConfig base = configFor(Architecture::BOW_WR, kIw);
            const SimResult cleanNone =
                runner.runOne(SimJob(*wl, base));
            for (FaultProtection p : protections) {
                SimConfig cfg = base;
                cfg.faultProtection = p;
                CampaignSpec spec;
                spec.trials = kTrials;
                spec.seed = kSeed;
                spec.sites = {FaultSite::RfBank, FaultSite::BocEntry};
                const CampaignSummary s =
                    runFaultCampaign(*wl, cfg, spec, runner);
                const SimResult clean =
                    runner.runOne(SimJob(*wl, cfg));
                const double costPct = cleanNone.energy.totalPj > 0.0
                    ? clean.energy.totalPj /
                          cleanNone.energy.totalPj - 1.0
                    : 0.0;
                t.beginRow().cell(wl->name).cell(protectionName(p))
                    .cell(std::uint64_t{s.masked})
                    .cell(std::uint64_t{s.sdc})
                    .cell(std::uint64_t{s.detected})
                    .pct(s.avfPct() / 100.0)
                    .pct(costPct);
            }
        }
        t.print(std::cout);
    }

    std::cout << "# BOW's write-through keeps a clean RF copy behind "
                 "every BOC entry, so BOC\n"
                 "# flips heal on eviction; BOW-WR's dirty entries "
                 "are the only live copy and\n"
                 "# convert to SDCs. Parity turns those SDCs into "
                 "detections, SECDED into masks,\n"
                 "# for a sub-percent energy surcharge on the "
                 "(tiny) BOC access energy.\n";
    return 0;
}
