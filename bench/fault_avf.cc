/**
 * @file
 * Resilience study: single-bit-flip AVF of the operand-storage
 * hierarchy across the paper's designs at IW=6.
 *
 * Table 1 injects faults into RF banks plus each design's bypass
 * structure and classifies every trial against the functional
 * oracle (masked / SDC / detected / hang). The interesting contrast
 * is BOW vs BOW-WR: write-through keeps the RF copy fresh, so BOC
 * flips are repairable; write-back makes dirty BOC entries the only
 * live copy, so the same flips become SDCs — the reliability price
 * of the energy win.
 *
 * Table 2 prices the fix: parity (detect) or SECDED (correct) on
 * the BOW-WR BOC, with the per-access code energy charged by the
 * energy model.
 *
 * With --num-sms N (N > 1) a third table extends the study to the
 * device scale: BOW-WR campaigns over every site class — per-SM
 * rf/boc plus the chip-level L2 lines and CTA-scheduler records —
 * at numSms in {1, 4, 28} capped by N, reporting per-site AVF. The
 * default (no flag) emits exactly the historical two tables.
 *
 * Everything is seeded and runs through the deterministic campaign
 * engine: output is byte-identical at any --jobs count and any
 * --num-sms host-threading.
 */

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/fault_campaign.h"

using namespace bow;

namespace {

constexpr std::uint64_t kSeed = 0xB0B5EED;
constexpr unsigned kTrials = 40;
constexpr unsigned kIw = 6;

const Workload &
byName(const std::vector<Workload> &suite, const std::string &name)
{
    for (const Workload &wl : suite) {
        if (wl.name == name)
            return wl;
    }
    fatal(strf("fault_avf: workload '", name, "' not in suite"));
}

struct Design
{
    const char *label;
    Architecture arch;
    std::vector<FaultSite> sites;
};

} // namespace

int
main(int argc, char **argv)
{
    // --jobs N mirrors the CLI flag so the determinism contract
    // (byte-identical stdout at any worker count) is easy to check.
    // --num-sms N (default 1) caps the device-scale section; the
    // default emits exactly the historical single-SM tables.
    unsigned numSms = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            ParallelRunner::setDefaultJobs(
                static_cast<unsigned>(std::atoi(argv[++i])));
        } else if (arg == "--num-sms" && i + 1 < argc) {
            numSms = static_cast<unsigned>(std::atoi(argv[++i]));
        } else {
            fatal(strf("fault_avf: unknown argument '", arg,
                       "' (--jobs N, --num-sms N)"));
        }
    }

    const auto suite = bench::loadSuite(
        "Resilience - bit-flip AVF of the operand hierarchy (IW=6)");

    const std::vector<const Workload *> targets = {
        &byName(suite, "VECTORADD"),
        &byName(suite, "BTREE"),
        &byName(suite, "BFS"),
    };

    const std::vector<Design> designs = {
        {"Baseline", Architecture::Baseline, {FaultSite::RfBank}},
        {"RFC", Architecture::RFC,
         {FaultSite::RfBank, FaultSite::RfcEntry}},
        {"BOW", Architecture::BOW,
         {FaultSite::RfBank, FaultSite::BocEntry}},
        {"BOW-WR", Architecture::BOW_WR,
         {FaultSite::RfBank, FaultSite::BocEntry}},
    };

    const ParallelRunner runner;

    {
        Table t(strf("AVF - ", kTrials, " trials per design, seed 0x",
                     "B0B5EED"));
        t.setHeader({"benchmark", "design", "masked", "sdc",
                     "detected", "hang", "landed", "AVF"});
        for (const Workload *wl : targets) {
            for (const Design &d : designs) {
                CampaignSpec spec;
                spec.trials = kTrials;
                spec.seed = kSeed;
                spec.sites = d.sites;
                const CampaignSummary s = runFaultCampaign(
                    *wl, configFor(d.arch, kIw), spec, runner);
                t.beginRow().cell(wl->name).cell(d.label)
                    .cell(std::uint64_t{s.masked})
                    .cell(std::uint64_t{s.sdc})
                    .cell(std::uint64_t{s.detected})
                    .cell(std::uint64_t{s.hang})
                    .cell(std::uint64_t{s.landed})
                    .pct(s.avfPct() / 100.0);
            }
        }
        t.print(std::cout);
    }

    {
        Table t("Protecting the BOW-WR BOC (IW=6, sites rf+boc)");
        t.setHeader({"benchmark", "protection", "masked", "sdc",
                     "detected", "AVF", "energy cost"});
        const std::vector<FaultProtection> protections = {
            FaultProtection::None, FaultProtection::Parity,
            FaultProtection::Secded};
        for (const Workload *wl : targets) {
            SimConfig base = configFor(Architecture::BOW_WR, kIw);
            const SimResult cleanNone =
                runner.runOne(SimJob(*wl, base));
            for (FaultProtection p : protections) {
                SimConfig cfg = base;
                cfg.faultProtection = p;
                CampaignSpec spec;
                spec.trials = kTrials;
                spec.seed = kSeed;
                spec.sites = {FaultSite::RfBank, FaultSite::BocEntry};
                const CampaignSummary s =
                    runFaultCampaign(*wl, cfg, spec, runner);
                const SimResult clean =
                    runner.runOne(SimJob(*wl, cfg));
                const double costPct = cleanNone.energy.totalPj > 0.0
                    ? clean.energy.totalPj /
                          cleanNone.energy.totalPj - 1.0
                    : 0.0;
                t.beginRow().cell(wl->name).cell(protectionName(p))
                    .cell(std::uint64_t{s.masked})
                    .cell(std::uint64_t{s.sdc})
                    .cell(std::uint64_t{s.detected})
                    .pct(s.avfPct() / 100.0)
                    .pct(costPct);
            }
        }
        t.print(std::cout);
    }

    if (numSms > 1) {
        // Device-scale section: one campaign per (workload, numSms)
        // over every site class the configuration has, reported per
        // site from the campaign's own trial vector.
        Table t(strf("Device-scale AVF - BOW-WR IW=", kIw,
                     ", per-site breakdown, seed 0xB0B5EED"));
        t.setHeader({"benchmark", "sms", "site", "trials", "masked",
                     "sdc", "detected", "hang", "landed", "AVF"});
        const std::vector<const Workload *> devTargets = {
            &byName(suite, "VECTORADD"),
            &byName(suite, "BFS"),
        };
        std::vector<unsigned> smCounts;
        for (unsigned n : {1u, 4u, 28u}) {
            if (n <= numSms)
                smCounts.push_back(n);
        }
        if (smCounts.empty() || smCounts.back() != numSms)
            smCounts.push_back(numSms);

        // Trials per site across the multi-SM campaigns; the CI
        // smoke greps the coverage line for "=0" to assert every
        // site class actually got struck.
        std::uint64_t covered[5] = {};
        for (const Workload *wl : devTargets) {
            for (unsigned n : smCounts) {
                SimConfig cfg = configFor(Architecture::BOW_WR, kIw);
                cfg.numSms = n;
                CampaignSpec spec;
                spec.trials = kTrials;
                spec.seed = kSeed;
                spec.sites = validSites(
                    cfg, {FaultSite::RfBank, FaultSite::BocEntry,
                          FaultSite::L2Line, FaultSite::CtaSched});
                std::vector<FaultTrialResult> trials;
                runFaultCampaign(*wl, cfg, spec, runner, &trials);
                for (FaultSite site : spec.sites) {
                    std::uint64_t cnt = 0, masked = 0, sdc = 0;
                    std::uint64_t detected = 0, hang = 0, landed = 0;
                    std::uint64_t fatalN = 0;
                    for (const FaultTrialResult &tr : trials) {
                        if (tr.plan.site != site)
                            continue;
                        ++cnt;
                        switch (tr.outcome) {
                          case FaultOutcome::Masked:  ++masked;  break;
                          case FaultOutcome::Sdc:     ++sdc;     break;
                          case FaultOutcome::Detected:
                            ++detected;
                            break;
                          case FaultOutcome::Hang:    ++hang;    break;
                          case FaultOutcome::Fatal:   ++fatalN;  break;
                        }
                        if (tr.landed)
                            ++landed;
                    }
                    if (n > 1)
                        covered[static_cast<unsigned>(site)] += cnt;
                    const std::uint64_t classified = cnt - fatalN;
                    const double avf = classified
                        ? static_cast<double>(classified - masked) /
                          static_cast<double>(classified)
                        : 0.0;
                    t.beginRow().cell(wl->name).cell(std::uint64_t{n})
                        .cell(faultSiteName(site))
                        .cell(cnt).cell(masked).cell(sdc)
                        .cell(detected).cell(hang).cell(landed)
                        .pct(avf);
                }
            }
        }
        t.print(std::cout);
        std::cout << "# multi-SM site coverage: rf="
                  << covered[static_cast<unsigned>(FaultSite::RfBank)]
                  << " boc="
                  << covered[static_cast<unsigned>(
                         FaultSite::BocEntry)]
                  << " l2="
                  << covered[static_cast<unsigned>(FaultSite::L2Line)]
                  << " cta="
                  << covered[static_cast<unsigned>(
                         FaultSite::CtaSched)]
                  << "\n";
    }

    std::cout << "# BOW's write-through keeps a clean RF copy behind "
                 "every BOC entry, so BOC\n"
                 "# flips heal on eviction; BOW-WR's dirty entries "
                 "are the only live copy and\n"
                 "# convert to SDCs. Parity turns those SDCs into "
                 "detections, SECDED into masks,\n"
                 "# for a sub-percent energy surcharge on the "
                 "(tiny) BOC access energy.\n";
    return 0;
}
