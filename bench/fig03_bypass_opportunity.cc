/**
 * @file
 * Reproduces paper Figure 3: the fraction of register read (top) and
 * write (bottom) requests that operand bypassing can eliminate, per
 * benchmark, for instruction windows of 2..7, plus the suite
 * average. Also echoes Table III (the benchmark list).
 */

#include "bench/bench_util.h"
#include "common/table.h"
#include "compiler/reuse.h"
#include "sm/functional.h"

using namespace bow;

int
main()
{
    const auto suite = bench::loadSuite(
        "Figure 3 - eliminated read/write requests vs window size");

    Table listing("Table III - benchmark suite");
    listing.setHeader({"suite", "benchmark", "description"});
    for (const auto &wl : suite)
        listing.addRow({wl.suite, wl.name, wl.description});
    listing.print(std::cout);

    constexpr unsigned kMinIw = 2;
    constexpr unsigned kMaxIw = 7;

    Table reads("Figure 3 (top) - eliminated READ requests");
    Table writes("Figure 3 (bottom) - eliminated WRITE requests");
    std::vector<std::string> header = {"benchmark"};
    for (unsigned iw = kMinIw; iw <= kMaxIw; ++iw)
        header.push_back("IW" + std::to_string(iw));
    reads.setHeader(header);
    writes.setHeader(header);

    bench::KeyedAccum avgRead(kMinIw, kMaxIw);
    bench::KeyedAccum avgWrite(kMinIw, kMaxIw);

    for (const auto &wl : suite) {
        const auto fn = runFunctional(wl.launch);
        reads.beginRow().cell(wl.name);
        writes.beginRow().cell(wl.name);
        for (unsigned iw = kMinIw; iw <= kMaxIw; ++iw) {
            const auto s = analyzeReuse(wl.launch.kernel, fn.traces,
                                        iw);
            reads.pct(s.readFraction());
            writes.pct(s.writeFraction());
            avgRead.add(iw, s.readFraction());
            avgWrite.add(iw, s.writeFraction());
        }
    }
    reads.beginRow().cell("AVG");
    writes.beginRow().cell("AVG");
    for (unsigned iw = kMinIw; iw <= kMaxIw; ++iw) {
        reads.pct(avgRead.avg(iw, suite.size()));
        writes.pct(avgWrite.avg(iw, suite.size()));
    }
    reads.print(std::cout);
    writes.print(std::cout);

    std::cout << "# paper reference: IW2 ~45% reads / ~35% writes;\n"
                 "# IW3 ~59% reads / ~52% writes; IW7 >70% reads.\n";
    return 0;
}
