/**
 * @file
 * Reproduces paper Figure 4: the average share of an instruction's
 * execution time (issue -> completion) spent in the operand
 * collection stage on the baseline machine, split into memory and
 * non-memory instructions.
 */

#include "bench/bench_util.h"
#include "common/table.h"

using namespace bow;

int
main()
{
    const auto suite = bench::loadSuite(
        "Figure 4 - time in the operand-collection stage (baseline)");

    Table t("Figure 4 - % of execution time in the OC stage");
    t.setHeader({"benchmark", "non-memory", "memory", "overall"});

    const auto results =
        bench::runSuite(suite, Architecture::Baseline);

    double accNon = 0.0;
    double accMem = 0.0;
    double accAll = 0.0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const Workload &wl = suite[i];
        const auto &s = results[i].stats;
        const double nonMem = s.totalCyclesNonMem
            ? static_cast<double>(s.ocCyclesNonMem) /
              static_cast<double>(s.totalCyclesNonMem)
            : 0.0;
        const double mem = s.totalCyclesMem
            ? static_cast<double>(s.ocCyclesMem) /
              static_cast<double>(s.totalCyclesMem)
            : 0.0;
        const double all =
            (s.totalCyclesMem + s.totalCyclesNonMem)
            ? static_cast<double>(s.ocCyclesTotal()) /
              static_cast<double>(s.totalCyclesMem +
                                  s.totalCyclesNonMem)
            : 0.0;
        t.beginRow().cell(wl.name).pct(nonMem).pct(mem).pct(all);
        accNon += nonMem;
        accMem += mem;
        accAll += all;
    }
    const double n = static_cast<double>(suite.size());
    t.beginRow().cell("AVG").pct(accNon / n).pct(accMem / n)
        .pct(accAll / n);
    t.print(std::cout);

    std::cout << "# paper reference: about a quarter of execution "
                 "time overall (up to ~47% for STO);\n"
                 "# memory instructions spend a smaller share in the "
                 "OC stage than non-memory ones.\n";
    return 0;
}
