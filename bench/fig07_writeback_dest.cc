/**
 * @file
 * Reproduces paper Figure 7: the distribution of write destinations
 * under BOW-WR with compiler hints (IW = 3) — values written only to
 * the RF banks, values staged in the BOC and later written back, and
 * transient values that never reach the RF.
 */

#include "bench/bench_util.h"
#include "common/table.h"

using namespace bow;

int
main()
{
    const auto suite = bench::loadSuite(
        "Figure 7 - write-destination distribution (BOW-WR-opt, "
        "IW=3)");

    Table t("Figure 7 - dynamic write destinations");
    t.setHeader({"benchmark", "RF only", "BOC then RF",
                 "BOC only (transient)"});

    const auto results =
        bench::runSuite(suite, Architecture::BOW_WR_OPT, 3);

    double accRf = 0.0;
    double accBoth = 0.0;
    double accBoc = 0.0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const Workload &wl = suite[i];
        const auto &s = results[i].stats;
        const double total = static_cast<double>(
            s.destRfOnly + s.destBocOnly + s.destBocAndRf);
        const double rf =
            total ? static_cast<double>(s.destRfOnly) / total : 0.0;
        const double both =
            total ? static_cast<double>(s.destBocAndRf) / total : 0.0;
        const double boc =
            total ? static_cast<double>(s.destBocOnly) / total : 0.0;
        t.beginRow().cell(wl.name).pct(rf).pct(both).pct(boc);
        accRf += rf;
        accBoth += both;
        accBoc += boc;
    }
    const double n = static_cast<double>(suite.size());
    t.beginRow().cell("AVG").pct(accRf / n).pct(accBoth / n)
        .pct(accBoc / n);
    t.print(std::cout);

    std::cout << "# paper reference (IW=3 averages): 21% RF-only, "
                 "27% BOC-then-RF, 52% transient.\n";
    return 0;
}
