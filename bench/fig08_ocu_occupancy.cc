/**
 * @file
 * Reproduces paper Figure 8: baseline operand-collector occupancy —
 * the distribution of register source-operand counts (0..3) per
 * dynamic instruction.
 */

#include "bench/bench_util.h"
#include "common/table.h"
#include "compiler/reuse.h"
#include "sm/functional.h"

using namespace bow;

int
main()
{
    const auto suite = bench::loadSuite(
        "Figure 8 - OCU occupancy (register source operands per "
        "instruction)");

    Table t("Figure 8 - source-operand count distribution");
    t.setHeader({"benchmark", "0 srcs", "1 src", "2 srcs", "3 srcs"});

    std::vector<double> acc(4, 0.0);
    for (const auto &wl : suite) {
        const auto fn = runFunctional(wl.launch);
        const auto h = sourceOperandHistogram(wl.launch.kernel,
                                              fn.traces);
        const double total = static_cast<double>(h[0] + h[1] + h[2] +
                                                 h[3]);
        t.beginRow().cell(wl.name);
        for (unsigned k = 0; k < 4; ++k) {
            const double f =
                total ? static_cast<double>(h[k]) / total : 0.0;
            t.pct(f);
            acc[k] += f;
        }
    }
    t.beginRow().cell("AVG");
    for (unsigned k = 0; k < 4; ++k)
        t.pct(acc[k] / static_cast<double>(suite.size()));
    t.print(std::cout);

    std::cout << "# paper reference: on average only ~2% of "
                 "instructions need all three entries;\n"
                 "# BFS, BTREE and LPS issue no 3-source "
                 "instructions at all.\n";
    return 0;
}
