/**
 * @file
 * Reproduces paper Figure 9: occupancy of the conservatively sized
 * (12-entry) BOC under BOW-WR at IW=3, sampled per warp per cycle,
 * and the headline statistic behind the half-size optimisation: the
 * fraction of samples needing more than half the entries.
 */

#include "bench/bench_util.h"
#include "common/table.h"

using namespace bow;

int
main()
{
    const auto suite = bench::loadSuite(
        "Figure 9 - BOC occupancy with a 12-entry buffer (IW=3)");

    Table t("Figure 9 - BOC occupancy distribution (per-cycle "
            "per-warp samples)");
    t.setHeader({"benchmark", "<=2", "3", "4", "5", "6", ">=7",
                 ">50% full"});

    const auto results =
        bench::runSuite(suite, Architecture::BOW_WR, 3, 12);

    double accOver = 0.0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const Workload &wl = suite[i];
        const auto &h = results[i].stats.bocOccupancyHist;
        double total = 0.0;
        for (auto b : h)
            total += static_cast<double>(b);
        auto frac = [&](unsigned lo, unsigned hi) {
            double n = 0.0;
            for (unsigned b = lo; b <= hi && b < h.size(); ++b)
                n += static_cast<double>(h[b]);
            return total ? n / total : 0.0;
        };
        const double over = frac(7, 12);
        t.beginRow().cell(wl.name).pct(frac(0, 2)).pct(frac(3, 3))
            .pct(frac(4, 4)).pct(frac(5, 5)).pct(frac(6, 6))
            .pct(frac(7, 12)).pct(over);
        accOver += over;
    }
    t.beginRow().cell("AVG").cell("-").cell("-").cell("-").cell("-")
        .cell("-").cell("-")
        .pct(accOver / static_cast<double>(suite.size()));
    t.print(std::cout);

    std::cout << "# paper reference: ~3% of cycles need more than "
                 "half (6) of the 12 entries;\n"
                 "# the all-12-occupied worst case never occurs. "
                 "This motivates the half-size BOC.\n";
    return 0;
}
