/**
 * @file
 * Reproduces paper Figure 10: IPC improvement of (a) BOW and
 * (b) BOW-WR over the baseline, for instruction windows of 2, 3
 * and 4. BOW-WR runs with the compiler pass (the configuration the
 * paper reports end-to-end results for).
 */

#include "bench/bench_util.h"
#include "common/table.h"

using namespace bow;

namespace {

constexpr unsigned kMinIw = 2;
constexpr unsigned kMaxIw = 4;

void
report(const char *title, Architecture arch,
       const std::vector<Workload> &suite,
       const std::vector<double> &baseIpc)
{
    // Full (workload x window) cross product in one parallel batch;
    // results come back in submission order.
    std::vector<SimJob> jobs;
    for (const auto &wl : suite)
        for (unsigned iw = kMinIw; iw <= kMaxIw; ++iw)
            jobs.emplace_back(wl, arch, iw);
    const auto results = bench::runMany(jobs);

    Table t(title);
    t.setHeader({"benchmark", "IW2", "IW3", "IW4"});
    bench::KeyedAccum acc(kMinIw, kMaxIw);
    std::size_t r = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        t.beginRow().cell(suite[i].name);
        for (unsigned iw = kMinIw; iw <= kMaxIw; ++iw) {
            const auto &res = results[r++];
            const double imp = improvementPct(res.stats.ipc(),
                                              baseIpc[i]);
            t.cell(formatImprovement(imp));
            acc.add(iw, imp);
        }
    }
    t.beginRow().cell("AVG");
    for (unsigned iw = kMinIw; iw <= kMaxIw; ++iw)
        t.cell(formatImprovement(acc.avg(iw, suite.size())));
    t.print(std::cout);
}

} // namespace

int
main()
{
    const auto suite = bench::loadSuite(
        "Figure 10 - IPC improvement over the baseline");

    std::vector<double> baseIpc;
    for (const auto &res :
         bench::runSuite(suite, Architecture::Baseline))
        baseIpc.push_back(res.stats.ipc());

    report("Figure 10a - BOW IPC improvement", Architecture::BOW,
           suite, baseIpc);
    report("Figure 10b - BOW-WR IPC improvement",
           Architecture::BOW_WR_OPT, suite, baseIpc);

    std::cout << "# paper reference: with IW=3, BOW +11% and BOW-WR "
                 "+13% on average;\n"
                 "# gains grow little beyond IW=3; register-"
                 "sensitive SAD gains most, WP least.\n";
    return 0;
}
