/**
 * @file
 * Reproduces paper Figure 10: IPC improvement of (a) BOW and
 * (b) BOW-WR over the baseline, for instruction windows of 2, 3
 * and 4. BOW-WR runs with the compiler pass (the configuration the
 * paper reports end-to-end results for).
 */

#include "bench/bench_util.h"
#include "common/table.h"

using namespace bow;

namespace {

void
report(const char *title, Architecture arch,
       const std::vector<Workload> &suite,
       const std::vector<double> &baseIpc)
{
    Table t(title);
    t.setHeader({"benchmark", "IW2", "IW3", "IW4"});
    std::vector<double> acc(5, 0.0);
    for (std::size_t i = 0; i < suite.size(); ++i) {
        t.beginRow().cell(suite[i].name);
        for (unsigned iw = 2; iw <= 4; ++iw) {
            const auto res = bench::runOne(suite[i], arch, iw);
            const double imp = improvementPct(res.stats.ipc(),
                                              baseIpc[i]);
            t.cell(formatFixed(imp, 1) + "%");
            acc[iw] += imp;
        }
    }
    t.beginRow().cell("AVG");
    for (unsigned iw = 2; iw <= 4; ++iw) {
        t.cell(formatFixed(
                   acc[iw] / static_cast<double>(suite.size()), 1) +
               "%");
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    const auto suite = bench::loadSuite(
        "Figure 10 - IPC improvement over the baseline");

    std::vector<double> baseIpc;
    for (const auto &wl : suite) {
        baseIpc.push_back(
            bench::runOne(wl, Architecture::Baseline).stats.ipc());
    }

    report("Figure 10a - BOW IPC improvement", Architecture::BOW,
           suite, baseIpc);
    report("Figure 10b - BOW-WR IPC improvement",
           Architecture::BOW_WR_OPT, suite, baseIpc);

    std::cout << "# paper reference: with IW=3, BOW +11% and BOW-WR "
                 "+13% on average;\n"
                 "# gains grow little beyond IW=3; register-"
                 "sensitive SAD gains most, WP least.\n";
    return 0;
}
