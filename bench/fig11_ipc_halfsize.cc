/**
 * @file
 * Reproduces paper Figure 11: IPC improvement of BOW-WR with the
 * half-size (6-entry) BOC at IW=3, compared side by side with the
 * full 12-entry buffer.
 */

#include "bench/bench_util.h"
#include "common/table.h"

using namespace bow;

int
main()
{
    const auto suite = bench::loadSuite(
        "Figure 11 - IPC improvement with the half-size (6-entry) "
        "BOC");

    Table t("Figure 11 - IPC improvement over baseline (IW=3)");
    t.setHeader({"benchmark", "12-entry BOC", "6-entry BOC",
                 "half-size cost"});

    double accFull = 0.0;
    double accHalf = 0.0;
    for (const auto &wl : suite) {
        const double base =
            bench::runOne(wl, Architecture::Baseline).stats.ipc();
        const double full =
            improvementPct(bench::runOne(wl, Architecture::BOW_WR_OPT,
                                         3, 12)
                               .stats.ipc(),
                           base);
        const double half =
            improvementPct(bench::runOne(wl, Architecture::BOW_WR_OPT,
                                         3, 6)
                               .stats.ipc(),
                           base);
        t.beginRow().cell(wl.name)
            .cell(formatFixed(full, 1) + "%")
            .cell(formatFixed(half, 1) + "%")
            .cell(formatFixed(full - half, 1) + "pp");
        accFull += full;
        accHalf += half;
    }
    const double n = static_cast<double>(suite.size());
    t.beginRow().cell("AVG")
        .cell(formatFixed(accFull / n, 1) + "%")
        .cell(formatFixed(accHalf / n, 1) + "%")
        .cell(formatFixed((accFull - accHalf) / n, 1) + "pp");
    t.print(std::cout);

    std::cout << "# paper reference: halving the BOC costs ~2% "
                 "performance on average;\n"
                 "# ~11% IPC improvement is retained, and storage "
                 "drops from 36KB to 12KB per SM.\n";
    return 0;
}
