/**
 * @file
 * Reproduces paper Figure 11: IPC improvement of BOW-WR with the
 * half-size (6-entry) BOC at IW=3, compared side by side with the
 * full 12-entry buffer.
 */

#include "bench/bench_util.h"
#include "common/table.h"

using namespace bow;

int
main()
{
    const auto suite = bench::loadSuite(
        "Figure 11 - IPC improvement with the half-size (6-entry) "
        "BOC");

    Table t("Figure 11 - IPC improvement over baseline (IW=3)");
    t.setHeader({"benchmark", "12-entry BOC", "6-entry BOC",
                 "half-size cost"});

    const auto baseRes =
        bench::runSuite(suite, Architecture::Baseline);
    const auto fullRes =
        bench::runSuite(suite, Architecture::BOW_WR_OPT, 3, 12);
    const auto halfRes =
        bench::runSuite(suite, Architecture::BOW_WR_OPT, 3, 6);

    double accFull = 0.0;
    double accHalf = 0.0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const double base = baseRes[i].stats.ipc();
        const double full =
            improvementPct(fullRes[i].stats.ipc(), base);
        const double half =
            improvementPct(halfRes[i].stats.ipc(), base);
        t.beginRow().cell(suite[i].name)
            .cell(formatImprovement(full))
            .cell(formatImprovement(half))
            .cell(formatFixed(full - half, 1) + "pp");
        accFull += full;
        accHalf += half;
    }
    const double n = static_cast<double>(suite.size());
    t.beginRow().cell("AVG")
        .cell(formatImprovement(accFull / n))
        .cell(formatImprovement(accHalf / n))
        .cell(formatFixed((accFull - accHalf) / n, 1) + "pp");
    t.print(std::cout);

    std::cout << "# paper reference: halving the BOC costs ~2% "
                 "performance on average;\n"
                 "# ~11% IPC improvement is retained, and storage "
                 "drops from 36KB to 12KB per SM.\n";
    return 0;
}
