/**
 * @file
 * Reproduces paper Figure 12: total cycles spent in the operand
 * collection stage under BOW for IW = 2, 3 and 4, normalized to the
 * baseline machine.
 */

#include "bench/bench_util.h"
#include "common/table.h"

using namespace bow;

int
main()
{
    const auto suite = bench::loadSuite(
        "Figure 12 - OC-stage cycles, normalized to baseline");

    Table t("Figure 12 - normalized cycles in the OC stage");
    t.setHeader({"benchmark", "baseline", "IW2", "IW3", "IW4"});

    constexpr unsigned kMinIw = 2;
    constexpr unsigned kMaxIw = 4;

    const auto baseRes =
        bench::runSuite(suite, Architecture::Baseline);
    std::vector<SimJob> jobs;
    for (const auto &wl : suite)
        for (unsigned iw = kMinIw; iw <= kMaxIw; ++iw)
            jobs.emplace_back(wl, Architecture::BOW, iw);
    const auto results = bench::runMany(jobs);

    bench::KeyedAccum acc(kMinIw, kMaxIw);
    std::size_t r = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const double baseOc = static_cast<double>(
            baseRes[i].stats.ocCyclesTotal());
        t.beginRow().cell(suite[i].name).cell("1.00");
        for (unsigned iw = kMinIw; iw <= kMaxIw; ++iw) {
            const auto &res = results[r++];
            const double norm = baseOc
                ? static_cast<double>(res.stats.ocCyclesTotal()) /
                  baseOc
                : 0.0;
            t.cell(norm, 2);
            acc.add(iw, norm);
        }
    }
    t.beginRow().cell("AVG").cell("1.00");
    for (unsigned iw = kMinIw; iw <= kMaxIw; ++iw)
        t.cell(acc.avg(iw, suite.size()), 2);
    t.print(std::cout);

    std::cout << "# paper reference: OC residency drops by ~60% at "
                 "IW=3, with little further\n"
                 "# benefit from larger windows.\n";
    return 0;
}
