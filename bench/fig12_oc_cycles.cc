/**
 * @file
 * Reproduces paper Figure 12: total cycles spent in the operand
 * collection stage under BOW for IW = 2, 3 and 4, normalized to the
 * baseline machine.
 */

#include "bench/bench_util.h"
#include "common/table.h"

using namespace bow;

int
main()
{
    const auto suite = bench::loadSuite(
        "Figure 12 - OC-stage cycles, normalized to baseline");

    Table t("Figure 12 - normalized cycles in the OC stage");
    t.setHeader({"benchmark", "baseline", "IW2", "IW3", "IW4"});

    std::vector<double> acc(5, 0.0);
    for (const auto &wl : suite) {
        const auto base = bench::runOne(wl, Architecture::Baseline);
        const double baseOc =
            static_cast<double>(base.stats.ocCyclesTotal());
        t.beginRow().cell(wl.name).cell("1.00");
        for (unsigned iw = 2; iw <= 4; ++iw) {
            const auto res = bench::runOne(wl, Architecture::BOW, iw);
            const double norm = baseOc
                ? static_cast<double>(res.stats.ocCyclesTotal()) /
                  baseOc
                : 0.0;
            t.cell(norm, 2);
            acc[iw] += norm;
        }
    }
    t.beginRow().cell("AVG").cell("1.00");
    for (unsigned iw = 2; iw <= 4; ++iw)
        t.cell(acc[iw] / static_cast<double>(suite.size()), 2);
    t.print(std::cout);

    std::cout << "# paper reference: OC residency drops by ~60% at "
                 "IW=3, with little further\n"
                 "# benefit from larger windows.\n";
    return 0;
}
