/**
 * @file
 * Reproduces paper Figure 13: register-file dynamic energy of
 * (a) BOW and (b) BOW-WR (with compiler hints), normalized to the
 * baseline, with the added-structure overhead shown separately —
 * exactly the stacked segments of the paper's bars.
 */

#include "bench/bench_util.h"
#include "common/table.h"

using namespace bow;

namespace {

void
report(const char *title, Architecture arch,
       const std::vector<Workload> &suite)
{
    Table t(title);
    t.setHeader({"benchmark", "dynamic energy", "overhead", "total",
                 "saving"});
    // The Baseline batch repeats between reports 13a and 13b; the
    // result cache turns the second pass into pure hits.
    const auto baseRes =
        bench::runSuite(suite, Architecture::Baseline);
    const auto archRes = bench::runSuite(suite, arch, 3);

    double accTotal = 0.0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const Workload &wl = suite[i];
        const auto &base = baseRes[i].energy;
        const auto &e = archRes[i].energy;
        const double dyn = base.rfDynamicPj
            ? e.rfDynamicPj / base.rfDynamicPj
            : 0.0;
        const double ovh = base.rfDynamicPj
            ? e.overheadPj / base.rfDynamicPj
            : 0.0;
        const double tot = e.normalizedTo(base);
        t.beginRow().cell(wl.name).pct(dyn).pct(ovh).pct(tot)
            .pct(1.0 - tot);
        accTotal += tot;
    }
    const double n = static_cast<double>(suite.size());
    t.beginRow().cell("AVG").cell("-").cell("-")
        .pct(accTotal / n).pct(1.0 - accTotal / n);
    t.print(std::cout);
}

} // namespace

int
main()
{
    const auto suite = bench::loadSuite(
        "Figure 13 - normalized RF dynamic energy (IW=3)");

    report("Figure 13a - BOW (write-through)", Architecture::BOW,
           suite);
    report("Figure 13b - BOW-WR (write-back + compiler hints)",
           Architecture::BOW_WR_OPT, suite);

    std::cout << "# paper reference: BOW saves ~36% of RF dynamic "
                 "energy (3% overhead);\n"
                 "# BOW-WR saves ~55% (1.8% overhead) by also "
                 "shielding writes.\n";
    return 0;
}
