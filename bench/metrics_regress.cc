/**
 * @file
 * Golden-stats regression gate: re-runs a small fixed workload suite
 * at low scale and diffs every metric the simulator exports against
 * the checked-in snapshots in tests/golden/. Counters and histograms
 * are compared with zero tolerance — any drift in an event count is
 * a behaviour change and fails the gate; derived doubles get a 1e-9
 * relative guard (FP formatting only, not a semantic tolerance) and
 * `wall.*` names are presence-only. Schema: docs/OBSERVABILITY.md.
 *
 * Usage:
 *   metrics_regress              compare against the goldens (exit 1
 *                                on any diff, naming each metric)
 *   metrics_regress --update     regenerate the golden files
 *   metrics_regress --golden D   use golden directory D
 *   metrics_regress --perturb N  add 1 to counter N before comparing
 *                                (the gate's own WILL_FAIL self-test)
 *   metrics_regress --list       print the case table and exit
 */

#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "core/fault_campaign.h"
#include "core/sampled.h"
#include "core/parallel_runner.h"
#include "workloads/registry.h"

#ifndef BOWSIM_GOLDEN_DIR
#define BOWSIM_GOLDEN_DIR "tests/golden"
#endif

namespace {

using namespace bow;

/** The fixed gate suite. Scale is pinned (NOT BOWSIM_BENCH_SCALE):
 *  golden numbers must not depend on the harness environment. */
constexpr double kScale = 0.05;

struct Case
{
    const char *workload;
    Architecture arch;
    const char *slug; ///< golden file stem
};

const Case kCases[] = {
    {"VECTORADD", Architecture::Baseline, "vectoradd_baseline"},
    {"VECTORADD", Architecture::BOW_WR, "vectoradd_bow_wr"},
    {"VECTORADD", Architecture::BOW_WR_OPT, "vectoradd_bow_wr_opt"},
    {"BFS", Architecture::Baseline, "bfs_baseline"},
    {"BFS", Architecture::BOW_WR, "bfs_bow_wr"},
    {"BFS", Architecture::RFC, "bfs_rfc"},
    {"BTREE", Architecture::Baseline, "btree_baseline"},
    {"BTREE", Architecture::BOW_WR, "btree_bow_wr"},
    {"BTREE", Architecture::BOW_WR_OPT, "btree_bow_wr_opt"},
};

/** The device-scale campaign case: a fixed multi-SM fault campaign
 *  whose campaign.* counters join the golden contract, pinning
 *  classification, landing, healing and checkpoint behaviour. */
constexpr const char *kCampaignSlug = "campaign_device";
constexpr unsigned kCampaignTrials = 12;
constexpr unsigned kCampaignSms = 4;
constexpr std::uint64_t kCampaignSeed = 0xB0B5EED;

MetricsRegistry
runCampaignCase(const Workload &wl)
{
    SimConfig cfg = configFor(Architecture::BOW_WR, 6);
    cfg.numSms = kCampaignSms;
    CampaignSpec spec;
    spec.trials = kCampaignTrials;
    spec.seed = kCampaignSeed;
    spec.sites = validSites(
        cfg, {FaultSite::RfBank, FaultSite::BocEntry,
              FaultSite::L2Line, FaultSite::CtaSched});
    const CampaignSummary s =
        runFaultCampaign(wl, cfg, spec, ParallelRunner());
    MetricsRegistry out;
    s.exportMetrics(out);
    return out;
}

/** Relative FP-format guard for Value metrics (never for counters). */
constexpr double kValueRelTol = 1e-9;

bool
valuesMatch(double golden, double actual)
{
    if (std::isnan(golden) && std::isnan(actual))
        return true;
    if (golden == actual)
        return true;
    const double mag = std::max(std::fabs(golden), std::fabs(actual));
    return std::fabs(golden - actual) <= kValueRelTol * mag;
}

/** Append a human-readable line per differing metric to @p diffs. */
void
diffRegistries(const MetricsRegistry &golden,
               const MetricsRegistry &actual,
               std::vector<std::string> &diffs)
{
    std::vector<std::string> names = golden.names();
    for (const std::string &n : actual.names()) {
        if (!golden.has(n))
            names.push_back(n);
    }

    for (const std::string &name : names) {
        if (name.rfind("wall.", 0) == 0) {
            // Wall-clock fields are machine-dependent: only their
            // presence is part of the contract.
            if (!golden.has(name) || !actual.has(name))
                diffs.push_back(strf(name, ": present in only one "
                                           "snapshot"));
            continue;
        }
        if (!golden.has(name)) {
            diffs.push_back(strf(name, ": not in golden (run "
                                       "--update after reviewing)"));
            continue;
        }
        if (!actual.has(name)) {
            diffs.push_back(strf(name, ": missing from this run"));
            continue;
        }
        if (golden.kindOf(name) != actual.kindOf(name)) {
            diffs.push_back(strf(
                name, ": kind changed (",
                metricKindName(golden.kindOf(name)), " -> ",
                metricKindName(actual.kindOf(name)), ")"));
            continue;
        }
        switch (golden.kindOf(name)) {
          case MetricKind::Counter:
            if (golden.counter(name) != actual.counter(name))
                diffs.push_back(strf(name, ": ", golden.counter(name),
                                     " -> ", actual.counter(name)));
            break;
          case MetricKind::Value:
            if (!valuesMatch(golden.value(name), actual.value(name)))
                diffs.push_back(strf(name, ": ", golden.value(name),
                                     " -> ", actual.value(name)));
            break;
          case MetricKind::Hist: {
            const auto g = golden.hist(name);
            const auto a = actual.hist(name);
            if (g != a)
                diffs.push_back(strf(name, ": histogram changed (",
                                     g.size(), " vs ", a.size(),
                                     " buckets)"));
            break;
          }
        }
    }
}

MetricsRegistry
loadGolden(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal(strf("cannot open golden file '", path,
                   "' (run metrics_regress --update to create it)"));
    std::ostringstream text;
    text << in.rdbuf();
    return MetricsRegistry::fromJson(parseJson(text.str()));
}

} // namespace

int
main(int argc, char **argv)
{
    std::string goldenDir = BOWSIM_GOLDEN_DIR;
    std::string perturb;
    bool update = false;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto need = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal(strf(a, " needs an argument"));
            return argv[++i];
        };
        if (!std::strcmp(a, "--update"))
            update = true;
        else if (!std::strcmp(a, "--golden"))
            goldenDir = need();
        else if (!std::strcmp(a, "--perturb"))
            perturb = need();
        else if (!std::strcmp(a, "--list")) {
            for (const Case &c : kCases)
                std::cout << c.slug << ": " << c.workload << " on "
                          << archName(c.arch) << " at scale "
                          << kScale << "\n";
            std::cout << kCampaignSlug << ": VECTORADD fault "
                      << "campaign on "
                      << archName(Architecture::BOW_WR) << ", "
                      << kCampaignSms << " SMs, " << kCampaignTrials
                      << " trials at scale " << kScale << "\n";
            return 0;
        } else {
            fatal(strf("unknown option '", a,
                       "' (want --update, --golden DIR, "
                       "--perturb NAME or --list)"));
        }
    }

    try {
        // Generate each distinct workload once, then run the whole
        // suite through the parallel engine.
        std::vector<Workload> wls;
        for (const Case &c : kCases) {
            bool have = false;
            for (const Workload &w : wls)
                have = have || w.name == c.workload;
            if (!have)
                wls.push_back(workloads::make(c.workload, kScale));
        }
        auto workloadOf = [&](const char *name) -> const Workload & {
            for (const Workload &w : wls) {
                if (w.name == name)
                    return w;
            }
            panic(strf("metrics_regress: workload '", name,
                       "' not generated"));
        };

        std::vector<SimJob> jobs;
        for (const Case &c : kCases)
            jobs.emplace_back(workloadOf(c.workload), c.arch);
        const std::vector<SimResult> results =
            ParallelRunner().run(jobs);

        bool perturbApplied = false;
        std::vector<std::string> failures;
        auto gateOne = [&](const std::string &slug,
                           const std::string &label,
                           MetricsRegistry actual) {
            // Sampled runs are estimates; they must never update or
            // satisfy the exact golden contract (core/sampled.h).
            if (metricsAreEstimate(actual)) {
                failures.push_back(strf(
                    slug, " (", label, "): metrics are a sampled "
                    "estimate; the golden gate accepts exact runs "
                    "only"));
                return;
            }
            if (!perturb.empty() && actual.has(perturb) &&
                actual.kindOf(perturb) == MetricKind::Counter) {
                actual.addCounter(perturb, 1);
                perturbApplied = true;
            }

            const std::string path = goldenDir + "/" + slug + ".json";
            if (update) {
                writeMetricsFile(path, actual);
                std::cout << "updated " << path << "\n";
                return;
            }

            std::vector<std::string> diffs;
            diffRegistries(loadGolden(path), actual, diffs);
            if (!diffs.empty()) {
                failures.push_back(strf(slug, " (", label, "):"));
                for (const std::string &d : diffs)
                    failures.push_back("  " + d);
            }
        };

        for (std::size_t i = 0; i < std::size(kCases); ++i) {
            const Case &c = kCases[i];
            gateOne(c.slug,
                    strf(c.workload, " on ", archName(c.arch)),
                    results[i].metrics);
        }
        gateOne(kCampaignSlug,
                strf("VECTORADD fault campaign on ",
                     archName(Architecture::BOW_WR), ", ",
                     kCampaignSms, " SMs"),
                runCampaignCase(workloadOf("VECTORADD")));

        if (update)
            return 0;
        if (!perturb.empty() && !perturbApplied)
            fatal(strf("--perturb ", perturb,
                       ": no case exports that counter"));
        if (!failures.empty()) {
            std::cout << "metrics_regress: FAIL\n";
            for (const std::string &f : failures)
                std::cout << f << "\n";
            return 1;
        }
        std::cout << "metrics_regress: " << std::size(kCases) + 1
                  << " cases match " << goldenDir << "\n";
        return 0;
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    } catch (const PanicError &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
}
