/**
 * @file
 * google-benchmark microbenchmarks of bowsim's hot structures: BOC
 * insertion/forwarding, register-file arbitration, the assembler,
 * liveness analysis and whole-kernel simulation throughput. These
 * measure the simulator itself (cycles simulated per wall-second),
 * not the modelled GPU.
 */

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "common/json.h"
#include "common/log.h"
#include "common/table.h"
#include "compiler/liveness.h"
#include "compiler/writeback_tagger.h"
#include "core/parallel_runner.h"
#include "core/result_cache.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/snippets.h"

namespace {

using namespace bow;

void
BM_BocInsertForward(benchmark::State &state)
{
    Boc boc(Architecture::BOW_WR, 3, 12);
    std::vector<RegId> srcs = {1, 2, 3};
    SeqNum seq = 0;
    for (auto _ : state) {
        auto res = boc.insert(seq, srcs);
        for (RegId r : res.toFetch)
            boc.fetchComplete(r);
        boc.writeResult(seq, static_cast<RegId>(4 + (seq % 8)),
                        WritebackHint::BocAndRf);
        ++seq;
        benchmark::DoNotOptimize(res.forwarded);
    }
}
BENCHMARK(BM_BocInsertForward);

void
BM_RegisterFileTick(benchmark::State &state)
{
    const SimConfig config = SimConfig::titanXPascal();
    RegisterFile rf(config);
    std::uint32_t i = 0;
    for (auto _ : state) {
        rf.pushRead(static_cast<WarpId>(i % 32),
                    static_cast<RegId>(i % 64), 0);
        auto served = rf.tick();
        benchmark::DoNotOptimize(served.size());
        ++i;
    }
}
BENCHMARK(BM_RegisterFileTick);

void
BM_AssembleFig6(benchmark::State &state)
{
    for (auto _ : state) {
        Kernel k = assemble(snippets::btreeSnippetAsm(), "fig6");
        benchmark::DoNotOptimize(k.size());
    }
}
BENCHMARK(BM_AssembleFig6);

void
BM_LivenessAnalysis(benchmark::State &state)
{
    const auto wl = workloads::make("SAD", 0.05);
    for (auto _ : state) {
        Cfg cfg(wl.launch.kernel);
        Liveness lv(cfg);
        benchmark::DoNotOptimize(lv.liveIn(0));
    }
}
BENCHMARK(BM_LivenessAnalysis);

void
BM_TagWritebacks(benchmark::State &state)
{
    auto wl = workloads::make("SAD", 0.05);
    for (auto _ : state) {
        auto stats = tagWritebacks(wl.launch.kernel, 3);
        benchmark::DoNotOptimize(stats.total());
    }
}
BENCHMARK(BM_TagWritebacks);

void
BM_SimulateKernel(benchmark::State &state)
{
    const auto arch = static_cast<Architecture>(state.range(0));
    const auto wl = workloads::make("VECTORADD", 0.05);
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        Simulator sim(configFor(arch, 3));
        const auto res = sim.run(wl.launch);
        cycles += res.stats.cycles;
        benchmark::DoNotOptimize(res.stats.ipc());
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateKernel)
    ->Arg(static_cast<int>(Architecture::Baseline))
    ->Arg(static_cast<int>(Architecture::BOW))
    ->Arg(static_cast<int>(Architecture::BOW_WR_OPT));

void
BM_ParallelSuite(benchmark::State &state)
{
    // Whole-suite batch throughput at a given worker count. The
    // result cache is cleared every iteration so each one really
    // simulates; the counter reports simulations per wall-second.
    const auto suite = workloads::makeAll(0.05);
    const unsigned workers = static_cast<unsigned>(state.range(0));
    std::uint64_t sims = 0;
    for (auto _ : state) {
        globalResultCache().reset();
        std::vector<SimJob> jobs;
        for (const auto &wl : suite)
            jobs.emplace_back(wl, Architecture::BOW_WR_OPT, 3);
        const auto results = ParallelRunner(workers).run(jobs);
        sims += results.size();
        benchmark::DoNotOptimize(results.front().stats.cycles);
    }
    state.counters["sims/s"] = benchmark::Counter(
        static_cast<double>(sims), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelSuite)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void
BM_ResultCacheHit(benchmark::State &state)
{
    // Cost of a warm lookup: hash the launch + one map probe.
    const auto wl = workloads::make("VECTORADD", 0.05);
    globalResultCache().reset();
    ParallelRunner runner(1);
    const SimJob job(wl, Architecture::Baseline);
    runner.runOne(job);  // warm the cache
    for (auto _ : state) {
        const auto res = runner.runOne(job);
        benchmark::DoNotOptimize(res.stats.cycles);
    }
    globalResultCache().reset();
}
BENCHMARK(BM_ResultCacheHit);

/**
 * --compare-baseline mode: diff two BENCH_simspeed.json reports
 * (written by bench/simspeed, docs/PERFORMANCE.md) and print the
 * per-workload and aggregate host-speed ratio new/old. Exit status 0
 * regardless of direction — this is a reporting tool; the CI gate on
 * the ratio, if any, belongs to the caller.
 */

JsonValue
loadReport(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal(strf("microbench: cannot read '", path, "'"));
    std::stringstream ss;
    ss << in.rdbuf();
    JsonValue root = parseJson(ss.str());
    const JsonValue *schema = root.find("schema");
    if (!schema || schema->asString() != "bowsim-simspeed-v1")
        fatal(strf("microbench: '", path,
                   "' is not a bowsim-simspeed-v1 report"));
    return root;
}

int
compareBaseline(const std::string &oldPath, const std::string &newPath)
{
    const JsonValue base = loadReport(oldPath);
    const JsonValue next = loadReport(newPath);

    // (workload, arch) -> KIPS of the baseline run.
    std::map<std::pair<std::string, std::string>, double> baseKips;
    for (const JsonValue &c : base.at("cells").items()) {
        baseKips[{c.at("workload").asString(),
                  c.at("arch").asString()}] = c.at("kips").asDouble();
    }

    Table table("host simulation speed: new vs baseline");
    table.setHeader(
        {"workload", "arch", "base KIPS", "new KIPS", "speedup"});
    unsigned matched = 0;
    unsigned unmatched = 0;
    for (const JsonValue &c : next.at("cells").items()) {
        const std::string wl = c.at("workload").asString();
        const std::string arch = c.at("arch").asString();
        const auto it = baseKips.find({wl, arch});
        if (it == baseKips.end()) {
            ++unmatched;
            continue;
        }
        ++matched;
        const double oldK = it->second;
        const double newK = c.at("kips").asDouble();
        table.beginRow()
            .cell(wl)
            .cell(arch)
            .cell(oldK, 1)
            .cell(newK, 1)
            .cell(oldK > 0.0 ? strf(formatFixed(newK / oldK, 2), "x")
                             : std::string("n/a"));
    }
    if (matched == 0)
        fatal("microbench: the two reports share no (workload, arch) "
              "cells");
    table.print(std::cout);
    if (unmatched > 0)
        std::cout << "# " << unmatched
                  << " cell(s) in the new report had no baseline "
                     "counterpart and were skipped\n";

    const double aggOld = base.at("aggregate").at("kips").asDouble();
    const double aggNew = next.at("aggregate").at("kips").asDouble();
    std::cout << "\naggregate: " << formatFixed(aggOld, 1)
              << " KIPS -> " << formatFixed(aggNew, 1) << " KIPS ("
              << (aggOld > 0.0
                      ? strf(formatFixed(aggNew / aggOld, 2), "x")
                      : std::string("n/a"))
              << ")\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Comparison mode bypasses google-benchmark entirely.
    if (argc >= 2 && std::string(argv[1]) == "--compare-baseline") {
        if (argc != 4) {
            std::cerr << "usage: microbench --compare-baseline "
                         "OLD.json NEW.json\n";
            return 2;
        }
        return compareBaseline(argv[2], argv[3]);
    }

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
