/**
 * @file
 * Reproduces the paper's effective register-file-size claim
 * (Sec. IV-B): transient values tagged BOC-only are never allocated
 * in the RF, so with IW=3 a large fraction of register writes (52%
 * in the paper) needs no RF slot. Reports both the dynamic transient
 * write fraction and the static per-kernel GPR allocation reduction.
 */

#include "bench/bench_util.h"
#include "common/table.h"
#include "compiler/writeback_tagger.h"

using namespace bow;

int
main()
{
    const auto suite = bench::loadSuite(
        "Effective RF size reduction from transient values (IW=3)");

    Table t("Transient values and RF allocation");
    t.setHeader({"benchmark", "transient writes", "GPRs named",
                 "RF-free GPRs", "allocation cut"});

    const auto results =
        bench::runSuite(suite, Architecture::BOW_WR_OPT, 3);

    double accTrans = 0.0;
    double accCut = 0.0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const Workload &wl = suite[i];
        Launch tagged = wl.launch;
        tagWritebacks(tagged.kernel, 3);
        const RfDemand demand = analyzeRfDemand(tagged.kernel);

        const auto &s = results[i].stats;
        const double total = static_cast<double>(
            s.destRfOnly + s.destBocOnly + s.destBocAndRf);
        const double trans =
            total ? static_cast<double>(s.destBocOnly) / total : 0.0;

        t.beginRow().cell(wl.name).pct(trans)
            .cell(std::uint64_t{demand.totalGprs})
            .cell(std::uint64_t{demand.rfFreeGprs})
            .pct(demand.reduction());
        accTrans += trans;
        accCut += demand.reduction();
    }
    const double n = static_cast<double>(suite.size());
    t.beginRow().cell("AVG").pct(accTrans / n).cell("-").cell("-")
        .pct(accCut / n);
    t.print(std::cout);

    std::cout << "# paper reference: 52% of computed operands are "
                 "transient at IW=3 and are\n"
                 "# never allocated in the RF, shrinking its "
                 "effective size.\n";
    return 0;
}
