/**
 * @file
 * Reproduces the paper's Sec. V-A comparison with register-file
 * caching (RFC, Gebhart et al. ISCA'11): a 6-entry-per-warp cache
 * saves RF energy but relieves no port contention, so it gains
 * little performance, while costing 24KB (twice the half-size BOC).
 */

#include "bench/bench_util.h"
#include "common/table.h"

using namespace bow;

int
main()
{
    const auto suite = bench::loadSuite(
        "Sec. V-A - RFC comparison (6 entries/warp)");

    Table t("RFC vs BOW-WR (IW=3, half-size BOC)");
    t.setHeader({"benchmark", "RFC IPC gain", "BOW-WR IPC gain",
                 "RFC energy", "BOW-WR energy"});

    const auto baseRes =
        bench::runSuite(suite, Architecture::Baseline);
    const auto rfcRes = bench::runSuite(suite, Architecture::RFC);
    const auto bowRes =
        bench::runSuite(suite, Architecture::BOW_WR_OPT, 3, 6);

    double accRfcIpc = 0.0;
    double accBowIpc = 0.0;
    double accRfcE = 0.0;
    double accBowE = 0.0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &base = baseRes[i];
        const auto &rfc = rfcRes[i];
        const auto &bowwr = bowRes[i];

        const double rfcIpc = improvementPct(rfc.stats.ipc(),
                                             base.stats.ipc());
        const double bowIpc = improvementPct(bowwr.stats.ipc(),
                                             base.stats.ipc());
        const double rfcE = rfc.energy.normalizedTo(base.energy);
        const double bowE = bowwr.energy.normalizedTo(base.energy);
        t.beginRow().cell(suite[i].name)
            .cell(formatImprovement(rfcIpc))
            .cell(formatImprovement(bowIpc))
            .pct(rfcE).pct(bowE);
        accRfcIpc += rfcIpc;
        accBowIpc += bowIpc;
        accRfcE += rfcE;
        accBowE += bowE;
    }
    const double n = static_cast<double>(suite.size());
    t.beginRow().cell("AVG")
        .cell(formatImprovement(accRfcIpc / n))
        .cell(formatImprovement(accBowIpc / n))
        .pct(accRfcE / n).pct(accBowE / n);
    t.print(std::cout);

    std::cout << "# storage: RFC = 32 warps x 6 regs x 128B = 24KB; "
                 "half-size BOW-WR = 12KB.\n"
                 "# paper reference: RFC gains <2% IPC; BOW-WR saves "
                 "substantially more energy\n"
                 "# by consolidating writes and resolving port "
                 "contention.\n";
    return 0;
}
