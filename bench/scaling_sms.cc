/**
 * @file
 * SM-scaling sweep: aggregate IPC and dynamic energy of the whole
 * suite as the GPU grows from 1 SM to the full Titan X Pascal 28,
 * for the baseline and the two end-to-end BOW configurations. The
 * multi-SM model shares one banked L2, so this is the first bench
 * where bypassing competes with chip-level memory contention.
 *
 * Expectation: aggregate IPC is monotone non-decreasing in the SM
 * count for the throughput workloads (VECTORADD is asserted by
 * tests/test_gpu_core.cc via this same configuration), and the BOW
 * energy win per instruction is independent of the SM count because
 * bypassing is SM-local.
 */

#include "bench/bench_util.h"
#include "common/table.h"

using namespace bow;

namespace {

constexpr unsigned kSmCounts[] = {1, 2, 4, 8, 14, 28};
constexpr unsigned kWarpsPerCta = 4; // 128-thread CTAs

SimConfig
smConfig(Architecture arch, unsigned numSms)
{
    SimConfig c = SimConfig::titanXPascal();
    c.arch = arch;
    c.numSms = numSms;
    return c;
}

void
report(const char *title, Architecture arch,
       const std::vector<Workload> &suite)
{
    // Realistic CTAs (4 warps = 128 threads): keeps adjacent warps —
    // which share cache lines in the streaming workloads — on one SM.
    std::vector<Workload> grid = suite;
    for (Workload &wl : grid)
        wl.launch.warpsPerCta = kWarpsPerCta;

    std::vector<SimJob> jobs;
    for (const Workload &wl : grid)
        for (unsigned sms : kSmCounts)
            jobs.emplace_back(wl, smConfig(arch, sms));
    const auto results = bench::runMany(jobs);

    Table ipc(strf(title, " - aggregate IPC"));
    ipc.setHeader({"benchmark", "1 SM", "2 SM", "4 SM", "8 SM",
                   "14 SM", "28 SM"});
    Table energy(strf(title, " - dynamic energy (uJ)"));
    energy.setHeader({"benchmark", "1 SM", "2 SM", "4 SM", "8 SM",
                      "14 SM", "28 SM"});

    std::size_t r = 0;
    for (const Workload &wl : suite) {
        ipc.beginRow().cell(wl.name);
        energy.beginRow().cell(wl.name);
        for (std::size_t s = 0; s < std::size(kSmCounts); ++s) {
            const SimResult &res = results[r++];
            ipc.cell(res.stats.ipc(), 3);
            energy.cell(res.energy.totalPj / 1e6, 2);
        }
    }
    ipc.print(std::cout);
    energy.print(std::cout);
}

} // namespace

int
main()
{
    const auto suite = bench::loadSuite(
        "SM scaling - aggregate IPC and energy, 1 to 28 SMs");

    report("Baseline", Architecture::Baseline, suite);
    report("BOW-WR", Architecture::BOW_WR, suite);
    report("BOW-WR (compiler)", Architecture::BOW_WR_OPT, suite);

    // VECTORADD focus row: the pure-throughput workload where SM
    // scaling should be closest to linear until the shared L2
    // saturates.
    Table t("VECTORADD - IPC scaling and efficiency vs 1 SM");
    t.setHeader({"arch", "1 SM", "2 SM", "4 SM", "8 SM", "14 SM",
                 "28 SM", "28-SM speedup"});
    Workload va = workloads::make("VECTORADD", benchScale());
    va.launch.warpsPerCta = kWarpsPerCta;
    for (Architecture arch :
         {Architecture::Baseline, Architecture::BOW_WR,
          Architecture::BOW_WR_OPT}) {
        std::vector<SimJob> jobs;
        for (unsigned sms : kSmCounts)
            jobs.emplace_back(va, smConfig(arch, sms));
        const auto results = bench::runMany(jobs);
        t.beginRow().cell(archName(arch));
        for (const SimResult &res : results)
            t.cell(res.stats.ipc(), 3);
        t.cell(results.back().stats.ipc() /
                   results.front().stats.ipc(),
               2);
    }
    t.print(std::cout);

    std::cout << "# bypassing is SM-local: BOW's per-instruction RF "
                 "savings persist at\n"
                 "# every SM count, while aggregate IPC scales with "
                 "the SM count until\n"
                 "# the shared L2 and DRAM latency dominate.\n";
    return 0;
}
