/**
 * @file
 * Host simulation-speed benchmark (docs/PERFORMANCE.md). Times
 * Simulator::run() directly — single-threaded, no result cache — for
 * every workload x architecture and reports simulated-instruction
 * throughput (KIPS: thousand simulated instructions per host second)
 * plus wall-clock per cell, then writes the machine-readable
 * BENCH_simspeed.json for bench/microbench --compare-baseline.
 *
 * Timing numbers go to stdout on purpose: this bench measures the
 * host, so its output is expected to differ between runs and is not
 * part of the byte-identical golden set.
 *
 * Deliberately restricted to long-stable APIs (Simulator, configFor,
 * workloads::makeAll) so the identical source compiles against an
 * older checkout — that is how a before/after host-speed comparison
 * is produced with one harness.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/log.h"
#include "common/table.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "workloads/registry.h"

// Snapshot/sampled sections only when the checkout has the subsystem
// (core/snapshot.h landed later than the stable API floor above; the
// guard keeps the before/after compile trick working).
#if __has_include("core/sampled.h")
#include <cstdio>
#include "core/sampled.h"
#include "core/snapshot.h"
#define BOWSIM_SIMSPEED_HAVE_SAMPLED 1
#endif

namespace {

using namespace bow;

struct Cell
{
    std::string workload;
    Architecture arch;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    double seconds = 0.0;   ///< best (minimum) of the repeats

    double
    kips() const
    {
        return seconds > 0.0
            ? static_cast<double>(instructions) / seconds / 1e3
            : 0.0;
    }
};

double
secondsOf(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * One cell of the parallel-SM-stepping section: VECTORADD under
 * BOW-WR at numSms x hostThreads, plus whether its results matched
 * the hostThreads=1 reference bit-for-bit (the whole point of the
 * scheme — a speedup that changes the statistics is a bug, not a
 * win).
 */
struct ParCell
{
    unsigned numSms = 0;
    unsigned hostThreads = 0;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    double seconds = 0.0;  ///< best (minimum) of the repeats
    bool statsMatch = false;

    double
    kips() const
    {
        return seconds > 0.0
            ? static_cast<double>(instructions) / seconds / 1e3
            : 0.0;
    }
};

/**
 * One cell of the epoch-stepping section: VECTORADD under BOW-WR at
 * numSms x hostThreads x epochCycles, with the same hard
 * correctness bit as ParCell — every cell must equal the per-cycle
 * serial reference of its SM count bit-for-bit.
 */
struct EpochCell
{
    unsigned numSms = 0;
    unsigned hostThreads = 0;
    unsigned epochCycles = 0;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    double seconds = 0.0;  ///< best (minimum) of the repeats
    bool statsMatch = false;

    double
    kips() const
    {
        return seconds > 0.0
            ? static_cast<double>(instructions) / seconds / 1e3
            : 0.0;
    }
};

/**
 * The host-thread knob travels via BOWSIM_HOST_THREADS rather than
 * SimConfig so this source still compiles against checkouts that
 * predate the config field (the harness's whole before/after trick);
 * old simulators simply ignore the variable and run serially.
 */
void
setHostThreadsEnv(unsigned n)
{
    setenv("BOWSIM_HOST_THREADS", std::to_string(n).c_str(), 1);
}

/** Same trick for the epoch-length knob: BOWSIM_EPOCH_CYCLES keeps
 *  this source compiling against pre-epoch checkouts, which simply
 *  ignore the variable and step per cycle. */
void
setEpochCyclesEnv(unsigned n)
{
    setenv("BOWSIM_EPOCH_CYCLES", std::to_string(n).c_str(), 1);
}

/** Scoped save/restore for one env var, so the sections below can
 *  sweep knobs without leaking them into each other. */
class EnvSave
{
  public:
    explicit EnvSave(const char *var) : var_(var)
    {
        if (const char *v = std::getenv(var))
            saved_ = v;
        else
            unset_ = true;
    }
    ~EnvSave()
    {
        if (unset_)
            unsetenv(var_);
        else
            setenv(var_, saved_.c_str(), 1);
    }

  private:
    const char *var_;
    std::string saved_;
    bool unset_ = false;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace bow;

    std::string outPath = "BENCH_simspeed.json";
    unsigned repeat = 3;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            outPath = argv[++i];
        } else if (arg == "--repeat" && i + 1 < argc) {
            repeat = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--help") {
            std::cout << "usage: simspeed [--out FILE] [--repeat N]\n"
                         "  --out FILE   JSON report path (default "
                         "BENCH_simspeed.json)\n"
                         "  --repeat N   timed runs per cell; the "
                         "fastest counts (default 3)\n";
            return 0;
        } else {
            fatal(strf("simspeed: unknown argument '", arg, "'"));
        }
    }
    if (repeat == 0)
        fatal("simspeed: --repeat must be at least 1");

    const double scale = benchScale();
    const std::vector<Workload> suite = workloads::makeAll(scale);
    const Architecture archs[] = {
        Architecture::Baseline,
        Architecture::BOW,
        Architecture::BOW_WR,
        Architecture::BOW_WR_OPT,
    };

    const unsigned hwConcurrency = std::thread::hardware_concurrency();
    std::cout << "bowsim simspeed: host-throughput benchmark\n"
              << "# workload scale " << scale << ", " << repeat
              << " repeat(s) per cell, best counts\n";
    if (hwConcurrency <= 1)
        std::cout << "# warning: hardware_concurrency() <= 1 — "
                     "parallel/epoch stepping cannot be faster than "
                     "serial on this host; KIPS comparisons below "
                     "measure overhead only\n";
    std::cout << "\n";

    Table table("host simulation speed");
    table.setHeader({"workload", "arch", "cycles", "insts", "seconds",
                     "KIPS"});

    std::vector<Cell> cells;
    const auto wallStart = std::chrono::steady_clock::now();
    for (const Workload &wl : suite) {
        for (Architecture arch : archs) {
            const Simulator sim(configFor(arch));
            Cell cell;
            cell.workload = wl.name;
            cell.arch = arch;
            cell.seconds = std::numeric_limits<double>::infinity();
            for (unsigned r = 0; r < repeat; ++r) {
                const auto t0 = std::chrono::steady_clock::now();
                const SimResult res = sim.run(wl.launch);
                const double secs = secondsOf(t0);
                cell.seconds = std::min(cell.seconds, secs);
                cell.cycles = res.stats.cycles;
                cell.instructions = res.stats.instructions;
            }
            cells.push_back(cell);
            table.beginRow()
                .cell(wl.name)
                .cell(archName(arch))
                .cell(cell.cycles)
                .cell(cell.instructions)
                .cell(cell.seconds, 4)
                .cell(cell.kips(), 1);
        }
    }
    const double wallSeconds = secondsOf(wallStart);
    table.print(std::cout);

    std::uint64_t totalInsts = 0;
    std::uint64_t totalCycles = 0;
    double totalSeconds = 0.0;
    for (const Cell &c : cells) {
        totalInsts += c.instructions;
        totalCycles += c.cycles;
        totalSeconds += c.seconds;
    }
    const double aggKips = totalSeconds > 0.0
        ? static_cast<double>(totalInsts) / totalSeconds / 1e3
        : 0.0;

    std::cout << "\naggregate: " << totalInsts << " instructions / "
              << formatFixed(totalSeconds, 3) << "s best-run time = "
              << formatFixed(aggKips, 1) << " KIPS ("
              << formatFixed(wallSeconds, 2) << "s wall)\n";

    // ------------------------------------------------------------------
    // Parallel SM stepping (docs/PERFORMANCE.md): the same simulation
    // at several intra-simulation host thread counts. "match" is a
    // hard correctness bit: every cell's cycles, instructions, final
    // registers, final memory and full metric registry must equal the
    // hostThreads=1 reference of its SM count.
    // ------------------------------------------------------------------
    std::cout << "\n";
    Table ptable("parallel SM stepping (VECTORADD, BOW-WR)");
    ptable.setHeader({"SMs", "host-threads", "cycles", "insts",
                      "seconds", "KIPS", "match"});

    Workload va = workloads::make("VECTORADD", scale);
    va.launch.warpsPerCta = 4;  // the scaling bench's grid shape

    const char *prevEnv = std::getenv("BOWSIM_HOST_THREADS");
    const std::string prevEnvSaved = prevEnv ? prevEnv : "";

    // Pin the epoch knob to per-cycle for this section so it keeps
    // measuring the barrier-per-cycle scheme in isolation (restored
    // when main returns; pre-epoch checkouts ignore the variable).
    const EnvSave epochEnvSave("BOWSIM_EPOCH_CYCLES");
    setEpochCyclesEnv(1);

    std::vector<ParCell> pcells;
    for (unsigned numSms : {4u, 28u}) {
        SimConfig config = configFor(Architecture::BOW_WR);
        config.numSms = numSms;
        const Simulator sim(config);

        // hostThreads=1 reference for the match bit (untimed).
        setHostThreadsEnv(1);
        const SimResult ref = sim.run(va.launch);
        const std::string refMetrics = ref.metrics.toJson().dump();

        for (unsigned hostThreads : {1u, 2u, 4u}) {
            setHostThreadsEnv(hostThreads);
            ParCell cell;
            cell.numSms = numSms;
            cell.hostThreads = hostThreads;
            cell.seconds = std::numeric_limits<double>::infinity();
            for (unsigned r = 0; r < repeat; ++r) {
                const auto t0 = std::chrono::steady_clock::now();
                const SimResult res = sim.run(va.launch);
                const double secs = secondsOf(t0);
                cell.seconds = std::min(cell.seconds, secs);
                cell.cycles = res.stats.cycles;
                cell.instructions = res.stats.instructions;
                cell.statsMatch =
                    res.stats.cycles == ref.stats.cycles &&
                    res.stats.instructions ==
                        ref.stats.instructions &&
                    res.finalRegs == ref.finalRegs &&
                    res.finalMem.contentsEqual(ref.finalMem) &&
                    res.metrics.toJson().dump() == refMetrics;
            }
            pcells.push_back(cell);
            ptable.beginRow()
                .cell(static_cast<std::uint64_t>(cell.numSms))
                .cell(static_cast<std::uint64_t>(cell.hostThreads))
                .cell(cell.cycles)
                .cell(cell.instructions)
                .cell(cell.seconds, 4)
                .cell(cell.kips(), 1)
                .cell(cell.statsMatch ? "yes" : "NO");
        }
    }
    if (prevEnvSaved.empty() && !prevEnv)
        unsetenv("BOWSIM_HOST_THREADS");
    else
        setenv("BOWSIM_HOST_THREADS", prevEnvSaved.c_str(), 1);
    ptable.print(std::cout);

    bool allMatch = true;
    for (const ParCell &c : pcells)
        allMatch = allMatch && c.statsMatch;
    std::cout << "parallel stepping serial/parallel stat-diff: "
              << (allMatch ? "empty" : "NON-EMPTY (BUG)") << "\n";

    // ------------------------------------------------------------------
    // Epoch stepping (docs/PERFORMANCE.md): relaxed bounded-lag SM
    // synchronization. Each SM free-runs up to epochCycles cycles
    // between barriers, with memory-system effects committed at the
    // barrier in global (cycle, smIndex) order — so every cell must
    // still match the per-cycle serial reference bit-for-bit while
    // paying 1/epochCycles as many barrier crossings.
    // ------------------------------------------------------------------
    std::cout << "\n";
    Table etable("epoch stepping (VECTORADD, BOW-WR)");
    etable.setHeader({"SMs", "host-threads", "epoch", "cycles",
                      "insts", "seconds", "KIPS", "match"});

    std::vector<EpochCell> ecells;
    for (unsigned numSms : {4u, 28u}) {
        SimConfig config = configFor(Architecture::BOW_WR);
        config.numSms = numSms;
        const Simulator sim(config);

        // Per-cycle serial reference for the match bit (untimed).
        setHostThreadsEnv(1);
        setEpochCyclesEnv(1);
        const SimResult ref = sim.run(va.launch);
        const std::string refMetrics = ref.metrics.toJson().dump();

        for (unsigned hostThreads : {1u, 2u}) {
            for (unsigned epochCycles : {1u, 8u, 64u, 256u}) {
                setHostThreadsEnv(hostThreads);
                setEpochCyclesEnv(epochCycles);
                EpochCell cell;
                cell.numSms = numSms;
                cell.hostThreads = hostThreads;
                cell.epochCycles = epochCycles;
                cell.seconds =
                    std::numeric_limits<double>::infinity();
                for (unsigned r = 0; r < repeat; ++r) {
                    const auto t0 = std::chrono::steady_clock::now();
                    const SimResult res = sim.run(va.launch);
                    const double secs = secondsOf(t0);
                    cell.seconds = std::min(cell.seconds, secs);
                    cell.cycles = res.stats.cycles;
                    cell.instructions = res.stats.instructions;
                    cell.statsMatch =
                        res.stats.cycles == ref.stats.cycles &&
                        res.stats.instructions ==
                            ref.stats.instructions &&
                        res.finalRegs == ref.finalRegs &&
                        res.finalMem.contentsEqual(ref.finalMem) &&
                        res.metrics.toJson().dump() == refMetrics;
                }
                ecells.push_back(cell);
                etable.beginRow()
                    .cell(static_cast<std::uint64_t>(cell.numSms))
                    .cell(
                        static_cast<std::uint64_t>(cell.hostThreads))
                    .cell(
                        static_cast<std::uint64_t>(cell.epochCycles))
                    .cell(cell.cycles)
                    .cell(cell.instructions)
                    .cell(cell.seconds, 4)
                    .cell(cell.kips(), 1)
                    .cell(cell.statsMatch ? "yes" : "NO");
            }
        }
    }
    etable.print(std::cout);

    bool epochAllMatch = true;
    for (const EpochCell &c : ecells)
        epochAllMatch = epochAllMatch && c.statsMatch;
    std::cout << "epoch stepping serial/epoch stat-diff: "
              << (epochAllMatch ? "empty" : "NON-EMPTY (BUG)")
              << "\n";

    // Per-cycle barrier cost estimate: the same 2-SM simulation run
    // serially and with one extra stepping thread at epoch=1. Every
    // cycle then crosses the team barrier twice (start + finish), so
    // the wall-clock delta per simulated cycle is a direct estimate
    // of the synchronization overhead that epoch stepping amortizes.
    // Negative values just mean real parallel speedup outweighed the
    // barrier cost on this host; the raw number is recorded either
    // way.
    double barrierNsPerCycle = 0.0;
    {
        SimConfig config = configFor(Architecture::BOW_WR);
        config.numSms = 2;
        const Simulator sim(config);
        setEpochCyclesEnv(1);
        double serialSecs = std::numeric_limits<double>::infinity();
        double pairSecs = std::numeric_limits<double>::infinity();
        std::uint64_t barCycles = 0;
        setHostThreadsEnv(1);
        for (unsigned r = 0; r < repeat; ++r) {
            const auto t0 = std::chrono::steady_clock::now();
            const SimResult res = sim.run(va.launch);
            serialSecs = std::min(serialSecs, secondsOf(t0));
            barCycles = res.stats.cycles;
        }
        setHostThreadsEnv(2);
        for (unsigned r = 0; r < repeat; ++r) {
            const auto t0 = std::chrono::steady_clock::now();
            (void)sim.run(va.launch);
            pairSecs = std::min(pairSecs, secondsOf(t0));
        }
        if (barCycles > 0)
            barrierNsPerCycle = (pairSecs - serialSecs) /
                static_cast<double>(barCycles) * 1e9;
        std::cout << "barrier cost (2 SMs, ht=2 vs serial): "
                  << formatFixed(barrierNsPerCycle, 1)
                  << " ns/cycle over " << barCycles << " cycles\n";
    }

    // The epoch/barrier sweeps above leave the knobs at their last
    // values; put them back so the sections below time the default
    // serial per-cycle configuration.
    if (prevEnvSaved.empty() && !prevEnv)
        unsetenv("BOWSIM_HOST_THREADS");
    else
        setenv("BOWSIM_HOST_THREADS", prevEnvSaved.c_str(), 1);
    setEpochCyclesEnv(1);

#ifdef BOWSIM_SIMSPEED_HAVE_SAMPLED
    // ------------------------------------------------------------------
    // Sampled mode and snapshots (docs/PERFORMANCE.md). The scale is
    // pinned (NOT benchScale): sampling only pays off on runs long
    // enough that the functional-warming gaps dominate, and the CI
    // gate (sampled KIPS > detailed KIPS) must not depend on the
    // harness environment. The IPC error and the snapshot round-trip
    // match are printed alongside the speedup so a timing win that
    // broke correctness is visible in the same table.
    // ------------------------------------------------------------------
    constexpr double kSampledScale = 1.0;
    const Workload sampledWl = workloads::make("BTREE", kSampledScale);
    const SimConfig sampledConfig = configFor(Architecture::BOW_WR);
    SampleSpec sampleSpec;
    sampleSpec.window = 1'000;
    sampleSpec.period = 10'000;

    double detailedSecs = std::numeric_limits<double>::infinity();
    SimResult detailedRes;
    for (unsigned r = 0; r < repeat; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        detailedRes = Simulator(sampledConfig).run(sampledWl.launch);
        detailedSecs = std::min(detailedSecs, secondsOf(t0));
    }
    double sampledSecs = std::numeric_limits<double>::infinity();
    SimResult sampledRes;
    SampledInfo sampledInfo;
    for (unsigned r = 0; r < repeat; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        sampledRes = runSampled(sampledConfig, sampledWl.launch,
                                sampleSpec, nullptr, &sampledInfo);
        sampledSecs = std::min(sampledSecs, secondsOf(t0));
    }
    const double detailedKips = detailedSecs > 0.0
        ? static_cast<double>(detailedRes.stats.instructions) /
              detailedSecs / 1e3
        : 0.0;
    const double sampledKips = sampledSecs > 0.0
        ? static_cast<double>(sampledRes.stats.instructions) /
              sampledSecs / 1e3
        : 0.0;
    const double sampledErr = ipcRelError(sampledRes, detailedRes);

    std::cout << "\nsampled mode (BTREE, BOW-WR, scale "
              << kSampledScale << ", W=" << sampleSpec.window
              << " P=" << sampleSpec.period << "):\n"
              << "  detailed: " << formatFixed(detailedSecs, 4)
              << "s = " << formatFixed(detailedKips, 1) << " KIPS\n"
              << "  sampled:  " << formatFixed(sampledSecs, 4)
              << "s = " << formatFixed(sampledKips, 1) << " KIPS ("
              << sampledInfo.windows << " windows, "
              << formatFixed(detailedSecs / sampledSecs, 2)
              << "x, IPC error "
              << formatFixed(sampledErr * 100.0, 1) << "%)\n";

    // Snapshot save/resume cost, plus the round-trip match bit (the
    // resumed run must finish bit-identical to the uninterrupted
    // one — a fast snapshot that loses state is not a feature).
    const std::string snapPath = outPath + ".snap.tmp";
    SimSession snapSession(sampledConfig, sampledWl.launch);
    while (!snapSession.finished() &&
           snapSession.now() < detailedRes.stats.cycles / 2) {
        if (!snapSession.stepCycle())
            break;
    }
    const auto tSave = std::chrono::steady_clock::now();
    snapSession.saveSnapshot(snapPath);
    const double saveSecs = secondsOf(tSave);
    const auto tResume = std::chrono::steady_clock::now();
    auto resumedSession =
        SimSession::resumeFromSnapshot(snapPath, sampledWl.launch);
    const double resumeSecs = secondsOf(tResume);
    resumedSession->runToCompletion();
    const SimResult resumedRes = resumedSession->result();
    const bool snapMatch =
        resumedRes.stats.cycles == detailedRes.stats.cycles &&
        resumedRes.stats.instructions ==
            detailedRes.stats.instructions &&
        resumedRes.finalRegs == detailedRes.finalRegs &&
        resumedRes.finalMem.contentsEqual(detailedRes.finalMem) &&
        resumedRes.metrics.toJson().dump() ==
            detailedRes.metrics.toJson().dump();
    std::remove(snapPath.c_str());

    std::cout << "snapshot (same run, saved at cycle "
              << snapSession.now() << "): save "
              << formatFixed(saveSecs * 1e3, 1) << "ms, resume "
              << formatFixed(resumeSecs * 1e3, 1)
              << "ms, round-trip match: "
              << (snapMatch ? "yes" : "NO (BUG)") << "\n";
#endif // BOWSIM_SIMSPEED_HAVE_SAMPLED

    JsonValue root = JsonValue::object();
    root.set("schema", "bowsim-simspeed-v1");
    root.set("scale", scale);
    root.set("repeat", static_cast<std::uint64_t>(repeat));
    JsonValue rows = JsonValue::array();
    for (const Cell &c : cells) {
        JsonValue row = JsonValue::object();
        row.set("workload", c.workload);
        row.set("arch", archName(c.arch));
        row.set("cycles", c.cycles);
        row.set("instructions", c.instructions);
        row.set("seconds", c.seconds);
        row.set("kips", c.kips());
        rows.push(std::move(row));
    }
    root.set("cells", std::move(rows));
    JsonValue prows = JsonValue::array();
    for (const ParCell &c : pcells) {
        JsonValue row = JsonValue::object();
        row.set("workload", std::string("VECTORADD"));
        row.set("arch", archName(Architecture::BOW_WR));
        row.set("num_sms", static_cast<std::uint64_t>(c.numSms));
        row.set("host_threads",
                static_cast<std::uint64_t>(c.hostThreads));
        row.set("cycles", c.cycles);
        row.set("instructions", c.instructions);
        row.set("seconds", c.seconds);
        row.set("kips", c.kips());
        row.set("stats_match", c.statsMatch);
        prows.push(std::move(row));
    }
    root.set("parallel", std::move(prows));
    JsonValue erows = JsonValue::array();
    for (const EpochCell &c : ecells) {
        JsonValue row = JsonValue::object();
        row.set("workload", std::string("VECTORADD"));
        row.set("arch", archName(Architecture::BOW_WR));
        row.set("num_sms", static_cast<std::uint64_t>(c.numSms));
        row.set("host_threads",
                static_cast<std::uint64_t>(c.hostThreads));
        row.set("epoch_cycles",
                static_cast<std::uint64_t>(c.epochCycles));
        row.set("cycles", c.cycles);
        row.set("instructions", c.instructions);
        row.set("seconds", c.seconds);
        row.set("kips", c.kips());
        row.set("stats_match", c.statsMatch);
        erows.push(std::move(row));
    }
    root.set("epoch", std::move(erows));
    root.set("hw_concurrency",
             static_cast<std::uint64_t>(hwConcurrency));
    root.set("barrier_ns_per_cycle", barrierNsPerCycle);
#ifdef BOWSIM_SIMSPEED_HAVE_SAMPLED
    JsonValue sampled = JsonValue::object();
    sampled.set("workload", std::string("BTREE"));
    sampled.set("arch", archName(Architecture::BOW_WR));
    sampled.set("scale", kSampledScale);
    sampled.set("window", sampleSpec.window);
    sampled.set("period", sampleSpec.period);
    sampled.set("windows", sampledInfo.windows);
    sampled.set("detailed_seconds", detailedSecs);
    sampled.set("detailed_kips", detailedKips);
    sampled.set("sampled_seconds", sampledSecs);
    sampled.set("sampled_kips", sampledKips);
    sampled.set("ipc_rel_error", sampledErr);
    root.set("sampled", std::move(sampled));
    JsonValue snap = JsonValue::object();
    snap.set("save_seconds", saveSecs);
    snap.set("resume_seconds", resumeSecs);
    snap.set("roundtrip_match", snapMatch);
    root.set("snapshot", std::move(snap));
#endif
    JsonValue agg = JsonValue::object();
    agg.set("cycles", totalCycles);
    agg.set("instructions", totalInsts);
    agg.set("seconds", totalSeconds);
    agg.set("kips", aggKips);
    root.set("aggregate", std::move(agg));

    std::ofstream out(outPath);
    if (!out)
        fatal(strf("simspeed: cannot write '", outPath, "'"));
    out << root.dump(2) << "\n";
    std::cout << "# wrote " << outPath << "\n";
    return 0;
}
