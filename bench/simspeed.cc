/**
 * @file
 * Host simulation-speed benchmark (docs/PERFORMANCE.md). Times
 * Simulator::run() directly — single-threaded, no result cache — for
 * every workload x architecture and reports simulated-instruction
 * throughput (KIPS: thousand simulated instructions per host second)
 * plus wall-clock per cell, then writes the machine-readable
 * BENCH_simspeed.json for bench/microbench --compare-baseline.
 *
 * Timing numbers go to stdout on purpose: this bench measures the
 * host, so its output is expected to differ between runs and is not
 * part of the byte-identical golden set.
 *
 * Deliberately restricted to long-stable APIs (Simulator, configFor,
 * workloads::makeAll) so the identical source compiles against an
 * older checkout — that is how a before/after host-speed comparison
 * is produced with one harness.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/log.h"
#include "common/table.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "workloads/registry.h"

namespace {

using namespace bow;

struct Cell
{
    std::string workload;
    Architecture arch;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    double seconds = 0.0;   ///< best (minimum) of the repeats

    double
    kips() const
    {
        return seconds > 0.0
            ? static_cast<double>(instructions) / seconds / 1e3
            : 0.0;
    }
};

double
secondsOf(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bow;

    std::string outPath = "BENCH_simspeed.json";
    unsigned repeat = 3;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            outPath = argv[++i];
        } else if (arg == "--repeat" && i + 1 < argc) {
            repeat = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--help") {
            std::cout << "usage: simspeed [--out FILE] [--repeat N]\n"
                         "  --out FILE   JSON report path (default "
                         "BENCH_simspeed.json)\n"
                         "  --repeat N   timed runs per cell; the "
                         "fastest counts (default 3)\n";
            return 0;
        } else {
            fatal(strf("simspeed: unknown argument '", arg, "'"));
        }
    }
    if (repeat == 0)
        fatal("simspeed: --repeat must be at least 1");

    const double scale = benchScale();
    const std::vector<Workload> suite = workloads::makeAll(scale);
    const Architecture archs[] = {
        Architecture::Baseline,
        Architecture::BOW,
        Architecture::BOW_WR,
        Architecture::BOW_WR_OPT,
    };

    std::cout << "bowsim simspeed: host-throughput benchmark\n"
              << "# workload scale " << scale << ", " << repeat
              << " repeat(s) per cell, best counts\n\n";

    Table table("host simulation speed");
    table.setHeader({"workload", "arch", "cycles", "insts", "seconds",
                     "KIPS"});

    std::vector<Cell> cells;
    const auto wallStart = std::chrono::steady_clock::now();
    for (const Workload &wl : suite) {
        for (Architecture arch : archs) {
            const Simulator sim(configFor(arch));
            Cell cell;
            cell.workload = wl.name;
            cell.arch = arch;
            cell.seconds = std::numeric_limits<double>::infinity();
            for (unsigned r = 0; r < repeat; ++r) {
                const auto t0 = std::chrono::steady_clock::now();
                const SimResult res = sim.run(wl.launch);
                const double secs = secondsOf(t0);
                cell.seconds = std::min(cell.seconds, secs);
                cell.cycles = res.stats.cycles;
                cell.instructions = res.stats.instructions;
            }
            cells.push_back(cell);
            table.beginRow()
                .cell(wl.name)
                .cell(archName(arch))
                .cell(cell.cycles)
                .cell(cell.instructions)
                .cell(cell.seconds, 4)
                .cell(cell.kips(), 1);
        }
    }
    const double wallSeconds = secondsOf(wallStart);
    table.print(std::cout);

    std::uint64_t totalInsts = 0;
    std::uint64_t totalCycles = 0;
    double totalSeconds = 0.0;
    for (const Cell &c : cells) {
        totalInsts += c.instructions;
        totalCycles += c.cycles;
        totalSeconds += c.seconds;
    }
    const double aggKips = totalSeconds > 0.0
        ? static_cast<double>(totalInsts) / totalSeconds / 1e3
        : 0.0;

    std::cout << "\naggregate: " << totalInsts << " instructions / "
              << formatFixed(totalSeconds, 3) << "s best-run time = "
              << formatFixed(aggKips, 1) << " KIPS ("
              << formatFixed(wallSeconds, 2) << "s wall)\n";

    JsonValue root = JsonValue::object();
    root.set("schema", "bowsim-simspeed-v1");
    root.set("scale", scale);
    root.set("repeat", static_cast<std::uint64_t>(repeat));
    JsonValue rows = JsonValue::array();
    for (const Cell &c : cells) {
        JsonValue row = JsonValue::object();
        row.set("workload", c.workload);
        row.set("arch", archName(c.arch));
        row.set("cycles", c.cycles);
        row.set("instructions", c.instructions);
        row.set("seconds", c.seconds);
        row.set("kips", c.kips());
        rows.push(std::move(row));
    }
    root.set("cells", std::move(rows));
    JsonValue agg = JsonValue::object();
    agg.set("cycles", totalCycles);
    agg.set("instructions", totalInsts);
    agg.set("seconds", totalSeconds);
    agg.set("kips", aggKips);
    root.set("aggregate", std::move(agg));

    std::ofstream out(outPath);
    if (!out)
        fatal(strf("simspeed: cannot write '", outPath, "'"));
    out << root.dump(2) << "\n";
    std::cout << "# wrote " << outPath << "\n";
    return 0;
}
