/**
 * @file
 * Reproduces paper Table I: register-file write counts for the
 * Figure 6 BTREE listing under BOW write-through, BOW write-back,
 * and BOW-WR with compiler hints (IW = 3).
 */

#include <iostream>

#include "common/table.h"
#include "compiler/writeback_tagger.h"
#include "core/replay.h"
#include "isa/disassembler.h"
#include "sm/functional.h"
#include "workloads/snippets.h"

using namespace bow;

int
main()
{
    std::cout << "bowsim bench: Table I - RF writes for the Fig. 6 "
                 "BTREE listing (IW=3)\n\n";
    std::cout << "Listing (paper Figure 6):\n"
              << disassemble(snippets::btreeSnippet().kernel) << "\n";

    const Launch launch = snippets::btreeSnippet();
    const WarpTrace trace = runFunctional(launch).traces[0];

    const auto wt = replayWritebacks(launch.kernel, trace,
                                     Architecture::BOW, 3);
    const auto wb = replayWritebacks(launch.kernel, trace,
                                     Architecture::BOW_WR, 3);
    Launch tagged = launch;
    tagWritebacks(tagged.kernel, 3);
    const auto opt = replayWritebacks(tagged.kernel, trace,
                                      Architecture::BOW_WR_OPT, 3);

    Table t("Table I - # of RF write accesses per destination");
    t.setHeader({"operand", "BOW (write-through)", "BOW (write-back)",
                 "BOW-WR (compiler opt.)"});
    std::uint64_t totWt = 0;
    std::uint64_t totWb = 0;
    std::uint64_t totOpt = 0;
    for (RegId r : {RegId{0}, RegId{1}, RegId{2}, RegId{3}}) {
        t.beginRow().cell(regName(r)).cell(wt.writesTo(r))
            .cell(wb.writesTo(r)).cell(opt.writesTo(r));
        totWt += wt.writesTo(r);
        totWb += wb.writesTo(r);
        totOpt += opt.writesTo(r);
    }
    t.beginRow().cell("Total ($r0-$r3)").cell(totWt).cell(totWb)
        .cell(totOpt);
    t.print(std::cout);

    std::cout << "# paper Table I: r0 3/1/0, r1 4/2/1, r2 2/1/0, "
                 "r3 1/1/1, total 10/5/2.\n"
                 "# Our listing carries one extra static write to $r2 "
                 "(the shl on line 12),\n"
                 "# so the write-through/write-back columns for $r2 "
                 "are one higher; the\n"
                 "# compiler-optimised column matches exactly. See "
                 "EXPERIMENTS.md.\n";
    return 0;
}
