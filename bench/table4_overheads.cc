/**
 * @file
 * Reproduces paper Table IV (BOC vs register-bank CACTI parameters
 * at 28nm) and the hardware-overhead accounting of Sec. V-A: storage
 * added per SM and its share of the register file.
 */

#include <iostream>

#include "common/table.h"
#include "energy/energy_model.h"
#include "sm/sim_config.h"

using namespace bow;

int
main()
{
    std::cout << "bowsim bench: Table IV - BOC overheads (28nm "
                 "technology, paper values)\n\n";

    const EnergyParams p;
    const SimConfig config = SimConfig::titanXPascal();

    Table t("Table IV - BOC vs register bank");
    t.setHeader({"parameter", "BOC", "register bank", "percentage"});
    t.beginRow().cell("Size").cell("1.5KB").cell("64KB").pct(
        1.536 / 64.0, 1);
    t.beginRow().cell("Vdd").cell("0.96V").cell("0.96V").cell("-");
    t.beginRow().cell("Access energy")
        .cell(formatFixed(p.bocAccessPj, 2) + "pJ")
        .cell(formatFixed(p.rfBankAccessPj, 2) + "pJ")
        .pct(p.bocAccessPj / p.rfBankAccessPj, 1);
    t.beginRow().cell("Leakage power")
        .cell(formatFixed(p.bocLeakageMw, 2) + "mW")
        .cell(formatFixed(p.rfBankLeakageMw, 2) + "mW")
        .pct(p.bocLeakageMw / p.rfBankLeakageMw, 1);
    t.print(std::cout);

    Table s("Sec. V-A - storage overhead per SM");
    s.setHeader({"configuration", "entries/BOC", "per-BOC", "all BOCs",
                 "% of 256KB RF"});
    for (unsigned entries : {12u, 6u}) {
        const double perBoc = EnergyParams::bocKb(entries);
        const double all = perBoc * config.numCollectors;
        s.beginRow()
            .cell(entries == 12 ? "conservative (4 x IW3)"
                                : "half-size")
            .cell(std::uint64_t{entries})
            .cell(formatFixed(perBoc, 2) + "KB")
            .cell(formatFixed(all, 1) + "KB")
            .pct(all / 256.0, 1);
    }
    s.print(std::cout);

    Table l("Static power per SM (Table IV leakage, 1ms at 1GHz)");
    l.setHeader({"configuration", "leakage energy", "vs baseline"});
    const std::uint64_t cycles = 1'000'000;
    const double base = leakagePj(cycles, config.numBanks, 0, p);
    const double bow = leakagePj(cycles, config.numBanks,
                                 config.numCollectors, p);
    l.beginRow().cell("baseline (32 banks)")
        .cell(formatFixed(base / 1e6, 1) + "uJ").cell("100.0%");
    l.beginRow().cell("BOW (32 banks + 32 BOCs)")
        .cell(formatFixed(bow / 1e6, 1) + "uJ")
        .pct(bow / base);
    l.print(std::cout);

    std::cout << "# paper reference: 36KB (14% of RF) conservative, "
                 "12KB (4%) half-size;\n"
                 "# network synthesis: 33.2mW at 1GHz, <3% of a "
                 "register bank's area,\n"
                 "# 0.17% total chip area increase.\n";
    return 0;
}
