/**
 * @file
 * Command-line driver: run any Table III benchmark (or an assembly
 * file) under any architecture/configuration and print a full report,
 * optionally as CSV. The "do anything" entry point for downstream
 * users.
 *
 * Usage:
 *   bowsim_cli [options]
 *     --workload NAME     Table III benchmark (default VECTORADD);
 *                         ALL runs the whole suite in parallel
 *     --asm FILE          assemble FILE instead of a benchmark
 *     --sass FILE         import an Accel-Sim-style SASS trace
 *     --warps N           warps for --asm launches (default 32)
 *     --arch A            baseline|rfc|bow|bow-wr|bow-wr-opt
 *     --iw N              window size (default 3)
 *     --boc-entries N     BOC capacity (default 4*IW)
 *     --extended-window   capacity-limited residency (future work)
 *     --reorder           run the bypass-aware scheduling pass
 *     --sched P           gto|lrr
 *     --num-sms N         streaming multiprocessors (default 1; >1
 *                         enables the CTA scheduler + shared L2)
 *     --cta-policy P      rr|lrr CTA placement (default rr)
 *     --l2-banks N        shared-L2 bank count (default 12)
 *     --scale S           workload scale factor (default 1.0)
 *     --jobs N            parallel simulations for --workload ALL
 *                         (default BOWSIM_JOBS or all hardware
 *                         threads)
 *     --host-threads N    host threads stepping the SMs of one
 *                         simulation (needs --num-sms > 1; default
 *                         BOWSIM_HOST_THREADS or all hardware
 *                         threads; bit-identical results at any N,
 *                         see docs/PERFORMANCE.md)
 *     --epoch-cycles N    cycles each SM free-runs between global
 *                         barriers (needs --num-sms > 1; default
 *                         BOWSIM_EPOCH_CYCLES or 1 = per-cycle
 *                         lockstep; bit-identical results at any N,
 *                         see docs/PERFORMANCE.md "Epoch stepping")
 *     --no-fastforward    disable the host-side idle fast-forward
 *                         (bit-identical results either way; see
 *                         docs/PERFORMANCE.md)
 *     --profile           report host simulation speed (KIPS) on
 *                         stderr and fold it, with the per-phase
 *                         timings, into --manifest-out
 *     --csv               machine-readable one-line output
 *
 *   Snapshots and sampled mode (docs/PERFORMANCE.md; single
 *   workload, local, clean runs only):
 *     --snapshot-out FILE save a full-state snapshot to FILE every
 *                         --snapshot-every cycles (atomic replace);
 *                         a killed run resumes from the last save
 *     --snapshot-every N  cycles between snapshot saves (default
 *                         100000; needs --snapshot-out)
 *     --resume FILE       resume a run from FILE instead of cycle 0.
 *                         The snapshot's embedded configuration is
 *                         authoritative; the launch must match
 *                         (content-hash checked). Keeps saving to
 *                         FILE unless --snapshot-out overrides.
 *     --sample-window W   SMARTS-style sampled mode: simulate W
 *                         detailed cycles per period...
 *     --sample-period P   ...then bridge to cycle P functionally.
 *                         Cycles/IPC become estimates (marked in
 *                         metrics, refused by the result store and
 *                         the golden gate).
 *
 *   Remote execution (docs/SERVICE.md; needs a running bowsimd):
 *     --remote SOCKET     submit the sweep to the bowsimd daemon at
 *                         SOCKET instead of simulating locally;
 *                         results print in the local format and a
 *                         "# remote:" stderr line reports where they
 *                         came from (memory / store / simulated)
 *     --shutdown          with --remote: ask the daemon to exit
 *
 *   The BOWSIM_STORE_DIR environment variable attaches the on-disk
 *   result store to any local run (benches included) — no daemon
 *   required; see docs/SERVICE.md.
 *
 *   Observability (docs/OBSERVABILITY.md; all accept --flag=VALUE):
 *     --metrics-out FILE  full metrics registry as JSON (aggregated
 *                         over the suite for --workload ALL)
 *     --trace-out FILE    Chrome trace_event JSON of the run, for
 *                         Perfetto / chrome://tracing (single
 *                         workload only)
 *     --trace-cycles A:B  sample only cycles [A, B) into the trace
 *     --manifest-out FILE provenance manifest (build version, config
 *                         hash, cache key, phase timings, metrics)
 *
 *   Fault-injection campaigns (docs/RESILIENCE.md):
 *     --faults N              run N bit-flip trials instead of one
 *                             clean simulation (single workload only)
 *     --fault-sites S         comma list of rf,boc,rfc,l2,cta
 *                             (default rf; l2/cta need --num-sms > 1)
 *     --fault-sms L           comma list of SM indices, or "all":
 *                             restrict rf/boc/rfc flips to warps the
 *                             clean run placed there (default all)
 *     --seed S                campaign seed (default 1)
 *     --fault-protection P    none|parity|secded on BOC/RFC entries
 *     --fault-retries N       re-run a trial up to N times on a
 *                             transient host error before recording
 *                             outcome=fatal (default 0)
 *     --fault-checkpoint F    JSONL checkpoint, atomically rewritten
 *                             per chunk; re-invoke with the same seed
 *                             to resume a killed campaign
 *
 * Exit codes: 0 success, 1 usage/fatal error, 2 internal panic,
 * 3 campaign observed silent data corruption (SDC).
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "common/table.h"
#include "common/trace_events.h"
#include "compiler/reorder.h"
#include "core/fault_campaign.h"
#include "core/parallel_runner.h"
#include "core/run_manifest.h"
#include "core/sampled.h"
#include "core/simulator.h"
#include "core/snapshot.h"
#include "core/sweep.h"
#include "isa/assembler.h"
#include "isa/sass_import.h"
#include "service/remote_client.h"
#include "workloads/registry.h"

namespace {

using namespace bow;

Architecture
parseArch(const std::string &s)
{
    if (s == "baseline")
        return Architecture::Baseline;
    if (s == "rfc")
        return Architecture::RFC;
    if (s == "bow")
        return Architecture::BOW;
    if (s == "bow-wr")
        return Architecture::BOW_WR;
    if (s == "bow-wr-opt")
        return Architecture::BOW_WR_OPT;
    fatal("unknown architecture '" + s + "'");
}

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: bowsim_cli [--workload NAME|ALL | --asm FILE |\n"
        "                   --sass FILE]\n"
        "                  [--warps N] [--arch A] [--iw N]\n"
        "                  [--boc-entries N] [--extended-window]\n"
        "                  [--reorder] [--sched gto|lrr]\n"
        "                  [--num-sms N] [--cta-policy rr|lrr]\n"
        "                  [--l2-banks N]\n"
        "                  [--scale S] [--jobs N] [--csv]\n"
        "                  [--host-threads N] [--epoch-cycles N]\n"
        "                  [--no-fastforward] [--profile]\n"
        "                  [--snapshot-out FILE] [--snapshot-every N]\n"
        "                  [--resume FILE]\n"
        "                  [--sample-window W] [--sample-period P]\n"
        "                  [--faults N]\n"
        "                  [--fault-sites rf,boc,rfc,l2,cta]\n"
        "                  [--fault-sms LIST|all] [--seed S]\n"
        "                  [--fault-protection P] [--fault-retries N]\n"
        "                  [--fault-checkpoint FILE]\n"
        "                  [--metrics-out FILE] [--trace-out FILE]\n"
        "                  [--trace-cycles A:B] [--manifest-out FILE]\n"
        "                  [--remote SOCKET [--shutdown]]\n";
    std::exit(1);
}

/**
 * Value of a strictly-positive count flag (--jobs, --host-threads,
 * --epoch-cycles). Zero, negatives and non-numeric values all fail
 * with one clear message — a stray 0 silently meaning "auto" was too
 * easy to reach from a typo or an empty shell variable.
 */
unsigned
parseThreadCount(const char *flag, const char *arg)
{
    char *end = nullptr;
    const long v = std::strtol(arg, &end, 10);
    if (end == arg || *end != '\0' || v < 1) {
        fatal(strf(flag, " wants a positive integer, got '", arg,
                   "'"));
    }
    return static_cast<unsigned>(v);
}

FaultProtection
parseProtection(const std::string &s)
{
    if (s == "none")
        return FaultProtection::None;
    if (s == "parity")
        return FaultProtection::Parity;
    if (s == "secded")
        return FaultProtection::Secded;
    fatal("unknown fault protection '" + s +
          "' (want none, parity or secded)");
}

std::vector<FaultSite>
parseSiteList(const std::string &list)
{
    std::vector<FaultSite> sites;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            sites.push_back(parseFaultSite(item));
    }
    if (sites.empty())
        fatal("--fault-sites: empty site list");
    return sites;
}

/** --fault-sms: comma list of SM indices; "all" (or empty) clears
 *  the filter. Range checking happens inside runFaultCampaign, which
 *  knows the configured numSms. */
std::vector<unsigned>
parseSmList(const std::string &list)
{
    std::vector<unsigned> sms;
    if (list == "all")
        return sms;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        char *end = nullptr;
        const long v = std::strtol(item.c_str(), &end, 10);
        if (end == item.c_str() || *end != '\0' || v < 0) {
            fatal(strf("--fault-sms wants SM indices or 'all', got '",
                       item, "'"));
        }
        sms.push_back(static_cast<unsigned>(v));
    }
    return sms;
}

/** --faults N: a bit-flip campaign over one workload. */
int
runCampaign(const Workload &wl, const SimConfig &config,
            const CampaignSpec &spec, bool csv)
{
    std::vector<FaultTrialResult> trials;
    const CampaignSummary s =
        runFaultCampaign(wl, config, spec, ParallelRunner(), &trials);

    if (csv) {
        std::cout << "trial,site,warp,reg,bit,cycle,sm,addr,cta,"
                     "outcome,landed\n";
        for (const FaultTrialResult &t : trials) {
            std::cout << t.trial << ","
                      << faultSiteName(t.plan.site) << ","
                      << t.plan.warp << "," << t.plan.reg << ","
                      << t.plan.bit << "," << t.plan.cycle << ","
                      << t.plan.sm << "," << t.plan.addr << ","
                      << t.plan.cta << ","
                      << faultOutcomeName(t.outcome) << ","
                      << (t.landed ? 1 : 0) << "\n";
        }
    } else {
        printConfigBanner(std::cout, config);
        std::cout << "fault campaign: " << wl.name << ", "
                  << s.trials << " trials, seed " << spec.seed
                  << ", protection "
                  << protectionName(config.faultProtection) << "\n"
                  << "  masked:    " << s.masked << "\n"
                  << "  sdc:       " << s.sdc << "\n"
                  << "  detected:  " << s.detected << "\n"
                  << "  hang:      " << s.hang << "\n"
                  << "  fatal:     " << s.fatal << "\n"
                  << "  landed:    " << s.landed << "\n"
                  << "  resumed:   " << s.resumed << "\n"
                  << "  retried:   " << s.retries << "\n"
                  << "  healed:    " << s.healed << "\n"
                  << "  AVF:       " << formatFixed(s.avfPct(), 1)
                  << "%\n";
    }
    // Exit 3 signals silent corruption so scripted campaigns can
    // distinguish "vulnerable" from "clean" without parsing output.
    return s.sdc ? 3 : 0;
}

/** Totals for the --profile host-speed report. */
struct ProfileTotals
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    double seconds = 0.0;
};

/** --profile: one stderr line summarizing host simulation speed. */
void
printProfile(const ProfileTotals &p, const SimConfig &config)
{
    const double kips = p.seconds > 0.0
        ? static_cast<double>(p.instructions) / p.seconds / 1e3
        : 0.0;
    std::cerr << "# profile: " << p.instructions << " insts / "
              << p.cycles << " cycles in "
              << formatFixed(p.seconds, 3) << "s = "
              << formatFixed(kips, 1) << " KIPS (fast-forward "
              << (config.hostFastForward ? "on" : "off") << ")\n";
}

/** --workload ALL: the whole Table III suite, simulated in parallel
 *  on the engine's thread pool, one row per workload. */
int
runAllWorkloads(const SimConfig &config, double scale, bool csv,
                ProfileTotals *profile = nullptr)
{
    const auto suite = workloads::makeAll(scale);
    std::vector<SimJob> jobs;
    jobs.reserve(suite.size());
    for (const Workload &wl : suite)
        jobs.emplace_back(wl, config);

    const auto start = std::chrono::steady_clock::now();
    const auto results = ParallelRunner().run(jobs);
    const double secs = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();

    if (profile) {
        for (const SimResult &res : results) {
            profile->cycles += res.stats.cycles;
            profile->instructions += res.stats.instructions;
        }
        profile->seconds = secs;
    }

    if (csv) {
        std::cout << "kernel,arch,iw,cycles,insts,ipc,rf_reads,"
                     "rf_writes,boc_forwards,energy_pj\n";
        for (std::size_t i = 0; i < suite.size(); ++i) {
            const SimResult &res = results[i];
            std::cout << suite[i].name << "," << res.arch << ","
                      << config.windowSize << "," << res.stats.cycles
                      << "," << res.stats.instructions << ","
                      << res.stats.ipc() << "," << res.stats.rfReads
                      << "," << res.stats.rfWrites << ","
                      << res.stats.bocForwards << ","
                      << res.energy.totalPj << "\n";
        }
    } else {
        printConfigBanner(std::cout, config);
        Table t(strf("Suite results - ", archName(config.arch),
                     " (IW ", config.windowSize, ")"));
        t.setHeader({"benchmark", "cycles", "insts", "IPC",
                     "RF reads", "RF writes", "BOC fwds",
                     "energy uJ"});
        for (std::size_t i = 0; i < suite.size(); ++i) {
            const SimResult &res = results[i];
            t.beginRow().cell(suite[i].name)
                .cell(std::uint64_t{res.stats.cycles})
                .cell(std::uint64_t{res.stats.instructions})
                .cell(res.stats.ipc(), 3)
                .cell(std::uint64_t{res.stats.rfReads})
                .cell(std::uint64_t{res.stats.rfWrites})
                .cell(std::uint64_t{res.stats.bocForwards})
                .cell(res.energy.totalPj / 1e6, 2);
        }
        t.print(std::cout);
        std::cerr << "# " << suite.size() << " simulations in "
                  << formatFixed(secs, 2) << "s ("
                  << ParallelRunner().jobs() << " jobs)\n";
    }
    return 0;
}

/**
 * --remote: submit the sweep to a bowsimd daemon and print the
 * replies in exactly the local formats, so cold (simulated) and warm
 * (store-served) runs are byte-identical on stdout — the property the
 * CI service job diffs. Provenance goes to stderr only.
 */
int
runRemote(const std::string &socketPath, const std::string &workload,
          const SimConfig &config, double scale, bool csv)
{
    std::vector<RemoteJobSpec> jobs;
    const bool all = workload == "ALL" || workload == "all";
    if (all) {
        for (const std::string &name : workloads::allNames())
            jobs.push_back({name, scale, config});
    } else {
        jobs.push_back({workload, scale, config});
    }

    std::vector<RemoteSummary> summaries;
    const RemoteSweepStats stats =
        runRemoteSweep(socketPath, jobs, summaries);

    if (all) {
        if (csv) {
            std::cout << "kernel,arch,iw,cycles,insts,ipc,rf_reads,"
                         "rf_writes,boc_forwards,energy_pj\n";
            for (const RemoteSummary &s : summaries) {
                std::cout << s.workload << "," << s.arch << ","
                          << config.windowSize << "," << s.cycles
                          << "," << s.instructions << "," << s.ipc()
                          << "," << s.rfReads << "," << s.rfWrites
                          << "," << s.bocForwards << ","
                          << s.energyTotalPj << "\n";
            }
        } else {
            printConfigBanner(std::cout, config);
            Table t(strf("Suite results - ", archName(config.arch),
                         " (IW ", config.windowSize, ")"));
            t.setHeader({"benchmark", "cycles", "insts", "IPC",
                         "RF reads", "RF writes", "BOC fwds",
                         "energy uJ"});
            for (const RemoteSummary &s : summaries) {
                t.beginRow().cell(s.workload)
                    .cell(s.cycles)
                    .cell(s.instructions)
                    .cell(s.ipc(), 3)
                    .cell(s.rfReads)
                    .cell(s.rfWrites)
                    .cell(s.bocForwards)
                    .cell(s.energyTotalPj / 1e6, 2);
            }
            t.print(std::cout);
        }
    } else {
        const RemoteSummary &s = summaries.front();
        if (csv) {
            std::cout << "kernel,arch,iw,cycles,insts,ipc,rf_reads,"
                         "rf_writes,boc_forwards,energy_pj\n";
            std::cout << s.workload << "," << s.arch << ","
                      << config.windowSize << "," << s.cycles << ","
                      << s.instructions << "," << s.ipc() << ","
                      << s.rfReads << "," << s.rfWrites << ","
                      << s.bocForwards << "," << s.energyTotalPj
                      << "\n";
        } else {
            printConfigBanner(std::cout, config);
            std::cout << "kernel:         " << s.workload << "\n"
                      << "architecture:   " << s.arch << " (IW "
                      << config.windowSize << ")\n"
                      << "cycles:         " << s.cycles << "\n"
                      << "instructions:   " << s.instructions << "\n"
                      << "IPC:            " << s.ipc() << "\n"
                      << "RF reads:       " << s.rfReads << "\n"
                      << "RF writes:      " << s.rfWrites << "\n"
                      << "BOC forwards:   " << s.bocForwards << "\n"
                      << "consolidated:   " << s.consolidatedWrites
                      << "\n"
                      << "transient drops: " << s.transientDrops
                      << "\n"
                      << "dynamic energy: " << s.energyTotalPj / 1e6
                      << " uJ\n";
        }
    }

    // Machine-greppable provenance for the CI gates; stderr so the
    // stdout byte-diff between cold and warm runs stays empty.
    std::cerr << "# remote: results=" << stats.results
              << " memory_hits=" << stats.memoryHits
              << " store_hits=" << stats.storeHits
              << " simulated=" << stats.simulated
              << " invalidated=" << stats.invalidated
              << " torn=" << stats.torn << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "VECTORADD";
    std::string asmFile;
    std::string sassFile;
    unsigned warps = 32;
    SimConfig config = SimConfig::titanXPascal();
    double scale = 1.0;
    bool csv = false;
    bool reorder = false;
    bool profile = false;
    unsigned faults = 0;
    std::string faultSites = "rf";
    std::string faultSms = "all";
    unsigned faultRetries = 0;
    std::uint64_t seed = 1;
    std::string faultCheckpoint;
    std::string metricsOut;
    std::string traceOut;
    std::string traceCycles;
    std::string manifestOut;
    std::string remoteSocket;
    bool remoteShutdownFlag = false;
    std::string snapshotOut;
    std::string resumeFile;
    std::uint64_t snapshotEvery = 0;
    std::uint64_t sampleWindow = 0;
    std::uint64_t samplePeriod = 0;

    auto parsePositive = [](const char *flag,
                            const char *arg) -> std::uint64_t {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(arg, &end, 10);
        if (end == arg || *end != '\0' || v == 0)
            fatal(strf(flag, " wants a positive integer, got '", arg,
                       "'"));
        return v;
    };

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    // The observability flags accept both "--flag VALUE" and
    // "--flag=VALUE"; returns nullptr when @p a is a different flag.
    auto valueOf = [&](const char *a, const char *flag,
                       int &i) -> const char * {
        const std::size_t n = std::strlen(flag);
        if (std::strncmp(a, flag, n) != 0)
            return nullptr;
        if (a[n] == '=')
            return a + n + 1;
        if (a[n] == '\0')
            return need(i);
        return nullptr;
    };
    try {
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--workload"))
            workload = need(i);
        else if (!std::strcmp(a, "--asm"))
            asmFile = need(i);
        else if (!std::strcmp(a, "--sass"))
            sassFile = need(i);
        else if (!std::strcmp(a, "--warps"))
            warps = static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--arch"))
            config.arch = parseArch(need(i));
        else if (!std::strcmp(a, "--iw"))
            config.windowSize =
                static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--boc-entries"))
            config.bocEntries =
                static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--extended-window"))
            config.extendedWindow = true;
        else if (!std::strcmp(a, "--reorder"))
            reorder = true;
        else if (!std::strcmp(a, "--sched"))
            config.schedPolicy = std::strcmp(need(i), "lrr")
                ? SchedPolicy::GTO : SchedPolicy::LRR;
        else if (!std::strcmp(a, "--num-sms"))
            config.numSms = static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--cta-policy"))
            config.ctaPolicy = parseCtaPolicy(need(i));
        else if (!std::strcmp(a, "--l2-banks"))
            config.l2Banks = static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--scale"))
            scale = std::atof(need(i));
        else if (!std::strcmp(a, "--jobs"))
            ParallelRunner::setDefaultJobs(
                parseThreadCount("--jobs", need(i)));
        else if (!std::strcmp(a, "--host-threads"))
            config.hostThreads =
                parseThreadCount("--host-threads", need(i));
        else if (!std::strcmp(a, "--epoch-cycles"))
            config.epochCycles =
                parseThreadCount("--epoch-cycles", need(i));
        else if (!std::strcmp(a, "--faults"))
            faults = static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--fault-sites"))
            faultSites = need(i);
        else if (!std::strcmp(a, "--fault-sms"))
            faultSms = need(i);
        else if (!std::strcmp(a, "--fault-retries"))
            faultRetries = static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--seed"))
            seed = std::strtoull(need(i), nullptr, 0);
        else if (!std::strcmp(a, "--fault-protection"))
            config.faultProtection = parseProtection(need(i));
        else if (!std::strcmp(a, "--fault-checkpoint"))
            faultCheckpoint = need(i);
        else if (!std::strcmp(a, "--csv"))
            csv = true;
        else if (!std::strcmp(a, "--no-fastforward"))
            config.hostFastForward = false;
        else if (!std::strcmp(a, "--profile"))
            profile = true;
        else if (const char *v = valueOf(a, "--metrics-out", i))
            metricsOut = v;
        else if (const char *v = valueOf(a, "--trace-out", i))
            traceOut = v;
        else if (const char *v = valueOf(a, "--trace-cycles", i))
            traceCycles = v;
        else if (const char *v = valueOf(a, "--manifest-out", i))
            manifestOut = v;
        else if (const char *v = valueOf(a, "--remote", i))
            remoteSocket = v;
        else if (!std::strcmp(a, "--shutdown"))
            remoteShutdownFlag = true;
        else if (const char *v = valueOf(a, "--snapshot-out", i))
            snapshotOut = v;
        else if (!std::strcmp(a, "--snapshot-every"))
            snapshotEvery = parsePositive("--snapshot-every",
                                          need(i));
        else if (const char *v = valueOf(a, "--resume", i))
            resumeFile = v;
        else if (!std::strcmp(a, "--sample-window"))
            sampleWindow = parsePositive("--sample-window", need(i));
        else if (!std::strcmp(a, "--sample-period"))
            samplePeriod = parsePositive("--sample-period", need(i));
        else
            usage();
    }

        if (remoteShutdownFlag && remoteSocket.empty())
            fatal("--shutdown needs --remote SOCKET");
        if (!remoteSocket.empty()) {
            if (remoteShutdownFlag) {
                if (!remoteShutdown(remoteSocket))
                    fatal("remote: daemon did not acknowledge "
                          "shutdown");
                std::cerr << "# remote: daemon at " << remoteSocket
                          << " shutting down\n";
                return 0;
            }
            // Only registry workloads ship over the wire: the daemon
            // holds the binaries, the client just names the job.
            if (!asmFile.empty() || !sassFile.empty())
                fatal("--remote runs registry workloads only "
                      "(no --asm/--sass)");
            if (faults)
                fatal("--faults is not supported with --remote");
            if (reorder)
                fatal("--reorder is not supported with --remote");
            if (!traceOut.empty() || !metricsOut.empty() ||
                !manifestOut.empty() || profile) {
                fatal("observability outputs are local-only; drop "
                      "them with --remote");
            }
            if (!snapshotOut.empty() || !resumeFile.empty() ||
                sampleWindow || samplePeriod) {
                fatal("snapshots and sampled mode are local-only; "
                      "drop them with --remote");
            }
            return runRemote(remoteSocket, workload, config, scale,
                             csv);
        }

        if (snapshotEvery && snapshotOut.empty() &&
            resumeFile.empty())
            fatal("--snapshot-every needs --snapshot-out or "
                  "--resume");
        if ((sampleWindow || samplePeriod) &&
            (!snapshotOut.empty() || !resumeFile.empty())) {
            fatal("sampled mode does not combine with "
                  "--snapshot-out/--resume (an estimated run is not "
                  "worth checkpointing)");
        }

        if (workload == "ALL" || workload == "all") {
            if (faults)
                fatal("--faults needs a single workload, not ALL");
            if (!traceOut.empty())
                fatal("--trace-out needs a single workload, not ALL");
            if (!snapshotOut.empty() || !resumeFile.empty() ||
                sampleWindow || samplePeriod) {
                fatal("snapshots and sampled mode need a single "
                      "workload, not ALL");
            }
            if (!metricsOut.empty() || !manifestOut.empty())
                setMetricsAggregation(true);
            RunManifest manifest;
            manifest.setCommandLine(argc, argv);
            manifest.setWorkload("ALL");
            manifest.setConfig(config);
            manifest.beginPhase("simulate");
            ProfileTotals totals;
            const int rc = runAllWorkloads(config, scale, csv,
                                           profile ? &totals
                                                   : nullptr);
            manifest.endPhase();
            if (profile) {
                printProfile(totals, config);
                manifest.setProfile(totals.cycles,
                                    totals.instructions,
                                    totals.seconds);
            }
            if (!metricsOut.empty())
                writeMetricsFile(metricsOut, globalMetrics());
            if (!manifestOut.empty()) {
                manifest.setMetrics(globalMetrics());
                manifest.writeFile(manifestOut);
            }
            return rc;
        }

        RunManifest manifest;
        manifest.setCommandLine(argc, argv);
        manifest.beginPhase("setup");

        Launch launch;
        std::string name;
        if (!sassFile.empty()) {
            SassImportStats sassStats;
            launch = importSassTraceFile(sassFile, &sassStats);
            name = sassFile;
            std::cerr << "imported " << sassStats.instructions
                      << " instructions (" << sassStats.dropped
                      << " control dropped, " << sassStats.unknown
                      << " unknown opcodes)\n";
        } else if (!asmFile.empty()) {
            std::ifstream in(asmFile);
            if (!in)
                fatal("cannot open '" + asmFile + "'");
            std::ostringstream text;
            text << in.rdbuf();
            launch.kernel = assemble(text.str(), asmFile);
            launch.numWarps = warps;
            name = asmFile;
        } else {
            Workload wl = workloads::make(workload, scale);
            launch = std::move(wl.launch);
            name = wl.name;
        }
        if (reorder) {
            if (launch.warpKernels.empty()) {
                reorderForBypass(launch.kernel, config.windowSize);
            } else {
                for (Kernel &k : launch.warpKernels)
                    reorderForBypass(k, config.windowSize);
            }
        }

        // Everything below runs the workload wrapper, so the manifest
        // can record the same cache key ParallelRunner would use.
        Workload wl;
        wl.name = name;
        wl.scale = scale;
        wl.launch = std::move(launch);

        if (faults && (!snapshotOut.empty() || !resumeFile.empty() ||
                       sampleWindow || samplePeriod)) {
            fatal("snapshots and sampled mode do not combine with "
                  "--faults (injection state is not serialized)");
        }
        if (faults) {
            CampaignSpec spec;
            spec.trials = faults;
            spec.seed = seed;
            spec.sites = validSites(config, parseSiteList(faultSites));
            spec.sms = parseSmList(faultSms);
            spec.retries = faultRetries;
            spec.checkpointPath = faultCheckpoint;
            return runCampaign(wl, config, spec, csv);
        }

        manifest.setWorkload(name);
        manifest.setConfig(config);
        manifest.setCacheKey(simCacheKey(wl, config));

        std::optional<TraceSink> tracer;
        if (!traceOut.empty()) {
            TraceConfig tc;
            if (!traceCycles.empty())
                tc = TraceConfig::parseCycleRange(traceCycles);
            tracer.emplace(tc);
        } else if (!traceCycles.empty()) {
            fatal("--trace-cycles needs --trace-out");
        }
        if (tracer && (!snapshotOut.empty() || !resumeFile.empty() ||
                       sampleWindow || samplePeriod)) {
            fatal("--trace-out does not combine with snapshots or "
                  "sampled mode");
        }

        manifest.beginPhase("simulate");
        const auto simStart = std::chrono::steady_clock::now();
        SimResult res;
        if (sampleWindow || samplePeriod) {
            SampleSpec spec;
            spec.window = sampleWindow;
            spec.period = samplePeriod;
            SampledInfo info;
            res = runSampled(config, wl.launch, spec, nullptr,
                             &info);
            // Provenance on stderr only: the stdout report keeps the
            // exact-run format (with estimated cycles/IPC in it).
            std::cerr << "# sampled: windows=" << info.windows
                      << " detailed_cycles=" << info.detailedCycles
                      << " detailed_insts="
                      << info.detailedInstructions
                      << " functional_insts="
                      << info.functionalInstructions
                      << " ipc_detailed="
                      << formatFixed(info.ipcDetailed, 4)
                      << " (cycles/IPC are estimates)\n";
        } else if (!resumeFile.empty() || !snapshotOut.empty()) {
            std::unique_ptr<SimSession> session;
            if (!resumeFile.empty()) {
                session = SimSession::resumeFromSnapshot(resumeFile,
                                                         wl.launch);
                // The file's embedded config is authoritative; the
                // report banner must describe the machine that
                // actually ran.
                config = session->config();
                std::cerr << "# resumed '" << resumeFile
                          << "' at cycle " << session->now() << "\n";
            } else {
                session = std::make_unique<SimSession>(config,
                                                       wl.launch);
            }
            const std::string savePath =
                !snapshotOut.empty() ? snapshotOut : resumeFile;
            const std::uint64_t every =
                snapshotEvery ? snapshotEvery : 100'000;
            Cycle nextSave = session->now() + every;
            while (session->stepCycle()) {
                if (session->now() >= nextSave) {
                    session->saveSnapshot(savePath);
                    nextSave = session->now() + every;
                }
            }
            res = session->result();
        } else {
            Simulator sim(config);
            res = sim.run(wl.launch, nullptr, nullptr,
                          tracer ? &*tracer : nullptr);
        }
        const double simSecs = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - simStart).count();
        manifest.beginPhase("report");
        const double ipc = res.stats.ipc();

        if (profile) {
            ProfileTotals totals;
            totals.cycles = res.stats.cycles;
            totals.instructions = res.stats.instructions;
            totals.seconds = simSecs;
            printProfile(totals, config);
            manifest.setProfile(totals.cycles, totals.instructions,
                                totals.seconds);
        }

        if (!metricsOut.empty())
            writeMetricsFile(metricsOut, res.metrics);
        if (tracer)
            writeChromeTraceFile(traceOut, *tracer,
                                 strf(name, " (", res.arch, ")"));

        if (csv) {
            std::cout << "kernel,arch,iw,cycles,insts,ipc,rf_reads,"
                         "rf_writes,boc_forwards,energy_pj\n";
            std::cout << name << "," << res.arch << ","
                      << config.windowSize << "," << res.stats.cycles
                      << "," << res.stats.instructions << "," << ipc
                      << "," << res.stats.rfReads << ","
                      << res.stats.rfWrites << ","
                      << res.stats.bocForwards << ","
                      << res.energy.totalPj << "\n";
        } else {
            printConfigBanner(std::cout, config);
            std::cout << "kernel:         " << name << "\n"
                      << "architecture:   " << res.arch << " (IW "
                      << config.windowSize << ")\n"
                      << "cycles:         " << res.stats.cycles << "\n"
                      << "instructions:   " << res.stats.instructions
                      << "\n"
                      << "IPC:            " << ipc << "\n"
                      << "RF reads:       " << res.stats.rfReads
                      << "\n"
                      << "RF writes:      " << res.stats.rfWrites
                      << "\n"
                      << "BOC forwards:   " << res.stats.bocForwards
                      << "\n"
                      << "consolidated:   "
                      << res.stats.consolidatedWrites << "\n"
                      << "transient drops: "
                      << res.stats.transientDrops << "\n"
                      << "dynamic energy: " << res.energy.totalPj / 1e6
                      << " uJ\n";
        }

        if (!manifestOut.empty()) {
            manifest.setMetrics(res.metrics);
            manifest.writeFile(manifestOut);
        }
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    } catch (const PanicError &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    return 0;
}
