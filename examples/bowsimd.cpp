/**
 * @file
 * bowsimd: the persistent simulation service (docs/SERVICE.md).
 * Listens on a Unix-domain socket, serves batched sweep requests
 * from any number of concurrent clients, and — with a result store
 * attached — answers every previously simulated (workload, config)
 * from disk, across restarts.
 *
 * Usage:
 *   bowsimd --socket PATH [--store-dir DIR] [--jobs N]
 *     --socket PATH     Unix-domain socket to listen on (required)
 *     --store-dir DIR   attach the on-disk result store at DIR
 *                       (BOWSIM_STORE_DIR is honoured when the flag
 *                       is absent)
 *     --jobs N          ParallelRunner workers per sweep (default:
 *                       BOWSIM_JOBS or all hardware threads)
 *
 * Runs until a client sends {"type":"shutdown"} (`bowsim_cli
 * --remote PATH --shutdown`) or SIGINT/SIGTERM arrives.
 */

#include <csignal>
#include <cstring>
#include <iostream>

#include "common/log.h"
#include "service/daemon.h"
#include "service/result_store.h"

namespace {

std::atomic<bool> gInterrupted{false};

void
onSignal(int)
{
    gInterrupted.store(true);
}

[[noreturn]] void
usage()
{
    std::cerr << "usage: bowsimd --socket PATH [--store-dir DIR] "
                 "[--jobs N]\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bow;

    std::string socketPath;
    std::string storeDir;
    unsigned jobs = 0;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--socket"))
            socketPath = need(i);
        else if (!std::strcmp(a, "--store-dir"))
            storeDir = need(i);
        else if (!std::strcmp(a, "--jobs"))
            jobs = static_cast<unsigned>(std::atoi(need(i)));
        else
            usage();
    }
    if (socketPath.empty())
        usage();

    try {
        const ResultStore *store = storeDir.empty()
            ? attachGlobalResultStoreFromEnv()
            : attachGlobalResultStore(storeDir);

        DaemonOptions options;
        options.socketPath = socketPath;
        options.jobs = jobs;
        Daemon daemon(options);
        daemon.start();
        std::cerr << "# bowsimd: listening on " << socketPath
                  << " (store "
                  << (store ? store->dir() : std::string("none"))
                  << ")\n";

        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        daemon.wait(&gInterrupted);
        daemon.stop();
        std::cerr << "# bowsimd: served " << daemon.sweepsServed()
                  << " sweeps, exiting\n";
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    } catch (const PanicError &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    return 0;
}
