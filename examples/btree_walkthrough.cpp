/**
 * @file
 * Walkthrough of the paper's running example (Fig. 6 / Table I):
 * assembles the BTREE listing, shows the compiler's liveness-driven
 * write-back hints per instruction, and replays the dynamic trace
 * through all three write policies to reproduce the Table I counts.
 *
 * Usage: ./build/examples/btree_walkthrough [window_size]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "compiler/writeback_tagger.h"
#include "core/replay.h"
#include "isa/disassembler.h"
#include "sm/functional.h"
#include "workloads/snippets.h"

namespace {

const char *
hintName(bow::WritebackHint hint)
{
    switch (hint) {
      case bow::WritebackHint::RfOnly:
        return "RF only";
      case bow::WritebackHint::BocOnly:
        return "BOC only (transient)";
      case bow::WritebackHint::BocAndRf:
        return "BOC then RF";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bow;

    const unsigned iw = argc > 1
        ? static_cast<unsigned>(std::atoi(argv[1]))
        : 3;

    Launch launch = snippets::btreeSnippet();
    std::cout << "Paper Figure 6 - BTREE listing, window size " << iw
              << "\n\n";

    Launch tagged = launch;
    const TagStats tags = tagWritebacks(tagged.kernel, iw);

    Table code("Compiler write-back hints (Sec. IV-B)");
    code.setHeader({"#", "instruction", "hint"});
    for (InstIdx i = 0; i < tagged.kernel.size(); ++i) {
        const Instruction &inst = tagged.kernel.inst(i);
        code.beginRow().cell(std::uint64_t{i})
            .cell(disassemble(inst))
            .cell(inst.hasDest() ? hintName(inst.hint) : "-");
    }
    code.print(std::cout);
    std::cout << "tag summary: " << tags.rfOnly << " RF-only, "
              << tags.bocOnly << " transient, " << tags.bocAndRf
              << " BOC-then-RF\n\n";

    const WarpTrace trace = runFunctional(launch).traces[0];
    const auto wt = replayWritebacks(launch.kernel, trace,
                                     Architecture::BOW, iw);
    const auto wb = replayWritebacks(launch.kernel, trace,
                                     Architecture::BOW_WR, iw);
    const auto opt = replayWritebacks(tagged.kernel, trace,
                                      Architecture::BOW_WR_OPT, iw);

    Table t("Table I - RF write accesses per destination register");
    t.setHeader({"operand", "write-through", "write-back",
                 "compiler opt."});
    for (RegId r : {RegId{0}, RegId{1}, RegId{2}, RegId{3},
                    RegId{4}}) {
        t.beginRow().cell(regName(r)).cell(wt.writesTo(r))
            .cell(wb.writesTo(r)).cell(opt.writesTo(r));
    }
    t.beginRow().cell("total").cell(wt.totalRfWrites)
        .cell(wb.totalRfWrites).cell(opt.totalRfWrites);
    t.print(std::cout);
    return 0;
}
