/**
 * @file
 * Energy explorer: run any of the 15 Table III benchmarks (or the
 * whole suite) across all five architectures and print an
 * energy/performance scorecard.
 *
 * Usage:
 *   ./build/examples/energy_explorer           # whole suite summary
 *   ./build/examples/energy_explorer SAD       # one benchmark
 *   ./build/examples/energy_explorer SAD 0.5   # at half scale
 */

#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace bow;

    const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;
    std::vector<Workload> suite;
    if (argc > 1) {
        suite.push_back(workloads::make(argv[1], scale));
    } else {
        suite = workloads::makeAll(scale);
    }

    const Architecture arches[] = {
        Architecture::Baseline, Architecture::RFC, Architecture::BOW,
        Architecture::BOW_WR, Architecture::BOW_WR_OPT};

    for (const auto &wl : suite) {
        Table t(wl.name + " (" + wl.suite + "): " + wl.description);
        t.setHeader({"architecture", "cycles", "IPC", "IPC gain",
                     "RF reads", "RF writes", "norm. energy"});
        EnergyBreakdown baseEnergy;
        double baseIpc = 0.0;
        for (Architecture arch : arches) {
            Simulator sim(configFor(arch, 3));
            const SimResult res = sim.run(wl.launch);
            if (arch == Architecture::Baseline) {
                baseEnergy = res.energy;
                baseIpc = res.stats.ipc();
            }
            t.beginRow().cell(res.arch).cell(res.stats.cycles)
                .cell(res.stats.ipc(), 3)
                .cell(formatFixed(improvementPct(res.stats.ipc(),
                                                 baseIpc), 1) + "%")
                .cell(res.stats.rfReads).cell(res.stats.rfWrites)
                .pct(res.energy.normalizedTo(baseEnergy));
        }
        t.print(std::cout);
    }
    return 0;
}
