/**
 * @file
 * Quickstart: assemble a small kernel from text, run it on the
 * baseline SM and on BOW-WR with compiler hints, and compare cycles,
 * IPC, register-file traffic and dynamic energy.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/simulator.h"
#include "core/sweep.h"
#include "isa/assembler.h"

int
main()
{
    using namespace bow;

    // A SASS-flavoured kernel: each warp sums a strided array.
    const char *source = R"(
        mov $r0, %warpid;
        shl $r0, $r0, 12;       // per-warp base offset
        add $r0, $r0, 0x1000;
        mov $r1, 0;             // i
        mov $r2, 64;            // n
        mov $r4, 0;             // acc
    loop:
        shl $r3, $r1, 2;
        add $r3, $r3, $r0;
        ld.global $r5, [$r3];
        add $r4, $r4, $r5;
        add $r1, $r1, 1;
        setp.lt.s32 $p0, $r1, $r2;
        @$p0 bra loop;
        st.global [$r0], $r4;   // publish the sum
        exit;
    )";

    Launch launch;
    launch.kernel = assemble(source, "strided_sum");
    launch.numWarps = 32;

    std::cout << "bowsim quickstart: 'strided_sum' on one Pascal "
                 "SM, 32 warps\n\n";

    for (auto arch : {Architecture::Baseline,
                      Architecture::BOW_WR_OPT}) {
        Simulator sim(configFor(arch, /*iw=*/3));
        const SimResult res = sim.run(launch);
        std::cout << "--- " << res.arch << " ---\n";
        std::cout << "  cycles:           " << res.stats.cycles
                  << "\n";
        std::cout << "  instructions:     " << res.stats.instructions
                  << "\n";
        std::cout << "  IPC:              " << res.stats.ipc()
                  << "\n";
        std::cout << "  RF bank reads:    " << res.stats.rfReads
                  << "\n";
        std::cout << "  RF bank writes:   " << res.stats.rfWrites
                  << "\n";
        std::cout << "  operands forwarded: "
                  << res.stats.bocForwards << "\n";
        std::cout << "  RF dynamic energy: "
                  << res.energy.totalPj / 1e6 << " uJ\n\n";
    }

    std::cout << "BOW-WR bypasses most of the loop's register "
                 "traffic: every operand of\n"
                 "the address/accumulate chain is produced and "
                 "consumed inside a 3-wide\n"
                 "instruction window.\n";
    return 0;
}
