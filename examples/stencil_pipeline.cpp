/**
 * @file
 * Domain scenario: a 1-D three-point stencil built programmatically
 * with KernelBuilder (the LPS-style workload the paper's intro
 * motivates), swept across window sizes to expose the IW=3 knee.
 *
 * Usage: ./build/examples/stencil_pipeline [warps] [elements]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "workloads/builder.h"

namespace {

/** out[i] = (in[i-1] + 2*in[i] + in[i+1]) for i in [1, n-1). */
bow::Launch
makeStencil(unsigned warps, unsigned elems)
{
    using namespace bow;
    KernelBuilder kb("stencil3");
    // r0 in base, r1 out base, r2 = i, r3 = n-1, r8.. temps
    kb.movSpecial(6, SpecialReg::WARP_ID);
    kb.alu2Imm(Opcode::SHL, 6, 6, 14);
    kb.movImm(0, 0x10000);
    kb.alu2(Opcode::ADD, 0, 0, 6);
    kb.movImm(1, 0x800000);
    kb.alu2(Opcode::ADD, 1, 1, 6);
    kb.movImm(2, 1);
    kb.movImm(3, elems - 1);
    auto loop = kb.newLabel();
    kb.bind(loop);
    kb.alu2Imm(Opcode::SHL, 8, 2, 2);       // byte offset i*4
    kb.alu2(Opcode::ADD, 9, 8, 0);          // &in[i]
    kb.load(Opcode::LD_GLOBAL, 10, 9, -4);  // in[i-1]
    kb.load(Opcode::LD_GLOBAL, 11, 9, 0);   // in[i]
    kb.load(Opcode::LD_GLOBAL, 12, 9, 4);   // in[i+1]
    kb.alu2Imm(Opcode::SHL, 11, 11, 1);     // 2*in[i]
    kb.alu2(Opcode::ADD, 10, 10, 11);
    kb.alu2(Opcode::ADD, 10, 10, 12);       // stencil sum
    kb.alu2(Opcode::ADD, 13, 8, 1);         // &out[i]
    kb.store(Opcode::ST_GLOBAL, 13, 0, 10);
    kb.alu2Imm(Opcode::ADD, 2, 2, 1);
    kb.setp(CondCode::LT, predReg(0), 2, 3);
    kb.bra(loop, predReg(0));
    kb.exit();

    Launch launch;
    launch.kernel = kb.build();
    launch.numWarps = warps;
    return launch;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bow;

    const unsigned warps = argc > 1
        ? static_cast<unsigned>(std::atoi(argv[1])) : 32;
    const unsigned elems = argc > 2
        ? static_cast<unsigned>(std::atoi(argv[2])) : 48;

    const Launch launch = makeStencil(warps, elems);
    std::cout << "3-point stencil, " << warps << " warps x " << elems
              << " elements\n\n";

    Simulator base(configFor(Architecture::Baseline));
    const auto baseRes = base.run(launch);

    Table t("Window-size sweep (BOW-WR with compiler hints)");
    t.setHeader({"config", "cycles", "IPC", "IPC gain", "RF reads",
                 "RF writes", "norm. energy"});
    t.beginRow().cell("baseline").cell(baseRes.stats.cycles)
        .cell(baseRes.stats.ipc(), 3).cell("-")
        .cell(baseRes.stats.rfReads).cell(baseRes.stats.rfWrites)
        .cell("100.0%");

    for (unsigned iw = 2; iw <= 6; ++iw) {
        Simulator sim(configFor(Architecture::BOW_WR_OPT, iw));
        const auto res = sim.run(launch);
        t.beginRow().cell("BOW-WR IW" + std::to_string(iw))
            .cell(res.stats.cycles).cell(res.stats.ipc(), 3)
            .cell(formatFixed(improvementPct(res.stats.ipc(),
                                             baseRes.stats.ipc()),
                              1) + "%")
            .cell(res.stats.rfReads).cell(res.stats.rfWrites)
            .pct(res.energy.normalizedTo(baseRes.energy));
    }
    t.print(std::cout);

    std::cout << "The stencil's load/shift/add chain reuses every "
                 "operand within two or\n"
                 "three instructions - the sweet spot the paper "
                 "picks IW=3 for.\n";
    return 0;
}
