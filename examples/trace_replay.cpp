/**
 * @file
 * Trace workflow example: export the dynamic per-warp streams of a
 * benchmark as a bowsim trace file, reload it, and compare the
 * original (SPMD) launch with the trace replay under BOW-WR — the
 * workflow a user with real SASS traces (e.g. from Accel-Sim) would
 * follow.
 *
 * Usage: ./build/examples/trace_replay [workload] [trace-file]
 */

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "common/log.h"
#include "common/table.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "sm/trace.h"
#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace bow;

    const std::string name = argc > 1 ? argv[1] : "NW";
    const std::string path = argc > 2 ? argv[2]
                                      : "/tmp/bowsim_" + name +
                                            ".trace";
    try {
        const Workload wl = workloads::make(name, 0.2);

        std::cout << "exporting dynamic streams of " << wl.name
                  << " to " << path << " ...\n";
        const std::string text = dumpWarpTraces(wl.launch);
        {
            std::ofstream out(path);
            out << text;
        }
        std::cout << "trace size: " << text.size() << " bytes, "
                  << wl.launch.numWarps << " warps\n\n";

        const Launch replay = loadWarpTraceFile(path);

        Table t("original (SPMD) vs trace replay, BOW-WR-opt IW=3");
        t.setHeader({"launch", "cycles", "IPC", "RF reads",
                     "RF writes", "forwards"});
        for (const auto &[label, launch] :
             {std::pair<const char *, const Launch *>{"original",
                                                      &wl.launch},
              {"trace replay", &replay}}) {
            Simulator sim(configFor(Architecture::BOW_WR_OPT, 3));
            const auto res = sim.run(*launch);
            t.beginRow().cell(label).cell(res.stats.cycles)
                .cell(res.stats.ipc(), 3).cell(res.stats.rfReads)
                .cell(res.stats.rfWrites)
                .cell(res.stats.bocForwards);
        }
        t.print(std::cout);

        std::cout << "The replay executes the unrolled streams "
                     "(no branch instructions),\n"
                     "so cycle counts differ slightly; register "
                     "traffic and forwarding\n"
                     "behaviour carry over.\n";
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
    return 0;
}
