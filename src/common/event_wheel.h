/**
 * @file
 * A calendar-queue ("event wheel") for cycle-timestamped simulation
 * events. The SM core retires 0..k completions per cycle and
 * schedules new ones a bounded latency ahead; a std::map keyed by
 * cycle pays a red-black-tree rebalance for every schedule and pop.
 * The wheel replaces that with a power-of-two ring of buckets indexed
 * by `cycle & (horizon - 1)` plus an occupancy bitmap, so schedule,
 * pop and next-event queries are O(1)-ish with no node allocation.
 *
 * Invariants:
 *  - Ring events satisfy `now < when <= now + horizon`, so a bucket
 *    only ever holds events of one cycle. Events scheduled further
 *    out land in the (rare, ordered) overflow map and migrate into
 *    the ring as the clock approaches them.
 *  - takeDue() must be called with non-decreasing `now`; the caller
 *    may skip cycles (idle fast-forward) as long as no skipped cycle
 *    had events due — nextEventCycle() tells it where that is.
 *  - Within one bucket, events pop in insertion order (FIFO), exactly
 *    like the vector value of the std::map it replaces.
 */

#ifndef BOWSIM_COMMON_EVENT_WHEEL_H
#define BOWSIM_COMMON_EVENT_WHEEL_H

#include <bit>
#include <cstdint>
#include <map>
#include <vector>

#include "common/log.h"
#include "common/types.h"

namespace bow {

template <typename T>
class EventWheel
{
  public:
    /** @param horizon Minimum look-ahead the ring must cover; rounded
     *  up to a power of two (>= 64). Events beyond the horizon are
     *  correct but slower (overflow map). */
    explicit EventWheel(unsigned horizon)
    {
        horizon_ = std::bit_ceil(std::max(64u, horizon));
        mask_ = horizon_ - 1;
        buckets_.resize(horizon_);
        occupied_.assign((horizon_ + 63) / 64, 0);
    }

    /** Schedule @p item at absolute cycle @p when (> @p now). */
    void
    schedule(Cycle now, Cycle when, T item)
    {
        if (when <= now)
            panic("EventWheel: event scheduled into the past");
        ++size_;
        if (when - now > horizon_) {
            overflow_[when].push_back(std::move(item));
            return;
        }
        auto &bucket = buckets_[when & mask_];
        bucket.push_back(std::move(item));
        markOccupied(when & mask_);
    }

    /**
     * Move the events due at cycle @p now into @p out (cleared
     * first) and return whether there were any. The due bucket is
     * swapped out before the caller processes it, so handlers may
     * schedule new events — including at exactly now + horizon,
     * which maps to the just-drained bucket.
     */
    bool
    takeDue(Cycle now, std::vector<T> &out)
    {
        out.clear();
        migrateOverflow(now);
        auto &bucket = buckets_[now & mask_];
        if (bucket.empty())
            return false;
        clearOccupied(now & mask_);
        out.swap(bucket);
        size_ -= out.size();
        return true;
    }

    /**
     * Earliest cycle >= @p now holding an event, or kNoCycle when
     * the wheel is empty. Must be called at a cycle boundary —
     * before takeDue(now) — when every ring event lies in
     * [now, now + horizon), so ring offset d maps to exactly cycle
     * now + d. (After takeDue(now), handlers may have rescheduled
     * into now's bucket for cycle now + horizon, which offset 0
     * would misreport.)
     */
    Cycle
    nextEventCycle(Cycle now) const
    {
        Cycle best = kNoCycle;
        if (!overflow_.empty())
            best = overflow_.begin()->first;
        // First set bit in the occupancy bitmap at ring offset d
        // means events due at cycle now + d.
        for (Cycle d = 0; d < horizon_; ++d) {
            const Cycle slot = (now + d) & mask_;
            if (occupied_[slot >> 6] & (1ull << (slot & 63))) {
                best = std::min(best, now + d);
                break;
            }
        }
        return best;
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    unsigned horizon() const { return horizon_; }

    /** Whether any event sits in the overflow map (beyond the ring
     *  horizon). Cheap probe for the epoch-stepping hazard check. */
    bool hasOverflow() const { return !overflow_.empty(); }

    /**
     * Whether an overflow event is due at exactly cycle @p when.
     * Epoch stepping uses this to detect the one boundary case where
     * free-running past a dispatch cycle could merge ring and
     * overflow events of the same cycle in the wrong FIFO order: an
     * event scheduled at distance exactly `horizon()` lands in the
     * ring, but an earlier-scheduled overflow event for that same
     * cycle migrates in later — serial stepping would have migrated
     * it first.
     */
    bool
    overflowContains(Cycle when) const
    {
        return overflow_.find(when) != overflow_.end();
    }

    /**
     * Enumerate every pending event for serialization. Must be called
     * at a cycle boundary (before takeDue(now)), when ring events all
     * lie in [now, now + horizon). @p fn receives (when, item, inRing);
     * ring events come first in cycle order (FIFO within a bucket),
     * then overflow events in cycle order. The inRing flag matters at
     * the window edge: an overflow event at exactly now + horizon - 1
     * after a fast-forward has not migrated yet and must be restored
     * into the overflow map to keep the later migration merge order
     * identical.
     */
    template <typename Fn>
    void
    forEachEvent(Cycle now, Fn &&fn) const
    {
        for (Cycle d = 0; d < horizon_; ++d) {
            const Cycle slot = (now + d) & mask_;
            if (!(occupied_[slot >> 6] & (1ull << (slot & 63))))
                continue;
            for (const T &item : buckets_[slot])
                fn(now + d, item, true);
        }
        for (const auto &[when, items] : overflow_) {
            for (const T &item : items)
                fn(when, item, false);
        }
    }

    /**
     * Structural insert used when restoring a snapshot: place @p item
     * exactly where forEachEvent() reported it, bypassing the
     * schedule() placement rule (which decides ring-vs-overflow from
     * the *current* clock and would misplace an event saved at the
     * window edge). Call in forEachEvent() emission order so bucket
     * FIFO order is preserved.
     */
    void
    restoreEvent(Cycle when, T item, bool inRing)
    {
        ++size_;
        if (!inRing) {
            overflow_[when].push_back(std::move(item));
            return;
        }
        buckets_[when & mask_].push_back(std::move(item));
        markOccupied(when & mask_);
    }

  private:
    void
    markOccupied(Cycle slot)
    {
        occupied_[slot >> 6] |= 1ull << (slot & 63);
    }

    void
    clearOccupied(Cycle slot)
    {
        occupied_[slot >> 6] &= ~(1ull << (slot & 63));
    }

    /**
     * Pull overflow events whose cycle entered the ring window.
     * Called before the @p now bucket is drained, so the window is
     * [now, now + horizon): an event at exactly now + horizon would
     * land in now's still-full bucket and mix two cycles.
     */
    void
    migrateOverflow(Cycle now)
    {
        while (!overflow_.empty()) {
            auto it = overflow_.begin();
            if (it->first >= now + horizon_)
                break;
            if (it->first < now)
                panic("EventWheel: overflow event left in the past");
            auto &bucket = buckets_[it->first & mask_];
            for (T &item : it->second)
                bucket.push_back(std::move(item));
            markOccupied(it->first & mask_);
            overflow_.erase(it);
        }
    }

    unsigned horizon_ = 0;
    Cycle mask_ = 0;
    std::size_t size_ = 0;
    std::vector<std::vector<T>> buckets_;
    std::vector<std::uint64_t> occupied_;
    /** Events beyond the ring horizon, ordered by cycle. */
    std::map<Cycle, std::vector<T>> overflow_;
};

} // namespace bow

#endif // BOWSIM_COMMON_EVENT_WHEEL_H
