#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.h"

namespace bow {

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        panic("JsonValue::asBool on a non-bool value");
    return bool_;
}

std::uint64_t
JsonValue::asUint() const
{
    if (kind_ != Kind::Uint)
        panic("JsonValue::asUint on a non-integer value");
    return uint_;
}

double
JsonValue::asDouble() const
{
    if (kind_ == Kind::Uint)
        return static_cast<double>(uint_);
    if (kind_ != Kind::Double)
        panic("JsonValue::asDouble on a non-number value");
    return double_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        panic("JsonValue::asString on a non-string value");
    return string_;
}

JsonValue &
JsonValue::push(JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ != Kind::Array)
        panic("JsonValue::push on a non-array value");
    items_.push_back(std::move(v));
    return items_.back();
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (kind_ != Kind::Array)
        panic("JsonValue::items on a non-array value");
    return items_;
}

std::size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return items_.size();
    if (kind_ == Kind::Object)
        return members_.size();
    panic("JsonValue::size on a scalar value");
}

const JsonValue &
JsonValue::at(std::size_t i) const
{
    if (kind_ != Kind::Array)
        panic("JsonValue::at(index) on a non-array value");
    if (i >= items_.size())
        panic(strf("JsonValue::at: index ", i, " out of range (",
                   items_.size(), " items)"));
    return items_[i];
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        panic("JsonValue::set on a non-object value");
    for (auto &kv : members_) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return kv.second;
        }
    }
    members_.emplace_back(key, std::move(v));
    return members_.back().second;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &kv : members_) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (!v)
        panic(strf("JsonValue::at: no member '", key, "'"));
    return *v;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        panic("JsonValue::members on a non-object value");
    return members_;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Shortest round-trippable form; force a decimal point (or
    // exponent) so a re-parse keeps the double kind.
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    std::string s(buf, res.ptr);
    if (s.find_first_of(".eEn") == std::string::npos)
        s += ".0";
    return s;
}

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    const auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent) *
                       static_cast<std::size_t>(d),
                   ' ');
    };

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Uint:
        out += std::to_string(uint_);
        break;
      case Kind::Double:
        out += jsonNumber(double_);
        break;
      case Kind::String:
        out += '"';
        out += jsonEscape(string_);
        out += '"';
        break;
      case Kind::Array: {
        if (items_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ",";
            newline(depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      }
      case Kind::Object: {
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ",";
            newline(depth + 1);
            out += '"';
            out += jsonEscape(members_[i].first);
            out += "\":";
            if (indent > 0)
                out += ' ';
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
      }
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent JSON parser with line/column diagnostics. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        fatal(strf("JSON parse error at line ", line, " column ", col,
                   ": ", what));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(strf("expected '", c, "', got '", text_[pos_], "'"));
        ++pos_;
    }

    bool
    consumeWord(const char *w)
    {
        const std::size_t n = std::char_traits<char>::length(w);
        if (text_.compare(pos_, n, w) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return JsonValue(parseString());
          case 't':
            if (consumeWord("true"))
                return JsonValue(true);
            fail("bad literal");
          case 'f':
            if (consumeWord("false"))
                return JsonValue(false);
            fail("bad literal");
          case 'n':
            if (consumeWord("null"))
                return JsonValue();
            fail("bad literal");
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue obj = JsonValue::object();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        for (;;) {
            if (peek() != '"')
                fail("expected object key string");
            std::string key = parseString();
            expect(':');
            if (obj.find(key))
                fail(strf("duplicate object key '", key, "'"));
            obj.set(key, parseValue());
            const char c = peek();
            ++pos_;
            if (c == '}')
                return obj;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue arr = JsonValue::array();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        for (;;) {
            arr.push(parseValue());
            const char c = peek();
            ++pos_;
            if (c == ']')
                return arr;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // Encode the BMP code point as UTF-8 (surrogate
                // pairs are not produced by our own writers).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 |
                                             ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                fail("unknown escape character");
            }
        }
        fail("unterminated string");
    }

    JsonValue
    parseNumber()
    {
        skipWs();
        const std::size_t start = pos_;
        bool isInt = true;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            isInt = false; // negative numbers carried as double
            ++pos_;
        }
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                isInt = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            fail("expected a value");
        const std::string tok = text_.substr(start, pos_ - start);
        if (isInt) {
            std::uint64_t v = 0;
            const auto res =
                std::from_chars(tok.data(), tok.data() + tok.size(), v);
            if (res.ec != std::errc() ||
                res.ptr != tok.data() + tok.size()) {
                fail(strf("bad integer '", tok, "'"));
            }
            return JsonValue(v);
        }
        char *end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            fail(strf("bad number '", tok, "'"));
        return JsonValue(d);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace bow
