/**
 * @file
 * Minimal JSON document model shared by the observability layer:
 * metrics export, Chrome trace files, run manifests and the golden
 * regression gate all build on this one value type, so every JSON
 * artifact the simulator writes serializes (and re-parses) through
 * the same code path.
 *
 * Deliberate properties:
 *  - Object members keep insertion order, so serialization is stable
 *    and artifacts diff cleanly between runs.
 *  - Integers are carried as uint64_t (counters exceed 2^53) and
 *    doubles always render with a decimal point or exponent, so the
 *    integer/double distinction survives a round trip.
 *  - Non-finite doubles (NaN, +/-inf) serialize as `null` — JSON has
 *    no spelling for them and a "nan" token would poison downstream
 *    tooling (Perfetto, jq, the golden differ).
 */

#ifndef BOWSIM_COMMON_JSON_H
#define BOWSIM_COMMON_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bow {

/** One JSON value: null, bool, number, string, array or object. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Uint,   ///< non-negative integer (counters)
        Double, ///< any other number
        String,
        Array,
        Object
    };

    JsonValue() = default;                      ///< null
    JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    JsonValue(std::uint64_t v) : kind_(Kind::Uint), uint_(v) {}
    JsonValue(int v)
        : kind_(Kind::Uint), uint_(static_cast<std::uint64_t>(v))
    {}
    JsonValue(double v) : kind_(Kind::Double), double_(v) {}
    JsonValue(const char *s) : kind_(Kind::String), string_(s) {}
    JsonValue(std::string s)
        : kind_(Kind::String), string_(std::move(s))
    {}

    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const
    {
        return kind_ == Kind::Uint || kind_ == Kind::Double;
    }

    /** Scalar accessors; panic() on kind mismatch. */
    bool asBool() const;
    std::uint64_t asUint() const;
    /** Any number (Uint or Double) as a double. */
    double asDouble() const;
    const std::string &asString() const;

    // --- arrays ---
    /** Append to an array (converts a null value into an array). */
    JsonValue &push(JsonValue v);
    const std::vector<JsonValue> &items() const;
    std::size_t size() const;
    const JsonValue &at(std::size_t i) const;

    // --- objects ---
    /** Set @p key (replace in place or append; insertion-ordered).
     *  Converts a null value into an object. */
    JsonValue &set(const std::string &key, JsonValue v);
    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
    /** Member access; panic()s when absent. */
    const JsonValue &at(const std::string &key) const;
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces
     * per level; 0 emits the compact one-line form. Non-finite
     * doubles render as null.
     */
    std::string dump(int indent = 0) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Parse @p text as one JSON document.
 * @throws FatalError with line/column context on malformed input.
 */
JsonValue parseJson(const std::string &text);

/** JSON string escaping (quotes not included). */
std::string jsonEscape(const std::string &s);

/**
 * Render one number the way dump() does: integers bare, doubles with
 * a decimal point or exponent (round-trippable), non-finite as null.
 */
std::string jsonNumber(double v);

} // namespace bow

#endif // BOWSIM_COMMON_JSON_H
