/**
 * @file
 * Shared helpers for the JSON state codecs (snapshots, component
 * saveState/loadState). Decode errors are user-facing FatalErrors
 * with the offending key in the message — a malformed snapshot must
 * refuse cleanly, never panic.
 */

#ifndef BOWSIM_COMMON_JSON_UTIL_H
#define BOWSIM_COMMON_JSON_UTIL_H

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "common/json.h"
#include "common/log.h"

namespace bow {
namespace jsonio {

inline const JsonValue &
member(const JsonValue &obj, const std::string &key)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        fatal("state codec: missing key '" + key + "'");
    return *v;
}

inline std::uint64_t
getUint(const JsonValue &obj, const std::string &key)
{
    return member(obj, key).asUint();
}

inline bool
getBool(const JsonValue &obj, const std::string &key)
{
    return member(obj, key).asBool();
}

/** Doubles serialize as null when non-finite; map null back to NaN. */
inline double
getDouble(const JsonValue &obj, const std::string &key)
{
    const JsonValue &v = member(obj, key);
    if (v.isNull())
        return std::numeric_limits<double>::quiet_NaN();
    return v.asDouble();
}

inline const JsonValue &
getArray(const JsonValue &obj, const std::string &key)
{
    const JsonValue &v = member(obj, key);
    if (v.kind() != JsonValue::Kind::Array)
        fatal("state codec: key '" + key + "' is not an array");
    return v;
}

} // namespace jsonio
} // namespace bow

#endif // BOWSIM_COMMON_JSON_UTIL_H
