#include "common/log.h"

#include <iostream>

namespace bow {

namespace {
bool verboseEnabled = false;
} // namespace

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

void
warn(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

void
inform(const std::string &msg)
{
    if (verboseEnabled)
        std::cerr << "info: " << msg << "\n";
}

void
setVerbose(bool verbose)
{
    verboseEnabled = verbose;
}

} // namespace bow
