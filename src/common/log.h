/**
 * @file
 * Error-reporting helpers in the gem5 spirit: panic() for internal
 * simulator bugs (aborts), fatal() for user/configuration errors
 * (clean exit via exception so tests can assert on it), warn() and
 * inform() for status messages.
 */

#ifndef BOWSIM_COMMON_LOG_H
#define BOWSIM_COMMON_LOG_H

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace bow {

/** Exception thrown by fatal(): a user-caused, recoverable error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Exception thrown by panic(): an internal simulator invariant broke. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/**
 * Exception thrown by Watchdog::checkpoint() when a simulation blows
 * its cycle budget or wall-clock deadline. Distinct from FatalError
 * (user error) and PanicError (simulator bug): the simulation itself
 * is stuck, which the fault-campaign layer classifies as a hang.
 */
class HangError : public std::runtime_error
{
  public:
    explicit HangError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * Report an unrecoverable user error (bad configuration, malformed
 * assembly, impossible parameter combination).
 *
 * @param msg Human-readable description of what the user did wrong.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report a broken internal invariant; this is always a bowsim bug.
 *
 * @param msg Description of the violated invariant.
 */
[[noreturn]] void panic(const std::string &msg);

/** Print a warning to stderr; simulation continues. */
void warn(const std::string &msg);

/** Print an informational message to stderr; simulation continues. */
void inform(const std::string &msg);

/** Enable or disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/** Build a message from stream-style pieces: strf("x=", x, " y=", y). */
template <typename... Args>
std::string
strf(Args &&...args)
{
    std::ostringstream os;
    ((os << std::forward<Args>(args)), ...);
    return os.str();
}

} // namespace bow

#endif // BOWSIM_COMMON_LOG_H
