#include "common/metrics.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "common/log.h"

namespace bow {

std::string
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Value:   return "value";
      case MetricKind::Hist:    return "hist";
    }
    panic("metricKindName: bad kind");
}

namespace {

/** Validate a dotted metric path: [a-z0-9_] segments, single dots. */
bool
validMetricPath(const std::string &path)
{
    if (path.empty() || path.front() == '.' || path.back() == '.')
        return false;
    bool prevDot = false;
    for (const char c : path) {
        if (c == '.') {
            if (prevDot)
                return false;
            prevDot = true;
            continue;
        }
        prevDot = false;
        const bool ok = (c >= 'a' && c <= 'z') ||
            (c >= '0' && c <= '9') || c == '_';
        if (!ok)
            return false;
    }
    return true;
}

} // namespace

MetricsRegistry::MetricsRegistry(const MetricsRegistry &other)
{
    std::lock_guard<std::mutex> lock(other.mutex_);
    metrics_ = other.metrics_;
}

MetricsRegistry &
MetricsRegistry::operator=(const MetricsRegistry &other)
{
    if (this == &other)
        return *this;
    // Consistent two-lock order by address to avoid deadlock if two
    // threads ever assign registries to each other.
    std::map<std::string, Metric> copy;
    {
        std::lock_guard<std::mutex> lock(other.mutex_);
        copy = other.metrics_;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_ = std::move(copy);
    return *this;
}

MetricsRegistry::Metric &
MetricsRegistry::touch(const std::string &path, MetricKind kind)
{
    auto it = metrics_.find(path);
    if (it == metrics_.end()) {
        if (!validMetricPath(path))
            panic(strf("MetricsRegistry: invalid metric path '", path,
                       "' (want [a-z0-9_] segments joined by single "
                       "dots)"));
        it = metrics_.emplace(path, Metric{}).first;
        it->second.kind = kind;
        return it->second;
    }
    if (it->second.kind != kind)
        panic(strf("MetricsRegistry: '", path, "' registered as ",
                   metricKindName(it->second.kind),
                   " but re-registered as ", metricKindName(kind)));
    return it->second;
}

void
MetricsRegistry::addCounter(const std::string &path,
                            std::uint64_t delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    touch(path, MetricKind::Counter).count += delta;
}

void
MetricsRegistry::setCounter(const std::string &path, std::uint64_t v)
{
    std::lock_guard<std::mutex> lock(mutex_);
    touch(path, MetricKind::Counter).count = v;
}

void
MetricsRegistry::setValue(const std::string &path, double v)
{
    std::lock_guard<std::mutex> lock(mutex_);
    touch(path, MetricKind::Value).value = v;
}

void
MetricsRegistry::addValue(const std::string &path, double v)
{
    std::lock_guard<std::mutex> lock(mutex_);
    touch(path, MetricKind::Value).value += v;
}

void
MetricsRegistry::setHist(const std::string &path,
                         const std::vector<std::uint64_t> &buckets)
{
    std::lock_guard<std::mutex> lock(mutex_);
    touch(path, MetricKind::Hist).hist = buckets;
}

bool
MetricsRegistry::has(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return metrics_.count(path) != 0;
}

MetricKind
MetricsRegistry::kindOf(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = metrics_.find(path);
    if (it == metrics_.end())
        panic(strf("MetricsRegistry::kindOf: no metric '", path, "'"));
    return it->second.kind;
}

std::uint64_t
MetricsRegistry::counter(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = metrics_.find(path);
    if (it == metrics_.end())
        return 0;
    if (it->second.kind != MetricKind::Counter)
        panic(strf("MetricsRegistry::counter: '", path, "' is a ",
                   metricKindName(it->second.kind)));
    return it->second.count;
}

double
MetricsRegistry::value(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = metrics_.find(path);
    if (it == metrics_.end())
        return 0.0;
    if (it->second.kind != MetricKind::Value)
        panic(strf("MetricsRegistry::value: '", path, "' is a ",
                   metricKindName(it->second.kind)));
    return it->second.value;
}

std::vector<std::uint64_t>
MetricsRegistry::hist(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = metrics_.find(path);
    if (it == metrics_.end())
        return {};
    if (it->second.kind != MetricKind::Hist)
        panic(strf("MetricsRegistry::hist: '", path, "' is a ",
                   metricKindName(it->second.kind)));
    return it->second.hist;
}

std::vector<std::string>
MetricsRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(metrics_.size());
    for (const auto &kv : metrics_)
        out.push_back(kv.first);
    return out;
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return metrics_.size();
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_.clear();
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    // Snapshot the source outside our own lock so merging a registry
    // into itself (or cross-merges from two threads) cannot deadlock.
    std::map<std::string, Metric> theirs;
    {
        std::lock_guard<std::mutex> lock(other.mutex_);
        theirs = other.metrics_;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[path, m] : theirs) {
        Metric &mine = touch(path, m.kind);
        switch (m.kind) {
          case MetricKind::Counter:
            mine.count += m.count;
            break;
          case MetricKind::Value:
            mine.value += m.value;
            break;
          case MetricKind::Hist:
            if (mine.hist.size() < m.hist.size())
                mine.hist.resize(m.hist.size(), 0);
            for (std::size_t i = 0; i < m.hist.size(); ++i)
                mine.hist[i] += m.hist[i];
            break;
        }
    }
}

JsonValue
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonValue obj = JsonValue::object();
    for (const auto &[path, m] : metrics_) {
        switch (m.kind) {
          case MetricKind::Counter:
            obj.set(path, JsonValue(m.count));
            break;
          case MetricKind::Value:
            obj.set(path, JsonValue(m.value));
            break;
          case MetricKind::Hist: {
            JsonValue arr = JsonValue::array();
            for (const std::uint64_t b : m.hist)
                arr.push(JsonValue(b));
            obj.set(path, std::move(arr));
            break;
          }
        }
    }
    return obj;
}

MetricsRegistry
MetricsRegistry::fromJson(const JsonValue &json)
{
    MetricsRegistry out;
    for (const auto &[path, v] : json.members()) {
        switch (v.kind()) {
          case JsonValue::Kind::Uint:
            out.setCounter(path, v.asUint());
            break;
          case JsonValue::Kind::Double:
            out.setValue(path, v.asDouble());
            break;
          case JsonValue::Kind::Null:
            // Our writers render non-finite values as null.
            out.setValue(path,
                         std::numeric_limits<double>::quiet_NaN());
            break;
          case JsonValue::Kind::Array: {
            std::vector<std::uint64_t> buckets;
            buckets.reserve(v.size());
            for (const JsonValue &b : v.items())
                buckets.push_back(b.asUint());
            out.setHist(path, buckets);
            break;
          }
          default:
            fatal(strf("MetricsRegistry::fromJson: member '", path,
                       "' is not a metric value"));
        }
    }
    return out;
}

namespace {

std::atomic<bool> gAggregate{false};
std::atomic<bool> gEnvChecked{false};

} // namespace

MetricsRegistry &
globalMetrics()
{
    static MetricsRegistry registry;
    return registry;
}

void
setMetricsAggregation(bool enabled)
{
    gAggregate.store(enabled, std::memory_order_relaxed);
}

std::string
metricsOutPath()
{
    const char *env = std::getenv("BOWSIM_METRICS_OUT");
    const std::string path = env ? env : "";
    if (!path.empty() && !gEnvChecked.exchange(true))
        setMetricsAggregation(true);
    return path;
}

bool
metricsAggregationEnabled()
{
    if (!gEnvChecked.load(std::memory_order_relaxed))
        metricsOutPath();
    return gAggregate.load(std::memory_order_relaxed);
}

void
writeMetricsFile(const std::string &path,
                 const MetricsRegistry &registry)
{
    std::ofstream out(path);
    if (!out)
        fatal(strf("cannot open metrics output file '", path, "'"));
    out << registry.toJson().dump(2) << "\n";
    if (!out)
        fatal(strf("failed writing metrics to '", path, "'"));
}

} // namespace bow
