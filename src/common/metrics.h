/**
 * @file
 * Hierarchical metrics registry: the telemetry spine of the
 * simulator. Every hardware model exports its event counts here
 * under stable dotted names (`sm0.boc.bypass_hits`,
 * `sm0.rf_banks.read_conflicts`, ...), the registry serializes to
 * JSON (and re-parses for the golden regression gate), and
 * registries merge thread-safely so ParallelRunner batches can
 * aggregate a whole bench run into one snapshot.
 *
 * Three metric kinds:
 *  - Counter: uint64 event count; merges by summation.
 *  - Value:   double (IPC, picojoules); merges by summation, and
 *             non-finite values serialize as JSON null.
 *  - Hist:    vector of uint64 buckets; merges element-wise (the
 *             longer shape wins).
 *
 * Names are validated ([a-z0-9_] segments joined by single dots) and
 * re-registering a name with a different kind panics — collisions
 * are programming errors, not data.
 *
 * The metric name catalogue lives in docs/OBSERVABILITY.md.
 */

#ifndef BOWSIM_COMMON_METRICS_H
#define BOWSIM_COMMON_METRICS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"

namespace bow {

/** What one registered metric is. */
enum class MetricKind
{
    Counter,
    Value,
    Hist
};

/** "counter" / "value" / "hist". */
std::string metricKindName(MetricKind kind);

/**
 * A named collection of metrics with dotted hierarchical paths.
 *
 * All member functions are thread-safe; copying locks the source.
 * The map is ordered, so iteration and JSON export are stable.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &other);
    MetricsRegistry &operator=(const MetricsRegistry &other);

    /** Add @p delta to counter @p path (created at 0). */
    void addCounter(const std::string &path, std::uint64_t delta = 1);

    /** Set counter @p path to @p v. */
    void setCounter(const std::string &path, std::uint64_t v);

    /** Set value @p path to @p v (NaN/inf allowed; JSON renders
     *  them as null). */
    void setValue(const std::string &path, double v);

    /** Add @p v to value @p path (created at 0). */
    void addValue(const std::string &path, double v);

    /** Set histogram @p path to @p buckets. */
    void setHist(const std::string &path,
                 const std::vector<std::uint64_t> &buckets);

    bool has(const std::string &path) const;

    /** Kind of @p path; panics when unregistered. */
    MetricKind kindOf(const std::string &path) const;

    /** Counter value; 0 when unregistered, panics on wrong kind. */
    std::uint64_t counter(const std::string &path) const;

    /** Value; 0.0 when unregistered, panics on wrong kind. */
    double value(const std::string &path) const;

    /** Histogram buckets; empty when unregistered, panics on wrong
     *  kind. */
    std::vector<std::uint64_t> hist(const std::string &path) const;

    /** All registered paths, sorted. */
    std::vector<std::string> names() const;

    std::size_t size() const;
    void clear();

    /**
     * Fold @p other into this registry: counters and values sum,
     * histograms add element-wise. Kind mismatches panic. Safe
     * against concurrent merges from ParallelRunner workers.
     */
    void merge(const MetricsRegistry &other);

    /**
     * Flat JSON object: {"sm0.boc.bypass_hits": 12, ...} with
     * histograms as arrays. Ordered by path, so output is stable.
     */
    JsonValue toJson() const;

    /**
     * Rebuild a registry from toJson() output (the golden gate's
     * read path). Integers become counters, doubles/nulls become
     * values (null = NaN), arrays become histograms.
     */
    static MetricsRegistry fromJson(const JsonValue &json);

  private:
    struct Metric
    {
        MetricKind kind = MetricKind::Counter;
        std::uint64_t count = 0;
        double value = 0.0;
        std::vector<std::uint64_t> hist;
    };

    /** Locate-or-create @p path as @p kind; validates the name and
     *  panics on a kind collision. Caller holds the mutex. */
    Metric &touch(const std::string &path, MetricKind kind);

    mutable std::mutex mutex_;
    std::map<std::string, Metric> metrics_;
};

/**
 * The process-wide aggregate registry. ParallelRunner folds every
 * finished job's metrics in here when aggregation is enabled (the
 * CLI --metrics-out flag for --workload ALL, or the
 * BOWSIM_METRICS_OUT environment variable for the benches).
 */
MetricsRegistry &globalMetrics();

/** Turn job-level aggregation into globalMetrics() on or off. */
void setMetricsAggregation(bool enabled);

/** True when ParallelRunner should aggregate job metrics. */
bool metricsAggregationEnabled();

/**
 * Destination of the process-level metrics snapshot: the
 * BOWSIM_METRICS_OUT environment variable, or "" when unset. When
 * non-empty, aggregation is enabled automatically on first query.
 */
std::string metricsOutPath();

/** Write @p registry as pretty-printed JSON to @p path. */
void writeMetricsFile(const std::string &path,
                      const MetricsRegistry &registry);

} // namespace bow

#endif // BOWSIM_COMMON_METRICS_H
