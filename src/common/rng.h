/**
 * @file
 * Small deterministic PRNG (xoshiro256**) used by the workload
 * generators. Deterministic across platforms so that every benchmark
 * run and test reproduces the identical kernel for a given seed.
 */

#ifndef BOWSIM_COMMON_RNG_H
#define BOWSIM_COMMON_RNG_H

#include <cstdint>

namespace bow {

/**
 * xoshiro256** generator with splitmix64 seeding.
 *
 * Not cryptographic; chosen for speed, quality, and a tiny, fully
 * deterministic implementation independent of the standard library's
 * distribution objects (which vary between implementations).
 */
class Rng
{
  public:
    /** Seed the generator; the same seed always yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // splitmix64 to fill the state from a single word.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit word. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift range reduction (Lemire); bias is negligible
        // for simulation workload shaping.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace bow

#endif // BOWSIM_COMMON_RNG_H
