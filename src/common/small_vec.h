/**
 * @file
 * A small vector with inline storage for the first N elements. The
 * simulator's per-cycle hot paths (operand lists, collector fetch
 * queues) carry at most a handful of register ids; keeping them
 * inline removes the per-instruction heap churn the
 * docs/PERFORMANCE.md "no allocation per cycle" rule forbids. When a
 * caller does exceed N the container spills to the heap — stickily,
 * so repeated clear()/push_back() cycles reuse the spill capacity —
 * and keeps working: correctness never depends on N.
 *
 * Only the operations the hot paths need are provided (push_back,
 * erase, clear, iteration, indexing); T must be trivially copyable.
 */

#ifndef BOWSIM_COMMON_SMALL_VEC_H
#define BOWSIM_COMMON_SMALL_VEC_H

#include <algorithm>
#include <array>
#include <cstddef>
#include <type_traits>
#include <vector>

namespace bow {

template <typename T, std::size_t N>
class SmallVec
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVec is for small trivially-copyable values");
    static_assert(N > 0, "SmallVec needs at least one inline slot");

  public:
    using value_type = T;
    using iterator = T *;
    using const_iterator = const T *;

    SmallVec() = default;

    SmallVec(const SmallVec &other) { assignFrom(other); }

    SmallVec &
    operator=(const SmallVec &other)
    {
        if (this != &other) {
            spill_.clear();
            onHeap_ = false;
            assignFrom(other);
        }
        return *this;
    }

    SmallVec(SmallVec &&other) noexcept { moveFrom(other); }

    SmallVec &
    operator=(SmallVec &&other) noexcept
    {
        if (this != &other)
            moveFrom(other);
        return *this;
    }

    ~SmallVec() = default;

    void
    push_back(const T &v)
    {
        if (!onHeap_) {
            if (size_ < N) {
                inline_[size_++] = v;
                return;
            }
            // Heap spill: migrate once, then grow like a vector.
            spill_.assign(inline_.begin(), inline_.end());
            onHeap_ = true;
        }
        spill_.push_back(v);
        ++size_;
    }

    /** Drop the contents; spill capacity (if any) is retained so a
     *  reused scratch buffer stops allocating after warm-up. */
    void
    clear()
    {
        size_ = 0;
        spill_.clear();
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T *data() { return onHeap_ ? spill_.data() : inline_.data(); }
    const T *
    data() const
    {
        return onHeap_ ? spill_.data() : inline_.data();
    }

    T &operator[](std::size_t i) { return data()[i]; }
    const T &operator[](std::size_t i) const { return data()[i]; }

    T &front() { return data()[0]; }
    const T &front() const { return data()[0]; }
    T &back() { return data()[size_ - 1]; }
    const T &back() const { return data()[size_ - 1]; }

    iterator begin() { return data(); }
    iterator end() { return data() + size_; }
    const_iterator begin() const { return data(); }
    const_iterator end() const { return data() + size_; }
    const_iterator cbegin() const { return begin(); }
    const_iterator cend() const { return end(); }

    /** Erase the element at @p pos, shifting the tail left. */
    iterator
    erase(iterator pos)
    {
        std::copy(pos + 1, end(), pos);
        --size_;
        if (onHeap_)
            spill_.pop_back();
        return pos;
    }

    /** Drop elements past the first @p n (no-op when n >= size). */
    void
    truncate(std::size_t n)
    {
        if (n >= size_)
            return;
        size_ = n;
        if (onHeap_)
            spill_.resize(n);
    }

    bool
    operator==(const SmallVec &other) const
    {
        return size_ == other.size_ &&
            std::equal(begin(), end(), other.begin());
    }

  private:
    void
    assignFrom(const SmallVec &other)
    {
        size_ = other.size_;
        onHeap_ = other.onHeap_;
        if (other.onHeap_)
            spill_ = other.spill_;
        else
            std::copy(other.begin(), other.end(), inline_.begin());
    }

    void
    moveFrom(SmallVec &other) noexcept
    {
        size_ = other.size_;
        onHeap_ = other.onHeap_;
        if (other.onHeap_)
            spill_ = std::move(other.spill_);
        else
            std::copy(other.begin(), other.end(), inline_.begin());
        other.size_ = 0;
        other.onHeap_ = false;
        other.spill_.clear();
    }

    std::size_t size_ = 0;
    bool onHeap_ = false;
    std::array<T, N> inline_{};
    std::vector<T> spill_;
};

} // namespace bow

#endif // BOWSIM_COMMON_SMALL_VEC_H
