#include "common/stats.h"

#include <cmath>
#include <limits>

#include "common/json.h"
#include "common/log.h"
#include "common/metrics.h"

namespace bow {

namespace {

const JsonValue &
statMember(const JsonValue &obj, const std::string &key)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        fatal("StatGroup::loadJson: missing key '" + key + "'");
    return *v;
}

/** Doubles serialize as null when non-finite; map null back to NaN. */
double
statDouble(const JsonValue &v)
{
    if (v.kind() == JsonValue::Kind::Null)
        return std::numeric_limits<double>::quiet_NaN();
    return v.asDouble();
}

} // namespace

double
Average::mean() const
{
    return n_ ? sum_ / static_cast<double>(n_)
              : std::numeric_limits<double>::quiet_NaN();
}

Histogram::Histogram(std::size_t buckets)
    : counts_(buckets + 1, 0)
{
    if (buckets == 0)
        fatal("Histogram needs at least one bucket");
}

void
Histogram::sample(std::uint64_t v, std::uint64_t weight)
{
    const std::size_t exact = counts_.size() - 1;
    const std::size_t b = (v < exact) ? static_cast<std::size_t>(v) : exact;
    counts_[b] += weight;
    total_ += weight;
    weightedSum_ += static_cast<double>(weight) *
        static_cast<double>(v < exact ? v : exact);
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c = 0;
    total_ = 0;
    weightedSum_ = 0.0;
}

std::uint64_t
Histogram::bucket(std::size_t b) const
{
    if (b >= counts_.size())
        panic("Histogram::bucket out of range");
    return counts_[b];
}

double
Histogram::fraction(std::size_t b) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(bucket(b)) / static_cast<double>(total_);
}

double
Histogram::fractionAtLeast(std::uint64_t v) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t n = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        if (b >= v)
            n += counts_[b];
    }
    return static_cast<double>(n) / static_cast<double>(total_);
}

double
Histogram::mean() const
{
    return total_ ? weightedSum_ / static_cast<double>(total_)
                  : std::numeric_limits<double>::quiet_NaN();
}

void
Histogram::restore(const std::vector<std::uint64_t> &counts,
                   std::uint64_t total, double weightedSum)
{
    if (counts.size() != counts_.size())
        fatal("Histogram::restore: bucket layout mismatch");
    counts_ = counts;
    total_ = total;
    weightedSum_ = weightedSum;
}

Counter &
StatGroup::counter(const std::string &key)
{
    return counters_[key];
}

Average &
StatGroup::average(const std::string &key)
{
    return averages_[key];
}

Histogram &
StatGroup::histogram(const std::string &key, std::size_t buckets)
{
    auto it = histograms_.find(key);
    if (it == histograms_.end())
        it = histograms_.emplace(key, Histogram(buckets)).first;
    return it->second;
}

std::uint64_t
StatGroup::counterValue(const std::string &key) const
{
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatGroup::exportTo(MetricsRegistry &out,
                    const std::string &prefix) const
{
    for (const auto &[key, c] : counters_)
        out.setCounter(prefix + "." + key, c.value());
    for (const auto &[key, a] : averages_) {
        out.setValue(prefix + "." + key + ".mean", a.mean());
        out.setCounter(prefix + "." + key + ".samples", a.samples());
    }
    for (const auto &[key, h] : histograms_) {
        std::vector<std::uint64_t> buckets;
        buckets.reserve(h.size());
        for (std::size_t b = 0; b < h.size(); ++b)
            buckets.push_back(h.bucket(b));
        out.setHist(prefix + "." + key, buckets);
    }
}

JsonValue
StatGroup::saveJson() const
{
    JsonValue counters = JsonValue::object();
    for (const auto &[key, c] : counters_)
        counters.set(key, JsonValue(c.value()));

    JsonValue averages = JsonValue::object();
    for (const auto &[key, a] : averages_) {
        JsonValue o = JsonValue::object();
        o.set("sum", JsonValue(a.sum()));
        o.set("n", JsonValue(a.samples()));
        averages.set(key, std::move(o));
    }

    JsonValue histograms = JsonValue::object();
    for (const auto &[key, h] : histograms_) {
        JsonValue counts = JsonValue::array();
        for (std::size_t b = 0; b < h.size(); ++b)
            counts.push(JsonValue(h.bucket(b)));
        JsonValue o = JsonValue::object();
        o.set("counts", std::move(counts));
        o.set("total", JsonValue(h.total()));
        o.set("wsum", JsonValue(h.weightedSum()));
        histograms.set(key, std::move(o));
    }

    JsonValue out = JsonValue::object();
    out.set("counters", std::move(counters));
    out.set("averages", std::move(averages));
    out.set("histograms", std::move(histograms));
    return out;
}

void
StatGroup::loadJson(const JsonValue &v)
{
    for (const auto &[key, val] : statMember(v, "counters").members()) {
        Counter &c = counter(key);
        c.reset();
        c.inc(val.asUint());
    }
    for (const auto &[key, val] : statMember(v, "averages").members()) {
        average(key).restore(statDouble(statMember(val, "sum")),
                             statMember(val, "n").asUint());
    }
    for (const auto &[key, val] :
         statMember(v, "histograms").members()) {
        const JsonValue &countsJson = statMember(val, "counts");
        std::vector<std::uint64_t> counts;
        counts.reserve(countsJson.size());
        for (const JsonValue &c : countsJson.items())
            counts.push_back(c.asUint());
        // Auto-create with the serialized layout; an existing
        // histogram keeps its layout and restore() checks the match.
        Histogram &h = histogram(key, counts.empty() ? 1
                                                     : counts.size() - 1);
        h.restore(counts, statMember(val, "total").asUint(),
                  statDouble(statMember(val, "wsum")));
    }
}

void
StatGroup::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : averages_)
        kv.second.reset();
    for (auto &kv : histograms_)
        kv.second.reset();
}

} // namespace bow
