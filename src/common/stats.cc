#include "common/stats.h"

#include <limits>

#include "common/log.h"
#include "common/metrics.h"

namespace bow {

double
Average::mean() const
{
    return n_ ? sum_ / static_cast<double>(n_)
              : std::numeric_limits<double>::quiet_NaN();
}

Histogram::Histogram(std::size_t buckets)
    : counts_(buckets + 1, 0)
{
    if (buckets == 0)
        fatal("Histogram needs at least one bucket");
}

void
Histogram::sample(std::uint64_t v, std::uint64_t weight)
{
    const std::size_t exact = counts_.size() - 1;
    const std::size_t b = (v < exact) ? static_cast<std::size_t>(v) : exact;
    counts_[b] += weight;
    total_ += weight;
    weightedSum_ += static_cast<double>(weight) *
        static_cast<double>(v < exact ? v : exact);
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c = 0;
    total_ = 0;
    weightedSum_ = 0.0;
}

std::uint64_t
Histogram::bucket(std::size_t b) const
{
    if (b >= counts_.size())
        panic("Histogram::bucket out of range");
    return counts_[b];
}

double
Histogram::fraction(std::size_t b) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(bucket(b)) / static_cast<double>(total_);
}

double
Histogram::fractionAtLeast(std::uint64_t v) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t n = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        if (b >= v)
            n += counts_[b];
    }
    return static_cast<double>(n) / static_cast<double>(total_);
}

double
Histogram::mean() const
{
    return total_ ? weightedSum_ / static_cast<double>(total_)
                  : std::numeric_limits<double>::quiet_NaN();
}

Counter &
StatGroup::counter(const std::string &key)
{
    return counters_[key];
}

Average &
StatGroup::average(const std::string &key)
{
    return averages_[key];
}

Histogram &
StatGroup::histogram(const std::string &key, std::size_t buckets)
{
    auto it = histograms_.find(key);
    if (it == histograms_.end())
        it = histograms_.emplace(key, Histogram(buckets)).first;
    return it->second;
}

std::uint64_t
StatGroup::counterValue(const std::string &key) const
{
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatGroup::exportTo(MetricsRegistry &out,
                    const std::string &prefix) const
{
    for (const auto &[key, c] : counters_)
        out.setCounter(prefix + "." + key, c.value());
    for (const auto &[key, a] : averages_) {
        out.setValue(prefix + "." + key + ".mean", a.mean());
        out.setCounter(prefix + "." + key + ".samples", a.samples());
    }
    for (const auto &[key, h] : histograms_) {
        std::vector<std::uint64_t> buckets;
        buckets.reserve(h.size());
        for (std::size_t b = 0; b < h.size(); ++b)
            buckets.push_back(h.bucket(b));
        out.setHist(prefix + "." + key, buckets);
    }
}

void
StatGroup::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : averages_)
        kv.second.reset();
    for (auto &kv : histograms_)
        kv.second.reset();
}

} // namespace bow
