/**
 * @file
 * Lightweight statistics primitives: named scalar counters, scalar
 * averages, and fixed-bucket histograms. Every hardware model in
 * bowsim owns a StatGroup and registers its counters there so the
 * benches can dump them uniformly.
 */

#ifndef BOWSIM_COMMON_STATS_H
#define BOWSIM_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bow {

class MetricsRegistry;
class JsonValue;

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { count_ += n; }
    void reset() { count_ = 0; }
    std::uint64_t value() const { return count_; }

  private:
    std::uint64_t count_ = 0;
};

/** Running mean of a stream of samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++n_;
    }

    void
    reset()
    {
        sum_ = 0.0;
        n_ = 0;
    }

    std::uint64_t samples() const { return n_; }
    double sum() const { return sum_; }

    /** Snapshot restore: overwrite the accumulator state. */
    void
    restore(double sum, std::uint64_t n)
    {
        sum_ = sum;
        n_ = n;
    }

    /**
     * Mean of all samples; NaN when empty. An empty average has no
     * mean, and 0 would be indistinguishable from a real zero — the
     * JSON exporters render the NaN as null.
     */
    double mean() const;

  private:
    double sum_ = 0.0;
    std::uint64_t n_ = 0;
};

/**
 * Histogram over small non-negative integer values. Values at or above
 * the bucket count accumulate in the final (overflow) bucket.
 */
class Histogram
{
  public:
    /** @param buckets Number of exact buckets [0, buckets-1] + overflow. */
    explicit Histogram(std::size_t buckets = 16);

    /** Record one observation of @p v. */
    void sample(std::uint64_t v, std::uint64_t weight = 1);

    void reset();

    /** Total number of recorded observations. */
    std::uint64_t total() const { return total_; }

    /** Raw count in bucket @p b (the last bucket holds the overflow). */
    std::uint64_t bucket(std::size_t b) const;

    /** Number of buckets including the overflow bucket. */
    std::size_t size() const { return counts_.size(); }

    /** Fraction of observations in bucket @p b (0 when empty). */
    double fraction(std::size_t b) const;

    /** Fraction of observations with value >= v (0 when empty). */
    double fractionAtLeast(std::uint64_t v) const;

    /** Mean observed value (overflow bucket counted at its floor);
     *  NaN when no observation was recorded (null in JSON). */
    double mean() const;

    /** Weighted sum accumulator backing mean(); exposed so snapshots
     *  can round-trip it bit-exactly. */
    double weightedSum() const { return weightedSum_; }

    /** Snapshot restore: overwrite all accumulators. @p counts must
     *  match the bucket layout this histogram was built with. */
    void restore(const std::vector<std::uint64_t> &counts,
                 std::uint64_t total, double weightedSum);

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    double weightedSum_ = 0.0;
};

/**
 * A named collection of counters owned by one hardware model.
 * Lookup auto-creates, so models can write
 * `stats.counter("rf.read_accesses").inc()` without registration code.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    Counter &counter(const std::string &key);
    Average &average(const std::string &key);
    Histogram &histogram(const std::string &key, std::size_t buckets = 16);

    /** Read-only counter value; 0 if never touched. */
    std::uint64_t counterValue(const std::string &key) const;

    const std::string &name() const { return name_; }
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    void resetAll();

    /**
     * Migration shim into the observability layer: export every
     * counter, average and histogram of this group into @p out under
     * `<prefix>.<key>` (averages as `.mean` + `.samples`). The group
     * itself stays the component-local accounting API, so call sites
     * and bench stdout are untouched.
     */
    void exportTo(MetricsRegistry &out,
                  const std::string &prefix) const;

    /**
     * Serialize every counter, average and histogram for a snapshot.
     * Doubles keep full precision through the JSON codec (shortest
     * round-trip formatting); empty means are NaN and render as null.
     */
    JsonValue saveJson() const;

    /**
     * Snapshot restore: overwrite this group's state from saveJson()
     * output. Nodes are mutated in place through the auto-creating
     * lookups, so raw Counter pointers cached by the owning model
     * stay valid across a restore.
     */
    void loadJson(const JsonValue &v);

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Average> averages_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace bow

#endif // BOWSIM_COMMON_STATS_H
