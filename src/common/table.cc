#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/log.h"

namespace bow {

std::string
formatPct(double fraction, int precision)
{
    if (std::isnan(fraction))
        return "n/a";
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision)
       << fraction * 100.0 << "%";
    return os.str();
}

std::string
formatFixed(double v, int precision)
{
    if (std::isnan(v))
        return "n/a";
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
formatImprovement(double pct, int precision)
{
    if (std::isnan(pct))
        return "n/a";
    return formatFixed(pct, precision) + "%";
}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    if (!header_.empty() && row.size() != header_.size())
        panic(strf("Table '", title_, "': row width ", row.size(),
                   " != header width ", header_.size()));
    rows_.push_back(std::move(row));
}

Table &
Table::beginRow()
{
    flushPending();
    hasPending_ = true;
    return *this;
}

Table &
Table::cell(const std::string &text)
{
    pending_.push_back(text);
    return *this;
}

Table &
Table::cell(double v, int precision)
{
    return cell(formatFixed(v, precision));
}

Table &
Table::cell(std::uint64_t v)
{
    return cell(std::to_string(v));
}

Table &
Table::pct(double fraction, int precision)
{
    return cell(formatPct(fraction, precision));
}

void
Table::flushPending()
{
    if (hasPending_) {
        addRow(std::move(pending_));
        pending_.clear();
        hasPending_ = false;
    }
}

void
Table::print(std::ostream &os) const
{
    // A const-friendly copy flush: render pending row too if present.
    std::vector<std::vector<std::string>> rows = rows_;
    if (hasPending_)
        rows.push_back(pending_);

    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto &r : rows)
        widen(r);

    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << row[i];
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows)
        emit(r);
    os << "\n";

    if (std::getenv("BOWSIM_CSV")) {
        os << "#csv " << title_ << "\n";
        printCsv(os);
        os << "#endcsv\n\n";
    }
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ",";
            os << row[i];
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
    if (hasPending_)
        emit(pending_);
}

} // namespace bow
