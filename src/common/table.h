/**
 * @file
 * Plain-text table printer used by the bench harnesses to emit the
 * same rows/series the paper's tables and figures report. Supports
 * aligned ASCII output and CSV.
 */

#ifndef BOWSIM_COMMON_TABLE_H
#define BOWSIM_COMMON_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace bow {

/** A rectangular table of strings with a header row and a title. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the column headers; defines the expected row width. */
    void setHeader(std::vector<std::string> header);

    /** Append a pre-formatted row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Start a new row builder. */
    Table &beginRow();
    /** Append one cell to the row under construction. */
    Table &cell(const std::string &text);
    /** Append a formatted numeric cell (fixed, @p precision digits). */
    Table &cell(double v, int precision = 2);
    /** Append an integer cell. */
    Table &cell(std::uint64_t v);
    /** Append a percentage cell ("12.3%"). */
    Table &pct(double fraction, int precision = 1);

    /**
     * Render as aligned ASCII art. When the BOWSIM_CSV environment
     * variable is set, a machine-readable CSV block (fenced by
     * `#csv <title>` / `#endcsv`) follows the table so bench output
     * can be piped straight into plotting scripts.
     */
    void print(std::ostream &os) const;

    /** Render as CSV (header + rows, no title). */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    void flushPending();

    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> pending_;
    bool hasPending_ = false;
};

/** Format a fraction as a percent string, e.g. 0.123 -> "12.3%".
 *  NaN (an undefined ratio, e.g. against a zero baseline) renders
 *  as "n/a". */
std::string formatPct(double fraction, int precision = 1);

/** Format a double with fixed precision; NaN renders as "n/a". */
std::string formatFixed(double v, int precision = 2);

/** Format an improvementPct() value: "12.3%", or "n/a" for the NaN
 *  a zero baseline produces. */
std::string formatImprovement(double pct, int precision = 1);

} // namespace bow

#endif // BOWSIM_COMMON_TABLE_H
