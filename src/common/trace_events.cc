#include "common/trace_events.h"

#include <cstdlib>
#include <fstream>
#include <ostream>
#include <set>

#include "common/json.h"
#include "common/log.h"

namespace bow {

const char *
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::Issue:       return "issue";
      case TraceEventKind::Stall:       return "stall";
      case TraceEventKind::Dispatch:    return "dispatch";
      case TraceEventKind::Bypass:      return "bypass";
      case TraceEventKind::Deposit:     return "deposit";
      case TraceEventKind::Writeback:   return "writeback";
      case TraceEventKind::Consolidate: return "consolidate";
      case TraceEventKind::Complete:    return "complete";
    }
    panic("traceEventKindName: bad kind");
}

TraceConfig
TraceConfig::parseCycleRange(const std::string &spec)
{
    TraceConfig cfg;
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos)
        fatal(strf("--trace-cycles wants A:B (got '", spec, "')"));

    const auto parseBound = [&](const std::string &s,
                                Cycle fallback) -> Cycle {
        if (s.empty())
            return fallback;
        char *end = nullptr;
        const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
        if (end == s.c_str() || *end != '\0')
            fatal(strf("--trace-cycles: bad cycle bound '", s, "'"));
        return static_cast<Cycle>(v);
    };

    cfg.firstCycle = parseBound(spec.substr(0, colon), 0);
    cfg.lastCycle = parseBound(spec.substr(colon + 1), kNoCycle);
    if (cfg.lastCycle <= cfg.firstCycle)
        fatal(strf("--trace-cycles: empty window ", cfg.firstCycle,
                   ":", cfg.lastCycle));
    return cfg;
}

TraceSink::TraceSink(TraceConfig config)
    : config_(config)
{
    if (config_.capacity == 0)
        fatal("TraceSink: capacity must be positive");
    events_.resize(config_.capacity);
}

std::vector<TraceEvent>
TraceSink::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(recorded_);
    // When the ring wrapped, the oldest retained event sits at
    // head_; otherwise the buffer filled from index 0.
    const std::size_t start =
        recorded_ < events_.size() ? 0 : head_;
    for (std::size_t i = 0; i < recorded_; ++i)
        out.push_back(events_[(start + i) % events_.size()]);
    return out;
}

void
TraceSink::writeChromeJson(std::ostream &os,
                           const std::string &label) const
{
    const std::vector<TraceEvent> events = snapshot();

    os << "{\"traceEvents\":[\n";
    // Metadata: name the process after the workload and give every
    // warp that appears a named thread lane.
    os << " {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
          "\"tid\":0,\"args\":{\"name\":\"SM0: "
       << jsonEscape(label) << "\"}}";
    std::set<WarpId> warps;
    for (const TraceEvent &ev : events)
        warps.insert(ev.warp);
    for (const WarpId w : warps) {
        os << ",\n {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
              "\"tid\":" << w << ",\"args\":{\"name\":\"warp " << w
           << "\"}}";
    }

    for (const TraceEvent &ev : events) {
        os << ",\n {\"name\":\"" << traceEventKindName(ev.kind)
           << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << ev.warp
           << ",\"ts\":" << ev.ts
           << ",\"dur\":" << (ev.dur ? ev.dur : 1) << ",\"args\":{";
        bool first = true;
        const auto arg = [&](const char *key, std::uint64_t v) {
            os << (first ? "" : ",") << "\"" << key << "\":" << v;
            first = false;
        };
        if (ev.reg != kNoReg)
            arg("reg", ev.reg);
        switch (ev.kind) {
          case TraceEventKind::Issue:
          case TraceEventKind::Dispatch:
          case TraceEventKind::Complete:
            arg("pc", ev.arg);
            break;
          case TraceEventKind::Bypass:
            arg("forwarded", ev.arg);
            break;
          case TraceEventKind::Writeback:
            arg("rf", (ev.arg & kTraceWbRf) ? 1 : 0);
            arg("boc", (ev.arg & kTraceWbBoc) ? 1 : 0);
            break;
          case TraceEventKind::Stall:
          case TraceEventKind::Deposit:
          case TraceEventKind::Consolidate:
            break;
        }
        os << "}}";
    }

    os << "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{"
          "\"tool\":\"bowsim\",\"dropped_events\":" << dropped_
       << "}}\n";
}

void
writeChromeTraceFile(const std::string &path, const TraceSink &sink,
                     const std::string &label)
{
    std::ofstream out(path);
    if (!out)
        fatal(strf("cannot open trace output file '", path, "'"));
    sink.writeChromeJson(out, label);
    if (!out)
        fatal(strf("failed writing trace to '", path, "'"));
}

} // namespace bow
