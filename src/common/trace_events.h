/**
 * @file
 * Opt-in per-cycle event tracer emitting Chrome `trace_event` JSON
 * (the format chrome://tracing and Perfetto load natively). The SM
 * core emits issue / stall / dispatch / bypass / deposit / writeback
 * / consolidation events; each becomes a complete ("ph":"X") slice
 * with ts = simulation cycle (rendered as microseconds), pid = the
 * SM and tid = the warp, so a BOW run reads as one swim-lane per
 * warp with bypasses and write-backs visible inline.
 *
 * Cost model:
 *  - Disabled (no TraceSink wired in): the hot path pays exactly one
 *    null-pointer test per would-be event.
 *  - Enabled: events outside the sampled cycle window are dropped by
 *    an integer range check; in-window events are POD stores into a
 *    ring buffer preallocated at construction. emit() never
 *    allocates, so a tracer can stay armed across a long run and
 *    keep only the newest `capacity` events.
 *
 * The trace schema is documented in docs/OBSERVABILITY.md.
 */

#ifndef BOWSIM_COMMON_TRACE_EVENTS_H
#define BOWSIM_COMMON_TRACE_EVENTS_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace bow {

/** What happened (the Chrome event name). */
enum class TraceEventKind : std::uint8_t
{
    Issue,       ///< instruction entered a collector slot
    Stall,       ///< scheduler picked a warp it could not issue
    Dispatch,    ///< operands complete, sent to an execution unit
    Bypass,      ///< source operands forwarded from the BOC
    Deposit,     ///< fetched operand deposited into the BOC
    Writeback,   ///< result written (RF, BOC, or both)
    Consolidate, ///< BOC write superseded a dirty value (write
                 ///< consolidation)
    Complete     ///< instruction retired
};

/** Chrome event name for @p kind ("issue", "bypass", ...). */
const char *traceEventKindName(TraceEventKind kind);

/** One recorded event; plain data, 24 bytes. */
struct TraceEvent
{
    Cycle ts = 0;          ///< cycle the event happened
    std::uint32_t dur = 1; ///< duration in cycles (slice width)
    TraceEventKind kind = TraceEventKind::Issue;
    WarpId warp = 0;
    RegId reg = kNoReg;    ///< register involved (kNoReg = none)
    std::uint32_t arg = 0; ///< kind-specific payload (pc, count,
                           ///< stall reason, destination mask)
};

/** Writeback destinations (TraceEvent::arg of Writeback events). */
enum : std::uint32_t
{
    kTraceWbRf = 1,  ///< register-file write
    kTraceWbBoc = 2, ///< BOC write
};

/** Sampling window + buffering configuration. */
struct TraceConfig
{
    Cycle firstCycle = 0;                    ///< inclusive
    Cycle lastCycle = kNoCycle;              ///< exclusive
    std::size_t capacity = 1u << 20;         ///< ring-buffer entries

    /** Parse "A:B" (cycles, B exclusive; empty sides default to
     *  0 / unlimited). fatal()s on malformed input. */
    static TraceConfig parseCycleRange(const std::string &spec);
};

/**
 * Ring-buffered event sink. Not thread-safe by design: one SmCore
 * owns one sink (simulations are single-threaded internally; the
 * ParallelRunner path never traces).
 */
class TraceSink
{
  public:
    explicit TraceSink(TraceConfig config = {});

    /** True when cycle @p c is inside the sampled window. Callers
     *  use this as the cheap guard before building an event. */
    bool
    wants(Cycle c) const
    {
        return c >= config_.firstCycle && c < config_.lastCycle;
    }

    /** Record @p ev (in-window check included). Never allocates. */
    void
    emit(const TraceEvent &ev)
    {
        if (!wants(ev.ts))
            return;
        events_[head_] = ev;
        head_ = (head_ + 1) % events_.size();
        if (recorded_ < events_.size())
            ++recorded_;
        else
            ++dropped_;
    }

    /** Events currently held (<= capacity). */
    std::size_t recorded() const { return recorded_; }

    /** Events overwritten after the ring filled. */
    std::uint64_t dropped() const { return dropped_; }

    std::size_t capacity() const { return events_.size(); }

    /** Buffer address — lets tests pin the no-reallocation
     *  guarantee. */
    const TraceEvent *data() const { return events_.data(); }

    /** Oldest-to-newest snapshot of the retained events. */
    std::vector<TraceEvent> snapshot() const;

    /**
     * Write the Chrome trace_event JSON document: process/thread
     * name metadata plus one "X" slice per retained event, in
     * emission order. @p label names the process (the workload).
     */
    void writeChromeJson(std::ostream &os,
                         const std::string &label) const;

    const TraceConfig &config() const { return config_; }

  private:
    TraceConfig config_;
    std::vector<TraceEvent> events_;
    std::size_t head_ = 0;
    std::size_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
};

/** writeChromeJson() to @p path; fatal()s on I/O failure. */
void writeChromeTraceFile(const std::string &path,
                          const TraceSink &sink,
                          const std::string &label);

} // namespace bow

#endif // BOWSIM_COMMON_TRACE_EVENTS_H
