/**
 * @file
 * Fundamental scalar types shared by every bowsim module.
 */

#ifndef BOWSIM_COMMON_TYPES_H
#define BOWSIM_COMMON_TYPES_H

#include <cstdint>
#include <limits>

namespace bow {

/** Simulation time, measured in SM core clock cycles. */
using Cycle = std::uint64_t;

/** Architectural warp-register identifier ($r0 .. $r254). */
using RegId = std::uint16_t;

/** Hardware warp slot index within an SM (0 .. warpsPerSm-1). */
using WarpId = std::uint16_t;

/** Register-file bank index (0 .. numBanks-1). */
using BankId = std::uint16_t;

/** Index of an instruction within a kernel's flat instruction list. */
using InstIdx = std::uint32_t;

/** Monotonic per-warp dynamic instruction sequence number. */
using SeqNum = std::uint64_t;

/** A 32-bit warp-uniform register value (thread lanes are lock-step). */
using Value = std::uint32_t;

/** Sentinel meaning "no register operand present". */
inline constexpr RegId kNoReg = std::numeric_limits<RegId>::max();

/** Sentinel meaning "invalid / not-yet-assigned instruction index". */
inline constexpr InstIdx kNoInst = std::numeric_limits<InstIdx>::max();

/** Sentinel cycle value meaning "never / unset". */
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

} // namespace bow

#endif // BOWSIM_COMMON_TYPES_H
