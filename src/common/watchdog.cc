#include "common/watchdog.h"

#include "common/log.h"

namespace bow {

namespace {

/** Checkpoints between wall-clock probes (power of two). */
constexpr std::uint32_t kWallCheckInterval = 4096;

} // namespace

Watchdog::Watchdog(Limits limits)
    : limits_(limits)
{
    if (limits_.wallSeconds > 0.0) {
        deadline_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(limits_.wallSeconds));
    }
}

void
Watchdog::checkpoint(std::uint64_t cycle) const
{
    if (limits_.cycleBudget && cycle >= limits_.cycleBudget) {
        throw HangError(strf("watchdog: simulation exceeded its ",
                             limits_.cycleBudget,
                             "-cycle budget (hang)"));
    }
    if (cancelled_.load(std::memory_order_relaxed))
        throw HangError("watchdog: simulation cancelled");
    if (limits_.wallSeconds > 0.0 &&
        sinceWallCheck_.fetch_add(1, std::memory_order_relaxed) + 1 >=
            kWallCheckInterval) {
        sinceWallCheck_.store(0, std::memory_order_relaxed);
        if (std::chrono::steady_clock::now() >= deadline_) {
            throw HangError(strf("watchdog: simulation exceeded its ",
                                 limits_.wallSeconds,
                                 "s wall-clock deadline (hang)"));
        }
    }
}

void
Watchdog::cancel()
{
    cancelled_.store(true);
}

} // namespace bow
