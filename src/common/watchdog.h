/**
 * @file
 * Cooperative per-simulation watchdog. A simulation loop calls
 * checkpoint(cycle) once per cycle; the watchdog throws HangError
 * when the simulation exceeds its cycle budget, overruns a wall-clock
 * deadline, or has been cancelled from another thread. This is how a
 * hung simulation in a parallel batch is reported as a per-item
 * `hang` result instead of stalling the whole pool.
 *
 * The cycle budget is the deterministic limit (a fault campaign sets
 * it to a fixed multiple of the clean run's cycle count, so hang
 * classification is identical at any job count); the wall-clock
 * deadline is a non-deterministic safety net for truly runaway
 * simulations and is only checked every few thousand checkpoints to
 * keep the fast path at two integer compares.
 */

#ifndef BOWSIM_COMMON_WATCHDOG_H
#define BOWSIM_COMMON_WATCHDOG_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace bow {

class Watchdog
{
  public:
    /** Limits; a zero field means "unlimited" for that dimension. */
    struct Limits
    {
        /** Deterministic: abort once the simulation reaches this many
         *  cycles (checked at every checkpoint). */
        std::uint64_t cycleBudget = 0;
        /** Safety net: abort once this much wall time has elapsed
         *  since construction (checked every ~4k checkpoints). */
        double wallSeconds = 0.0;

        bool
        any() const
        {
            return cycleBudget != 0 || wallSeconds > 0.0;
        }
    };

    explicit Watchdog(Limits limits);

    /**
     * Called by the simulation loop once per cycle. Throws HangError
     * when a limit is exceeded or cancel() was called.
     */
    void checkpoint(std::uint64_t cycle) const;

    /** Ask the watched simulation to abort at its next checkpoint.
     *  Safe to call from any thread. */
    void cancel();

    bool cancelled() const { return cancelled_.load(); }

    const Limits &limits() const { return limits_; }

  private:
    Limits limits_;
    std::chrono::steady_clock::time_point deadline_;
    std::atomic<bool> cancelled_{false};
    /** Checkpoints since the last wall-clock probe. Atomic because
     *  one Watchdog may be shared by the SmCores of a GpuCore, whose
     *  parallel stepping checkpoints from several host threads; the
     *  counter is a probe throttle, so relaxed ordering (and the
     *  occasional lost increment under contention) is fine. */
    mutable std::atomic<std::uint32_t> sinceWallCheck_{0};
};

} // namespace bow

#endif // BOWSIM_COMMON_WATCHDOG_H
