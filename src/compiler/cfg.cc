#include "compiler/cfg.h"

#include <algorithm>

#include "common/log.h"

namespace bow {

Cfg::Cfg(const Kernel &kernel)
    : kernel_(&kernel)
{
    if (!kernel.finalized())
        panic("Cfg: kernel not finalized");

    const auto &leaders = kernel.leaders();
    blocks_.reserve(leaders.size());
    for (std::size_t b = 0; b < leaders.size(); ++b) {
        BasicBlock blk;
        blk.first = leaders[b];
        blk.last = (b + 1 < leaders.size())
            ? leaders[b + 1] - 1
            : static_cast<InstIdx>(kernel.size() - 1);
        blocks_.push_back(blk);
    }

    blockOf_.assign(kernel.size(), 0);
    for (unsigned b = 0; b < blocks_.size(); ++b) {
        for (InstIdx i = blocks_[b].first; i <= blocks_[b].last; ++i)
            blockOf_[i] = b;
    }

    for (unsigned b = 0; b < blocks_.size(); ++b) {
        const Instruction &term = kernel.inst(blocks_[b].last);
        auto link = [&](unsigned succ) {
            blocks_[b].succs.push_back(succ);
            blocks_[succ].preds.push_back(b);
        };
        if (term.endsWarp())
            continue;
        if (term.isBranch()) {
            link(blockOf_[term.branchTarget]);
            // A guarded branch falls through when the predicate fails.
            if (term.pred != kNoReg && b + 1 < blocks_.size())
                link(b + 1);
        } else if (b + 1 < blocks_.size()) {
            link(b + 1);
        }
    }
}

const BasicBlock &
Cfg::block(unsigned b) const
{
    if (b >= blocks_.size())
        panic(strf("Cfg::block: index ", b, " out of range"));
    return blocks_[b];
}

unsigned
Cfg::blockOf(InstIdx i) const
{
    if (i >= blockOf_.size())
        panic(strf("Cfg::blockOf: instruction ", i, " out of range"));
    return blockOf_[i];
}

} // namespace bow
