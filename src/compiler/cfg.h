/**
 * @file
 * Control-flow graph over a finalized Kernel: basic blocks with
 * predecessor/successor edges, used by the liveness analysis.
 */

#ifndef BOWSIM_COMPILER_CFG_H
#define BOWSIM_COMPILER_CFG_H

#include <vector>

#include "common/types.h"
#include "isa/kernel.h"

namespace bow {

/** One basic block: the half-open instruction range [first, last]. */
struct BasicBlock
{
    InstIdx first = 0;          ///< index of the leader instruction
    InstIdx last = 0;           ///< index of the final instruction
    std::vector<unsigned> succs;
    std::vector<unsigned> preds;

    std::size_t
    size() const
    {
        return static_cast<std::size_t>(last) - first + 1;
    }
};

/** Control-flow graph of a kernel. */
class Cfg
{
  public:
    /** Build the CFG; @p kernel must be finalized. */
    explicit Cfg(const Kernel &kernel);

    const Kernel &kernel() const { return *kernel_; }
    std::size_t numBlocks() const { return blocks_.size(); }
    const BasicBlock &block(unsigned b) const;
    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    /** Block index containing instruction @p i. */
    unsigned blockOf(InstIdx i) const;

  private:
    const Kernel *kernel_;
    std::vector<BasicBlock> blocks_;
    std::vector<unsigned> blockOf_;
};

} // namespace bow

#endif // BOWSIM_COMPILER_CFG_H
