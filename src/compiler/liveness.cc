#include "compiler/liveness.h"

#include "common/log.h"

namespace bow {

bool
Liveness::isStrongDef(const Instruction &inst)
{
    return inst.hasDest() && inst.pred == kNoReg;
}

Liveness::Liveness(const Cfg &cfg)
    : cfg_(&cfg)
{
    const Kernel &kernel = cfg.kernel();
    const std::size_t nb = cfg.numBlocks();

    // Per-block use (upward-exposed reads) and def (strong kills).
    std::vector<RegSet> use(nb);
    std::vector<RegSet> def(nb);
    for (unsigned b = 0; b < nb; ++b) {
        const BasicBlock &blk = cfg.block(b);
        for (InstIdx i = blk.first; i <= blk.last; ++i) {
            const Instruction &inst = kernel.inst(i);
            for (RegId r : inst.srcRegs()) {
                if (!def[b].test(r))
                    use[b].set(r);
            }
            if (isStrongDef(inst))
                def[b].set(inst.dst);
        }
    }

    // Iterate liveIn/liveOut to a fixed point.
    liveIn_.assign(nb, RegSet());
    liveOut_.assign(nb, RegSet());
    bool changed = true;
    while (changed) {
        changed = false;
        for (unsigned b = nb; b-- > 0;) {
            RegSet out;
            for (unsigned s : cfg.block(b).succs)
                out |= liveIn_[s];
            RegSet in = use[b] | (out & ~def[b]);
            if (out != liveOut_[b] || in != liveIn_[b]) {
                liveOut_[b] = out;
                liveIn_[b] = in;
                changed = true;
            }
        }
    }

    // Per-instruction sets by a backwards in-block sweep.
    instLiveAfter_.assign(kernel.size(), RegSet());
    instLiveBefore_.assign(kernel.size(), RegSet());
    for (unsigned b = 0; b < nb; ++b) {
        const BasicBlock &blk = cfg.block(b);
        RegSet live = liveOut_[b];
        for (InstIdx i = blk.last + 1; i-- > blk.first;) {
            const Instruction &inst = kernel.inst(i);
            instLiveAfter_[i] = live;
            if (isStrongDef(inst))
                live.reset(inst.dst);
            for (RegId r : inst.srcRegs())
                live.set(r);
            instLiveBefore_[i] = live;
            if (i == blk.first)
                break;
        }
    }
}

const RegSet &
Liveness::liveAfter(InstIdx i) const
{
    if (i >= instLiveAfter_.size())
        panic("Liveness::liveAfter: out of range");
    return instLiveAfter_[i];
}

const RegSet &
Liveness::liveBefore(InstIdx i) const
{
    if (i >= instLiveBefore_.size())
        panic("Liveness::liveBefore: out of range");
    return instLiveBefore_[i];
}

const RegSet &
Liveness::liveIn(unsigned b) const
{
    if (b >= liveIn_.size())
        panic("Liveness::liveIn: out of range");
    return liveIn_[b];
}

const RegSet &
Liveness::liveOut(unsigned b) const
{
    if (b >= liveOut_.size())
        panic("Liveness::liveOut: out of range");
    return liveOut_[b];
}

} // namespace bow
