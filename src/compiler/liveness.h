/**
 * @file
 * Classic backwards dataflow liveness analysis over the kernel CFG.
 *
 * Produces per-instruction "live after" sets used by the write-back
 * tagger (paper Sec. IV-B) to decide whether a destination value must
 * eventually reach the register file.
 */

#ifndef BOWSIM_COMPILER_LIVENESS_H
#define BOWSIM_COMPILER_LIVENESS_H

#include <bitset>
#include <vector>

#include "compiler/cfg.h"

namespace bow {

/** Register set: one bit per architectural register id. */
using RegSet = std::bitset<256>;

/** Result of the liveness analysis for one kernel. */
class Liveness
{
  public:
    /** Run the analysis to a fixed point. */
    explicit Liveness(const Cfg &cfg);

    /** Registers live immediately *after* instruction @p i executes. */
    const RegSet &liveAfter(InstIdx i) const;

    /** Registers live immediately *before* instruction @p i executes. */
    const RegSet &liveBefore(InstIdx i) const;

    /** Registers live on entry to block @p b. */
    const RegSet &liveIn(unsigned b) const;

    /** Registers live on exit from block @p b. */
    const RegSet &liveOut(unsigned b) const;

    /**
     * True when instruction @p i writes its destination
     * unconditionally (an unguarded instruction with a destination);
     * guarded writes are weak defs that do not kill liveness.
     */
    static bool isStrongDef(const Instruction &inst);

  private:
    const Cfg *cfg_;
    std::vector<RegSet> liveIn_;
    std::vector<RegSet> liveOut_;
    std::vector<RegSet> instLiveAfter_;
    std::vector<RegSet> instLiveBefore_;
};

} // namespace bow

#endif // BOWSIM_COMPILER_LIVENESS_H
