#include "compiler/reorder.h"

#include <algorithm>
#include <vector>

#include "common/log.h"
#include "compiler/cfg.h"

namespace bow {

namespace {

/** True when instruction order between @p a and @p b must be kept. */
bool
mustOrder(const Instruction &a, const Instruction &b)
{
    // Barriers order against everything.
    if (a.op == Opcode::BAR || b.op == Opcode::BAR)
        return true;
    // Memory operations keep their program order (the SM dispatches
    // them in order; reordering loads past stores would need alias
    // analysis we do not have).
    if (a.isMemory() && b.isMemory())
        return true;

    auto writes = [](const Instruction &i, RegId r) {
        return i.hasDest() && i.dst == r;
    };
    // RAW: b reads something a writes.
    for (RegId r : b.srcRegs()) {
        if (writes(a, r))
            return true;
    }
    // WAR: b writes something a reads.
    if (b.hasDest()) {
        for (RegId r : a.srcRegs()) {
            if (r == b.dst)
                return true;
        }
    }
    // WAW.
    if (a.hasDest() && b.hasDest() && a.dst == b.dst)
        return true;
    return false;
}

/** Greedy bypass-aware list scheduling of one block's instructions.
 *  @return the chosen permutation (indices into @p insts). */
std::vector<std::size_t>
scheduleBlock(const std::vector<Instruction> &insts,
              unsigned windowSize)
{
    const std::size_t n = insts.size();
    std::vector<std::vector<std::size_t>> succs(n);
    std::vector<unsigned> preds(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            if (mustOrder(insts[i], insts[j])) {
                succs[i].push_back(j);
                ++preds[j];
            }
        }
    }

    // Pin a terminating instruction last by making everything its
    // predecessor.
    if (n > 0 &&
        (insts[n - 1].isBranch() || insts[n - 1].endsWarp())) {
        for (std::size_t i = 0; i + 1 < n; ++i) {
            if (std::find(succs[i].begin(), succs[i].end(), n - 1) ==
                succs[i].end()) {
                succs[i].push_back(n - 1);
                ++preds[n - 1];
            }
        }
    }

    // lastWrite[r]: position (in the new order) of the latest write.
    std::vector<std::int64_t> lastWrite(256, -1);
    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<bool> scheduled(n, false);

    for (std::size_t step = 0; step < n; ++step) {
        const auto pos = static_cast<std::int64_t>(step);
        std::size_t best = n;
        std::int64_t bestScore = -1;
        for (std::size_t c = 0; c < n; ++c) {
            if (scheduled[c] || preds[c] != 0)
                continue;
            // Score: prefer consumers of freshly produced values;
            // the fresher the producer, the better.
            std::int64_t score = 0;
            for (RegId r : insts[c].uniqueSrcRegs()) {
                if (lastWrite[r] < 0)
                    continue;
                const std::int64_t dist = pos - lastWrite[r];
                if (dist < static_cast<std::int64_t>(windowSize))
                    score += 2 * (static_cast<std::int64_t>(
                                      windowSize) - dist);
            }
            // Stable tie-break: earliest original position wins, so
            // an all-zero scoring keeps program order.
            if (score > bestScore) {
                bestScore = score;
                best = c;
            }
        }
        if (best == n)
            panic("reorderForBypass: dependence cycle in a basic "
                  "block");
        scheduled[best] = true;
        order.push_back(best);
        for (std::size_t s : succs[best])
            --preds[s];
        if (insts[best].hasDest())
            lastWrite[insts[best].dst] = pos;
    }
    return order;
}

/**
 * Static bypassability estimate of an ordering: reads whose distance
 * from the previous access of the same register (chain semantics)
 * is below the window size.
 */
std::uint64_t
inWindowReads(const std::vector<Instruction> &insts,
              const std::vector<std::size_t> &order,
              unsigned windowSize)
{
    std::vector<std::int64_t> lastAccess(256, -1);
    std::uint64_t hits = 0;
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        const Instruction &inst = insts[order[pos]];
        for (RegId r : inst.uniqueSrcRegs()) {
            const auto p = static_cast<std::int64_t>(pos);
            if (lastAccess[r] >= 0 &&
                p - lastAccess[r] <
                    static_cast<std::int64_t>(windowSize)) {
                ++hits;
            }
            lastAccess[r] = p;
        }
        if (inst.hasDest())
            lastAccess[inst.dst] = static_cast<std::int64_t>(pos);
    }
    return hits;
}

} // namespace

ReorderStats
reorderForBypass(Kernel &kernel, unsigned windowSize)
{
    if (windowSize < 2)
        fatal("reorderForBypass: window size must be at least 2");
    if (!kernel.finalized())
        panic("reorderForBypass: kernel not finalized");

    ReorderStats stats;
    const Cfg cfg(kernel);

    for (unsigned b = 0; b < cfg.numBlocks(); ++b) {
        const BasicBlock &blk = cfg.block(b);
        ++stats.blocksVisited;
        if (blk.size() < 3)
            continue;

        std::vector<Instruction> insts;
        insts.reserve(blk.size());
        for (InstIdx i = blk.first; i <= blk.last; ++i)
            insts.push_back(kernel.inst(i));

        const auto order = scheduleBlock(insts, windowSize);

        // Keep the original order unless the schedule strictly
        // improves the static in-window read count: never regress
        // code the compiler already laid out well.
        std::vector<std::size_t> identity(insts.size());
        for (std::size_t k = 0; k < identity.size(); ++k)
            identity[k] = k;
        if (inWindowReads(insts, order, windowSize) <=
            inWindowReads(insts, identity, windowSize)) {
            continue;
        }

        bool changed = false;
        for (std::size_t k = 0; k < order.size(); ++k) {
            if (order[k] != k) {
                changed = true;
                ++stats.instsMoved;
            }
        }
        if (!changed)
            continue;
        ++stats.blocksChanged;
        for (std::size_t k = 0; k < order.size(); ++k) {
            kernel.inst(blk.first + static_cast<InstIdx>(k)) =
                insts[order[k]];
        }
    }
    kernel.finalize();
    return stats;
}

} // namespace bow
