/**
 * @file
 * Bypass-aware instruction scheduling — the compiler optimisation the
 * paper leaves as future work (Sec. IV footnote: "further compiler
 * optimizations to reorder instructions to increase bypassing
 * opportunities are possible").
 *
 * Within each basic block, independent instructions are greedily
 * list-scheduled so that consumers move closer to their producers,
 * shrinking operand reuse distances below the BOC window size. All
 * register (RAW/WAR/WAW, including guard predicates) and memory
 * dependences are preserved, barriers are kept in place, and block
 * terminators stay terminal, so the transformed kernel is
 * functionally identical.
 */

#ifndef BOWSIM_COMPILER_REORDER_H
#define BOWSIM_COMPILER_REORDER_H

#include "isa/kernel.h"

namespace bow {

/** Summary of a reordering pass. */
struct ReorderStats
{
    unsigned blocksVisited = 0;
    unsigned blocksChanged = 0;
    unsigned instsMoved = 0;    ///< instructions at a new position
};

/**
 * Reorder @p kernel in place to improve bypassing for windows of
 * @p windowSize instructions. The kernel is re-finalized before
 * returning. Run this *before* tagWritebacks().
 */
ReorderStats reorderForBypass(Kernel &kernel, unsigned windowSize);

} // namespace bow

#endif // BOWSIM_COMPILER_REORDER_H
