#include "compiler/reuse.h"

#include "common/log.h"

namespace bow {

ReuseStats &
ReuseStats::operator+=(const ReuseStats &o)
{
    totalReads += o.totalReads;
    bypassedReads += o.bypassedReads;
    totalWrites += o.totalWrites;
    bypassedWrites += o.bypassedWrites;
    return *this;
}

namespace {

/**
 * Per-register bookkeeping while scanning one warp's dynamic stream.
 *
 * A write's fate is decided lazily: it stays "pending" until either a
 * consumer falls out of the residency chain (the value had to be
 * fetched from the RF, so the write could not be bypassed), or the
 * value is redefined / the warp ends while every consumer so far
 * stayed inside the chain (the write never needed to reach the RF).
 */
struct RegState
{
    std::uint64_t lastAccess = 0;   ///< dynamic position of last access
    bool touched = false;           ///< any access seen yet
    bool pendingWrite = false;      ///< a write awaits its verdict
};

} // namespace

ReuseStats
analyzeReuse(const Kernel &kernel, const std::vector<WarpTrace> &traces,
             unsigned windowSize)
{
    if (windowSize < 2)
        fatal("analyzeReuse: window size must be at least 2");

    ReuseStats stats;
    std::vector<RegState> regs;

    for (const WarpTrace &trace : traces) {
        regs.assign(256, RegState());

        for (std::uint64_t t = 0; t < trace.insts.size(); ++t) {
            const DynInst &dyn = trace.insts[t];
            const Instruction &inst = kernel.inst(dyn.idx);

            // Reads first (sources are consumed before the destination
            // is produced).
            for (RegId r : inst.uniqueSrcRegs()) {
                RegState &st = regs[r];
                ++stats.totalReads;
                const bool resident = st.touched &&
                    (t - st.lastAccess) < windowSize;
                if (resident) {
                    ++stats.bypassedReads;
                } else if (st.pendingWrite) {
                    // This consumer had to refetch the value from the
                    // register file, so the pending write was forced
                    // to reach the RF: verdict "not bypassed".
                    st.pendingWrite = false;
                }
                st.lastAccess = t;
                st.touched = true;
            }

            // Then the write.
            if (inst.hasDest() && dyn.wrote) {
                RegState &st = regs[inst.dst];
                ++stats.totalWrites;
                // If the previous write is still pending, every read
                // of its value (if any) stayed inside the residency
                // chain, and it is now superseded: the RF write was
                // avoidable.
                if (st.pendingWrite)
                    ++stats.bypassedWrites;
                st.pendingWrite = true;
                st.lastAccess = t;
                st.touched = true;
            }
        }

        // Warp finished: a still-pending write's value is dead, so its
        // RF write-back was avoidable.
        for (RegState &st : regs) {
            if (st.pendingWrite)
                ++stats.bypassedWrites;
        }
    }
    return stats;
}

std::vector<std::uint64_t>
sourceOperandHistogram(const Kernel &kernel,
                       const std::vector<WarpTrace> &traces)
{
    std::vector<std::uint64_t> counts(4, 0);
    for (const WarpTrace &trace : traces) {
        for (const DynInst &dyn : trace.insts) {
            const Instruction &inst = kernel.inst(dyn.idx);
            unsigned n = inst.numRegSrcs();
            if (n > 3)
                n = 3;
            ++counts[n];
        }
    }
    return counts;
}

} // namespace bow
