/**
 * @file
 * Dynamic operand-reuse analysis over executed warp traces: the
 * characterisation behind the paper's Figure 3 (fraction of register
 * read and write requests that operand bypassing can eliminate, as a
 * function of the instruction-window size).
 *
 * The model matches the BOC's sliding *extended* window semantics:
 * a value becomes resident in the bypass buffer when it is accessed
 * (written, or fetched by a read) and stays resident as long as each
 * subsequent access to it falls within `windowSize` dynamic
 * instructions of the previous access.
 */

#ifndef BOWSIM_COMPILER_REUSE_H
#define BOWSIM_COMPILER_REUSE_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "isa/kernel.h"

namespace bow {

/** One executed instruction in a warp's dynamic stream. */
struct DynInst
{
    InstIdx idx = 0;    ///< static instruction index
    bool wrote = false; ///< destination was actually written
                        ///< (false when a guard predicate failed)
};

/** The full dynamic instruction stream of one warp. */
struct WarpTrace
{
    std::vector<DynInst> insts;
};

/** Counts of bypassable register-file requests in a trace. */
struct ReuseStats
{
    std::uint64_t totalReads = 0;
    std::uint64_t bypassedReads = 0;
    std::uint64_t totalWrites = 0;
    std::uint64_t bypassedWrites = 0;

    double
    readFraction() const
    {
        return totalReads
            ? static_cast<double>(bypassedReads) /
              static_cast<double>(totalReads)
            : 0.0;
    }

    double
    writeFraction() const
    {
        return totalWrites
            ? static_cast<double>(bypassedWrites) /
              static_cast<double>(totalWrites)
            : 0.0;
    }

    ReuseStats &operator+=(const ReuseStats &o);
};

/**
 * Analyze the bypassing opportunity of @p traces for @p windowSize.
 *
 * A *read* of register r is bypassable when the previous access to r
 * in the same warp happened fewer than `windowSize` dynamic
 * instructions earlier (the operand is still in the sliding window).
 *
 * A *write* to register r is bypassable (never needs to reach the RF)
 * when every read of that value before its next redefinition stays
 * inside the residency chain, i.e. no consumer ever has to refetch it
 * from the register file. Values still resident when the warp exits
 * are dead and count as bypassed.
 *
 * @param kernel     The static kernel the traces executed.
 * @param traces     Per-warp dynamic instruction streams.
 * @param windowSize Instruction-window size (IW >= 2).
 */
ReuseStats analyzeReuse(const Kernel &kernel,
                        const std::vector<WarpTrace> &traces,
                        unsigned windowSize);

/**
 * Per-instruction source-register-operand count histogram over a
 * trace (the paper's Figure 8: baseline OCU entry occupancy 0..3).
 *
 * @return counts[k] = dynamic instructions with k register sources.
 */
std::vector<std::uint64_t>
sourceOperandHistogram(const Kernel &kernel,
                       const std::vector<WarpTrace> &traces);

} // namespace bow

#endif // BOWSIM_COMPILER_REUSE_H
