#include "compiler/writeback_tagger.h"

#include <algorithm>

#include "common/log.h"
#include "compiler/cfg.h"
#include "compiler/liveness.h"

namespace bow {

namespace {

/**
 * True when instruction @p inst is guaranteed to read its sources
 * when reached. Guarded instructions may be suppressed entirely, so
 * their reads cannot be relied on to extend a residency chain — with
 * the exception of branches, which always read their guard predicate
 * to decide direction.
 */
bool
readsUnconditionally(const Instruction &inst)
{
    return inst.pred == kNoReg || inst.op == Opcode::BRA;
}

bool
reads(const Instruction &inst, RegId r)
{
    for (RegId s : inst.srcRegs()) {
        if (s == r)
            return true;
    }
    return false;
}

} // namespace

TagStats
tagWritebacks(Kernel &kernel, unsigned windowSize)
{
    if (windowSize < 2)
        fatal("tagWritebacks: window size must be at least 2");

    const Cfg cfg(kernel);
    const Liveness liveness(cfg);
    TagStats stats;

    for (InstIdx i = 0; i < kernel.size(); ++i) {
        Instruction &inst = kernel.inst(i);
        if (!inst.hasDest())
            continue;
        const RegId d = inst.dst;
        const BasicBlock &blk = cfg.block(cfg.blockOf(i));

        // Walk the residency chain of the value defined at i, exactly
        // mirroring the BOC's sliding *extended* window: the value
        // stays buffered while consecutive accesses are fewer than
        // windowSize instructions apart (paper: "immediate reuse
        // distance across all the accesses is always less than IW").
        // The walk is intra-block; dynamic distances across branches
        // are unknown to the compiler, so liveness at the block end
        // decides conservatively.
        InstIdx lastAccess = i;     // guaranteed chain anchor
        bool usedNear = false;      // some read reachable via chain
        bool brokenRead = false;    // some read falls off the chain
        bool killed = false;        // strong redefinition ends life
        InstIdx scanEnd = blk.last;

        for (InstIdx j = i + 1; j <= blk.last; ++j) {
            const Instruction &next = kernel.inst(j);
            if (reads(next, d)) {
                if (j - lastAccess < windowSize) {
                    usedNear = true;
                    if (readsUnconditionally(next))
                        lastAccess = j;
                } else {
                    brokenRead = true;
                }
            }
            if (Liveness::isStrongDef(next) && next.dst == d) {
                killed = true;
                scanEnd = j;
                break;
            }
        }

        const bool liveBeyond =
            !killed && liveness.liveAfter(scanEnd).test(d);
        const bool needsRf = brokenRead || liveBeyond;

        if (!usedNear) {
            inst.hint = WritebackHint::RfOnly;
            ++stats.rfOnly;
        } else if (!needsRf) {
            inst.hint = WritebackHint::BocOnly;
            ++stats.bocOnly;
        } else {
            inst.hint = WritebackHint::BocAndRf;
            ++stats.bocAndRf;
        }
    }
    return stats;
}

void
clearWritebackHints(Kernel &kernel)
{
    for (InstIdx i = 0; i < kernel.size(); ++i)
        kernel.inst(i).hint = WritebackHint::BocAndRf;
}

RfDemand
analyzeRfDemand(const Kernel &kernel)
{
    const Cfg cfg(kernel);
    const Liveness liveness(cfg);

    RfDemand out;
    out.totalGprs = kernel.numGprs();

    for (unsigned r = 0; r < out.totalGprs; ++r) {
        // Live-in registers hold launch parameters: they must exist
        // in the RF before the first instruction runs.
        if (liveness.liveIn(0).test(r))
            continue;
        bool everWritten = false;
        bool needsRf = false;
        for (InstIdx i = 0; i < kernel.size() && !needsRf; ++i) {
            const Instruction &inst = kernel.inst(i);
            if (inst.hasDest() && inst.dst == r) {
                everWritten = true;
                if (inst.hint != WritebackHint::BocOnly)
                    needsRf = true;
            }
        }
        if (everWritten && !needsRf)
            ++out.rfFreeGprs;
    }
    return out;
}

} // namespace bow
