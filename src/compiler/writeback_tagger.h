/**
 * @file
 * Compiler-guided write-back destination tagging (paper Sec. IV-B).
 *
 * For every instruction that produces a destination register the
 * tagger encodes one of three policies in the instruction's two
 * write-back hint bits:
 *
 *  - RfOnly:   the value has no reuse inside the instruction window,
 *              so writing it to the BOC would be wasted work;
 *  - BocOnly:  the value is *transient* — every use happens inside
 *              the window and it is dead afterwards, so it never
 *              needs a register-file write (or an RF allocation);
 *  - BocAndRf: reused inside the window and still live beyond it.
 *
 * The analysis is conservative across basic-block boundaries: reuse
 * is only recognised inside the straight-line window, and liveness
 * beyond the window comes from the global dataflow analysis, so a
 * BocOnly tag is always safe.
 */

#ifndef BOWSIM_COMPILER_WRITEBACK_TAGGER_H
#define BOWSIM_COMPILER_WRITEBACK_TAGGER_H

#include <cstdint>

#include "isa/kernel.h"

namespace bow {

/** Static tagging summary for one kernel. */
struct TagStats
{
    std::uint64_t rfOnly = 0;    ///< instructions tagged RfOnly
    std::uint64_t bocOnly = 0;   ///< instructions tagged BocOnly
    std::uint64_t bocAndRf = 0;  ///< instructions tagged BocAndRf

    std::uint64_t
    total() const
    {
        return rfOnly + bocOnly + bocAndRf;
    }
};

/**
 * Run liveness + window-reuse analysis and set the WritebackHint of
 * every destination-producing instruction in @p kernel.
 *
 * @param kernel      Finalized kernel; hints are updated in place.
 * @param windowSize  The BOC instruction-window size (IW >= 2).
 * @return Static counts of each tag kind.
 */
TagStats tagWritebacks(Kernel &kernel, unsigned windowSize);

/**
 * Clear all hints back to the default (BocAndRf), the behaviour of
 * BOW-WR without compiler support.
 */
void clearWritebackHints(Kernel &kernel);

/**
 * Effective register-file demand after bypassing (paper Sec. IV-B:
 * transient values "no longer need to be allocated a register in the
 * RF", reducing the effective RF size).
 */
struct RfDemand
{
    unsigned totalGprs = 0;   ///< GPRs the kernel names (baseline
                              ///< allocation)
    unsigned rfFreeGprs = 0;  ///< GPRs that never need an RF slot

    /** Fraction of the allocation that can be elided. */
    double
    reduction() const
    {
        return totalGprs
            ? static_cast<double>(rfFreeGprs) /
              static_cast<double>(totalGprs)
            : 0.0;
    }
};

/**
 * Count GPRs that never require RF storage: every write to them is
 * tagged BocOnly and they are not live into the kernel (never read
 * before first written). Call after tagWritebacks(). The estimate is
 * static and assumes the nominal window (capacity-pressure safety
 * write-backs fall back to a reserved spill range in a real design).
 */
RfDemand analyzeRfDemand(const Kernel &kernel);

} // namespace bow

#endif // BOWSIM_COMPILER_WRITEBACK_TAGGER_H
