#include "core/fault_campaign.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/log.h"
#include "common/metrics.h"
#include "sm/functional.h"

namespace bow {

namespace {

/** Final-state lockstep compare against the functional oracle. */
bool
matchesOracle(const SimResult &result, const FunctionalResult &oracle)
{
    if (result.finalRegs.size() != oracle.finalRegs.size())
        return false;
    for (std::size_t w = 0; w < oracle.finalRegs.size(); ++w) {
        if (result.finalRegs[w] != oracle.finalRegs[w])
            return false;
    }
    return result.finalMem.contentsEqual(oracle.finalMem);
}

FaultOutcome
classifyTrial(const SimOutcome &outcome, const FunctionalResult &oracle)
{
    if (!outcome.ok()) {
        switch (outcome.error().kind) {
          case SimError::Kind::Hang:
            return FaultOutcome::Hang;
          case SimError::Kind::Fatal:
          case SimError::Kind::Panic:
          case SimError::Kind::Other:
            // The machine (or the simulator's invariants standing in
            // for its assertion hardware) noticed the corruption.
            // (Kind::Other is intercepted by the transient-error
            // retry loop before classification ever sees it; the arm
            // stays for switch completeness.)
            return FaultOutcome::Detected;
        }
    }
    const SimResult &r = outcome.value();
    if (r.fault.detectedByParity)
        return FaultOutcome::Detected;
    return matchesOracle(r, oracle) ? FaultOutcome::Masked
                                    : FaultOutcome::Sdc;
}

FaultOutcome
parseOutcomeName(const std::string &name, const std::string &line)
{
    if (name == "masked")
        return FaultOutcome::Masked;
    if (name == "sdc")
        return FaultOutcome::Sdc;
    if (name == "detected")
        return FaultOutcome::Detected;
    if (name == "hang")
        return FaultOutcome::Hang;
    if (name == "fatal")
        return FaultOutcome::Fatal;
    fatal(strf("fault checkpoint: bad outcome '", name, "' in line: ",
               line));
}

// ---- Minimal JSONL checkpoint codec -------------------------------
//
// One object per line, flat, fixed keys written by us — so the
// parser only needs key lookup, not a general JSON reader:
//   {"seed":1,"trial":0,"site":"rf","warp":0,"reg":5,"bit":7,
//    "cycle":42,"outcome":"masked","landed":1}
// The device-era keys "sm", "addr" and "cta" — and "healed", which
// records a repaired-by-refetch trial so a resumed campaign reports
// the same healed count as an uninterrupted one — are emitted only
// when nonzero, so rows without them stay byte-identical to the
// historical format; the parser defaults each to 0 when absent.

bool
findNumber(const std::string &line, const std::string &key,
           std::uint64_t &out)
{
    const std::string needle = strf("\"", key, "\":");
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    const char *start = line.c_str() + pos + needle.size();
    char *end = nullptr;
    const unsigned long long v = std::strtoull(start, &end, 10);
    if (end == start)
        return false;
    out = v;
    return true;
}

bool
findString(const std::string &line, const std::string &key,
           std::string &out)
{
    const std::string needle = strf("\"", key, "\":\"");
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    const std::size_t start = pos + needle.size();
    const std::size_t close = line.find('"', start);
    if (close == std::string::npos)
        return false;
    out = line.substr(start, close - start);
    return true;
}

std::string
trialLine(std::uint64_t seed, const FaultTrialResult &t)
{
    std::ostringstream os;
    os << "{\"seed\":" << seed << ",\"trial\":" << t.trial
       << ",\"site\":\"" << faultSiteName(t.plan.site) << "\""
       << ",\"warp\":" << t.plan.warp << ",\"reg\":"
       << static_cast<unsigned>(t.plan.reg)
       << ",\"bit\":" << t.plan.bit << ",\"cycle\":" << t.plan.cycle;
    if (t.plan.sm)
        os << ",\"sm\":" << t.plan.sm;
    if (t.plan.addr)
        os << ",\"addr\":" << t.plan.addr;
    if (t.plan.cta)
        os << ",\"cta\":" << t.plan.cta;
    os << ",\"outcome\":\"" << faultOutcomeName(t.outcome) << "\""
       << ",\"landed\":" << (t.landed ? 1 : 0);
    if (t.healed)
        os << ",\"healed\":1";
    os << "}";
    return os.str();
}

/**
 * Load completed trials from the checkpoint. A truncated final line
 * (the campaign was killed mid-append) is skipped with a warning;
 * a seed mismatch is a fatal() — resuming someone else's campaign
 * would silently mix incompatible trial streams.
 */
std::unordered_map<unsigned, FaultTrialResult>
loadCheckpoint(const std::string &path, std::uint64_t seed,
               unsigned &truncatedLines)
{
    std::unordered_map<unsigned, FaultTrialResult> done;
    std::ifstream in(path);
    if (!in)
        return done;    // no checkpoint yet

    std::string line;
    unsigned lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        std::uint64_t lineSeed = 0, trial = 0, warp = 0, reg = 0;
        std::uint64_t bit = 0, cycle = 0, landed = 0;
        std::uint64_t sm = 0, addr = 0, cta = 0, healed = 0;
        std::string site, outcome;
        const bool complete = findNumber(line, "seed", lineSeed) &&
            findNumber(line, "trial", trial) &&
            findString(line, "site", site) &&
            findNumber(line, "warp", warp) &&
            findNumber(line, "reg", reg) &&
            findNumber(line, "bit", bit) &&
            findNumber(line, "cycle", cycle) &&
            findString(line, "outcome", outcome) &&
            findNumber(line, "landed", landed) &&
            line.find('}') != std::string::npos;
        if (!complete) {
            // Typically the torn trailing append of a killed
            // campaign: tolerate, log, and let the trial re-run.
            ++truncatedLines;
            warn(strf("fault checkpoint '", path, "': skipping ",
                      "malformed line ", lineNo,
                      " (truncated write?)"));
            continue;
        }
        if (lineSeed != seed) {
            fatal(strf("fault checkpoint '", path, "' was written by ",
                       "a campaign with seed ", lineSeed,
                       ", not ", seed,
                       "; refusing to resume (delete the file or "
                       "use the matching --seed)"));
        }
        // Optional keys; absent in historical-format rows.
        findNumber(line, "sm", sm);
        findNumber(line, "addr", addr);
        findNumber(line, "cta", cta);
        findNumber(line, "healed", healed);

        FaultTrialResult t;
        t.trial = static_cast<unsigned>(trial);
        t.plan.enabled = true;
        t.plan.site = parseFaultSite(site);
        t.plan.warp = static_cast<WarpId>(warp);
        t.plan.reg = static_cast<RegId>(reg);
        t.plan.bit = static_cast<unsigned>(bit);
        t.plan.cycle = cycle;
        t.plan.sm = static_cast<unsigned>(sm);
        t.plan.addr = static_cast<std::uint32_t>(addr);
        t.plan.cta = static_cast<unsigned>(cta);
        t.outcome = parseOutcomeName(outcome, line);
        t.landed = landed != 0;
        t.healed = healed != 0;
        done[t.trial] = t;
    }
    return done;
}

/**
 * Atomically replace the checkpoint with @p lines: write a sibling
 * tmp file, flush it, then rename over the target. A campaign killed
 * at any instant leaves either the previous complete checkpoint or
 * the new complete one — never a torn rewrite (the torn-line
 * tolerance above still covers checkpoints from older appends or
 * exotic filesystems).
 */
void
writeCheckpointFile(const std::string &path,
                    const std::vector<std::string> &lines)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            fatal(strf("fault campaign: cannot open checkpoint tmp "
                       "file '", tmp, "' for write"));
        }
        for (const std::string &line : lines)
            out << line << "\n";
        out.flush();
        if (!out) {
            fatal(strf("fault campaign: short write to checkpoint "
                       "tmp file '", tmp, "'"));
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        fatal(strf("fault campaign: cannot rename '", tmp, "' over '",
                   path, "'"));
    }
}

/**
 * "sm", "addr" and "cta" matter per-site: a plan restored from a
 * checkpoint must re-derive bit-identically or the file belongs to a
 * different (workload, configuration).
 */
bool
plansMatch(const FaultPlan &a, const FaultPlan &b)
{
    return a.site == b.site && a.warp == b.warp && a.reg == b.reg &&
        a.bit == b.bit && a.cycle == b.cycle && a.sm == b.sm &&
        a.addr == b.addr && a.cta == b.cta;
}

} // namespace

std::string
faultOutcomeName(FaultOutcome o)
{
    switch (o) {
      case FaultOutcome::Masked:   return "masked";
      case FaultOutcome::Sdc:      return "sdc";
      case FaultOutcome::Detected: return "detected";
      case FaultOutcome::Hang:     return "hang";
      case FaultOutcome::Fatal:    return "fatal";
    }
    panic("faultOutcomeName: bad outcome");
}

void
CampaignSummary::exportMetrics(MetricsRegistry &out) const
{
    out.setCounter("campaign.trials", trials);
    out.setCounter("campaign.masked", masked);
    out.setCounter("campaign.sdc", sdc);
    out.setCounter("campaign.detected", detected);
    out.setCounter("campaign.hang", hang);
    out.setCounter("campaign.fatal", fatal);
    out.setCounter("campaign.landed", landed);
    out.setCounter("campaign.resumed", resumed);
    out.setCounter("campaign.retries", retries);
    out.setCounter("campaign.healed", healed);
    out.setCounter("campaign.truncated_lines", truncatedLines);
    out.setCounter("campaign.checkpoint_writes", checkpointWrites);
    out.setValue("campaign.avf_pct", avfPct());
}

namespace {

std::vector<FaultSite>
validSitesImpl(Architecture arch, unsigned numSms,
               const std::vector<FaultSite> &requested)
{
    const bool hasBoc = arch == Architecture::BOW ||
        arch == Architecture::BOW_WR ||
        arch == Architecture::BOW_WR_OPT;
    const bool hasRfc = arch == Architecture::RFC;
    // Device sites exist only on the GPU path: a single SM keeps a
    // private L2 and receives every CTA up front.
    const bool hasDevice = numSms > 1;

    std::vector<FaultSite> out;
    for (FaultSite s : requested) {
        const bool exists = s == FaultSite::RfBank ||
            (s == FaultSite::BocEntry && hasBoc) ||
            (s == FaultSite::RfcEntry && hasRfc) ||
            (s == FaultSite::L2Line && hasDevice) ||
            (s == FaultSite::CtaSched && hasDevice);
        if (exists &&
            std::find(out.begin(), out.end(), s) == out.end()) {
            out.push_back(s);
        }
    }
    if (out.empty()) {
        fatal(strf("fault campaign: none of the requested fault ",
                   "sites exist in architecture ", archName(arch)));
    }
    return out;
}

} // namespace

std::vector<FaultSite>
validSites(Architecture arch, const std::vector<FaultSite> &requested)
{
    return validSitesImpl(arch, 1, requested);
}

std::vector<FaultSite>
validSites(const SimConfig &config,
           const std::vector<FaultSite> &requested)
{
    return validSitesImpl(config.arch, config.numSms, requested);
}

CampaignSummary
runFaultCampaign(const Workload &workload, const SimConfig &config,
                 const CampaignSpec &spec, const ParallelRunner &runner,
                 std::vector<FaultTrialResult> *outTrials)
{
    CampaignSummary summary;
    summary.trials = spec.trials;
    if (spec.trials == 0)
        return summary;

    const std::vector<FaultSite> sites = validSites(config, spec.sites);
    for (unsigned sm : spec.sms) {
        if (sm >= std::max(1u, config.numSms)) {
            fatal(strf("fault campaign: --fault-sms index ", sm,
                       " is out of range for numSms=",
                       std::max(1u, config.numSms)));
        }
    }

    // Golden reference (timing-free) and a clean timing run: the
    // latter's cycle count sizes both the fault-cycle window and the
    // watchdog budget, so every trial is bounded relative to how
    // long this (workload, config) legitimately takes. On a multi-SM
    // device the clean run also pins where each CTA lands, which is
    // what per-SM plans derive FaultPlan::sm from.
    const FunctionalResult oracle =
        runFunctional(workload.launch, 4'000'000,
                      /*recordTraces=*/false);
    const SimResult clean = runner.runOne(SimJob(workload, config));
    const Cycle cycleWindow = std::max<Cycle>(clean.stats.cycles, 1);

    FaultPlanContext planCtx;
    planCtx.ctaPlacements = clean.ctaPlacements;
    planCtx.sms = spec.sms;
    planCtx.numSms = std::max(1u, config.numSms);
    // L2 flips target words the clean run actually wrote (sorted, so
    // the pool — and with it every plan — is deterministic).
    planCtx.globalAddrs = clean.finalMem.globalAddrs();

    Watchdog::Limits limits;
    // Deterministic hang detection: a corrupted run that needs 8x
    // the clean cycle count (plus slack for tiny kernels) is stuck.
    // The cycle budget — not wall-clock — is the primary limit, so
    // hang classification is identical on any machine at any job
    // count.
    limits.cycleBudget = clean.stats.cycles * 8 + 4096;
    if (config.maxCycles)
        limits.cycleBudget =
            std::min<std::uint64_t>(limits.cycleBudget,
                                    config.maxCycles);

    std::unordered_map<unsigned, FaultTrialResult> done;
    if (!spec.checkpointPath.empty()) {
        done = loadCheckpoint(spec.checkpointPath, spec.seed,
                              summary.truncatedLines);
    }

    std::vector<FaultTrialResult> trials(spec.trials);
    std::vector<unsigned> pending;
    // Checkpoint rows in completion order: resumed trials first
    // (ascending), then each newly finished chunk.
    std::vector<std::string> lines;
    lines.reserve(spec.trials);
    for (unsigned t = 0; t < spec.trials; ++t) {
        const FaultPlan plan =
            makeFaultPlan(spec.seed, t, sites, workload.launch,
                          cycleWindow, &planCtx);
        auto it = done.find(t);
        if (it != done.end()) {
            if (!plansMatch(it->second.plan, plan)) {
                fatal(strf("fault checkpoint '", spec.checkpointPath,
                           "': trial ", t, " was planned as ",
                           it->second.plan.describe(),
                           " but this campaign ",
                           "derives ", plan.describe(),
                           " (different workload or configuration?)"));
            }
            if (it->second.outcome == FaultOutcome::Fatal) {
                // Host-fatal rows are provisional: the failure was
                // the host's, not the simulated machine's, so a
                // resumed campaign gives the trial a fresh chance.
                trials[t].trial = t;
                trials[t].plan = plan;
                pending.push_back(t);
                continue;
            }
            trials[t] = it->second;
            ++summary.resumed;
            lines.push_back(trialLine(spec.seed, trials[t]));
        } else {
            trials[t].trial = t;
            trials[t].plan = plan;
            pending.push_back(t);
        }
    }

    // An outcome is a transient HOST error — retryable — when the
    // exception fell outside the simulated-fault taxonomy, or the
    // test hook says so. Simulated hangs/fatals/panics are terminal
    // classifications of the injected flip, never retried.
    const auto transientHostError = [&spec](const SimOutcome &o,
                                            unsigned trial,
                                            unsigned attempt) {
        if (spec.injectHostError &&
            spec.injectHostError(trial, attempt)) {
            return true;
        }
        return !o.ok() && o.error().kind == SimError::Kind::Other;
    };

    // Run pending trials in chunks so a killed campaign loses at
    // most one chunk of work. Chunking is a checkpoint-granularity
    // choice only; results are submission-indexed and deterministic.
    const std::size_t chunkSize =
        std::max<std::size_t>(std::size_t{runner.jobs()} * 4, 16);
    for (std::size_t base = 0; base < pending.size();
         base += chunkSize) {
        const std::size_t n =
            std::min(chunkSize, pending.size() - base);

        std::vector<SimJob> batch(n);
        for (std::size_t i = 0; i < n; ++i) {
            SimJob &job = batch[i];
            job.workload = &workload;
            job.config = config;
            // Injected runs step SMs serially anyway (GpuCore clamps
            // with a warning); request it up front so a campaign
            // does not emit one warning per trial. Results are
            // bit-identical at any host-thread count. The clean
            // reference run above keeps the user's threading.
            if (job.config.hostThreads > 1)
                job.config.hostThreads = 1;
            job.fault = trials[pending[base + i]].plan;
            job.watchdog = limits;
        }

        const std::vector<SimOutcome> outcomes = runner.runAll(batch);
        for (std::size_t i = 0; i < n; ++i) {
            FaultTrialResult &t = trials[pending[base + i]];
            SimOutcome outcome = outcomes[i];
            unsigned attempt = 0;
            bool transient = transientHostError(outcome, t.trial, 0);
            while (transient && attempt < spec.retries) {
                ++attempt;
                ++summary.retries;
                // Linear backoff: transient host failures (memory
                // pressure, thread spawn) usually clear quickly; the
                // simulated result is wall-clock independent.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10 * attempt));
                const std::vector<SimJob> one(1, batch[i]);
                outcome = runner.runAll(one)[0];
                transient =
                    transientHostError(outcome, t.trial, attempt);
            }
            if (transient) {
                // Degrade gracefully: record the loss, keep going.
                t.outcome = FaultOutcome::Fatal;
                t.landed = false;
                warn(strf("fault campaign: trial ", t.trial,
                          " failed with a host error after ",
                          attempt + 1, " attempt(s)",
                          !outcome.ok()
                              ? strf(": ", outcome.error().message)
                              : std::string(),
                          "; recording outcome=fatal"));
            } else {
                t.outcome = classifyTrial(outcome, oracle);
                // A trial that crashed or hung was certainly struck
                // by its flip; completed trials report landing
                // precisely.
                t.landed =
                    !outcome.ok() || outcome.value().fault.landed;
                t.healed = outcome.ok() &&
                    outcome.value().fault.repairedByRefetch;
            }
            lines.push_back(trialLine(spec.seed, t));
        }
        if (!spec.checkpointPath.empty()) {
            writeCheckpointFile(spec.checkpointPath, lines);
            ++summary.checkpointWrites;
        }
    }

    for (const FaultTrialResult &t : trials) {
        switch (t.outcome) {
          case FaultOutcome::Masked:   ++summary.masked;   break;
          case FaultOutcome::Sdc:      ++summary.sdc;      break;
          case FaultOutcome::Detected: ++summary.detected; break;
          case FaultOutcome::Hang:     ++summary.hang;     break;
          case FaultOutcome::Fatal:    ++summary.fatal;    break;
        }
        if (t.landed)
            ++summary.landed;
        if (t.healed)
            ++summary.healed;
    }
    if (metricsAggregationEnabled())
        summary.exportMetrics(globalMetrics());
    if (outTrials)
        *outTrials = std::move(trials);
    return summary;
}

} // namespace bow
