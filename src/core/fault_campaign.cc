#include "core/fault_campaign.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/log.h"
#include "sm/functional.h"

namespace bow {

namespace {

/** Final-state lockstep compare against the functional oracle. */
bool
matchesOracle(const SimResult &result, const FunctionalResult &oracle)
{
    if (result.finalRegs.size() != oracle.finalRegs.size())
        return false;
    for (std::size_t w = 0; w < oracle.finalRegs.size(); ++w) {
        if (result.finalRegs[w] != oracle.finalRegs[w])
            return false;
    }
    return result.finalMem.contentsEqual(oracle.finalMem);
}

FaultOutcome
classifyTrial(const SimOutcome &outcome, const FunctionalResult &oracle)
{
    if (!outcome.ok()) {
        switch (outcome.error().kind) {
          case SimError::Kind::Hang:
            return FaultOutcome::Hang;
          case SimError::Kind::Fatal:
          case SimError::Kind::Panic:
          case SimError::Kind::Other:
            // The machine (or the simulator's invariants standing in
            // for its assertion hardware) noticed the corruption.
            return FaultOutcome::Detected;
        }
    }
    const SimResult &r = outcome.value();
    if (r.fault.detectedByParity)
        return FaultOutcome::Detected;
    return matchesOracle(r, oracle) ? FaultOutcome::Masked
                                    : FaultOutcome::Sdc;
}

FaultOutcome
parseOutcomeName(const std::string &name, const std::string &line)
{
    if (name == "masked")
        return FaultOutcome::Masked;
    if (name == "sdc")
        return FaultOutcome::Sdc;
    if (name == "detected")
        return FaultOutcome::Detected;
    if (name == "hang")
        return FaultOutcome::Hang;
    fatal(strf("fault checkpoint: bad outcome '", name, "' in line: ",
               line));
}

// ---- Minimal JSONL checkpoint codec -------------------------------
//
// One object per line, flat, fixed keys written by us — so the
// parser only needs key lookup, not a general JSON reader:
//   {"seed":1,"trial":0,"site":"rf","warp":0,"reg":5,"bit":7,
//    "cycle":42,"outcome":"masked","landed":1}

bool
findNumber(const std::string &line, const std::string &key,
           std::uint64_t &out)
{
    const std::string needle = strf("\"", key, "\":");
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    const char *start = line.c_str() + pos + needle.size();
    char *end = nullptr;
    const unsigned long long v = std::strtoull(start, &end, 10);
    if (end == start)
        return false;
    out = v;
    return true;
}

bool
findString(const std::string &line, const std::string &key,
           std::string &out)
{
    const std::string needle = strf("\"", key, "\":\"");
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    const std::size_t start = pos + needle.size();
    const std::size_t close = line.find('"', start);
    if (close == std::string::npos)
        return false;
    out = line.substr(start, close - start);
    return true;
}

std::string
trialLine(std::uint64_t seed, const FaultTrialResult &t)
{
    std::ostringstream os;
    os << "{\"seed\":" << seed << ",\"trial\":" << t.trial
       << ",\"site\":\"" << faultSiteName(t.plan.site) << "\""
       << ",\"warp\":" << t.plan.warp << ",\"reg\":" << t.plan.reg
       << ",\"bit\":" << t.plan.bit << ",\"cycle\":" << t.plan.cycle
       << ",\"outcome\":\"" << faultOutcomeName(t.outcome) << "\""
       << ",\"landed\":" << (t.landed ? 1 : 0) << "}";
    return os.str();
}

/**
 * Load completed trials from the checkpoint. A truncated final line
 * (the campaign was killed mid-append) is skipped with a warning;
 * a seed mismatch is a fatal() — resuming someone else's campaign
 * would silently mix incompatible trial streams.
 */
std::unordered_map<unsigned, FaultTrialResult>
loadCheckpoint(const std::string &path, std::uint64_t seed)
{
    std::unordered_map<unsigned, FaultTrialResult> done;
    std::ifstream in(path);
    if (!in)
        return done;    // no checkpoint yet

    std::string line;
    unsigned lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        std::uint64_t lineSeed = 0, trial = 0, warp = 0, reg = 0;
        std::uint64_t bit = 0, cycle = 0, landed = 0;
        std::string site, outcome;
        const bool complete = findNumber(line, "seed", lineSeed) &&
            findNumber(line, "trial", trial) &&
            findString(line, "site", site) &&
            findNumber(line, "warp", warp) &&
            findNumber(line, "reg", reg) &&
            findNumber(line, "bit", bit) &&
            findNumber(line, "cycle", cycle) &&
            findString(line, "outcome", outcome) &&
            findNumber(line, "landed", landed) &&
            line.find('}') != std::string::npos;
        if (!complete) {
            warn(strf("fault checkpoint '", path, "': skipping ",
                      "malformed line ", lineNo,
                      " (truncated write?)"));
            continue;
        }
        if (lineSeed != seed) {
            fatal(strf("fault checkpoint '", path, "' was written by ",
                       "a campaign with seed ", lineSeed,
                       ", not ", seed,
                       "; refusing to resume (delete the file or "
                       "use the matching --seed)"));
        }

        FaultTrialResult t;
        t.trial = static_cast<unsigned>(trial);
        t.plan.enabled = true;
        t.plan.site = parseFaultSite(site);
        t.plan.warp = static_cast<WarpId>(warp);
        t.plan.reg = static_cast<RegId>(reg);
        t.plan.bit = static_cast<unsigned>(bit);
        t.plan.cycle = cycle;
        t.outcome = parseOutcomeName(outcome, line);
        t.landed = landed != 0;
        done[t.trial] = t;
    }
    return done;
}

} // namespace

std::string
faultOutcomeName(FaultOutcome o)
{
    switch (o) {
      case FaultOutcome::Masked:   return "masked";
      case FaultOutcome::Sdc:      return "sdc";
      case FaultOutcome::Detected: return "detected";
      case FaultOutcome::Hang:     return "hang";
    }
    panic("faultOutcomeName: bad outcome");
}

std::vector<FaultSite>
validSites(Architecture arch, const std::vector<FaultSite> &requested)
{
    const bool hasBoc = arch == Architecture::BOW ||
        arch == Architecture::BOW_WR ||
        arch == Architecture::BOW_WR_OPT;
    const bool hasRfc = arch == Architecture::RFC;

    std::vector<FaultSite> out;
    for (FaultSite s : requested) {
        const bool exists = s == FaultSite::RfBank ||
            (s == FaultSite::BocEntry && hasBoc) ||
            (s == FaultSite::RfcEntry && hasRfc);
        if (exists &&
            std::find(out.begin(), out.end(), s) == out.end()) {
            out.push_back(s);
        }
    }
    if (out.empty()) {
        fatal(strf("fault campaign: none of the requested fault ",
                   "sites exist in architecture ", archName(arch)));
    }
    return out;
}

CampaignSummary
runFaultCampaign(const Workload &workload, const SimConfig &config,
                 const CampaignSpec &spec, const ParallelRunner &runner,
                 std::vector<FaultTrialResult> *outTrials)
{
    CampaignSummary summary;
    summary.trials = spec.trials;
    if (spec.trials == 0)
        return summary;

    // Refuse up front rather than letting every trial trip the
    // single-SM guard inside Simulator: those throws would be
    // classified as "detected" and report a bogus 100% AVF.
    if (config.numSms > 1)
        fatal("fault campaign: fault injection supports numSms == 1 "
              "only (got " + std::to_string(config.numSms) + ")");

    const std::vector<FaultSite> sites =
        validSites(config.arch, spec.sites);

    // Golden reference (timing-free) and a clean timing run: the
    // latter's cycle count sizes both the fault-cycle window and the
    // watchdog budget, so every trial is bounded relative to how
    // long this (workload, config) legitimately takes.
    const FunctionalResult oracle =
        runFunctional(workload.launch, 4'000'000,
                      /*recordTraces=*/false);
    const SimResult clean = runner.runOne(SimJob(workload, config));
    const Cycle cycleWindow = std::max<Cycle>(clean.stats.cycles, 1);

    Watchdog::Limits limits;
    // Deterministic hang detection: a corrupted run that needs 8x
    // the clean cycle count (plus slack for tiny kernels) is stuck.
    // The cycle budget — not wall-clock — is the primary limit, so
    // hang classification is identical on any machine at any job
    // count.
    limits.cycleBudget = clean.stats.cycles * 8 + 4096;
    if (config.maxCycles)
        limits.cycleBudget =
            std::min<std::uint64_t>(limits.cycleBudget,
                                    config.maxCycles);

    std::unordered_map<unsigned, FaultTrialResult> done;
    if (!spec.checkpointPath.empty())
        done = loadCheckpoint(spec.checkpointPath, spec.seed);

    std::vector<FaultTrialResult> trials(spec.trials);
    std::vector<unsigned> pending;
    for (unsigned t = 0; t < spec.trials; ++t) {
        const FaultPlan plan = makeFaultPlan(
            spec.seed, t, sites, workload.launch, cycleWindow);
        auto it = done.find(t);
        if (it != done.end()) {
            const FaultPlan &saved = it->second.plan;
            if (saved.site != plan.site || saved.warp != plan.warp ||
                saved.reg != plan.reg || saved.bit != plan.bit ||
                saved.cycle != plan.cycle) {
                fatal(strf("fault checkpoint '", spec.checkpointPath,
                           "': trial ", t, " was planned as ",
                           saved.describe(), " but this campaign ",
                           "derives ", plan.describe(),
                           " (different workload or configuration?)"));
            }
            trials[t] = it->second;
            ++summary.resumed;
        } else {
            trials[t].trial = t;
            trials[t].plan = plan;
            pending.push_back(t);
        }
    }

    // Run pending trials in chunks so a killed campaign loses at
    // most one chunk of work. Chunking is a checkpoint-granularity
    // choice only; results are submission-indexed and deterministic.
    std::ofstream checkpoint;
    if (!spec.checkpointPath.empty()) {
        checkpoint.open(spec.checkpointPath, std::ios::app);
        if (!checkpoint) {
            fatal(strf("fault campaign: cannot open checkpoint '",
                       spec.checkpointPath, "' for append"));
        }
    }

    const std::size_t chunkSize =
        std::max<std::size_t>(std::size_t{runner.jobs()} * 4, 16);
    for (std::size_t base = 0; base < pending.size();
         base += chunkSize) {
        const std::size_t n =
            std::min(chunkSize, pending.size() - base);

        std::vector<SimJob> batch(n);
        for (std::size_t i = 0; i < n; ++i) {
            SimJob &job = batch[i];
            job.workload = &workload;
            job.config = config;
            job.fault = trials[pending[base + i]].plan;
            job.watchdog = limits;
        }

        const std::vector<SimOutcome> outcomes = runner.runAll(batch);
        for (std::size_t i = 0; i < n; ++i) {
            FaultTrialResult &t = trials[pending[base + i]];
            t.outcome = classifyTrial(outcomes[i], oracle);
            // A trial that crashed or hung was certainly struck by
            // its flip; completed trials report landing precisely.
            t.landed = !outcomes[i].ok() ||
                outcomes[i].value().fault.landed;
            if (checkpoint.is_open())
                checkpoint << trialLine(spec.seed, t) << "\n";
        }
        if (checkpoint.is_open())
            checkpoint.flush();
    }

    for (const FaultTrialResult &t : trials) {
        switch (t.outcome) {
          case FaultOutcome::Masked:   ++summary.masked;   break;
          case FaultOutcome::Sdc:      ++summary.sdc;      break;
          case FaultOutcome::Detected: ++summary.detected; break;
          case FaultOutcome::Hang:     ++summary.hang;     break;
        }
        if (t.landed)
            ++summary.landed;
    }
    if (outTrials)
        *outTrials = std::move(trials);
    return summary;
}

} // namespace bow
