/**
 * @file
 * Fault-injection campaigns: many single-bit-flip trials of one
 * (workload, configuration), each trial lockstep-compared against
 * the functional oracle and classified, then aggregated into an
 * AVF-style breakdown.
 *
 * Outcome taxonomy (the usual SEU classification):
 *   - Masked:   final architectural state equals the golden run
 *               (flip struck dead/stale data, was corrected by
 *               SECDED, or was healed by a clean RF copy).
 *   - SDC:      silent data corruption — the run completed but final
 *               registers or memory differ from the oracle.
 *   - Detected: the machine noticed — parity flagged the flip, or
 *               the corrupted state drove the simulator into a
 *               fatal()/panic() (e.g. the maxCycles deadlock guard).
 *   - Hang:     the per-trial watchdog expired (the sim ran far past
 *               the clean run's cycle count without the deadlock
 *               guard tripping).
 *
 * Campaigns are deterministic: trial plans are a pure function of
 * (seed, trial index), execution goes through ParallelRunner::
 * runAll() whose results are submission-indexed, and the summary is
 * byte-identical at any job count. Long campaigns checkpoint to an
 * append-only JSONL file keyed by the seed, so a killed campaign
 * resumes without re-running completed trials.
 */

#ifndef BOWSIM_CORE_FAULT_CAMPAIGN_H
#define BOWSIM_CORE_FAULT_CAMPAIGN_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/parallel_runner.h"
#include "sm/fault_injector.h"
#include "workloads/registry.h"

namespace bow {

/** Classification of one fault-injection trial. */
enum class FaultOutcome
{
    Masked,
    Sdc,
    Detected,
    Hang
};

/** "masked" / "sdc" / "detected" / "hang". */
std::string faultOutcomeName(FaultOutcome o);

/** One finished trial. */
struct FaultTrialResult
{
    unsigned trial = 0;
    FaultPlan plan;
    FaultOutcome outcome = FaultOutcome::Masked;
    /** The flip struck live data (as opposed to a non-resident or
     *  stale target). */
    bool landed = false;
};

/** What to run. */
struct CampaignSpec
{
    unsigned trials = 0;
    std::uint64_t seed = 0;
    /** Sites to draw from; filtered against the architecture first
     *  (see validSites()). */
    std::vector<FaultSite> sites;
    /** Append-only JSONL checkpoint ("" disables checkpointing). */
    std::string checkpointPath;
};

/** Aggregate of one campaign. */
struct CampaignSummary
{
    unsigned trials = 0;
    unsigned masked = 0;
    unsigned sdc = 0;
    unsigned detected = 0;
    unsigned hang = 0;
    unsigned landed = 0;
    /** Trials restored from the checkpoint instead of re-run. */
    unsigned resumed = 0;

    /** Architectural vulnerability: the fraction of trials whose
     *  flip was not masked. */
    double
    avfPct() const
    {
        return trials
            ? 100.0 * static_cast<double>(trials - masked) /
              static_cast<double>(trials)
            : 0.0;
    }
};

/**
 * The fault sites that exist in @p arch, in the order of
 * @p requested: RF banks always, BOC entries for the BOW family,
 * RFC entries for the RFC baseline. fatal()s when nothing remains.
 */
std::vector<FaultSite> validSites(Architecture arch,
                                  const std::vector<FaultSite> &requested);

/**
 * Run @p spec.trials single-bit-flip trials of @p workload under
 * @p config and classify each against the functional oracle.
 *
 * The fault-cycle window and the per-trial watchdog budget are
 * derived from a clean (fault-free) run of the same configuration.
 * Execution goes through ParallelRunner::runAll() with @p runner's
 * job count; per-trial results optionally land in @p outTrials
 * (indexed by trial).
 */
CampaignSummary runFaultCampaign(
    const Workload &workload, const SimConfig &config,
    const CampaignSpec &spec, const ParallelRunner &runner,
    std::vector<FaultTrialResult> *outTrials = nullptr);

} // namespace bow

#endif // BOWSIM_CORE_FAULT_CAMPAIGN_H
