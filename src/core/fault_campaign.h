/**
 * @file
 * Fault-injection campaigns: many single-bit-flip trials of one
 * (workload, configuration), each trial lockstep-compared against
 * the functional oracle and classified, then aggregated into an
 * AVF-style breakdown.
 *
 * Outcome taxonomy (the usual SEU classification):
 *   - Masked:   final architectural state equals the golden run
 *               (flip struck dead/stale data, was corrected by
 *               SECDED, or was healed by a clean RF copy).
 *   - SDC:      silent data corruption — the run completed but final
 *               registers or memory differ from the oracle.
 *   - Detected: the machine noticed — parity flagged the flip, or
 *               the corrupted state drove the simulator into a
 *               fatal()/panic() (e.g. the maxCycles deadlock guard
 *               or the SmCore warp-admission guard).
 *   - Hang:     the per-trial watchdog expired (the sim ran far past
 *               the clean run's cycle count without the deadlock
 *               guard tripping).
 *   - Fatal:    the HOST failed, not the simulated machine — a
 *               transient error (e.g. resource exhaustion) persisted
 *               through every retry. The trial is recorded and the
 *               campaign continues; Fatal trials are excluded from
 *               the AVF denominator because they carry no
 *               architectural information.
 *
 * Campaigns are deterministic: trial plans are a pure function of
 * (seed, trial index) — on a multi-SM device the per-SM placement of
 * a plan is DERIVED from the clean run's CTA placements, never drawn,
 * so the random stream is byte-identical to the historical single-SM
 * derivation — execution goes through ParallelRunner::runAll() whose
 * results are submission-indexed, and the summary is byte-identical
 * at any job count and any host-thread count. Long campaigns
 * checkpoint to a JSONL file keyed by the seed, rewritten atomically
 * (tmp file + rename) after every chunk, so a killed campaign
 * resumes without re-running completed trials and a crash mid-write
 * can at worst truncate one trailing line, which resume tolerates.
 */

#ifndef BOWSIM_CORE_FAULT_CAMPAIGN_H
#define BOWSIM_CORE_FAULT_CAMPAIGN_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/parallel_runner.h"
#include "sm/fault_injector.h"
#include "workloads/registry.h"

namespace bow {

/** Classification of one fault-injection trial. */
enum class FaultOutcome
{
    Masked,
    Sdc,
    Detected,
    Hang,
    Fatal
};

/** "masked" / "sdc" / "detected" / "hang" / "fatal". */
std::string faultOutcomeName(FaultOutcome o);

/** One finished trial. */
struct FaultTrialResult
{
    unsigned trial = 0;
    FaultPlan plan;
    FaultOutcome outcome = FaultOutcome::Masked;
    /** The flip struck live data (as opposed to a non-resident or
     *  stale target). */
    bool landed = false;
    /** A clean copy repaired the corrupted state before it became
     *  architectural (FaultReport::repairedByRefetch). */
    bool healed = false;
};

/** What to run. */
struct CampaignSpec
{
    unsigned trials = 0;
    std::uint64_t seed = 0;
    /** Sites to draw from; filtered against the configuration first
     *  (see validSites()). */
    std::vector<FaultSite> sites;
    /** JSONL checkpoint ("" disables checkpointing). Rewritten
     *  atomically (tmp + rename) after each chunk. */
    std::string checkpointPath;
    /** Restrict per-SM sites (rf/boc/rfc) to flips on warps the
     *  clean run placed on these SM indices; empty = all SMs. The
     *  device sites (l2/cta) are chip-wide and ignore the filter. */
    std::vector<unsigned> sms;
    /** Re-run a trial up to this many times when the HOST fails
     *  transiently (exception outside the simulated-fault taxonomy).
     *  A trial still failing after the budget is recorded as
     *  FaultOutcome::Fatal and the campaign continues. Simulated
     *  hangs/panics are terminal classifications, never retried. */
    unsigned retries = 0;
    /** Test-only hook: pretend attempt @p attempt of trial @p trial
     *  hit a transient host error even though the simulation
     *  succeeded — exercises the retry/degradation path without a
     *  real host failure. Consulted exactly once per attempt; must
     *  be a pure function of its arguments. */
    std::function<bool(unsigned trial, unsigned attempt)>
        injectHostError;
};

/** Aggregate of one campaign. */
struct CampaignSummary
{
    unsigned trials = 0;
    unsigned masked = 0;
    unsigned sdc = 0;
    unsigned detected = 0;
    unsigned hang = 0;
    /** Trials lost to persistent host errors (see CampaignSpec::
     *  retries); excluded from the AVF denominator. */
    unsigned fatal = 0;
    unsigned landed = 0;
    /** Trials restored from the checkpoint instead of re-run. */
    unsigned resumed = 0;
    /** Single-trial re-runs taken for transient host errors. */
    unsigned retries = 0;
    /** Completed trials whose corruption was healed by a refetch
     *  (clean BOC restore, or an L2 line refetched after eviction). */
    unsigned healed = 0;
    /** Malformed checkpoint lines tolerated on resume (a killed
     *  campaign's torn trailing write); the affected trials re-ran. */
    unsigned truncatedLines = 0;
    /** Atomic checkpoint rewrites performed. */
    unsigned checkpointWrites = 0;

    /** Architectural vulnerability: the fraction of classified
     *  trials whose flip was not masked. Host-fatal trials carry no
     *  architectural information and drop out of the denominator
     *  (identical to the historical trials-based figure whenever
     *  fatal == 0). */
    double
    avfPct() const
    {
        const unsigned classified = trials - fatal;
        return classified
            ? 100.0 * static_cast<double>(classified - masked) /
              static_cast<double>(classified)
            : 0.0;
    }

    /** Publish the campaign.* counters (trials, per-outcome counts,
     *  landed/resumed/retries/healed/truncated_lines/
     *  checkpoint_writes, avf_pct) into @p out. */
    void exportMetrics(MetricsRegistry &out) const;
};

/**
 * The fault sites that exist in @p arch, in the order of
 * @p requested: RF banks always, BOC entries for the BOW family,
 * RFC entries for the RFC baseline. fatal()s when nothing remains.
 */
std::vector<FaultSite> validSites(Architecture arch,
                                  const std::vector<FaultSite> &requested);

/**
 * Configuration-aware overload: additionally admits the device-level
 * sites — L2 lines and CTA-scheduler records — which only exist on
 * the GPU path (config.numSms > 1; a single SM has a private L2 and
 * receives every CTA up front, so there is nothing chip-level to
 * strike).
 */
std::vector<FaultSite> validSites(const SimConfig &config,
                                  const std::vector<FaultSite> &requested);

/**
 * Run @p spec.trials single-bit-flip trials of @p workload under
 * @p config and classify each against the functional oracle.
 *
 * The fault-cycle window, the per-trial watchdog budget and (on a
 * multi-SM device) the CTA placements that anchor per-SM plans are
 * derived from a clean (fault-free) run of the same configuration.
 * Execution goes through ParallelRunner::runAll() with @p runner's
 * job count; per-trial results optionally land in @p outTrials
 * (indexed by trial). When metrics aggregation is on (see
 * setMetricsAggregation()), the summary's campaign.* counters are
 * also published into globalMetrics().
 */
CampaignSummary runFaultCampaign(
    const Workload &workload, const SimConfig &config,
    const CampaignSpec &spec, const ParallelRunner &runner,
    std::vector<FaultTrialResult> *outTrials = nullptr);

} // namespace bow

#endif // BOWSIM_CORE_FAULT_CAMPAIGN_H
