#include "core/host_threads.h"

#include <cctype>
#include <cstdlib>
#include <thread>

#include "common/log.h"
#include "core/thread_pool.h"

namespace bow {

namespace {

/** Strict digits-only positive-integer env parse: strtol alone would
 *  silently accept leading whitespace or a sign, and a half-garbled
 *  value should warn, not steer the knob. Returns 0 when unset or
 *  invalid (after warning). */
unsigned
positiveEnv(const char *name)
{
    const char *env = std::getenv(name);
    if (!env)
        return 0;
    char *end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (std::isdigit(static_cast<unsigned char>(env[0])) &&
        *end == '\0' && v > 0)
        return static_cast<unsigned>(v);
    warn(strf("ignoring ", name, "='", env,
              "' (want a positive integer)"));
    return 0;
}

} // namespace

unsigned
resolveHostThreads(unsigned configured)
{
    if (configured >= 1)
        return configured;
    if (const unsigned v = positiveEnv("BOWSIM_HOST_THREADS"))
        return v;
    if (ThreadPool::insideWorker())
        return 1;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
resolveEpochCycles(unsigned configured)
{
    if (configured >= 1)
        return configured;
    if (const unsigned v = positiveEnv("BOWSIM_EPOCH_CYCLES"))
        return v;
    return 1;
}

} // namespace bow
