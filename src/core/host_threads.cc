#include "core/host_threads.h"

#include <cctype>
#include <cstdlib>
#include <thread>

#include "common/log.h"
#include "core/thread_pool.h"

namespace bow {

unsigned
resolveHostThreads(unsigned configured)
{
    if (configured >= 1)
        return configured;
    if (const char *env = std::getenv("BOWSIM_HOST_THREADS")) {
        // Strict digits-only parse: strtol alone would silently
        // accept leading whitespace or a sign, and a half-garbled
        // value should warn, not steer the thread count.
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (std::isdigit(static_cast<unsigned char>(env[0])) &&
            *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        warn(strf("ignoring BOWSIM_HOST_THREADS='", env,
                  "' (want a positive integer)"));
    }
    if (ThreadPool::insideWorker())
        return 1;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace bow
