/**
 * @file
 * Resolution of SimConfig::hostThreads (the intra-simulation
 * parallelism knob, docs/PERFORMANCE.md "Parallel SM stepping") into
 * an effective host thread count. Split out of GpuCore so the CLI
 * and the benches can report the same number the engine will use.
 */

#ifndef BOWSIM_CORE_HOST_THREADS_H
#define BOWSIM_CORE_HOST_THREADS_H

namespace bow {

/**
 * Effective host threads for one GpuCore, always >= 1.
 *
 * @p configured is SimConfig::hostThreads: any explicit value >= 1
 * is honoured as-is. 0 means auto, resolved in priority order:
 *
 *  1. BOWSIM_HOST_THREADS if set to a positive integer (anything
 *     else warns and is ignored, mirroring BOWSIM_JOBS);
 *  2. 1 when the caller is already a ThreadPool worker — a
 *     ParallelRunner batch owns the host cores, and numSms extra
 *     threads per in-flight job would only oversubscribe;
 *  3. std::thread::hardware_concurrency() (1 when unknown).
 */
unsigned resolveHostThreads(unsigned configured);

/**
 * Effective epoch length for one GpuCore, always >= 1.
 *
 * @p configured is SimConfig::epochCycles: any explicit value >= 1
 * is honoured as-is. 0 means auto: BOWSIM_EPOCH_CYCLES if set to a
 * positive integer (anything else warns and is ignored), else 1
 * (per-cycle stepping, the conservative default).
 */
unsigned resolveEpochCycles(unsigned configured);

} // namespace bow

#endif // BOWSIM_CORE_HOST_THREADS_H
