#include "core/parallel_runner.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>

#include "common/log.h"
#include "core/thread_pool.h"

namespace bow {

namespace {

std::atomic<unsigned> gDefaultJobs{0};
std::atomic<std::uint64_t> gSimulationsRun{0};

/** Simulate one job, consulting and feeding the global cache. */
std::shared_ptr<const SimResult>
simulateCached(const SimJob &job)
{
    const std::uint64_t key = simCacheKey(*job.workload, job.config);
    if (auto hit = globalResultCache().lookup(key))
        return hit;
    Simulator sim(job.config);
    auto result = std::make_shared<const SimResult>(
        sim.run(job.workload->launch));
    gSimulationsRun.fetch_add(1, std::memory_order_relaxed);
    // First writer wins; concurrent duplicates computed the same
    // bits, so which copy survives is unobservable.
    return globalResultCache().insert(key, std::move(result));
}

} // namespace

ParallelRunner::ParallelRunner(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs())
{}

unsigned
ParallelRunner::defaultJobs()
{
    if (const unsigned forced = gDefaultJobs.load())
        return forced;
    if (const char *env = std::getenv("BOWSIM_JOBS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        warn(strf("ignoring BOWSIM_JOBS='", env,
                  "' (want a positive integer)"));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
ParallelRunner::setDefaultJobs(unsigned jobs)
{
    gDefaultJobs.store(jobs);
}

std::uint64_t
ParallelRunner::simulationsRun()
{
    return gSimulationsRun.load(std::memory_order_relaxed);
}

SimResult
ParallelRunner::runOne(const SimJob &job) const
{
    if (job.workload == nullptr)
        panic("ParallelRunner::runOne: job has no workload");
    return *simulateCached(job);
}

std::vector<SimResult>
ParallelRunner::run(const std::vector<SimJob> &batch) const
{
    for (const SimJob &job : batch) {
        if (job.workload == nullptr)
            panic("ParallelRunner::run: job has no workload");
    }

    std::vector<SimResult> results(batch.size());
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, batch.size()));
    if (workers <= 1) {
        for (std::size_t i = 0; i < batch.size(); ++i)
            results[i] = *simulateCached(batch[i]);
        return results;
    }

    // One task per job; results land at the job's submission index,
    // so completion order never shows in the output. A worker that
    // throws (fatal() on a bad configuration) parks its exception
    // and the first one is rethrown on the calling thread.
    std::atomic<std::size_t> next{0};
    std::mutex errorMutex;
    std::exception_ptr firstError;

    {
        ThreadPool pool(workers);
        for (unsigned t = 0; t < workers; ++t) {
            pool.post([&] {
                for (;;) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= batch.size())
                        return;
                    try {
                        results[i] = *simulateCached(batch[i]);
                    } catch (...) {
                        std::lock_guard<std::mutex> lock(errorMutex);
                        if (!firstError)
                            firstError = std::current_exception();
                    }
                }
            });
        }
        pool.wait();
    }

    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

} // namespace bow
