#include "core/parallel_runner.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <optional>
#include <set>
#include <thread>

#include "common/log.h"
#include "common/metrics.h"
#include "core/snapshot.h"
#include "core/thread_pool.h"
#include "service/result_store.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace bow {

namespace {

std::atomic<unsigned> gDefaultJobs{0};
std::atomic<std::uint64_t> gSimulationsRun{0};

/**
 * Warm-start policy (docs/SERVICE.md, EXPERIMENTS.md): when
 * BOWSIM_SNAPSHOT_DIR is set, every cache-missing clean job
 * periodically saves a full-state snapshot keyed by its simCacheKey,
 * and a later process resumes from it instead of re-simulating from
 * cycle 0. BOWSIM_SNAPSHOT_EVERY overrides the save cadence
 * (simulated cycles between saves).
 */
struct SnapshotPolicy
{
    std::string dir;               ///< empty = warm start off
    std::uint64_t every = 250'000; ///< cycles between saves
};

const SnapshotPolicy &
snapshotPolicy()
{
    static const SnapshotPolicy policy = [] {
        SnapshotPolicy p;
        const char *dir = std::getenv("BOWSIM_SNAPSHOT_DIR");
        if (dir == nullptr || *dir == '\0')
            return p;
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        if (ec) {
            warn(strf("warm start: cannot create snapshot dir '",
                      dir, "': ", ec.message(), "; disabled"));
            return p;
        }
        p.dir = dir;
        if (const char *env = std::getenv("BOWSIM_SNAPSHOT_EVERY")) {
            char *end = nullptr;
            const long long v = std::strtoll(env, &end, 10);
            if (end != env && *end == '\0' && v > 0) {
                p.every = static_cast<std::uint64_t>(v);
            } else {
                warn(strf("ignoring BOWSIM_SNAPSHOT_EVERY='", env,
                          "' (want a positive integer)"));
            }
        }
        return p;
    }();
    return policy;
}

std::string
snapshotPath(const SnapshotPolicy &policy, std::uint64_t key)
{
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(key));
    return policy.dir + "/" + hex + ".snap.json";
}

/** Run one clean job through a SimSession with periodic snapshot
 *  saves, resuming from an existing snapshot when one is valid. */
SimResult
simulateWarmStart(const SimJob &job, const SnapshotPolicy &policy,
                  std::uint64_t key, const Watchdog *watchdog)
{
    const std::string path = snapshotPath(policy, key);

    std::unique_ptr<SimSession> session;
    if (std::ifstream(path).good()) {
        try {
            session = SimSession::resumeFromSnapshot(
                path, job.workload->launch, watchdog);
        } catch (const FatalError &e) {
            // Torn, stale or mismatched snapshot: cold-start and let
            // the periodic save overwrite it with a clean one.
            warn(strf("warm start: ignoring snapshot '", path,
                      "': ", e.what()));
            session.reset();
        }
    }
    if (!session) {
        session = std::make_unique<SimSession>(
            job.config, job.workload->launch, nullptr, watchdog);
    }

    bool saveFailed = false;
    Cycle nextSave = session->now() + policy.every;
    while (session->stepCycle()) {
        if (session->now() >= nextSave) {
            if (!saveFailed) {
                try {
                    session->saveSnapshot(path);
                } catch (const FatalError &e) {
                    // A full disk must not fail the simulation; stop
                    // trying (and warn once).
                    warn(strf("warm start: ", e.what(),
                              "; periodic saves disabled for this "
                              "job"));
                    saveFailed = true;
                }
            }
            nextSave = session->now() + policy.every;
        }
    }
    SimResult result = session->result();
    // The finished result goes to the cache/store; the intermediate
    // snapshot has served its purpose.
    std::remove(path.c_str());
    return result;
}

/**
 * Single-flight guard: at most one thread computes a given cache key
 * at a time. Duplicate jobs inside one batch (or across concurrent
 * batches) used to race past the cache lookup together and both
 * simulate; besides the wasted work, that made cache-hit counts
 * nondeterministic — a sweep containing the same workload twice
 * could report zero memory hits when the duplicates overlapped.
 * Waiters block until the owner publishes (or fails), then re-consult
 * the cache, so the duplicate is always a hit.
 */
struct InflightKeys
{
    std::mutex mu;
    std::condition_variable cv;
    std::set<std::uint64_t> keys;
};

InflightKeys &
inflightKeys()
{
    static InflightKeys keys;
    return keys;
}

/** RAII ownership of a key's single-flight slot: erases the key and
 *  wakes the waiters even when the computation throws (a waiter then
 *  retries and surfaces its own error). */
class InflightClaim
{
  public:
    explicit InflightClaim(std::uint64_t key) : key_(key) {}
    ~InflightClaim()
    {
        InflightKeys &inflight = inflightKeys();
        {
            std::lock_guard<std::mutex> lock(inflight.mu);
            inflight.keys.erase(key_);
        }
        inflight.cv.notify_all();
    }
    InflightClaim(const InflightClaim &) = delete;
    InflightClaim &operator=(const InflightClaim &) = delete;

  private:
    std::uint64_t key_;
};

/** Simulate one job, consulting and feeding the global cache. */
std::shared_ptr<const SimResult>
simulateCached(const SimJob &job)
{
    // One-shot BOWSIM_STORE_DIR wiring: every simulation path in the
    // process (benches, CLI, daemon) funnels through here, so the
    // on-disk tier attaches without any per-tool code.
    static const bool envAttached =
        (attachGlobalResultStoreFromEnv(), true);
    (void)envAttached;

    const std::uint64_t key =
        simCacheKey(*job.workload, job.config, job.fault);
    if (auto hit = globalResultCache().lookup(key))
        return hit;

    // Claim the key, waiting out any in-flight computation of the
    // same key first. Re-consult the cache only after an actual wait:
    // the usual outcome is that the previous owner published a result
    // (count it as the cache hit it is); falling through means the
    // owner failed or the entry was evicted, and this thread
    // recomputes. Skipping the re-lookup on the uncontended path
    // keeps a plain miss counting as exactly one miss.
    bool waited = false;
    {
        InflightKeys &inflight = inflightKeys();
        std::unique_lock<std::mutex> lock(inflight.mu);
        if (inflight.keys.find(key) != inflight.keys.end()) {
            waited = true;
            inflight.cv.wait(lock, [&] {
                return inflight.keys.find(key) == inflight.keys.end();
            });
        }
        inflight.keys.insert(key);
    }
    InflightClaim claim(key);
    if (waited) {
        if (auto hit = globalResultCache().lookup(key))
            return hit;
    }

    std::optional<Watchdog> watchdog;
    if (job.watchdog.any())
        watchdog.emplace(job.watchdog);

    std::shared_ptr<const SimResult> result;
    const SnapshotPolicy &snapPolicy = snapshotPolicy();
    if (!snapPolicy.dir.empty() && !job.fault.enabled) {
        // Warm start: fault jobs are excluded (snapshots refuse an
        // armed injector), clean jobs resume mid-run.
        result = std::make_shared<const SimResult>(simulateWarmStart(
            job, snapPolicy, key, watchdog ? &*watchdog : nullptr));
    } else {
        Simulator sim(job.config);
        std::optional<FaultInjector> injector;
        if (job.fault.enabled)
            injector.emplace(job.fault, job.config.faultProtection);
        result = std::make_shared<const SimResult>(
            sim.run(job.workload->launch,
                    injector ? &*injector : nullptr,
                    watchdog ? &*watchdog : nullptr));
    }
    gSimulationsRun.fetch_add(1, std::memory_order_relaxed);
    // First writer wins; concurrent duplicates computed the same
    // bits, so which copy survives is unobservable.
    return globalResultCache().insert(key, std::move(result));
}

/** Fold the in-flight exception into a SimError. */
SimError
classifyException(std::exception_ptr ep)
{
    SimError err;
    try {
        std::rethrow_exception(ep);
    } catch (const HangError &e) {
        err.kind = SimError::Kind::Hang;
        err.message = e.what();
    } catch (const PanicError &e) {
        err.kind = SimError::Kind::Panic;
        err.message = e.what();
    } catch (const FatalError &e) {
        err.kind = SimError::Kind::Fatal;
        err.message = e.what();
    } catch (const std::exception &e) {
        err.kind = SimError::Kind::Other;
        err.message = e.what();
    } catch (...) {
        err.kind = SimError::Kind::Other;
        err.message = "unknown exception";
    }
    return err;
}

} // namespace

std::string
simErrorKindName(SimError::Kind kind)
{
    switch (kind) {
      case SimError::Kind::Fatal: return "fatal";
      case SimError::Kind::Panic: return "panic";
      case SimError::Kind::Hang:  return "hang";
      case SimError::Kind::Other: return "other";
    }
    panic("simErrorKindName: bad kind");
}

SimOutcome::SimOutcome()
{
    error_.kind = SimError::Kind::Other;
    error_.message = "job never executed";
}

SimOutcome
SimOutcome::success(std::shared_ptr<const SimResult> result)
{
    if (!result)
        panic("SimOutcome::success: null result");
    SimOutcome out;
    out.result_ = std::move(result);
    out.error_ = SimError{};
    return out;
}

SimOutcome
SimOutcome::failure(SimError error)
{
    SimOutcome out;
    out.error_ = std::move(error);
    return out;
}

const SimResult &
SimOutcome::value() const
{
    if (!ok())
        panic(strf("SimOutcome::value on a failed job (",
                   simErrorKindName(error_.kind), ": ",
                   error_.message, ")"));
    return *result_;
}

const SimError &
SimOutcome::error() const
{
    if (ok())
        panic("SimOutcome::error on a successful job");
    return error_;
}

ParallelRunner::ParallelRunner(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs())
{}

unsigned
ParallelRunner::defaultJobs()
{
    if (const unsigned forced = gDefaultJobs.load())
        return forced;
    if (const char *env = std::getenv("BOWSIM_JOBS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        warn(strf("ignoring BOWSIM_JOBS='", env,
                  "' (want a positive integer)"));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
ParallelRunner::setDefaultJobs(unsigned jobs)
{
    gDefaultJobs.store(jobs);
}

std::uint64_t
ParallelRunner::simulationsRun()
{
    return gSimulationsRun.load(std::memory_order_relaxed);
}

SimResult
ParallelRunner::runOne(const SimJob &job) const
{
    if (job.workload == nullptr)
        panic("ParallelRunner::runOne: job has no workload");
    SimResult result = *simulateCached(job);
    if (metricsAggregationEnabled())
        globalMetrics().merge(result.metrics);
    return result;
}

void
ParallelRunner::executeBatch(
    std::size_t count,
    const std::function<void(std::size_t)> &runItem) const
{
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(jobs_, count));
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            runItem(i);
        return;
    }

    // One logical task per item, pulled from a shared counter so the
    // pool load-balances; results land at the item's submission
    // index, so completion order never shows in the output. runItem
    // must capture its own failures — a throw here would hit the
    // ThreadPool safety net and abort the batch.
    std::atomic<std::size_t> next{0};
    ThreadPool pool(workers);
    for (unsigned t = 0; t < workers; ++t) {
        pool.post([&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= count)
                    return;
                runItem(i);
            }
        });
    }
    pool.wait();
}

std::vector<SimOutcome>
ParallelRunner::runAll(const std::vector<SimJob> &batch) const
{
    for (const SimJob &job : batch) {
        if (job.workload == nullptr)
            panic("ParallelRunner::runAll: job has no workload");
    }

    std::vector<SimOutcome> outcomes(batch.size());
    executeBatch(batch.size(), [&](std::size_t i) {
        try {
            outcomes[i] = SimOutcome::success(simulateCached(batch[i]));
        } catch (...) {
            outcomes[i] = SimOutcome::failure(
                classifyException(std::current_exception()));
        }
    });

    // Aggregate after the barrier, in submission order: floating-point
    // sums then come out bit-identical at any --jobs count.
    if (metricsAggregationEnabled()) {
        for (const SimOutcome &o : outcomes) {
            if (o.ok())
                globalMetrics().merge(o.value().metrics);
        }
    }
    return outcomes;
}

std::vector<SimResult>
ParallelRunner::run(const std::vector<SimJob> &batch) const
{
    for (const SimJob &job : batch) {
        if (job.workload == nullptr)
            panic("ParallelRunner::run: job has no workload");
    }

    std::vector<SimResult> results(batch.size());
    std::vector<std::exception_ptr> errors(batch.size());
    executeBatch(batch.size(), [&](std::size_t i) {
        try {
            results[i] = *simulateCached(batch[i]);
        } catch (...) {
            errors[i] = std::current_exception();
        }
    });

    // Strict contract: rethrow the lowest-indexed failure, chosen by
    // submission order (not completion order) so the surfaced error
    // is identical at any job count.
    for (const std::exception_ptr &err : errors) {
        if (err)
            std::rethrow_exception(err);
    }

    // As in runAll: deterministic submission-order aggregation.
    if (metricsAggregationEnabled()) {
        for (const SimResult &r : results)
            globalMetrics().merge(r.metrics);
    }
    return results;
}

} // namespace bow
