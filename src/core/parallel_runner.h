/**
 * @file
 * Parallel simulation engine: executes a batch of independent
 * simulation jobs on a fixed-size thread pool and returns the
 * results in submission order, memoizing every finished simulation
 * in the process-wide ResultCache. Because each Simulator::run()
 * builds a fresh SmCore and the workload generators are seeded and
 * self-contained, jobs share no mutable state and results are
 * bit-identical to a serial run at any job count.
 */

#ifndef BOWSIM_CORE_PARALLEL_RUNNER_H
#define BOWSIM_CORE_PARALLEL_RUNNER_H

#include <vector>

#include "core/result_cache.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "workloads/registry.h"

namespace bow {

/**
 * One simulation to run: a workload (borrowed from the caller, which
 * must keep it alive across run()) plus a full machine configuration.
 */
struct SimJob
{
    const Workload *workload = nullptr;
    SimConfig config;

    SimJob() = default;

    /** The common bench shape: a Table II machine variant. */
    SimJob(const Workload &wl, Architecture arch, unsigned iw = 3,
           unsigned bocEntries = 0)
        : workload(&wl), config(configFor(arch, iw, bocEntries))
    {}

    /** Fully custom configuration (bank/port/scheduler ablations). */
    SimJob(const Workload &wl, const SimConfig &cfg)
        : workload(&wl), config(cfg)
    {}
};

/**
 * Batch executor over the thread pool + result cache.
 *
 * The job count comes from the constructor argument, else the
 * BOWSIM_JOBS environment variable, else hardware_concurrency(),
 * and is always capped at the batch size so small batches never pay
 * for idle threads.
 */
class ParallelRunner
{
  public:
    /** @param jobs Worker count; 0 means defaultJobs(). */
    explicit ParallelRunner(unsigned jobs = 0);

    /**
     * Run every job and return results indexed exactly like @p batch.
     * Order of execution is unspecified; order of results is not.
     */
    std::vector<SimResult> run(const std::vector<SimJob> &batch) const;

    /** Run one job through the cache (no threads involved). */
    SimResult runOne(const SimJob &job) const;

    unsigned jobs() const { return jobs_; }

    /**
     * Resolve the process-default worker count: the value set with
     * setDefaultJobs() (the CLI --jobs flag), else BOWSIM_JOBS, else
     * std::thread::hardware_concurrency().
     */
    static unsigned defaultJobs();

    /** Override defaultJobs() for this process (0 = back to auto). */
    static void setDefaultJobs(unsigned jobs);

    /** Simulations actually executed by this process (cache misses
     *  that went to a Simulator). */
    static std::uint64_t simulationsRun();

  private:
    unsigned jobs_;
};

} // namespace bow

#endif // BOWSIM_CORE_PARALLEL_RUNNER_H
