/**
 * @file
 * Parallel simulation engine: executes a batch of independent
 * simulation jobs on a fixed-size thread pool and returns the
 * results in submission order, memoizing every finished simulation
 * in the process-wide ResultCache. Because each Simulator::run()
 * builds a fresh SmCore and the workload generators are seeded and
 * self-contained, jobs share no mutable state and results are
 * bit-identical to a serial run at any job count.
 *
 * Two batch entry points:
 *  - run()     strict: every job must succeed; the failure of the
 *              lowest-indexed failing job is rethrown after the
 *              whole batch has been attempted.
 *  - runAll()  fault-tolerant: each job yields a SimOutcome (result
 *              or classified SimError); one hanging or throwing
 *              simulation never discards its siblings' work. This is
 *              what fault-injection campaigns use — an injected flip
 *              may legitimately deadlock or panic the machine.
 */

#ifndef BOWSIM_CORE_PARALLEL_RUNNER_H
#define BOWSIM_CORE_PARALLEL_RUNNER_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/watchdog.h"
#include "core/result_cache.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "workloads/registry.h"

namespace bow {

/**
 * One simulation to run: a workload (borrowed from the caller, which
 * must keep it alive across run()) plus a full machine configuration,
 * optionally armed with a fault plan and bounded by a watchdog.
 */
struct SimJob
{
    const Workload *workload = nullptr;
    SimConfig config;

    /** Optional single-bit-flip plan (part of the cache key). */
    FaultPlan fault;

    /**
     * Optional per-simulation watchdog limits. NOT part of the cache
     * key: a simulation that completes under a watchdog is
     * bit-identical to the unlimited run.
     */
    Watchdog::Limits watchdog;

    SimJob() = default;

    /** The common bench shape: a Table II machine variant. */
    SimJob(const Workload &wl, Architecture arch, unsigned iw = 3,
           unsigned bocEntries = 0)
        : workload(&wl), config(configFor(arch, iw, bocEntries))
    {}

    /** Fully custom configuration (bank/port/scheduler ablations). */
    SimJob(const Workload &wl, const SimConfig &cfg)
        : workload(&wl), config(cfg)
    {}
};

/** Why a job failed, with the exception type folded into a kind. */
struct SimError
{
    enum class Kind
    {
        Fatal,  ///< FatalError: user/configuration error, or the
                ///< maxCycles deadlock guard
        Panic,  ///< PanicError: a simulator invariant broke
        Hang,   ///< HangError: the per-sim watchdog expired
        Other   ///< any other exception type
    };

    Kind kind = Kind::Other;
    std::string message;
};

/** "fatal" / "panic" / "hang" / "other". */
std::string simErrorKindName(SimError::Kind kind);

/**
 * Result-or-error of one job in a fault-tolerant batch. Accessors
 * panic() on misuse (reading the wrong arm), so classification bugs
 * fail loudly instead of yielding a default-constructed result.
 */
class SimOutcome
{
  public:
    /** Default state: a failure ("job never executed"). */
    SimOutcome();

    static SimOutcome success(std::shared_ptr<const SimResult> result);
    static SimOutcome failure(SimError error);

    bool ok() const { return result_ != nullptr; }

    /** The simulation result; panics when !ok(). */
    const SimResult &value() const;

    /** The failure; panics when ok(). */
    const SimError &error() const;

  private:
    std::shared_ptr<const SimResult> result_;
    SimError error_;
};

/**
 * Batch executor over the thread pool + result cache.
 *
 * The job count comes from the constructor argument, else the
 * BOWSIM_JOBS environment variable, else hardware_concurrency(),
 * and is always capped at the batch size so small batches never pay
 * for idle threads.
 */
class ParallelRunner
{
  public:
    /** @param jobs Worker count; 0 means defaultJobs(). */
    explicit ParallelRunner(unsigned jobs = 0);

    /**
     * Run every job and return results indexed exactly like @p batch.
     * Order of execution is unspecified; order of results is not.
     * Strict: after the whole batch has been attempted, the failure
     * of the lowest-indexed failing job is rethrown (deterministic
     * at any job count).
     */
    std::vector<SimResult> run(const std::vector<SimJob> &batch) const;

    /**
     * Fault-tolerant variant: every job runs to its own conclusion
     * and reports a per-item SimOutcome. Nothing is thrown for job
     * failures; a hang or panic in one simulation never costs the
     * results of the others.
     */
    std::vector<SimOutcome>
    runAll(const std::vector<SimJob> &batch) const;

    /** Run one job through the cache (no threads involved). */
    SimResult runOne(const SimJob &job) const;

    unsigned jobs() const { return jobs_; }

    /**
     * Resolve the process-default worker count: the value set with
     * setDefaultJobs() (the CLI --jobs flag), else BOWSIM_JOBS, else
     * std::thread::hardware_concurrency().
     */
    static unsigned defaultJobs();

    /** Override defaultJobs() for this process (0 = back to auto). */
    static void setDefaultJobs(unsigned jobs);

    /** Simulations actually executed by this process (cache misses
     *  that went to a Simulator). */
    static std::uint64_t simulationsRun();

  private:
    /** Run item @p i of the batch; must not throw. */
    void executeBatch(std::size_t count,
                      const std::function<void(std::size_t)> &runItem)
        const;

    unsigned jobs_;
};

} // namespace bow

#endif // BOWSIM_CORE_PARALLEL_RUNNER_H
