#include "core/replay.h"

#include "common/log.h"
#include "sm/boc.h"

namespace bow {

ReplayResult
replayWritebacks(const Kernel &kernel, const WarpTrace &trace,
                 Architecture arch, unsigned windowSize,
                 unsigned capacity)
{
    ReplayResult out;
    const unsigned cap = capacity ? capacity : 4 * windowSize;

    if (arch == Architecture::Baseline || arch == Architecture::BOW) {
        // Write-through: every executed destination write reaches the
        // RF (BOW additionally writes the BOC).
        for (const DynInst &dyn : trace.insts) {
            const Instruction &inst = kernel.inst(dyn.idx);
            if (inst.hasDest() && dyn.wrote) {
                ++out.rfWritesPerReg[inst.dst];
                ++out.totalRfWrites;
                if (arch == Architecture::BOW)
                    ++out.totalBocWrites;
            }
        }
        return out;
    }
    if (arch != Architecture::BOW_WR &&
        arch != Architecture::BOW_WR_OPT) {
        fatal("replayWritebacks: unsupported architecture");
    }

    Boc boc(arch, windowSize, cap);
    auto handle = [&](const BocEviction &ev) {
        if (ev.needsRfWrite) {
            ++out.rfWritesPerReg[ev.reg];
            ++out.totalRfWrites;
        }
    };

    SeqNum seq = 0;
    for (const DynInst &dyn : trace.insts) {
        const Instruction &inst = kernel.inst(dyn.idx);
        auto res = boc.insert(seq, inst.uniqueSrcRegs());
        // Replay has no RF latency: fetches land instantly.
        for (RegId r : res.toFetch)
            boc.fetchComplete(r);
        for (const auto &ev : res.evictions)
            handle(ev);

        if (inst.hasDest() && dyn.wrote) {
            auto wres = boc.writeResult(seq, inst.dst, inst.hint);
            if (wres.wroteBoc)
                ++out.totalBocWrites;
            if (wres.writeRfNow) {
                ++out.rfWritesPerReg[inst.dst];
                ++out.totalRfWrites;
            }
            for (const auto &ev : wres.evictions)
                handle(ev);
        }
        ++seq;
    }
    for (const auto &ev : boc.flush())
        handle(ev);
    return out;
}

} // namespace bow
