/**
 * @file
 * Write-back replay: drives a dynamic warp trace through the BOC
 * write policies in isolation and counts the register-file writes
 * each architectural register causes. This is exactly the paper's
 * Table I experiment (RF write counts for the Fig. 6 listing under
 * write-through, write-back, and compiler-optimised write-back).
 */

#ifndef BOWSIM_CORE_REPLAY_H
#define BOWSIM_CORE_REPLAY_H

#include <map>

#include "compiler/reuse.h"
#include "isa/kernel.h"
#include "sm/sim_config.h"

namespace bow {

/** Per-register RF write counts produced by a replay. */
struct ReplayResult
{
    std::map<RegId, std::uint64_t> rfWritesPerReg;
    std::uint64_t totalRfWrites = 0;
    std::uint64_t totalBocWrites = 0;

    std::uint64_t
    writesTo(RegId reg) const
    {
        auto it = rfWritesPerReg.find(reg);
        return it == rfWritesPerReg.end() ? 0 : it->second;
    }
};

/**
 * Replay @p trace through the write policy of @p arch.
 *
 * For Architecture::BOW_WR_OPT the kernel must already carry
 * compiler hints (run tagWritebacks first). Baseline and BOW count
 * one RF write per executed destination write (write-through).
 *
 * @param kernel     The static kernel the trace executed.
 * @param trace      One warp's dynamic stream.
 * @param arch       Write policy to model.
 * @param windowSize IW.
 * @param capacity   BOC capacity (0 = conservative 4 x IW).
 */
ReplayResult replayWritebacks(const Kernel &kernel,
                              const WarpTrace &trace,
                              Architecture arch, unsigned windowSize,
                              unsigned capacity = 0);

} // namespace bow

#endif // BOWSIM_CORE_REPLAY_H
