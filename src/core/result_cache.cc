#include "core/result_cache.h"

#include <type_traits>

namespace bow {

namespace {

/** Incremental FNV-1a over arbitrary scalar fields. */
class Fnv1a
{
  public:
    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= p[i];
            hash_ *= 0x100000001B3ull;
        }
    }

    template <typename T>
    void
    scalar(T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        bytes(&v, sizeof(v));
    }

    void
    str(const std::string &s)
    {
        scalar(s.size());
        bytes(s.data(), s.size());
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xCBF29CE484222325ull;
};

/** Hash every semantically relevant field of one instruction.
 *  Field-by-field (not raw struct bytes) so padding never leaks in. */
void
hashInstruction(Fnv1a &h, const Instruction &inst)
{
    h.scalar(static_cast<int>(inst.op));
    h.scalar(static_cast<int>(inst.cc));
    h.scalar(inst.dst);
    h.scalar(inst.numSrcs);
    for (const Operand &o : inst.srcs) {
        h.scalar(static_cast<int>(o.kind));
        h.scalar(o.reg);
        h.scalar(o.imm);
        h.scalar(static_cast<int>(o.special));
    }
    h.scalar(inst.pred);
    h.scalar(inst.predNegate);
    h.scalar(inst.memOffset);
    h.scalar(inst.branchTarget);
    h.scalar(static_cast<int>(inst.hint));
}

void
hashKernel(Fnv1a &h, const Kernel &kernel)
{
    h.scalar(kernel.size());
    for (const Instruction &inst : kernel.instructions())
        hashInstruction(h, inst);
}

void
hashLaunch(Fnv1a &h, const Launch &launch)
{
    hashKernel(h, launch.kernel);
    h.scalar(launch.numWarps);
    h.scalar(launch.warpsPerCta);
    h.scalar(launch.warpKernels.size());
    for (const Kernel &k : launch.warpKernels)
        hashKernel(h, k);
    h.scalar(launch.initRegs.size());
    for (const auto &[reg, val] : launch.initRegs) {
        h.scalar(reg);
        h.scalar(val);
    }
    h.scalar(launch.initMem.size());
    for (const auto &[space, addr, val] : launch.initMem) {
        h.scalar(static_cast<int>(space));
        h.scalar(addr);
        h.scalar(val);
    }
}

} // namespace

std::uint64_t
launchContentHash(const Launch &launch)
{
    Fnv1a h;
    hashLaunch(h, launch);
    return h.value();
}

std::uint64_t
simCacheKey(const Workload &workload, const SimConfig &c)
{
    Fnv1a h;
    // Workload identity: the registry name and generation scale for
    // fast discrimination, then the launch content itself so that
    // modified copies (reordered kernels, custom --asm programs that
    // reuse a registry name) can never collide with the original.
    h.str(workload.name);
    h.scalar(workload.scale);
    hashLaunch(h, workload.launch);

    // Every SimConfig field, enumerated explicitly so that adding a
    // knob without extending the key is caught in review rather than
    // by silently aliasing two different configurations.
    h.scalar(c.numSchedulers);
    h.scalar(c.issuePerScheduler);
    h.scalar(c.maxResidentWarps);
    h.scalar(c.numBanks);
    h.scalar(c.rfBytesPerSm);
    h.scalar(c.numCollectors);
    h.scalar(c.collectorPorts);
    h.scalar(static_cast<int>(c.schedPolicy));
    h.scalar(c.aluLatency);
    h.scalar(c.sfuLatency);
    h.scalar(c.ctrlLatency);
    h.scalar(c.aluWidth);
    h.scalar(c.sfuWidth);
    h.scalar(c.ldstWidth);
    h.scalar(c.l1Latency);
    h.scalar(c.l2Latency);
    h.scalar(c.dramLatency);
    h.scalar(c.l1Bytes);
    h.scalar(c.l1LineBytes);
    h.scalar(c.l1Ways);
    h.scalar(c.l2Bytes);
    h.scalar(c.l2LineBytes);
    h.scalar(c.l2Ways);
    h.scalar(c.sharedLatency);
    h.scalar(c.maxPendingLoads);
    h.scalar(c.numSms);
    h.scalar(static_cast<int>(c.ctaPolicy));
    h.scalar(c.l2Banks);
    h.scalar(c.l2MshrsPerBank);
    h.scalar(static_cast<int>(c.arch));
    h.scalar(c.windowSize);
    // Normalised: bocEntries==0 means "4 * windowSize", so a job
    // spelling the default explicitly hits the same entry.
    h.scalar(c.effectiveBocEntries());
    h.scalar(c.extendedWindow);
    h.scalar(c.rfcEntriesPerWarp);
    h.scalar(c.maxCycles);
    h.scalar(static_cast<int>(c.faultProtection));
    // hostFastForward, hostThreads and epochCycles are deliberately
    // NOT hashed: they are host-speed knobs with bit-identical
    // simulated results, so every setting must share one cache entry.
    return h.value();
}

std::uint64_t
simCacheKey(const Workload &workload, const SimConfig &c,
            const FaultPlan &fault)
{
    std::uint64_t key = simCacheKey(workload, c);
    if (!fault.enabled)
        return key;     // clean run: identical to the 2-arg key

    Fnv1a h;
    h.scalar(key);
    h.scalar(fault.enabled);
    h.scalar(static_cast<int>(fault.site));
    h.scalar(fault.warp);
    h.scalar(fault.reg);
    h.scalar(fault.bit);
    h.scalar(fault.cycle);
    h.scalar(fault.sm);
    h.scalar(fault.addr);
    h.scalar(fault.cta);
    return h.value();
}

std::shared_ptr<const SimResult>
ResultCache::lookup(std::uint64_t key)
{
    ResultTier *tier = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            ++hits_;
            return it->second;
        }
        ++misses_;
        tier = tier_;
    }
    if (tier == nullptr)
        return nullptr;

    // Tier I/O runs outside the mutex: a slow disk must not
    // serialize the other workers' memory hits.
    std::shared_ptr<const SimResult> stored = tier->load(key);
    if (stored == nullptr)
        return nullptr;

    std::lock_guard<std::mutex> lock(mutex_);
    // First writer wins, as in insert(): a racing compute or tier
    // load published identical bits.
    auto [it, inserted] = map_.emplace(key, std::move(stored));
    ++storeHits_;
    return it->second;
}

std::shared_ptr<const SimResult>
ResultCache::insert(std::uint64_t key,
                    std::shared_ptr<const SimResult> result)
{
    ResultTier *tier = nullptr;
    std::shared_ptr<const SimResult> winner;
    bool fresh = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto [it, inserted] = map_.emplace(key, std::move(result));
        winner = it->second;
        fresh = inserted;
        tier = tier_;
    }
    // Write-through outside the lock; only the first insert pays it
    // (tier loads are memoized via lookup(), never re-published).
    if (fresh && tier != nullptr)
        tier->publish(key, *winner);
    return winner;
}

void
ResultCache::attachTier(ResultTier *tier)
{
    std::lock_guard<std::mutex> lock(mutex_);
    tier_ = tier;
}

bool
ResultCache::hasTier() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tier_ != nullptr;
}

std::uint64_t
ResultCache::storeHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return storeHits_;
}

std::uint64_t
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
ResultCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

void
ResultCache::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    hits_ = 0;
    misses_ = 0;
    storeHits_ = 0;
}

ResultCache &
globalResultCache()
{
    static ResultCache cache;
    return cache;
}

} // namespace bow
