/**
 * @file
 * Process-wide memoizing cache of simulation results. Every bench
 * table that includes a Baseline (or any repeated) column re-runs an
 * identical (workload, configuration) simulation; the cache makes
 * each distinct simulation run exactly once per process and hands
 * out the shared, immutable result thereafter.
 */

#ifndef BOWSIM_CORE_RESULT_CACHE_H
#define BOWSIM_CORE_RESULT_CACHE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/simulator.h"
#include "workloads/registry.h"

namespace bow {

/**
 * Stable 64-bit key for one simulation: a FNV-1a hash over the
 * workload identity (name + generation scale), the full *content*
 * of its launch (every instruction of every kernel plus the initial
 * register/memory image — so a bench that mutates a generated kernel,
 * e.g. the reordering ablation, can never alias the pristine one),
 * and every SimConfig field that can influence the run. Two jobs
 * with equal keys produce bit-identical SimResults, because the
 * simulator itself is fully deterministic.
 */
std::uint64_t simCacheKey(const Workload &workload,
                          const SimConfig &config);

/**
 * FNV-1a hash over the full content of @p launch: every instruction
 * of every kernel plus the initial register/memory image (the same
 * launch component simCacheKey folds in). Snapshot headers pin the
 * launch a serialized simulation belongs to with this hash, so a
 * resume against a different program is refused instead of
 * mis-decoding.
 */
std::uint64_t launchContentHash(const Launch &launch);

/**
 * Key for a fault-injection run: the clean key extended with the
 * complete FaultPlan, so a faulty run can never alias the clean run
 * of the same (workload, config) — or a different trial's fault.
 * A disabled plan hashes identically to the two-argument overload.
 *
 * Watchdog limits are deliberately NOT part of the key: a run that
 * completes under a watchdog is bit-identical to the unlimited run
 * (the watchdog either aborts the simulation or leaves no trace).
 */
std::uint64_t simCacheKey(const Workload &workload,
                          const SimConfig &config,
                          const FaultPlan &fault);

/**
 * A persistent second tier behind the in-memory ResultCache — the
 * interface the on-disk result store (service/result_store.h)
 * implements. Kept abstract here so core/ carries no dependency on
 * the service layer's codec or filesystem code.
 *
 * Implementations must be thread-safe: ParallelRunner workers call
 * load()/publish() concurrently, and the cache deliberately performs
 * tier I/O outside its own mutex so disk latency never serializes
 * the workers.
 */
class ResultTier
{
  public:
    virtual ~ResultTier() = default;

    /** The stored result for @p key, or nullptr (miss, torn entry,
     *  stale version — all equivalent to "recompute"). */
    virtual std::shared_ptr<const SimResult>
    load(std::uint64_t key) = 0;

    /** Durably publish @p result under @p key (atomic replace). */
    virtual void publish(std::uint64_t key,
                         const SimResult &result) = 0;
};

/**
 * Mutex-guarded map from simCacheKey() to the finished result.
 *
 * Results are stored behind shared_ptr<const SimResult> so hits can
 * be handed out without copying the (potentially large) final
 * register and memory state. The cache never evicts; a bench process
 * runs a bounded set of configurations.
 *
 * Optionally backed by a ResultTier: a memory miss consults the
 * tier before reporting a miss (a tier hit is memoized and counted
 * in storeHits()), and every insert() of a freshly computed result
 * is written through to the tier. That is how BOWSIM_STORE_DIR
 * turns every bench/CLI/daemon process into a client of the same
 * on-disk memo table (docs/SERVICE.md).
 */
class ResultCache
{
  public:
    /** The result for @p key, or nullptr on miss. Counts hit/miss;
     *  consults the backing tier on a memory miss. */
    std::shared_ptr<const SimResult> lookup(std::uint64_t key);

    /**
     * Publish @p result under @p key. First writer wins: when two
     * threads simulated the same key concurrently, the result already
     * stored is returned (both are identical anyway). A first-time
     * insert is written through to the backing tier.
     */
    std::shared_ptr<const SimResult>
    insert(std::uint64_t key, std::shared_ptr<const SimResult> result);

    /**
     * Attach (or with nullptr, detach) the persistent second tier.
     * Non-owning: @p tier must outlive every lookup()/insert() that
     * can still see it.
     */
    void attachTier(ResultTier *tier);

    /** True when a persistent tier is attached. */
    bool hasTier() const;

    std::uint64_t hits() const;
    std::uint64_t misses() const;
    /** Memory misses that were served from the backing tier. */
    std::uint64_t storeHits() const;
    std::size_t size() const;

    /** Drop all entries and zero the counters (tests only; the
     *  attached tier, if any, is kept). */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<const SimResult>> map_;
    ResultTier *tier_ = nullptr;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t storeHits_ = 0;
};

/** The process-wide cache used by ParallelRunner and the benches. */
ResultCache &globalResultCache();

} // namespace bow

#endif // BOWSIM_CORE_RESULT_CACHE_H
