#include "core/run_manifest.h"

#include <fstream>

#include "common/log.h"

#ifndef BOWSIM_GIT_DESCRIBE
#define BOWSIM_GIT_DESCRIBE "unknown"
#endif

namespace bow {

namespace {

/** FNV-1a over a byte string (same parameters as simCacheKey). */
std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t h = 14695981039346656037ull;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

double
secondsSince(std::chrono::steady_clock::time_point t0,
             std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

RunManifest::RunManifest()
    : start_(std::chrono::steady_clock::now())
{}

std::string
RunManifest::buildVersion()
{
    return BOWSIM_GIT_DESCRIBE;
}

void
RunManifest::setCommandLine(int argc, const char *const *argv)
{
    commandLine_.clear();
    for (int i = 0; i < argc; ++i) {
        if (i)
            commandLine_ += ' ';
        commandLine_ += argv[i];
    }
}

void
RunManifest::setWorkload(const std::string &name)
{
    workload_ = name;
}

void
RunManifest::setConfig(const SimConfig &config)
{
    JsonValue c = JsonValue::object();
    c.set("arch", archName(config.arch));
    c.set("window_size", static_cast<std::uint64_t>(config.windowSize));
    c.set("boc_entries",
          static_cast<std::uint64_t>(config.effectiveBocEntries()));
    c.set("extended_window", config.extendedWindow);
    c.set("scheduler", schedName(config.schedPolicy));
    c.set("num_schedulers",
          static_cast<std::uint64_t>(config.numSchedulers));
    c.set("issue_per_scheduler",
          static_cast<std::uint64_t>(config.issuePerScheduler));
    c.set("max_resident_warps",
          static_cast<std::uint64_t>(config.maxResidentWarps));
    c.set("num_banks", static_cast<std::uint64_t>(config.numBanks));
    c.set("num_collectors",
          static_cast<std::uint64_t>(config.numCollectors));
    c.set("collector_ports",
          static_cast<std::uint64_t>(config.collectorPorts));
    c.set("rfc_entries_per_warp",
          static_cast<std::uint64_t>(config.rfcEntriesPerWarp));
    c.set("fault_protection", protectionName(config.faultProtection));
    configHash_ = fnv1a(c.dump());
    configJson_ = std::move(c);
    hasConfig_ = true;
}

void
RunManifest::setCacheKey(std::uint64_t key)
{
    cacheKey_ = key;
    hasCacheKey_ = true;
}

void
RunManifest::beginPhase(const std::string &name)
{
    endPhase();
    openPhase_ = name;
    openStart_ = std::chrono::steady_clock::now();
}

void
RunManifest::endPhase()
{
    if (openPhase_.empty())
        return;
    phases_.emplace_back(
        openPhase_,
        secondsSince(openStart_, std::chrono::steady_clock::now()));
    openPhase_.clear();
}

void
RunManifest::addPhaseSeconds(const std::string &name, double seconds)
{
    phases_.emplace_back(name, seconds);
}

void
RunManifest::setProfile(std::uint64_t simulatedCycles,
                        std::uint64_t simulatedInstructions,
                        double simulateSeconds)
{
    profileCycles_ = simulatedCycles;
    profileInsts_ = simulatedInstructions;
    profileSeconds_ = simulateSeconds;
    hasProfile_ = true;
}

void
RunManifest::setMetrics(const MetricsRegistry &metrics)
{
    metrics_ = metrics;
    hasMetrics_ = true;
}

JsonValue
RunManifest::toJson() const
{
    JsonValue out = JsonValue::object();
    out.set("tool", std::string("bowsim"));
    out.set("version", buildVersion());
    if (!commandLine_.empty())
        out.set("command_line", commandLine_);
    if (!workload_.empty())
        out.set("workload", workload_);
    if (hasConfig_) {
        out.set("config", configJson_);
        out.set("config_hash", strf("0x", std::hex, configHash_));
    }
    if (hasCacheKey_)
        out.set("sim_cache_key", strf("0x", std::hex, cacheKey_));

    JsonValue wall = JsonValue::object();
    for (const auto &[name, seconds] : phases_)
        wall.set(name, seconds);
    if (!openPhase_.empty()) {
        wall.set(openPhase_,
                 secondsSince(openStart_,
                              std::chrono::steady_clock::now()));
    }
    wall.set("total",
             secondsSince(start_, std::chrono::steady_clock::now()));
    out.set("wall", wall);

    if (hasProfile_) {
        JsonValue p = JsonValue::object();
        p.set("simulated_cycles", profileCycles_);
        p.set("simulated_instructions", profileInsts_);
        p.set("simulate_seconds", profileSeconds_);
        const double inv = profileSeconds_ > 0.0
            ? 1.0 / profileSeconds_ / 1e3 : 0.0;
        p.set("kips", static_cast<double>(profileInsts_) * inv);
        p.set("kcps", static_cast<double>(profileCycles_) * inv);
        out.set("profile", p);
    }

    if (hasMetrics_)
        out.set("metrics", metrics_.toJson());
    return out;
}

void
RunManifest::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        fatal(strf("cannot open manifest file '", path,
                   "' for writing"));
    os << toJson().dump(2) << '\n';
    if (!os)
        fatal(strf("failed writing manifest file '", path, "'"));
}

} // namespace bow
