/**
 * @file
 * Per-run provenance manifest: which build simulated which workload
 * under which configuration, how long each phase took, and the full
 * metrics snapshot the run produced. A manifest written next to a
 * figure or a metrics dump answers "what exactly produced this file"
 * without re-running anything (schema: docs/OBSERVABILITY.md).
 */

#ifndef BOWSIM_CORE_RUN_MANIFEST_H
#define BOWSIM_CORE_RUN_MANIFEST_H

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/metrics.h"
#include "sm/sim_config.h"

namespace bow {

/**
 * Collects the provenance of one CLI/bench invocation and serializes
 * it to JSON. All setters are optional; unset sections are simply
 * absent from the output. Not thread-safe — a manifest belongs to
 * the one run it describes.
 */
class RunManifest
{
  public:
    RunManifest();

    /** `git describe --always --dirty` captured at configure time,
     *  or "unknown" when the build had no git metadata. */
    static std::string buildVersion();

    void setCommandLine(int argc, const char *const *argv);
    void setWorkload(const std::string &name);

    /** Record the configuration summary and its stable FNV-1a hash
     *  (over the serialized summary, so equal configs hash equal
     *  across processes and builds). */
    void setConfig(const SimConfig &config);

    /** The ResultCache key of the simulation (simCacheKey()). */
    void setCacheKey(std::uint64_t key);

    /**
     * Start timing phase @p name (wall clock); implicitly ends any
     * phase still open. Phases appear in the manifest in start order
     * with their duration in seconds.
     */
    void beginPhase(const std::string &name);

    /** End the currently open phase (no-op when none is open). */
    void endPhase();

    /** Record an externally measured phase duration. */
    void addPhaseSeconds(const std::string &name, double seconds);

    /**
     * Host-speed profile of the simulate phase (--profile): how much
     * simulated work the host did per wall-second. KIPS (thousand
     * simulated instructions per host second) and KCPS (thousand
     * simulated cycles per host second) are derived from the
     * arguments; read alongside the per-phase "wall" section
     * (docs/PERFORMANCE.md).
     */
    void setProfile(std::uint64_t simulatedCycles,
                    std::uint64_t simulatedInstructions,
                    double simulateSeconds);

    /** Attach the run's full metrics snapshot. */
    void setMetrics(const MetricsRegistry &metrics);

    /** Serialize; ends any still-open phase first. */
    JsonValue toJson() const;

    /** Write toJson() (pretty-printed) to @p path; fatal()s on I/O
     *  failure. */
    void writeFile(const std::string &path) const;

  private:
    std::chrono::steady_clock::time_point start_;
    std::string commandLine_;
    std::string workload_;
    JsonValue configJson_;
    std::uint64_t configHash_ = 0;
    bool hasConfig_ = false;
    std::uint64_t cacheKey_ = 0;
    bool hasCacheKey_ = false;
    std::uint64_t profileCycles_ = 0;
    std::uint64_t profileInsts_ = 0;
    double profileSeconds_ = 0.0;
    bool hasProfile_ = false;
    std::vector<std::pair<std::string, double>> phases_;
    std::string openPhase_;
    std::chrono::steady_clock::time_point openStart_;
    MetricsRegistry metrics_;
    bool hasMetrics_ = false;
};

} // namespace bow

#endif // BOWSIM_CORE_RUN_MANIFEST_H
