#include "core/sampled.h"

#include <cmath>

#include "common/log.h"
#include "core/snapshot.h"

namespace bow {

namespace {

/** Upper bound on quiesce/drain cycles per window: the deepest
 *  pipeline state drains within a few memory round trips, so hitting
 *  this means the freeze logic is broken, not the workload. */
constexpr std::uint64_t kQuiesceGuard = 1'000'000;

void
stepUntilQuiet(SimSession &session, const char *phase)
{
    std::uint64_t guard = 0;
    while (!session.pipelineQuiet()) {
        if (!session.stepCycle())
            return; // finished: trivially quiet
        if (++guard > kQuiesceGuard)
            panic(strf("runSampled: pipeline failed to ", phase,
                       " within ", kQuiesceGuard, " cycles"));
    }
}

} // namespace

void
SampleSpec::validate() const
{
    if (window == 0)
        fatal("sampled mode: --sample-window must be > 0");
    if (period <= window) {
        fatal(strf("sampled mode: --sample-period (", period,
                   ") must exceed --sample-window (", window, ")"));
    }
}

SimResult
runSampled(const SimConfig &config, const Launch &launch,
           const SampleSpec &spec, const Watchdog *watchdog,
           SampledInfo *infoOut)
{
    spec.validate();

    // Sampled windows are measured in individual stepCycle() calls
    // (the window/period bookkeeping below reads session.now() after
    // every step), so epoch stepping — which advances many cycles per
    // call — would blow straight through window boundaries. Force
    // per-cycle stepping; sampling is an approximation mode anyway,
    // never compared bit-for-bit against epoch runs.
    SimConfig perCycle = config;
    perCycle.epochCycles = 1;
    SimSession session(perCycle, launch, nullptr, watchdog, nullptr);
    SampledInfo info;

    while (!session.finished()) {
        // Detailed window: full cycle-level simulation for `window`
        // cycles (idle fast-forward may overshoot; the overshoot is
        // detailed simulation too, so it stays in the IPC sample).
        const Cycle winStart = session.now();
        const std::uint64_t instStart = session.liveInstructions();
        while (!session.finished() &&
               session.now() - winStart < spec.window) {
            if (!session.stepCycle())
                break;
        }
        info.detailedCycles += session.now() - winStart;
        info.detailedInstructions +=
            session.liveInstructions() - instStart;
        ++info.windows;
        if (session.finished())
            break;

        // Quiesce: freeze issue, drain the pipeline, spill BOC/RFC
        // operand state home, drain the spill writes. The quiesce
        // cycles are simulated but deliberately excluded from the
        // IPC sample (they run a half-empty pipeline).
        session.setIssueFrozen(true);
        stepUntilQuiet(session, "quiesce");
        if (session.finished()) {
            session.setIssueFrozen(false);
            break;
        }
        session.flushOperandState();
        stepUntilQuiet(session, "drain flushed writes");

        // Functional-warming gap: bridge `period - window` cycles at
        // the IPC measured so far.
        const double ipc = info.detailedCycles
            ? static_cast<double>(info.detailedInstructions) /
              static_cast<double>(info.detailedCycles)
            : 0.0;
        const auto budget = static_cast<std::uint64_t>(
            std::llround(ipc * static_cast<double>(spec.period -
                                                   spec.window)));
        if (budget > 0)
            info.functionalInstructions +=
                session.functionalAdvance(budget);
        session.setIssueFrozen(false);
    }
    session.setIssueFrozen(false);

    SimResult out = session.result();

    // Extrapolate: total cycles = total instructions at the detailed
    // windows' measured IPC. With no instructions sampled (degenerate
    // programs) the detailed count stands.
    info.ipcDetailed = info.detailedCycles
        ? static_cast<double>(info.detailedInstructions) /
          static_cast<double>(info.detailedCycles)
        : 0.0;
    info.estimatedCycles = out.stats.cycles;
    if (info.ipcDetailed > 0.0) {
        info.estimatedCycles = static_cast<std::uint64_t>(std::llround(
            static_cast<double>(out.stats.instructions) /
            info.ipcDetailed));
    }

    out.estimate = true;
    out.stats.cycles = info.estimatedCycles;
    out.metrics.setCounter("gpu.cycles", out.stats.cycles);
    out.metrics.setValue("gpu.ipc", out.stats.ipc());
    out.metrics.setCounter("sampled.estimate", 1);
    out.metrics.setCounter("sampled.windows", info.windows);
    out.metrics.setCounter("sampled.detailed_cycles",
                           info.detailedCycles);
    out.metrics.setCounter("sampled.detailed_instructions",
                           info.detailedInstructions);
    out.metrics.setCounter("sampled.functional_instructions",
                           info.functionalInstructions);
    out.metrics.setValue("sampled.ipc_detailed", info.ipcDetailed);

    if (infoOut)
        *infoOut = info;
    return out;
}

double
ipcRelError(const SimResult &estimate, const SimResult &reference)
{
    const double ref = reference.stats.ipc();
    if (ref == 0.0)
        return estimate.stats.ipc() == 0.0 ? 0.0 : 1.0;
    return std::fabs(estimate.stats.ipc() - ref) / ref;
}

bool
metricsAreEstimate(const MetricsRegistry &metrics)
{
    return metrics.has("sampled.estimate") &&
        metrics.kindOf("sampled.estimate") == MetricKind::Counter &&
        metrics.counter("sampled.estimate") != 0;
}

} // namespace bow
