/**
 * @file
 * SMARTS-style sampled simulation (Wunderlich et al., ISCA'03,
 * adapted to the BOW pipeline): alternate short *detailed* windows —
 * full cycle-level simulation — with long *functional-warming* gaps
 * where instructions execute architecturally (registers, memory and
 * cache tags stay warm) but the pipeline clock does not advance.
 * Total cycles are extrapolated from the detailed windows' IPC, so a
 * sampled run trades a bounded IPC error for a large host-speed win
 * (docs/PERFORMANCE.md "Sampled mode").
 *
 * Between a window and its gap the pipeline is *quiesced*: issue is
 * frozen, in-flight instructions drain, and the BOC/RFC operand
 * state is flushed back to the register file so the architectural
 * registers are the single source of truth before functional
 * execution takes over (SmCore::flushOperandState).
 *
 * Sampled results are estimates, and the plumbing enforces that:
 * SimResult::estimate is set, `sampled.*` metrics mark the registry,
 * the result store refuses to publish them, and the golden
 * regression gate rejects them (metricsAreEstimate).
 */

#ifndef BOWSIM_CORE_SAMPLED_H
#define BOWSIM_CORE_SAMPLED_H

#include "core/simulator.h"

namespace bow {

class Watchdog;

/** Sampling schedule: each period simulates `window` detailed cycles
 *  and bridges the remaining `period - window` cycles functionally. */
struct SampleSpec
{
    std::uint64_t window = 0; ///< detailed cycles per period
    std::uint64_t period = 0; ///< total cycles per period

    bool enabled() const { return window > 0 || period > 0; }

    /** FatalError unless 0 < window < period. */
    void validate() const;
};

/** Host-side accounting of one sampled run (for reports/benches). */
struct SampledInfo
{
    std::uint64_t windows = 0;          ///< detailed windows run
    std::uint64_t detailedCycles = 0;   ///< cycles simulated in full
    std::uint64_t detailedInstructions = 0;
    std::uint64_t functionalInstructions = 0;
    double ipcDetailed = 0.0;           ///< measured over the windows
    std::uint64_t estimatedCycles = 0;  ///< extrapolated total
};

/**
 * Run @p launch under @p config with the SMARTS schedule @p spec.
 * The returned SimResult has estimate == true; stats.cycles (and the
 * gpu.cycles / gpu.ipc metrics) hold the extrapolated totals, while
 * instruction and access counters cover the whole program (detailed
 * + functional). Incompatible with fault injection and tracing.
 */
SimResult runSampled(const SimConfig &config, const Launch &launch,
                     const SampleSpec &spec,
                     const Watchdog *watchdog = nullptr,
                     SampledInfo *infoOut = nullptr);

/** |est - ref| / ref over the two results' IPC (the SMARTS accuracy
 *  figure); @p reference must be an exact run. */
double ipcRelError(const SimResult &estimate,
                   const SimResult &reference);

/** True when @p metrics came from a sampled (estimated) run — the
 *  marker the golden gate keys its rejection on. */
bool metricsAreEstimate(const MetricsRegistry &metrics);

} // namespace bow

#endif // BOWSIM_CORE_SAMPLED_H
