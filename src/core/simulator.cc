#include "core/simulator.h"

#include "common/log.h"
#include "gpu/cta_scheduler.h"
#include "gpu/gpu_core.h"
#include "isa/disassembler.h"

namespace bow {

Simulator::Simulator(SimConfig config)
    : config_(config)
{
    config_.validate();
}

SimResult
Simulator::run(const Launch &launch, FaultInjector *injector,
               const Watchdog *watchdog, TraceSink *tracer) const
{
    SimResult out;
    out.arch = archName(config_.arch);
    out.windowSize = config_.windowSize;

    const Launch *toRun = &launch;
    Launch tagged;
    if (config_.arch == Architecture::BOW_WR_OPT) {
        tagged = launch;
        if (tagged.warpKernels.empty()) {
            out.tags = tagWritebacks(tagged.kernel,
                                     config_.windowSize);
        } else {
            for (Kernel &k : tagged.warpKernels) {
                const TagStats s = tagWritebacks(k,
                                                 config_.windowSize);
                out.tags.rfOnly += s.rfOnly;
                out.tags.bocOnly += s.bocOnly;
                out.tags.bocAndRf += s.bocAndRf;
            }
        }
        toRun = &tagged;
    }

    if (config_.numSms <= 1) {
        // Legacy single-SM path, preserved bit-for-bit (the golden
        // gate and the GpuCore numSms=1 parity test both pin it).
        SmCore core(config_, *toRun, injector, watchdog, tracer);
        out.stats = core.run();
        out.finalRegs = core.finalRegs();
        out.finalMem = core.memory();
        if (injector)
            out.fault = injector->report();
        core.exportMetrics(out.metrics);
        out.metrics.setCounter("gpu.num_sms", 1);
        out.metrics.setCounter("gpu.cycles", out.stats.cycles);
        out.metrics.setCounter("gpu.instructions",
                               out.stats.instructions);
        out.metrics.setValue("gpu.ipc", out.stats.ipc());
        out.metrics.setCounter("gpu.peak_resident_warps",
                               out.stats.peakResident);
        out.metrics.setCounter("gpu.occupancy_cap",
                               occupancyCap(config_, *toRun));
        const auto ctas = partitionCtas(*toRun);
        out.ctaPlacements.assign(ctas.size(), 0);
        out.metrics.setCounter("gpu.cta.launched", ctas.size());
        out.metrics.setCounter("gpu.cta.warps_per_cta",
                               toRun->warpsPerCta);
        out.metrics.setHist(
            "gpu.cta.per_sm",
            {static_cast<std::uint64_t>(ctas.size())});
        out.energy = computeEnergy(out.stats, energyParams_,
                                   config_.faultProtection);
        exportEnergyMetrics(out.energy, out.metrics, "sm0.energy");
    } else {
        // GPU path: numSms SmCores behind the CTA scheduler and the
        // shared banked L2 (src/gpu/). Fault injection routes per-SM
        // sites to the targeted SmCore and device sites (l2/cta) to
        // the GpuCore's DeviceFaultInjector; tracing stays a
        // single-SM instrument.
        if (tracer)
            fatal("Simulator: event tracing supports --num-sms 1 only");

        GpuCore gpu(config_, *toRun, watchdog, injector);
        out.stats = gpu.run();
        out.finalRegs = gpu.finalRegs();
        out.finalMem = gpu.memory();
        out.ctaPlacements = gpu.ctaPlacements();
        if (injector) {
            out.fault = gpu.deviceFaultReport()
                ? *gpu.deviceFaultReport()
                : injector->report();
        }
        gpu.exportMetrics(out.metrics);
        out.energy = computeEnergy(out.stats, energyParams_,
                                   config_.faultProtection);
        for (unsigned s = 0; s < gpu.numSms(); ++s) {
            exportEnergyMetrics(
                computeEnergy(gpu.smStats(s), energyParams_,
                              config_.faultProtection),
                out.metrics, strf("sm", s, ".energy"));
        }
    }

    // GPU-level snapshot entries shared by both paths.
    exportEnergyMetrics(out.energy, out.metrics, "gpu.energy");
    out.metrics.setCounter("gpu.tags.rf_only", out.tags.rfOnly);
    out.metrics.setCounter("gpu.tags.boc_only", out.tags.bocOnly);
    out.metrics.setCounter("gpu.tags.boc_and_rf", out.tags.bocAndRf);
    return out;
}

void
Simulator::verifyAgainstFunctional(const Launch &launch) const
{
    const SimResult timing = run(launch);
    const FunctionalResult golden =
        runFunctional(launch, 4'000'000, /*recordTraces=*/false);

    if (timing.finalRegs.size() != golden.finalRegs.size())
        panic("verifyAgainstFunctional: warp count mismatch");

    for (std::size_t w = 0; w < golden.finalRegs.size(); ++w) {
        for (unsigned r = 0; r < 256; ++r) {
            if (timing.finalRegs[w][r] != golden.finalRegs[w][r]) {
                panic(strf("verifyAgainstFunctional: kernel '",
                           launch.kernel.name(), "', arch ",
                           timing.arch, ": warp ", w, " register ",
                           regName(static_cast<RegId>(r)),
                           " diverged (timing=", timing.finalRegs[w][r],
                           ", functional=", golden.finalRegs[w][r],
                           ")"));
            }
        }
    }
    if (!timing.finalMem.contentsEqual(golden.finalMem))
        panic(strf("verifyAgainstFunctional: kernel '",
                   launch.kernel.name(), "', arch ", timing.arch,
                   ": memory contents diverged"));
}

} // namespace bow
