#include "core/simulator.h"

#include "common/log.h"
#include "core/snapshot.h"
#include "isa/disassembler.h"

namespace bow {

Simulator::Simulator(SimConfig config)
    : config_(config)
{
    config_.validate();
}

SimResult
Simulator::run(const Launch &launch, FaultInjector *injector,
               const Watchdog *watchdog, TraceSink *tracer) const
{
    // The stepwise session (core/snapshot.h) is the one
    // implementation of a run: compiler tagging, the legacy
    // single-SM path, the GpuCore path and the full result assembly
    // all live there, shared with snapshot resume and sampled mode.
    SimSession session(config_, launch, injector, watchdog, tracer);
    session.runToCompletion();
    return session.result();
}

void
Simulator::verifyAgainstFunctional(const Launch &launch) const
{
    const SimResult timing = run(launch);
    const FunctionalResult golden =
        runFunctional(launch, 4'000'000, /*recordTraces=*/false);

    if (timing.finalRegs.size() != golden.finalRegs.size())
        panic("verifyAgainstFunctional: warp count mismatch");

    for (std::size_t w = 0; w < golden.finalRegs.size(); ++w) {
        for (unsigned r = 0; r < 256; ++r) {
            if (timing.finalRegs[w][r] != golden.finalRegs[w][r]) {
                panic(strf("verifyAgainstFunctional: kernel '",
                           launch.kernel.name(), "', arch ",
                           timing.arch, ": warp ", w, " register ",
                           regName(static_cast<RegId>(r)),
                           " diverged (timing=", timing.finalRegs[w][r],
                           ", functional=", golden.finalRegs[w][r],
                           ")"));
            }
        }
    }
    if (!timing.finalMem.contentsEqual(golden.finalMem))
        panic(strf("verifyAgainstFunctional: kernel '",
                   launch.kernel.name(), "', arch ", timing.arch,
                   ": memory contents diverged"));
}

} // namespace bow
