#include "core/simulator.h"

#include "common/log.h"
#include "isa/disassembler.h"

namespace bow {

Simulator::Simulator(SimConfig config)
    : config_(config)
{
    config_.validate();
}

SimResult
Simulator::run(const Launch &launch, FaultInjector *injector,
               const Watchdog *watchdog, TraceSink *tracer) const
{
    SimResult out;
    out.arch = archName(config_.arch);
    out.windowSize = config_.windowSize;

    const Launch *toRun = &launch;
    Launch tagged;
    if (config_.arch == Architecture::BOW_WR_OPT) {
        tagged = launch;
        if (tagged.warpKernels.empty()) {
            out.tags = tagWritebacks(tagged.kernel,
                                     config_.windowSize);
        } else {
            for (Kernel &k : tagged.warpKernels) {
                const TagStats s = tagWritebacks(k,
                                                 config_.windowSize);
                out.tags.rfOnly += s.rfOnly;
                out.tags.bocOnly += s.bocOnly;
                out.tags.bocAndRf += s.bocAndRf;
            }
        }
        toRun = &tagged;
    }

    SmCore core(config_, *toRun, injector, watchdog, tracer);
    out.stats = core.run();
    out.energy = computeEnergy(out.stats, energyParams_,
                               config_.faultProtection);
    out.finalRegs = core.finalRegs();
    out.finalMem = core.memory();
    if (injector)
        out.fault = injector->report();

    // The observability snapshot: everything the run produced, under
    // the stable dotted names of docs/OBSERVABILITY.md.
    core.exportMetrics(out.metrics);
    exportEnergyMetrics(out.energy, out.metrics, "sm0.energy");
    out.metrics.setCounter("sm0.tags.rf_only", out.tags.rfOnly);
    out.metrics.setCounter("sm0.tags.boc_only", out.tags.bocOnly);
    out.metrics.setCounter("sm0.tags.boc_and_rf", out.tags.bocAndRf);
    return out;
}

void
Simulator::verifyAgainstFunctional(const Launch &launch) const
{
    const SimResult timing = run(launch);
    const FunctionalResult golden =
        runFunctional(launch, 4'000'000, /*recordTraces=*/false);

    if (timing.finalRegs.size() != golden.finalRegs.size())
        panic("verifyAgainstFunctional: warp count mismatch");

    for (std::size_t w = 0; w < golden.finalRegs.size(); ++w) {
        for (unsigned r = 0; r < 256; ++r) {
            if (timing.finalRegs[w][r] != golden.finalRegs[w][r]) {
                panic(strf("verifyAgainstFunctional: kernel '",
                           launch.kernel.name(), "', arch ",
                           timing.arch, ": warp ", w, " register ",
                           regName(static_cast<RegId>(r)),
                           " diverged (timing=", timing.finalRegs[w][r],
                           ", functional=", golden.finalRegs[w][r],
                           ")"));
            }
        }
    }
    if (!timing.finalMem.contentsEqual(golden.finalMem))
        panic(strf("verifyAgainstFunctional: kernel '",
                   launch.kernel.name(), "', arch ", timing.arch,
                   ": memory contents diverged"));
}

} // namespace bow
