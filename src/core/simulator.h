/**
 * @file
 * bowsim public API: the Simulator facade runs a Launch under a
 * chosen architecture, applying the BOW-WR compiler pass when the
 * configuration asks for it, and bundles timing + energy + tagging
 * results. This is the entry point examples and benches use.
 */

#ifndef BOWSIM_CORE_SIMULATOR_H
#define BOWSIM_CORE_SIMULATOR_H

#include <string>

#include "common/metrics.h"
#include "compiler/writeback_tagger.h"
#include "energy/energy_model.h"
#include "sm/fault_injector.h"
#include "sm/functional.h"
#include "sm/sm_core.h"

namespace bow {

class TraceSink;
class Watchdog;

/** Everything a single simulation produces. */
struct SimResult
{
    std::string arch;           ///< architecture label
    unsigned windowSize = 0;    ///< IW used (0 for baseline/RFC)
    RunStats stats;             ///< timing + access counts
    EnergyBreakdown energy;     ///< RF dynamic energy + overhead
    TagStats tags;              ///< compiler tags (BOW_WR_OPT only)
    std::vector<RegFileState> finalRegs;
    MemoryStore finalMem;
    FaultReport fault;          ///< injection outcome (if armed)
    /** SM index each CTA ran on (all zero on the single-SM path).
     *  Campaigns feed this back into makeFaultPlan's
     *  FaultPlanContext so per-SM plans derive FaultPlan::sm from
     *  the clean run's placements. */
    std::vector<unsigned> ctaPlacements;
    /** Full per-run metrics snapshot under the stable dotted names
     *  of docs/OBSERVABILITY.md (every RunStats/energy/tag figure
     *  plus the per-component StatGroups). */
    MetricsRegistry metrics;
    /** True for SMARTS-style sampled runs (core/sampled.h): cycles
     *  and IPC are extrapolated estimates, not exact simulation.
     *  Estimated results are refused by the result store and the
     *  golden regression gate. */
    bool estimate = false;
};

/**
 * Facade over SmCore + the compiler pass + the energy model.
 *
 * A Simulator is configured once and can run many launches; each
 * run() builds a fresh SmCore so runs are independent.
 */
class Simulator
{
  public:
    explicit Simulator(SimConfig config);

    /**
     * Run @p launch to completion.
     *
     * For Architecture::BOW_WR_OPT the launch's kernel is copied and
     * the write-back tagger runs on the copy with the configured
     * window size; other architectures execute the kernel as-is.
     *
     * @param injector Optional fault injector wired into the SmCore;
     *                 its report is copied into SimResult::fault.
     * @param watchdog Optional cooperative watchdog; may abort the
     *                 run with HangError.
     * @param tracer   Optional per-cycle event tracer (Chrome
     *                 trace_event export); nullptr keeps tracing
     *                 off the hot path entirely.
     */
    SimResult run(const Launch &launch,
                  FaultInjector *injector = nullptr,
                  const Watchdog *watchdog = nullptr,
                  TraceSink *tracer = nullptr) const;

    const SimConfig &config() const { return config_; }

    /**
     * Correctness invariant used throughout the test suite: run
     * @p launch under this configuration and compare the final
     * architectural registers and memory against the functional
     * (timing-free) golden model. panic()s on divergence.
     */
    void verifyAgainstFunctional(const Launch &launch) const;

  private:
    SimConfig config_;
    EnergyParams energyParams_;
};

} // namespace bow

#endif // BOWSIM_CORE_SIMULATOR_H
