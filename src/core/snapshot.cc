#include "core/snapshot.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "common/json.h"
#include "common/json_util.h"
#include "common/log.h"
#include "core/result_cache.h"
#include "core/run_manifest.h"
#include "gpu/cta_scheduler.h"
#include "gpu/gpu_core.h"
#include "service/sim_codec.h"
#include "workloads/builder.h"

namespace bow {

const char *const kSnapshotFormat = "bowsim-snapshot-v1";

namespace {

/**
 * Snapshot codec generation, folded into snapshotSchemaHash(). The
 * schema hash only sees object *keys*; the positional tuple layouts
 * (collector slots, completions, ExecEffects, cache ways) are
 * invisible to it — bump this literal whenever one of those tuple
 * shapes changes.
 */
constexpr const char *kSnapshotCodecVersion = "bowsim-snapshot-codec-v1";

/** Recursively collect "a.b.c" key paths (objects only), the same
 *  shape probe service/sim_codec.cc uses for simSchemaHash(). */
void
collectKeyPaths(const JsonValue &v, const std::string &prefix,
                std::vector<std::string> &paths)
{
    if (v.kind() != JsonValue::Kind::Object)
        return;
    for (const auto &[key, val] : v.members()) {
        const std::string path =
            prefix.empty() ? key : prefix + "." + key;
        paths.push_back(path);
        collectKeyPaths(val, path, paths);
    }
}

/** Tiny two-warp launch used to probe the snapshot encode shape. */
Launch
probeLaunch()
{
    KernelBuilder b("snapshot-schema-probe");
    b.movImm(0, 1);
    b.exit();
    Launch l;
    l.kernel = b.build();
    l.numWarps = 2;
    l.warpsPerCta = 1;
    return l;
}

} // namespace

std::uint64_t
snapshotSchemaHash()
{
    // The shape of the serialization, computed once: every key path
    // a freshly constructed core encodes, across the collector
    // architectures (their state trees differ: BOCs vs shared slots
    // vs RFCs) and across the single-/multi-SM shapes, folded with
    // the sim_codec schema (the embedded SimConfig rides on it).
    static const std::uint64_t hash = [] {
        std::vector<std::string> paths;
        paths.emplace_back(kSnapshotCodecVersion);
        const Launch probe = probeLaunch();
        for (const Architecture arch :
             {Architecture::Baseline, Architecture::BOW_WR_OPT,
              Architecture::RFC}) {
            SimConfig c;
            c.arch = arch;
            const SmCore core(c, probe);
            collectKeyPaths(core.saveState(),
                            strf("sm_arch", static_cast<int>(arch)),
                            paths);
        }
        {
            SimConfig c;
            c.numSms = 2;
            c.hostThreads = 1;
            const GpuCore gpu(c, probe);
            collectKeyPaths(gpu.saveState(), "gpu", paths);
        }
        std::uint64_t h = 0xCBF29CE484222325ull;
        for (const std::string &p : paths) {
            for (const char ch : p) {
                h ^= static_cast<unsigned char>(ch);
                h *= 0x100000001B3ull;
            }
            h ^= '\n';
            h *= 0x100000001B3ull;
        }
        h ^= simSchemaHash();
        h *= 0x100000001B3ull;
        return h;
    }();
    return hash;
}

std::string
snapshotBinaryVersion()
{
    std::string v = RunManifest::buildVersion();
    if (const char *salt = std::getenv("BOWSIM_STORE_VERSION_SALT")) {
        v += '+';
        v += salt;
    }
    return v;
}

SimSession::SimSession(const SimConfig &config, const Launch &launch,
                       FaultInjector *injector,
                       const Watchdog *watchdog, TraceSink *tracer)
    : config_(config),
      launch_(launch),
      launchHash_(launchContentHash(launch)),
      injector_(injector),
      tracer_(tracer)
{
    config_.validate();

    // Mirror Simulator::run's compiler stage: BOW-WR launches are
    // tagged on the owned copy (the hash above is of the ORIGINAL
    // launch, so snapshots match what the caller will supply on
    // resume, before tagging).
    if (config_.arch == Architecture::BOW_WR_OPT) {
        if (launch_.warpKernels.empty()) {
            tags_ = tagWritebacks(launch_.kernel, config_.windowSize);
        } else {
            for (Kernel &k : launch_.warpKernels) {
                const TagStats s = tagWritebacks(k,
                                                 config_.windowSize);
                tags_.rfOnly += s.rfOnly;
                tags_.bocOnly += s.bocOnly;
                tags_.bocAndRf += s.bocAndRf;
            }
        }
    }

    if (config_.numSms <= 1) {
        core_ = std::make_unique<SmCore>(config_, launch_, injector,
                                         watchdog, tracer);
    } else {
        if (tracer)
            fatal("Simulator: event tracing supports --num-sms 1 only");
        gpu_ = std::make_unique<GpuCore>(config_, launch_, watchdog,
                                         injector);
    }
}

SimSession::~SimSession() = default;

bool
SimSession::stepCycle()
{
    if (core_) {
        if (core_->finished())
            return false;
        core_->step();
        // Same idle fast-forward decision SmCore::run makes: when the
        // cycle just simulated was provably inert, nextWakeCycle()
        // points past now() and the gap is skipped; otherwise it
        // returns now() and this is a no-op.
        if (!core_->finished()) {
            const Cycle target = core_->nextWakeCycle();
            if (target != kNoCycle && target > core_->now())
                core_->fastForwardTo(target);
        }
        return true;
    }
    return gpu_->stepCycle();
}

void
SimSession::runToCompletion()
{
    while (stepCycle()) {
    }
}

bool
SimSession::finished() const
{
    return core_ ? core_->finished() : gpu_->finished();
}

Cycle
SimSession::now() const
{
    return core_ ? core_->now() : gpu_->gcycle();
}

std::uint64_t
SimSession::liveInstructions() const
{
    return core_ ? core_->liveStats().instructions
                 : gpu_->liveInstructions();
}

SimResult
SimSession::result()
{
    if (resultTaken_)
        panic("SimSession::result: already taken");
    resultTaken_ = true;

    const EnergyParams energyParams;
    SimResult out;
    out.arch = archName(config_.arch);
    out.windowSize = config_.windowSize;
    out.tags = tags_;

    if (core_) {
        // Legacy single-SM path: identical export sequence to
        // Simulator::run (the differential suite pins byte equality).
        out.stats = core_->finalize();
        out.finalRegs = core_->finalRegs();
        out.finalMem = core_->memory();
        if (injector_)
            out.fault = injector_->report();
        core_->exportMetrics(out.metrics);
        out.metrics.setCounter("gpu.num_sms", 1);
        out.metrics.setCounter("gpu.cycles", out.stats.cycles);
        out.metrics.setCounter("gpu.instructions",
                               out.stats.instructions);
        out.metrics.setValue("gpu.ipc", out.stats.ipc());
        out.metrics.setCounter("gpu.peak_resident_warps",
                               out.stats.peakResident);
        out.metrics.setCounter("gpu.occupancy_cap",
                               occupancyCap(config_, launch_));
        const auto ctas = partitionCtas(launch_);
        out.ctaPlacements.assign(ctas.size(), 0);
        out.metrics.setCounter("gpu.cta.launched", ctas.size());
        out.metrics.setCounter("gpu.cta.warps_per_cta",
                               launch_.warpsPerCta);
        out.metrics.setHist(
            "gpu.cta.per_sm",
            {static_cast<std::uint64_t>(ctas.size())});
        out.energy = computeEnergy(out.stats, energyParams,
                                   config_.faultProtection);
        exportEnergyMetrics(out.energy, out.metrics, "sm0.energy");
    } else {
        out.stats = gpu_->finishRun();
        out.finalRegs = gpu_->finalRegs();
        out.finalMem = gpu_->memory();
        out.ctaPlacements = gpu_->ctaPlacements();
        if (injector_) {
            out.fault = gpu_->deviceFaultReport()
                ? *gpu_->deviceFaultReport()
                : injector_->report();
        }
        gpu_->exportMetrics(out.metrics);
        out.energy = computeEnergy(out.stats, energyParams,
                                   config_.faultProtection);
        for (unsigned s = 0; s < gpu_->numSms(); ++s) {
            exportEnergyMetrics(
                computeEnergy(gpu_->smStats(s), energyParams,
                              config_.faultProtection),
                out.metrics, strf("sm", s, ".energy"));
        }
    }

    exportEnergyMetrics(out.energy, out.metrics, "gpu.energy");
    out.metrics.setCounter("gpu.tags.rf_only", out.tags.rfOnly);
    out.metrics.setCounter("gpu.tags.boc_only", out.tags.bocOnly);
    out.metrics.setCounter("gpu.tags.boc_and_rf", out.tags.bocAndRf);
    return out;
}

void
SimSession::saveSnapshot(const std::string &path) const
{
    if (injector_)
        fatal("snapshot: cannot snapshot a run with a fault injector "
              "armed (injected state is not serialized)");
    if (tracer_)
        fatal("snapshot: cannot snapshot a traced run");

    JsonValue entry = JsonValue::object();
    entry.set("format", kSnapshotFormat);
    entry.set("schema", snapshotSchemaHash());
    entry.set("binary", snapshotBinaryVersion());
    entry.set("launch", launchHash_);
    entry.set("cycle", now());
    entry.set("config", simConfigToJson(config_));
    entry.set("state", core_ ? core_->saveState()
                             : gpu_->saveState());

    // Atomic publish, result-store style: unique tmp name in the
    // target directory, then rename. A crash mid-write leaves only a
    // tmp file; a concurrent writer's rename is a same-bits replace.
    static std::atomic<unsigned> seq{0};
    const std::string tmp =
        strf(path, ".tmp.", ::getpid(), ".",
             seq.fetch_add(1, std::memory_order_relaxed));
    {
        std::ofstream outFile(tmp,
                              std::ios::binary | std::ios::trunc);
        outFile << entry.dump();
        outFile.flush();
        if (!outFile) {
            std::remove(tmp.c_str());
            fatal(strf("snapshot: cannot write '", tmp, "'"));
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        fatal(strf("snapshot: cannot rename '", tmp, "' to '", path,
                   "'"));
    }
}

std::unique_ptr<SimSession>
SimSession::resumeFromSnapshot(const std::string &path,
                               const Launch &launch,
                               const Watchdog *watchdog)
{
    std::string text;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            fatal(strf("snapshot: cannot read '", path, "'"));
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
    }

    JsonValue entry;
    try {
        entry = parseJson(text);
    } catch (const FatalError &e) {
        fatal(strf("snapshot '", path, "' is torn or truncated: ",
                   e.what()));
    }

    const JsonValue *format = entry.find("format");
    if (format == nullptr ||
        format->kind() != JsonValue::Kind::String ||
        format->asString() != kSnapshotFormat) {
        fatal(strf("snapshot '", path,
                   "': not a bowsim snapshot file (format marker "
                   "missing or unknown)"));
    }
    if (jsonio::getUint(entry, "schema") != snapshotSchemaHash()) {
        fatal(strf("snapshot '", path,
                   "' was written with an incompatible snapshot "
                   "codec (schema hash mismatch); delete it and "
                   "re-run from scratch"));
    }
    const std::string binary =
        jsonio::member(entry, "binary").asString();
    if (binary != snapshotBinaryVersion()) {
        fatal(strf("snapshot '", path,
                   "' was written by a different bowsim build ('",
                   binary, "' vs '", snapshotBinaryVersion(),
                   "'); snapshots do not cross binary versions"));
    }
    if (jsonio::getUint(entry, "launch") != launchContentHash(launch)) {
        fatal(strf("snapshot '", path,
                   "' belongs to a different launch (program content "
                   "hash mismatch)"));
    }

    // The embedded configuration is authoritative: rebuild the exact
    // machine the snapshot was taken on.
    const SimConfig config =
        simConfigFromJson(jsonio::member(entry, "config"));
    auto session = std::unique_ptr<SimSession>(new SimSession(
        config, launch, nullptr, watchdog, nullptr));

    const JsonValue &state = jsonio::member(entry, "state");
    if (session->core_)
        session->core_->loadState(state);
    else
        session->gpu_->loadState(state);

    const Cycle cycle = jsonio::getUint(entry, "cycle");
    if (session->now() != cycle) {
        fatal(strf("snapshot '", path, "': header cycle ", cycle,
                   " disagrees with restored state cycle ",
                   session->now()));
    }
    return session;
}

void
SimSession::setIssueFrozen(bool frozen)
{
    if (core_)
        core_->setIssueFrozen(frozen);
    else
        gpu_->setIssueFrozen(frozen);
}

bool
SimSession::pipelineQuiet() const
{
    return core_ ? core_->pipelineQuiet() : gpu_->pipelineQuiet();
}

void
SimSession::flushOperandState()
{
    if (core_)
        core_->flushOperandState();
    else
        gpu_->flushOperandState();
}

std::uint64_t
SimSession::functionalAdvance(std::uint64_t budget)
{
    return core_ ? core_->functionalAdvance(budget)
                 : gpu_->functionalAdvance(budget);
}

} // namespace bow
