/**
 * @file
 * Full-state simulation snapshots. A SimSession is the stepwise form
 * of Simulator::run — it owns the (possibly compiler-tagged) launch
 * copy and the SmCore or GpuCore behind it, advances one global
 * cycle at a time, and can serialize the complete
 * microarchitectural state at any cycle boundary into a
 * schema-hashed JSON file (written atomically, tmp+rename, like the
 * result store's entries). Restoring the file into a fresh process
 * resumes the simulation bit-exactly: the differential suite
 * (tests/test_snapshot.cc) pins byte-identical SimResults and metric
 * registries against the uninterrupted run.
 *
 * Snapshot headers carry four validity checks, each refused with a
 * clear FatalError (never a panic):
 *  - format literal ("bowsim-snapshot-v1"),
 *  - snapshot schema hash (key paths of a default-shaped encode, so
 *    codec changes invalidate old files automatically),
 *  - binary version (RunManifest::buildVersion, salted like the
 *    result store via BOWSIM_STORE_VERSION_SALT),
 *  - launch content hash (the program the snapshot belongs to).
 *
 * The embedded SimConfig is authoritative on resume: the caller
 * supplies only the launch, and the session is rebuilt from the
 * stored configuration.
 */

#ifndef BOWSIM_CORE_SNAPSHOT_H
#define BOWSIM_CORE_SNAPSHOT_H

#include <memory>
#include <string>

#include "core/simulator.h"

namespace bow {

class GpuCore;
class TraceSink;
class Watchdog;

/** On-disk snapshot format literal (header "format" member). */
extern const char *const kSnapshotFormat;

/**
 * FNV-1a over the sorted key paths of default-shaped snapshot
 * encodes (one per collector architecture, single- and multi-SM),
 * folded with simSchemaHash(). Any snapshot codec change — here, in
 * SmCore/GpuCore saveState, or in a component codec — changes the
 * hash and invalidates existing files.
 */
std::uint64_t snapshotSchemaHash();

/** Binary version string stamped into snapshot headers (identical
 *  policy to the result store: build version + optional
 *  BOWSIM_STORE_VERSION_SALT suffix). */
std::string snapshotBinaryVersion();

/**
 * Stepwise simulation session: everything Simulator::run does, but
 * resumable. Construction mirrors Simulator::run exactly (BOW_WR_OPT
 * launches are copied and tagged; numSms <= 1 builds the legacy
 * single-SM core, larger grids a GpuCore), so
 * `SimSession s(...); s.runToCompletion(); s.result()` is
 * bit-identical to Simulator::run — the golden gate pins this.
 */
class SimSession
{
  public:
    /** See Simulator::run for the parameter contract. */
    SimSession(const SimConfig &config, const Launch &launch,
               FaultInjector *injector = nullptr,
               const Watchdog *watchdog = nullptr,
               TraceSink *tracer = nullptr);
    ~SimSession();

    SimSession(const SimSession &) = delete;
    SimSession &operator=(const SimSession &) = delete;

    /** Advance one global cycle; false once the launch has drained
     *  (without consuming a cycle). */
    bool stepCycle();

    /** Step until finished. */
    void runToCompletion();

    bool finished() const;

    /** Current global cycle. */
    Cycle now() const;

    /** Instructions retired so far (live; sampled mode reads this
     *  between windows). */
    std::uint64_t liveInstructions() const;

    /**
     * Seal the finished run and assemble the full SimResult —
     * statistics, energy, tags, final registers/memory, fault
     * report, CTA placements and the complete metrics registry —
     * exactly as Simulator::run returns it. Call once, after the
     * session finished.
     */
    SimResult result();

    /**
     * Serialize the complete simulation state to @p path (atomic
     * tmp+rename). Only legal at a cycle boundary on a session with
     * no fault injector or tracer attached; refuses (FatalError)
     * otherwise.
     */
    void saveSnapshot(const std::string &path) const;

    /**
     * Rebuild a session from a snapshot file. @p launch must be the
     * same launch the snapshot was taken from (content-hash
     * checked); the SimConfig comes from the file. Torn/truncated
     * files and schema/binary/launch mismatches raise FatalError
     * with a clear message.
     */
    static std::unique_ptr<SimSession>
    resumeFromSnapshot(const std::string &path, const Launch &launch,
                       const Watchdog *watchdog = nullptr);

    const SimConfig &config() const { return config_; }

    // --- sampled-mode hooks (core/sampled.cc) ---
    void setIssueFrozen(bool frozen);
    bool pipelineQuiet() const;
    void flushOperandState();
    std::uint64_t functionalAdvance(std::uint64_t budget);

  private:
    SimConfig config_;
    Launch launch_;            ///< owned copy (tagged for BOW_WR_OPT)
    std::uint64_t launchHash_; ///< content hash of the ORIGINAL launch
    TagStats tags_;
    FaultInjector *injector_ = nullptr;
    TraceSink *tracer_ = nullptr;
    std::unique_ptr<SmCore> core_;  ///< numSms <= 1 (legacy path)
    std::unique_ptr<GpuCore> gpu_;  ///< numSms > 1
    bool resultTaken_ = false;
};

} // namespace bow

#endif // BOWSIM_CORE_SNAPSHOT_H
