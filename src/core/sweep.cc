#include "core/sweep.h"

#include <cstdlib>
#include <ostream>

namespace bow {

SimConfig
configFor(Architecture arch, unsigned iw, unsigned bocEntries)
{
    SimConfig config = SimConfig::titanXPascal();
    config.arch = arch;
    config.windowSize = iw;
    config.bocEntries = bocEntries;
    return config;
}

double
improvementPct(double value, double base)
{
    if (base == 0.0)
        return 0.0;
    return (value / base - 1.0) * 100.0;
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

void
printConfigBanner(std::ostream &os, const SimConfig &config)
{
    os << "# Simulated SM (NVIDIA TITAN X, Pascal; paper Table II): "
       << config.numSchedulers << " schedulers x "
       << config.issuePerScheduler << " issue, "
       << config.maxResidentWarps << " warps, "
       << config.numBanks << " RF banks ("
       << config.rfBytesPerSm / 1024 << " KB), "
       << config.numCollectors << " collectors, "
       << schedName(config.schedPolicy) << " scheduling\n";
}

double
benchScale()
{
    if (const char *env = std::getenv("BOWSIM_BENCH_SCALE")) {
        const double v = std::atof(env);
        if (v > 0.0)
            return v;
    }
    return 1.0;
}

} // namespace bow
