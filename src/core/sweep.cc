#include "core/sweep.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <ostream>

#include "common/log.h"

namespace bow {

SimConfig
configFor(Architecture arch, unsigned iw, unsigned bocEntries)
{
    SimConfig config = SimConfig::titanXPascal();
    config.arch = arch;
    config.windowSize = iw;
    config.bocEntries = bocEntries;
    return config;
}

double
improvementPct(double value, double base)
{
    if (base == 0.0 || !std::isfinite(base))
        return std::numeric_limits<double>::quiet_NaN();
    return (value / base - 1.0) * 100.0;
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

void
printConfigBanner(std::ostream &os, const SimConfig &config)
{
    os << "# Simulated SM (NVIDIA TITAN X, Pascal; paper Table II): "
       << config.numSchedulers << " schedulers x "
       << config.issuePerScheduler << " issue, "
       << config.maxResidentWarps << " warps, "
       << config.numBanks << " RF banks ("
       << config.rfBytesPerSm / 1024 << " KB), "
       << config.numCollectors << " collectors, "
       << schedName(config.schedPolicy) << " scheduling\n";
}

double
benchScale()
{
    if (const char *env = std::getenv("BOWSIM_BENCH_SCALE")) {
        char *end = nullptr;
        const double v = std::strtod(env, &end);
        if (end != env && *end == '\0' && std::isfinite(v) &&
            v > 0.0) {
            return v;
        }
        warn(strf("ignoring BOWSIM_BENCH_SCALE='", env,
                  "' (want a positive number); using scale 1"));
    }
    return 1.0;
}

} // namespace bow
