/**
 * @file
 * Shared helpers for the bench harnesses: configuration factories,
 * improvement arithmetic, and the Table II banner every bench prints.
 */

#ifndef BOWSIM_CORE_SWEEP_H
#define BOWSIM_CORE_SWEEP_H

#include <iosfwd>
#include <vector>

#include "core/simulator.h"

namespace bow {

/** A SimConfig for @p arch with window @p iw (Table II otherwise). */
SimConfig configFor(Architecture arch, unsigned iw = 3,
                    unsigned bocEntries = 0);

/**
 * Percentage improvement of @p value over @p base: (v/b - 1)*100.
 * A zero or non-finite base has no meaningful improvement and yields
 * NaN (rendered as "n/a" by Table / formatImprovement) rather than a
 * silent 0% that would mask a broken baseline.
 */
double improvementPct(double value, double base);

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Print the simulated machine banner (the paper's Table II echo). */
void printConfigBanner(std::ostream &os, const SimConfig &config);

/**
 * Workload scale used by the bench harnesses; override with the
 * BOWSIM_BENCH_SCALE environment variable (e.g. 0.25 for a quick
 * pass, 4 for a long one).
 */
double benchScale();

} // namespace bow

#endif // BOWSIM_CORE_SWEEP_H
