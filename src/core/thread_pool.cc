#include "core/thread_pool.h"

#include <utility>

#include "common/log.h"

namespace bow {

namespace {

/** The pool whose workerLoop is running on this thread (nullptr on
 *  every non-worker thread, including workers of other pools that
 *  are between tasks — the pointer lives for the workerLoop). */
thread_local const ThreadPool *tlsOwnerPool = nullptr;

} // namespace

bool
ThreadPool::insideWorker()
{
    return tlsOwnerPool != nullptr;
}

bool
ThreadPool::ownWorker() const
{
    return tlsOwnerPool == this;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    taskReady_.notify_all();
    for (std::thread &w : workers_)
        w.join();
    if (taskError_) {
        // A task threw and no wait() observed it. Destroying the
        // pool silently would swallow the failure; surface it (we
        // cannot throw from a destructor).
        warn("ThreadPool: discarding unobserved task exception at "
             "destruction");
    }
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    taskReady_.notify_one();
}

void
ThreadPool::wait()
{
    if (ownWorker()) {
        panic("ThreadPool::wait called from one of this pool's own "
              "workers (a task blocking on its own pool deadlocks "
              "the queue it occupies)");
    }
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock,
                  [this] { return queue_.empty() && running_ == 0; });
    if (taskError_) {
        std::exception_ptr err = std::exchange(taskError_, nullptr);
        lock.unlock();
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop()
{
    tlsOwnerPool = this;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) {
                // stopping_ and nothing left to drain.
                return;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        // Run outside the lock; a throwing task must not leave
        // running_ stuck (that would deadlock every future wait())
        // nor escape the thread (std::terminate).
        std::exception_ptr err;
        try {
            task();
        } catch (...) {
            err = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (err && !taskError_)
                taskError_ = err;
            --running_;
            if (queue_.empty() && running_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace bow
