#include "core/thread_pool.h"

#include <utility>

namespace bow {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    taskReady_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    taskReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock,
                  [this] { return queue_.empty() && running_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) {
                // stopping_ and nothing left to drain.
                return;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --running_;
            if (queue_.empty() && running_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace bow
