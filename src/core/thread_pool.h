/**
 * @file
 * Fixed-size thread pool used by the parallel simulation engine.
 * Deliberately minimal: a shared FIFO task queue, no work stealing,
 * no dynamic resizing — simulation jobs are coarse (whole kernel
 * launches), so a single mutex-guarded queue is nowhere near
 * contention and keeps the execution model easy to reason about.
 */

#ifndef BOWSIM_CORE_THREAD_POOL_H
#define BOWSIM_CORE_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bow {

/**
 * A fixed set of worker threads draining a FIFO task queue.
 *
 * Tasks are plain callables. A task that throws no longer kills the
 * process or leaks the batch barrier: the worker catches the
 * exception, stores the first one, and keeps draining the queue;
 * wait() rethrows it at the barrier. Callers that need per-task
 * error reporting should still capture failures inside the task
 * (ParallelRunner does) — the pool-level capture is a safety net
 * that keeps the pool usable after a stray throw.
 */
class ThreadPool
{
  public:
    /** Start @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution by any worker. */
    void post(std::function<void()> task);

    /**
     * Block until the queue is empty and no task is running. If any
     * task of the batch threw, rethrows the first stored exception
     * (after the barrier, so every other task still ran to
     * completion) and clears it, leaving the pool reusable.
     *
     * Panics when called from one of this pool's own workers: the
     * caller would occupy the very thread that must drain the queue
     * it is waiting on — with one worker that is an instant
     * deadlock, with several it is a latent one. Nested pools (a
     * task creating and waiting on a *different* pool) are fine.
     */
    void wait();

    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * True when the calling thread is a worker of *any* ThreadPool.
     * GpuCore's host-thread auto-detection uses this to default to
     * serial stepping inside a ParallelRunner batch instead of
     * oversubscribing the host with numSms extra threads per job.
     */
    static bool insideWorker();

  private:
    void workerLoop();

    /** True when the calling thread is one of *this* pool's workers. */
    bool ownWorker() const;

    std::mutex mutex_;
    std::condition_variable taskReady_;  ///< workers wait here
    std::condition_variable allDone_;    ///< wait() blocks here
    std::deque<std::function<void()>> queue_;
    std::size_t running_ = 0;  ///< tasks currently executing
    bool stopping_ = false;
    /** First exception a task of the current batch threw. */
    std::exception_ptr taskError_;
    std::vector<std::thread> workers_;
};

} // namespace bow

#endif // BOWSIM_CORE_THREAD_POOL_H
