/**
 * @file
 * Fixed-size thread pool used by the parallel simulation engine.
 * Deliberately minimal: a shared FIFO task queue, no work stealing,
 * no dynamic resizing — simulation jobs are coarse (whole kernel
 * launches), so a single mutex-guarded queue is nowhere near
 * contention and keeps the execution model easy to reason about.
 */

#ifndef BOWSIM_CORE_THREAD_POOL_H
#define BOWSIM_CORE_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bow {

/**
 * A fixed set of worker threads draining a FIFO task queue.
 *
 * Tasks are plain callables; exceptions escaping a task terminate
 * the process (simulation tasks are expected to capture their own
 * failures). wait() provides a batch barrier so a caller can post a
 * group of jobs and block until every one of them has finished.
 */
class ThreadPool
{
  public:
    /** Start @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution by any worker. */
    void post(std::function<void()> task);

    /** Block until the queue is empty and no task is running. */
    void wait();

    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable taskReady_;  ///< workers wait here
    std::condition_variable allDone_;    ///< wait() blocks here
    std::deque<std::function<void()>> queue_;
    std::size_t running_ = 0;  ///< tasks currently executing
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace bow

#endif // BOWSIM_CORE_THREAD_POOL_H
