#include "energy/energy_model.h"

#include "common/metrics.h"

namespace bow {

EnergyBreakdown
computeEnergy(const RunStats &stats, const EnergyParams &params,
              FaultProtection protection)
{
    EnergyBreakdown out;

    const double rfAccesses = static_cast<double>(stats.rfReads) +
        static_cast<double>(stats.rfWrites);
    out.rfDynamicPj = rfAccesses * params.rfBankAccessPj;

    const double bocAccesses =
        static_cast<double>(stats.bocForwards) +
        static_cast<double>(stats.bocDeposits) +
        static_cast<double>(stats.bocResultWrites);
    const double rfcAccesses = static_cast<double>(stats.rfcReads) +
        static_cast<double>(stats.rfcWrites);

    out.overheadPj = bocAccesses * params.bocAccessPj +
        rfcAccesses * params.rfcAccessPj;

    // Modified-interconnect share. The synthesized BOC network
    // (32x32 crossbar + arbiters + bus) draws 33.2 mW at 1 GHz with
    // 50% write activity (paper Sec. V-A), i.e. 33.2 pJ per active
    // cycle for the whole network. An active cycle carries roughly
    // one access per scheduler-issued operand across the 8-wide SM
    // front end plus write-backs (~12 accesses), so each access is
    // charged its 1/12 share. The resulting ~5.5 pJ total per-access
    // overhead reproduces the paper's ~3% overhead segment (Fig. 13).
    const double networkPjPerCycle =
        params.bocNetworkMw * 1e-3 / (params.clockGhz * 1e9) * 1e12;
    const double accessesPerActiveCycle = 12.0;
    out.overheadPj +=
        bocAccesses * networkPjPerCycle / accessesPerActiveCycle;

    // Soft-error protection of the bypass structures: every BOC/RFC
    // access generates or checks the code. RF banks are modelled
    // unprotected (see SimConfig::faultProtection).
    switch (protection) {
      case FaultProtection::None:
        break;
      case FaultProtection::Parity:
        out.protectionPj =
            (bocAccesses + rfcAccesses) * params.parityAccessPj;
        break;
      case FaultProtection::Secded:
        out.protectionPj =
            (bocAccesses + rfcAccesses) * params.secdedAccessPj;
        break;
    }

    out.totalPj = out.rfDynamicPj + out.overheadPj + out.protectionPj;
    return out;
}

double
leakagePj(std::uint64_t cycles, unsigned numBanks, unsigned numBocs,
          const EnergyParams &params)
{
    const double seconds = static_cast<double>(cycles) /
        (params.clockGhz * 1e9);
    const double watts = numBanks * params.rfBankLeakageMw * 1e-3 +
        numBocs * params.bocLeakageMw * 1e-3;
    return watts * seconds * 1e12;
}

void
exportEnergyMetrics(const EnergyBreakdown &energy, MetricsRegistry &out,
                    const std::string &prefix)
{
    out.setValue(prefix + ".rf_dynamic_pj", energy.rfDynamicPj);
    out.setValue(prefix + ".overhead_pj", energy.overheadPj);
    out.setValue(prefix + ".protection_pj", energy.protectionPj);
    out.setValue(prefix + ".total_pj", energy.totalPj);
}

} // namespace bow
