/**
 * @file
 * Register-file energy model parameterised with the paper's
 * published CACTI 7.0 numbers (Table IV, 28nm) and the synthesis
 * results quoted in Sec. V-A ("Hardware Overhead"):
 *
 *   - 64 KB register bank access energy: 185.26 pJ
 *   - 1.5 KB BOC access energy:            2.72 pJ
 *   - bank leakage 111.84 mW, BOC leakage 1.11 mW
 *   - redesigned BOC network (crossbar + arbiters + bus): 33.2 mW
 *     at 1 GHz assuming 50% write cycles
 *
 * Dynamic RF energy for a run is: accesses x per-access energy, with
 * BOC/RFC accesses charged to the overhead segment exactly as the
 * paper's Fig. 13 does.
 */

#ifndef BOWSIM_ENERGY_ENERGY_MODEL_H
#define BOWSIM_ENERGY_ENERGY_MODEL_H

#include <cstdint>

#include "sm/sm_core.h"

namespace bow {

/** Per-access and leakage constants (Table IV). */
struct EnergyParams
{
    double rfBankAccessPj = 185.26;   ///< per RF bank read or write
    double bocAccessPj = 2.72;        ///< per BOC read or write
    double rfcAccessPj = 5.44;        ///< per RFC access (a 2x-BOC
                                      ///< sized structure; see
                                      ///< DESIGN.md substitutions)
    double rfBankLeakageMw = 111.84;  ///< per 64 KB bank
    double bocLeakageMw = 1.11;       ///< per 1.5 KB BOC
    double bocNetworkMw = 33.2;       ///< redesigned interconnect
    double clockGhz = 1.0;

    // Per-access cost of protecting BOC/RFC entries against soft
    // errors (resilience study). Parity over a 128 B entry is one
    // XOR-tree traversal (~4% of the BOC access energy); SECDED
    // adds the wider syndrome generate/check (~25%).
    double parityAccessPj = 0.10;     ///< parity generate/check
    double secdedAccessPj = 0.68;     ///< SECDED encode/decode

    /** BOC size in KB for a given window/capacity (for reporting). */
    static double bocKb(unsigned entries) { return entries * 0.128; }
};

/** Energy breakdown of one simulated run. */
struct EnergyBreakdown
{
    double rfDynamicPj = 0.0;       ///< RF bank read+write energy
    double overheadPj = 0.0;        ///< BOC/RFC access + network
    double protectionPj = 0.0;      ///< parity/SECDED on BOC/RFC
    double totalPj = 0.0;           ///< rfDynamic + overhead
                                    ///< + protection

    /** Fraction of @p baseline 's RF dynamic energy this run's total
     *  (incl. overhead) represents — the y-axis of Fig. 13. */
    double
    normalizedTo(const EnergyBreakdown &baseline) const
    {
        return baseline.rfDynamicPj > 0.0
            ? totalPj / baseline.rfDynamicPj
            : 0.0;
    }
};

/**
 * Compute the energy breakdown of a finished run. When the run was
 * configured with BOC/RFC protection (@p protection), every BOC/RFC
 * access additionally pays the code generate/check energy, charged
 * to EnergyBreakdown::protectionPj.
 */
EnergyBreakdown computeEnergy(
    const RunStats &stats, const EnergyParams &params = {},
    FaultProtection protection = FaultProtection::None);

/**
 * Static (leakage) energy over @p cycles for an SM with @p numBanks
 * register banks and @p numBocs bypassing collectors, from the
 * Table IV leakage powers. The paper's Fig. 13 reports dynamic energy
 * only; this complements it for whole-SM studies.
 */
double leakagePj(std::uint64_t cycles, unsigned numBanks,
                 unsigned numBocs, const EnergyParams &params = {});

class MetricsRegistry;

/**
 * Export @p energy into @p out as Value metrics under @p prefix
 * (`<prefix>.rf_dynamic_pj`, `.overhead_pj`, `.protection_pj`,
 * `.total_pj`).
 */
void exportEnergyMetrics(const EnergyBreakdown &energy,
                         MetricsRegistry &out,
                         const std::string &prefix);

} // namespace bow

#endif // BOWSIM_ENERGY_ENERGY_MODEL_H
