#include "gpu/cta_scheduler.h"

#include <algorithm>

#include "common/json_util.h"
#include "common/log.h"

namespace bow {

std::vector<Cta>
partitionCtas(const Launch &launch)
{
    launch.validate();
    std::vector<Cta> out;
    for (unsigned first = 0; first < launch.numWarps;
         first += launch.warpsPerCta) {
        Cta cta;
        cta.firstWarp = static_cast<WarpId>(first);
        cta.numWarps =
            std::min(launch.warpsPerCta, launch.numWarps - first);
        out.push_back(cta);
    }
    return out;
}

unsigned
occupancyCap(const SimConfig &config, const Launch &launch)
{
    unsigned maxGprs = launch.kernel.finalized()
        ? launch.kernel.numGprs()
        : 0;
    for (const Kernel &k : launch.warpKernels)
        maxGprs = std::max(maxGprs, k.numGprs());

    unsigned cap = config.maxResidentWarps;
    if (maxGprs) {
        // One architectural register = 32 lanes x 4 bytes.
        const unsigned bytesPerWarp = maxGprs * 32 * 4;
        const unsigned regLimit = config.rfBytesPerSm / bytesPerWarp;
        if (regLimit == 0) {
            fatal(strf("occupancyCap: a warp needs ", bytesPerWarp,
                       " RF bytes but the SM has only ",
                       config.rfBytesPerSm));
        }
        cap = std::min(cap, regLimit);
    }
    return cap;
}

CtaScheduler::CtaScheduler(const SimConfig &config,
                           std::vector<Cta> ctas, unsigned cap)
    : config_(&config), ctas_(std::move(ctas)), cap_(cap)
{
    placements_.assign(ctas_.size(), 0);
    for (std::size_t i = 0; i < ctas_.size(); ++i) {
        if (ctas_[i].numWarps > cap_) {
            fatal(strf("CtaScheduler: CTA ", i, " has ",
                       ctas_[i].numWarps,
                       " warps but the per-SM occupancy cap is ",
                       cap_));
        }
    }
}

bool
CtaScheduler::corruptPending(unsigned cta, unsigned bit)
{
    if (!pending(cta))
        return false;
    // WarpId is 16-bit: clamp the flip inside the record's width so
    // it can never truncate into a silent no-op.
    ctas_[cta].firstWarp = static_cast<WarpId>(
        ctas_[cta].firstWarp ^ (1u << (bit % 16)));
    return true;
}

std::vector<CtaScheduler::Placement>
CtaScheduler::place(std::vector<unsigned> &residentWarps)
{
    const unsigned numSms = static_cast<unsigned>(
        residentWarps.size());
    std::vector<Placement> out;

    if (config_->ctaPolicy == CtaPolicy::RoundRobin) {
        // Static mapping, all decided on the first call. Occupancy is
        // still respected per SM: warps beyond the resident cap queue
        // inside the SmCore and are admitted as earlier warps retire.
        while (next_ < ctas_.size()) {
            const unsigned cta = static_cast<unsigned>(next_++);
            const unsigned sm = cta % numSms;
            placements_[cta] = sm;
            residentWarps[sm] += ctas_[cta].numWarps;
            out.push_back({cta, sm});
        }
        return out;
    }

    // LooseRoundRobin: fill the first SM (from the rotor) that has
    // room for the whole next CTA; stop at the first CTA that fits
    // nowhere this cycle.
    while (next_ < ctas_.size()) {
        const unsigned cta = static_cast<unsigned>(next_);
        bool placed = false;
        for (unsigned probe = 0; probe < numSms; ++probe) {
            const unsigned sm = (rotor_ + probe) % numSms;
            if (residentWarps[sm] + ctas_[cta].numWarps <= cap_) {
                placements_[cta] = sm;
                residentWarps[sm] += ctas_[cta].numWarps;
                out.push_back({cta, sm});
                rotor_ = (sm + 1) % numSms;
                ++next_;
                placed = true;
                break;
            }
        }
        if (!placed)
            break;
    }
    return out;
}

JsonValue
CtaScheduler::saveState() const
{
    JsonValue placements = JsonValue::array();
    for (unsigned sm : placements_)
        placements.push(JsonValue(std::uint64_t(sm)));
    // The pending CTA records themselves are serialized too: a
    // device-fault corruption of a pending record must survive a
    // snapshot (corruptPending edits firstWarp in place).
    JsonValue ctas = JsonValue::array();
    for (const Cta &cta : ctas_) {
        JsonValue o = JsonValue::array();
        o.push(JsonValue(std::uint64_t(cta.firstWarp)));
        o.push(JsonValue(std::uint64_t(cta.numWarps)));
        ctas.push(std::move(o));
    }
    JsonValue out = JsonValue::object();
    out.set("ctas", std::move(ctas));
    out.set("placements", std::move(placements));
    out.set("next", JsonValue(std::uint64_t(next_)));
    out.set("rotor", JsonValue(std::uint64_t(rotor_)));
    return out;
}

void
CtaScheduler::loadState(const JsonValue &v)
{
    const JsonValue &ctas = jsonio::getArray(v, "ctas");
    const JsonValue &placements = jsonio::getArray(v, "placements");
    if (ctas.size() != ctas_.size() ||
        placements.size() != placements_.size()) {
        fatal("CtaScheduler::loadState: CTA count mismatch");
    }
    for (std::size_t i = 0; i < ctas_.size(); ++i) {
        ctas_[i].firstWarp =
            static_cast<WarpId>(ctas.at(i).at(0).asUint());
        ctas_[i].numWarps =
            static_cast<unsigned>(ctas.at(i).at(1).asUint());
    }
    for (std::size_t i = 0; i < placements_.size(); ++i)
        placements_[i] =
            static_cast<unsigned>(placements.at(i).asUint());
    next_ = jsonio::getUint(v, "next");
    rotor_ = static_cast<unsigned>(jsonio::getUint(v, "rotor"));
}

} // namespace bow
