/**
 * @file
 * Grid-level CTA scheduler: partitions a launch into CTAs (contiguous
 * warp groups of Launch::warpsPerCta) and places them on SMs under a
 * deterministic policy. RoundRobin is the static mapping CTA i ->
 * SM (i % numSms), decided entirely up front; LooseRoundRobin is
 * dynamic — each global cycle the next pending CTA goes to the first
 * SM (scanning from a rotor) with enough free occupancy. Neither
 * consults anything outside the launch/config, so placement is
 * bit-reproducible at any --jobs count.
 */

#ifndef BOWSIM_GPU_CTA_SCHEDULER_H
#define BOWSIM_GPU_CTA_SCHEDULER_H

#include <vector>

#include "common/types.h"
#include "sm/functional.h"
#include "sm/sim_config.h"

namespace bow {

class JsonValue;

/** One cooperative thread array: a contiguous warp range. */
struct Cta
{
    WarpId firstWarp = 0;
    unsigned numWarps = 0;
};

/** Split @p launch into CTAs of launch.warpsPerCta warps each (the
 *  last CTA takes the remainder). */
std::vector<Cta> partitionCtas(const Launch &launch);

/**
 * Warps one SM can keep resident at once: the scheduler limit
 * (maxResidentWarps) capped by register-file capacity for the
 * launch's most register-hungry kernel (32 lanes x 4 bytes per
 * architectural register). fatal()s when even one warp does not fit.
 */
unsigned occupancyCap(const SimConfig &config, const Launch &launch);

class CtaScheduler
{
  public:
    CtaScheduler(const SimConfig &config, std::vector<Cta> ctas,
                 unsigned cap);

    /** One placement decision: CTA index -> SM index. */
    struct Placement
    {
        unsigned cta = 0;
        unsigned sm = 0;
    };

    /**
     * Decide which pending CTAs start now. @p residentWarps holds
     * each SM's currently unfinished assigned-warp count and is
     * updated in place for the CTAs placed by this call.
     */
    std::vector<Placement> place(std::vector<unsigned> &residentWarps);

    bool allPlaced() const { return next_ >= ctas_.size(); }

    const std::vector<Cta> &ctas() const { return ctas_; }

    /** SM index each CTA was placed on (valid once placed). */
    const std::vector<unsigned> &placements() const
    {
        return placements_;
    }

    /** CTA @p cta has not been handed to an SM yet. */
    bool pending(unsigned cta) const
    {
        return cta >= next_ && cta < ctas_.size();
    }

    /**
     * Fault-injection hook (gpu/device_fault.h): flip bit @p bit of
     * pending CTA @p cta's placement record (its firstWarp field).
     * The corrupt record flows through place()/assignWarps like any
     * real one; an out-of-range result trips the SmCore guard
     * (panic, classified "detected"), an in-range one mis-launches
     * warps and is classified by the functional oracle.
     * @return whether the record was still pending (the flip landed).
     */
    bool corruptPending(unsigned cta, unsigned bit);

    /** Serialize placement progress for a snapshot (the CTA partition
     *  itself is derived from the launch and only validated). */
    JsonValue saveState() const;
    /** Overwrite placement progress from saveState() output. */
    void loadState(const JsonValue &v);

  private:
    const SimConfig *config_;
    std::vector<Cta> ctas_;
    std::vector<unsigned> placements_;
    unsigned cap_ = 0;
    std::size_t next_ = 0;  ///< first CTA not yet placed
    unsigned rotor_ = 0;    ///< LRR scan start
};

} // namespace bow

#endif // BOWSIM_GPU_CTA_SCHEDULER_H
