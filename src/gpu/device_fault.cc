#include "gpu/device_fault.h"

#include "common/log.h"
#include "gpu/cta_scheduler.h"
#include "gpu/shared_l2.h"

namespace bow {

DeviceFaultInjector::DeviceFaultInjector(const FaultPlan &plan)
    : plan_(plan)
{
    if (faultSiteIsPerSm(plan.site))
        panic("DeviceFaultInjector: per-SM site routed to the device "
              "injector");
    report_.enabled = plan.enabled;
}

void
DeviceFaultInjector::onCycle(Cycle now, MemoryStore &mem, SharedL2 *l2,
                             CtaScheduler &sched)
{
    if (!plan_.enabled)
        return;

    if (pendingHeal_) {
        // Write-through lines are clean: once the corrupt line is
        // evicted, the refetch from DRAM restores the pristine word —
        // unless a store superseded the corruption first (the stored
        // value went through to DRAM, so there is nothing to heal).
        if (l2 && !l2->lineResident(plan_.addr)) {
            if (mem.load(MemSpace::Global, plan_.addr) ==
                corruptValue_) {
                mem.store(MemSpace::Global, plan_.addr,
                          corruptValue_ ^ flipMask());
                report_.repairedByRefetch = true;
            }
            pendingHeal_ = false;
        }
        return;
    }

    if (!report_.fired && now == plan_.cycle)
        fire(mem, l2, sched);
}

void
DeviceFaultInjector::fire(MemoryStore &mem, SharedL2 *l2,
                          CtaScheduler &sched)
{
    report_.fired = true;

    switch (plan_.site) {
      case FaultSite::L2Line: {
        if (!l2 || !l2->lineResident(plan_.addr))
            return;             // masked: the strike hit an empty line
        report_.landed = true;
        corruptValue_ =
            mem.load(MemSpace::Global, plan_.addr) ^ flipMask();
        mem.store(MemSpace::Global, plan_.addr, corruptValue_);
        pendingHeal_ = true;
        return;
      }

      case FaultSite::CtaSched:
        report_.landed = sched.corruptPending(plan_.cta, plan_.bit);
        return;

      case FaultSite::RfBank:
      case FaultSite::BocEntry:
      case FaultSite::RfcEntry:
        break;                  // rejected by the constructor
    }
    panic("DeviceFaultInjector::fire: bad site");
}

} // namespace bow
