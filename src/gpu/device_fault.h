/**
 * @file
 * Device-level fault injection: single-bit upsets in GPU state that
 * is shared by every SM and therefore outside any one SmCore's
 * FaultInjector — the chip-level L2 data array and the CTA
 * scheduler's pending-placement records.
 *
 *  - L2Line site: the architectural word lives in the shared
 *    MemoryStore while SharedL2 tracks only residency (exactly the
 *    RF/BOC split inside an SM). The flip strikes the L2 copy of
 *    plan.addr, conditioned on the line being resident at the fault
 *    cycle; a non-resident line is fired-but-not-landed. Because the
 *    L2 is write-through, the line is always clean: once it is
 *    evicted, the refetch from DRAM heals the corruption — unless a
 *    store superseded the corrupt word first, in which case whatever
 *    propagated stands (mirrors the BOC clean-entry restore). A line
 *    still resident (and still corrupt) when the run drains stays
 *    corrupt: later readers would see the flipped value.
 *
 *  - CtaSched site: the flip strikes pending CTA plan.cta's
 *    placement record (its firstWarp field) at the fault cycle,
 *    before that cycle's placement decisions. An already-placed CTA
 *    is fired-but-not-landed. A corrupt record that walks out of the
 *    launch's warp range trips the SmCore admission guard (panic,
 *    classified "detected"); an in-range one mis-launches warps and
 *    is classified by the functional oracle like any other flip.
 *
 * SimConfig::faultProtection models codes on the small per-SM
 * operand structures only (docs/RESILIENCE.md); the device sites are
 * modelled unprotected.
 */

#ifndef BOWSIM_GPU_DEVICE_FAULT_H
#define BOWSIM_GPU_DEVICE_FAULT_H

#include "common/types.h"
#include "sm/fault_injector.h"
#include "sm/memory_model.h"

namespace bow {

class SharedL2;
class CtaScheduler;

/** Applies one device-site FaultPlan to a running GpuCore. The core
 *  calls onCycle() at the top of every global cycle (before CTA
 *  placement, so cycle-0 scheduler flips can land under the static
 *  round-robin policy). */
class DeviceFaultInjector
{
  public:
    /** @p plan must target a device site (L2Line or CtaSched). */
    explicit DeviceFaultInjector(const FaultPlan &plan);

    void onCycle(Cycle now, MemoryStore &mem, SharedL2 *l2,
                 CtaScheduler &sched);

    const FaultReport &report() const { return report_; }
    const FaultPlan &plan() const { return plan_; }

  private:
    void fire(MemoryStore &mem, SharedL2 *l2, CtaScheduler &sched);

    Value flipMask() const { return Value{1} << (plan_.bit % 32); }

    FaultPlan plan_;
    FaultReport report_;
    /** L2Line: a corrupt resident line awaits eviction; heal the
     *  MemoryStore word from the (conceptually clean) DRAM copy when
     *  the line departs, iff the corrupt value still stands. */
    bool pendingHeal_ = false;
    Value corruptValue_ = 0;
};

} // namespace bow

#endif // BOWSIM_GPU_DEVICE_FAULT_H
