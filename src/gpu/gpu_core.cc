#include "gpu/gpu_core.h"

#include <algorithm>

#include "common/json.h"
#include "common/json_util.h"
#include "common/log.h"
#include "common/metrics.h"
#include "core/host_threads.h"

namespace bow {

GpuCore::GpuCore(const SimConfig &config, const Launch &launch,
                 const Watchdog *watchdog, FaultInjector *injector)
    : config_(config),
      launch_(&launch),
      sched_(config_, partitionCtas(launch),
             bow::occupancyCap(config, launch))
{
    config_.validate();
    launch.validate();

    cap_ = bow::occupancyCap(config_, launch);
    finalRegs_.resize(launch.numWarps);

    for (const auto &[space, addr, val] : launch.initMem)
        mem_.store(space, addr, val);

    // A lone SM keeps its private L2 (the whole device L2 is its
    // own), which preserves the legacy single-SM path bit-for-bit.
    if (config_.numSms > 1)
        l2_ = std::make_unique<SharedL2>(config_);

    // More members than SMs would only park idle threads at the
    // barrier; hostThreads == 1 keeps the direct (non-staged)
    // dispatch path, so the two modes stay genuinely different code
    // paths for the differential tests to compare.
    hostThreads_ = std::min(resolveHostThreads(config_.hostThreads),
                            config_.numSms);

    // Fault injection is incompatible with staged-memory dispatch
    // (the injector observes mid-cycle state that staging reorders):
    // fall back to serial stepping instead of tripping the SmCore
    // panic. Results are bit-identical either way, only slower.
    if (injector && injector->plan().enabled && hostThreads_ > 1) {
        warn(strf("GpuCore: fault injector active; stepping SMs "
                  "serially instead of on ", hostThreads_,
                  " host threads"));
        hostThreads_ = 1;
    }

    // Route the plan: device sites arm the GPU-level injector; per-SM
    // sites attach the injector to the one SM the plan targets. An
    // out-of-range plan.sm attaches nowhere — the fault can only miss
    // (fired-but-not-landed at worst), never crash the run.
    FaultInjector *perSm = nullptr;
    if (injector && injector->plan().enabled) {
        const FaultPlan &plan = injector->plan();
        if (faultSiteIsPerSm(plan.site))
            perSm = injector;
        else
            deviceFault_ = std::make_unique<DeviceFaultInjector>(plan);
    }

    // Epoch stepping decouples the SMs between barriers; it needs
    // more than one SM to decouple, and a per-SM fault injector
    // observes mid-cycle state that staged-memory dispatch would
    // reorder (same rule as the hostThreads clamp above). Device-site
    // plans stay compatible: stepEpoch() clamps the epoch target to
    // the planned cycle until the fault fires.
    epochCycles_ = resolveEpochCycles(config_.epochCycles);
    if (config_.numSms == 1)
        epochCycles_ = 1;
    if (perSm && epochCycles_ > 1) {
        warn(strf("GpuCore: per-SM fault injector active; stepping "
                  "per cycle instead of in epochs of ", epochCycles_));
        epochCycles_ = 1;
    }

    sms_.reserve(config_.numSms);
    for (unsigned s = 0; s < config_.numSms; ++s) {
        SmContext ctx;
        ctx.smIndex = s;
        ctx.sharedMem = &mem_;
        ctx.sharedL2 = l2_.get();
        ctx.residentCap = cap_;
        ctx.externalAdmission = true;
        ctx.stagedMemory = hostThreads_ > 1 || epochCycles_ > 1;
        FaultInjector *smInjector =
            perSm && injector->plan().sm == s ? perSm : nullptr;
        sms_.push_back(std::make_unique<SmCore>(
            config_, launch, ctx, smInjector, watchdog, nullptr));
    }
    activeScratch_.reserve(config_.numSms);
}

void
GpuCore::stepAndDrainOne(unsigned s)
{
    try {
        sms_[s]->step();
    } catch (const HangError &e) {
        throw HangError(strf("sm", s, ": ", e.what()));
    } catch (const FatalError &e) {
        throw FatalError(strf("sm", s, ": ", e.what()));
    }
    // Immediately after the step, so a later SM's same-cycle step
    // (serial mode) observes this SM's memory effects exactly like
    // inline dispatch would have. No-op without staged memory.
    sms_[s]->drainStagedMem();
}

void
GpuCore::rethrowSmError(unsigned s, std::exception_ptr err)
{
    try {
        std::rethrow_exception(std::move(err));
    } catch (const HangError &e) {
        throw HangError(strf("sm", s, ": ", e.what()));
    } catch (const FatalError &e) {
        throw FatalError(strf("sm", s, ": ", e.what()));
    }
}

RunStats
GpuCore::run()
{
    if (ran_)
        panic("GpuCore::run: already ran");
    while (stepCycle()) {
    }
    return finishRun();
}

bool
GpuCore::stepCycle()
{
    if (ran_)
        panic("GpuCore::stepCycle after finishRun()");

    const std::vector<Cta> &ctas = sched_.ctas();

    {
        // Device-site faults strike before this cycle's placement
        // decisions, so a cycle-0 CTA-record flip lands even under
        // the static round-robin policy (which places everything on
        // the first place() call).
        if (deviceFault_)
            deviceFault_->onCycle(gcycle_, mem_, l2_.get(), sched_);

        // While issue is frozen (sampled-mode quiesce) placement
        // pauses too: activating warps that cannot issue would only
        // skew their GTO age.
        if (!sched_.allPlaced() && !issueFrozen_) {
            residentScratch_.assign(config_.numSms, 0);
            for (unsigned s = 0; s < config_.numSms; ++s)
                residentScratch_[s] = sms_[s]->unfinishedAssigned();
            for (const CtaScheduler::Placement &p :
                 sched_.place(residentScratch_)) {
                sms_[p.sm]->assignWarps(ctas[p.cta].firstWarp,
                                        ctas[p.cta].numWarps);
            }
        }

        bool done = sched_.allPlaced();
        for (unsigned s = 0; done && s < config_.numSms; ++s)
            done = sms_[s]->finished();
        if (done)
            return false;

        // Epoch stepping (docs/PERFORMANCE.md "Epoch stepping"):
        // once every CTA is placed, the coordinator no longer needs
        // a per-cycle decision point, so the SMs may free-run a whole
        // epoch between barriers. While placement is pending (or
        // sampled-mode quiesce holds issue frozen) the per-cycle path
        // below keeps the cycle-granular coordination those features
        // rely on; both paths produce bit-identical results, so they
        // can alternate freely.
        if (epochCycles_ > 1 && sched_.allPlaced() && !issueFrozen_) {
            stepEpoch();
            return true;
        }

        // Idle fast-forward across the whole GPU: only when every
        // unfinished SM is provably inert may the global clock jump,
        // and only to the earliest wake-up among them — which keeps
        // the fixed SM-index lockstep (and with it cross-SM L2 and
        // memory arbitration) bit-identical at any host speed. The
        // decision sits after CTA placement on purpose: a placement
        // activates warps, which clears the inert flag.
        Cycle target = kNoCycle;
        for (unsigned s = 0; s < config_.numSms; ++s) {
            if (sms_[s]->finished())
                continue;
            const Cycle wake = sms_[s]->nextWakeCycle();
            if (wake <= gcycle_) {
                target = kNoCycle;  // someone must step now
                break;
            }
            target = std::min(target, wake);
        }
        // Never jump past an unfired device fault: the residency /
        // pending-CTA probe must run on exactly the planned cycle.
        // (Per-SM plans need no clamp — the injected SM disables its
        // own fast-forward, pinning the global clock.)
        if (deviceFault_ && !deviceFault_->report().fired &&
            target != kNoCycle &&
            target > deviceFault_->plan().cycle) {
            target = std::max(deviceFault_->plan().cycle, gcycle_);
        }
        if (target != kNoCycle && target > gcycle_) {
            for (unsigned s = 0; s < config_.numSms; ++s) {
                if (!sms_[s]->finished())
                    sms_[s]->fastForwardTo(target);
            }
            gcycle_ = target;
            // The top-of-loop probe ran before the jump, so a fault
            // planned for the landing cycle (the clamp above steers
            // the jump onto it) must be probed again or it would
            // only be seen at target+1, after its cycle has passed.
            if (deviceFault_)
                deviceFault_->onCycle(gcycle_, mem_, l2_.get(),
                                      sched_);
        }

        // Fixed SM-index stepping order = deterministic cross-SM
        // arbitration for shared memory and the L2 banks. Finished
        // SMs are skipped outright: their lockstep idle tick was
        // pure bookkeeping, and nothing reads their clock again.
        activeScratch_.clear();
        for (unsigned s = 0; s < config_.numSms; ++s) {
            if (!sms_[s]->finished())
                activeScratch_.push_back(s);
        }

        if (hostThreads_ > 1 && activeScratch_.size() >= 2) {
            // Parallel cycle: all members step disjoint SMs
            // concurrently — race-free because staged memory
            // dispatch confines every step to SM-private state —
            // then the coordinator replays the serial arbitration:
            // errors surface for the lowest SM index (exactly the
            // SM the serial loop would have thrown from, since
            // budget trips are per-SM-deterministic), and the
            // staged memory accesses drain in ascending SM-index
            // order.
            ensureTeam();
            team_->stepAll(activeScratch_);
            for (unsigned s : activeScratch_) {
                if (team_->error(s))
                    rethrowSmError(s, team_->error(s));
            }
            for (unsigned s : activeScratch_)
                sms_[s]->drainStagedMem();
        } else {
            // Serial cycle (one host thread, or too few steppable
            // SMs to pay the barrier): step-and-drain in SM-index
            // order — with staging on this interleaving is
            // equivalent to inline dispatch, so the two modes can
            // alternate cycle by cycle without changing results.
            for (unsigned s : activeScratch_)
                stepAndDrainOne(s);
        }
        ++gcycle_;
    }
    return true;
}

void
GpuCore::ensureTeam()
{
    if (team_)
        return;
    team_ = std::make_unique<StepTeam>(
        hostThreads_, config_.numSms,
        [this](unsigned s) {
            // epochTarget_ is published by stepAll()'s start
            // barrier: kNoCycle selects a plain per-cycle step,
            // anything else an epoch free-run round toward that
            // target.
            if (epochTarget_ != kNoCycle)
                sms_[s]->runEpoch(epochTarget_);
            else
                sms_[s]->step();
        });
}

void
GpuCore::stepEpoch()
{
    const Cycle t0 = gcycle_;
    Cycle target = t0 + epochCycles_;
    // Never free-run past an unfired device fault: the epoch
    // boundary must land exactly on the planned cycle so the
    // top-of-stepCycle probe observes the same pre-cycle state it
    // would under per-cycle stepping.
    if (deviceFault_ && !deviceFault_->report().fired) {
        target = std::min(
            target, std::max(deviceFault_->plan().cycle, t0 + 1));
    }

    activeScratch_.clear();
    for (unsigned s = 0; s < config_.numSms; ++s) {
        if (!sms_[s]->finished()) {
            sms_[s]->beginEpoch(t0);
            activeScratch_.push_back(s);
        }
    }

    // Free-run / commit rounds: every SM short of the target runs
    // until it reaches it, finishes, or stalls on an uncommitted
    // staged access; then the coordinator commits every staged
    // access that is globally safe — strictly below the least
    // (cycle, smIndex) any still-running SM could yet stage — which
    // always includes the whole queue of the least-advanced SM, so
    // each round makes progress.
    for (;;) {
        runScratch_.clear();
        for (unsigned s : activeScratch_) {
            if (!sms_[s]->finished() && sms_[s]->now() < target)
                runScratch_.push_back(s);
        }
        if (runScratch_.empty())
            break;

        if (hostThreads_ > 1 && runScratch_.size() >= 2) {
            ensureTeam();
            epochTarget_ = target;
            team_->stepAll(runScratch_);
            epochTarget_ = kNoCycle;
            // Serial equivalence for errors: the serial loop throws
            // from the SM that trips first, i.e. the errored SM with
            // the least (cycle, smIndex) at the time of the trip.
            unsigned bad = config_.numSms;
            for (unsigned s : runScratch_) {
                if (!team_->error(s))
                    continue;
                if (bad == config_.numSms ||
                    sms_[s]->now() < sms_[bad]->now()) {
                    bad = s;
                }
            }
            if (bad != config_.numSms)
                rethrowSmError(bad, team_->error(bad));
        } else {
            for (unsigned s : runScratch_) {
                try {
                    sms_[s]->runEpoch(target);
                } catch (const HangError &e) {
                    throw HangError(strf("sm", s, ": ", e.what()));
                } catch (const FatalError &e) {
                    throw FatalError(strf("sm", s, ": ", e.what()));
                }
            }
        }

        // The least (now, smIndex) among SMs still short of the
        // target bounds what they may stage next; everything
        // strictly below it is final and safe to commit. Ascending
        // scan + strict < keeps the lowest SM index on ties.
        Cycle limitCycle = kNoCycle;
        unsigned limitSm = 0;
        for (unsigned s : activeScratch_) {
            if (sms_[s]->finished() || sms_[s]->now() >= target)
                continue;
            if (limitCycle == kNoCycle ||
                sms_[s]->now() < limitCycle) {
                limitCycle = sms_[s]->now();
                limitSm = s;
            }
        }
        commitStagedBelow(limitCycle, limitSm);
    }

    // Everyone reached the target (or finished): all staged accesses
    // are at cycles below the target and nothing can be staged
    // before it anymore — drain completely, so the epoch boundary is
    // a clean global state (snapshots and the next epoch see empty
    // queues).
    commitStagedBelow(kNoCycle, 0);

    // Fast-forward credit mirrors the per-cycle path, which never
    // jumps once an unfired device fault's planned cycle has been
    // reached (the clamp above pins target to gcycle_, suppressing
    // the jump outright) — so workless cycles in that pinned regime
    // were stepped uncredited there and must stay uncredited here.
    // Epochs *before* the planned cycle are unaffected: the target
    // clamp already keeps all their cycles below the plan.
    if (deviceFault_ && !deviceFault_->report().fired &&
        t0 >= deviceFault_->plan().cycle) {
        epochEndPrev_ = target;
        epochEndPrevCredited_ = false;
    } else {
        // One more serial quirk: a jump clamped by a then-unfired
        // fault *lands on* the planned cycle and steps it without
        // credit, even when it is globally workless (the fault fires
        // at that cycle's probe, so by stepping time report().fired
        // is already true). That landing happened exactly when the
        // previous epoch ended here with its final cycle credited.
        const bool landedByClampedJump =
            deviceFault_ && deviceFault_->report().fired &&
            t0 == deviceFault_->plan().cycle &&
            epochEndPrev_ == t0 && epochEndPrevCredited_;
        applyFastforwardCredit(t0, target, landedByClampedJump);
    }

    // The global clock lands on the target — unless the whole grid
    // drained mid-epoch, where serial stepping would have stopped
    // its clock one past the last busy cycle.
    bool allFinished = true;
    for (unsigned s = 0; allFinished && s < config_.numSms; ++s)
        allFinished = sms_[s]->finished();
    if (allFinished) {
        Cycle last = t0;
        for (unsigned s : activeScratch_)
            last = std::max(last, sms_[s]->now());
        gcycle_ = last;
    } else {
        gcycle_ = target;
    }
}

void
GpuCore::commitStagedBelow(Cycle limitCycle, unsigned limitSm)
{
    for (;;) {
        Cycle bestCycle = kNoCycle;
        unsigned bestSm = 0;
        for (unsigned s : activeScratch_) {
            const Cycle c = sms_[s]->stagedFrontCycle();
            if (c == kNoCycle)
                continue;
            if (bestCycle == kNoCycle || c < bestCycle) {
                bestCycle = c;
                bestSm = s;
            }
        }
        if (bestCycle == kNoCycle)
            return;
        if (limitCycle != kNoCycle &&
            (bestCycle > limitCycle ||
             (bestCycle == limitCycle && bestSm >= limitSm))) {
            return;
        }
        sms_[bestSm]->commitStagedFront();
    }
}

void
GpuCore::applyFastforwardCredit(Cycle t0, Cycle epochEnd,
                                bool excludeT0)
{
    epochEndPrev_ = epochEnd;
    epochEndPrevCredited_ = false;
    // A cycle x was globally skippable when, for every epoch
    // participant, x and x-1 were both workless (the serial jump
    // decision reads the inert flag of the *previous* cycle) — or
    // the participant had already drained by x (a finished SM does
    // not constrain the serial jump). Intersect those per-SM
    // eligibility sets, then credit each participant with the
    // eligible cycles inside its own epoch span, exactly the cycles
    // the serial loop would have jumped for it.
    idleScratch_.clear();
    bool first = true;
    for (unsigned s : activeScratch_) {
        idleScratch2_.clear();
        for (const auto &[b, e] : sms_[s]->worklessSpans()) {
            if (e > b + 1)
                idleScratch2_.emplace_back(b + 1, e);
        }
        idleScratch2_.emplace_back(sms_[s]->now(), kNoCycle);
        if (first) {
            idleScratch_ = idleScratch2_;
            first = false;
            continue;
        }
        // Sorted-span intersection (both lists ascending and
        // disjoint); result replaces the running intersection.
        std::vector<std::pair<Cycle, Cycle>> &a = idleScratch_;
        const std::vector<std::pair<Cycle, Cycle>> &b = idleScratch2_;
        std::vector<std::pair<Cycle, Cycle>> merged;
        merged.reserve(std::min(a.size(), b.size()) + 1);
        for (std::size_t i = 0, j = 0;
             i < a.size() && j < b.size();) {
            const Cycle lo = std::max(a[i].first, b[j].first);
            const Cycle hi = std::min(a[i].second, b[j].second);
            if (hi > lo)
                merged.emplace_back(lo, hi);
            if (a[i].second < b[j].second)
                ++i;
            else
                ++j;
        }
        a.swap(merged);
        if (a.empty())
            return;
    }
    if (excludeT0) {
        // Drop the single cycle t0 from the credit set (the serial
        // loop stepped it after landing there, uncredited).
        std::vector<std::pair<Cycle, Cycle>> &a = idleScratch_;
        for (std::size_t i = 0; i < a.size(); ++i) {
            auto &[b, e] = a[i];
            if (b > t0 || e <= t0)
                continue;
            if (b == t0) {
                ++b;
                if (e <= b)
                    a.erase(a.begin() + static_cast<std::ptrdiff_t>(i));
            } else if (e == t0 + 1) {
                --e;
            } else {
                a.insert(a.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                         {t0 + 1, e});
                a[i].second = t0;
            }
            break;
        }
    }
    for (unsigned s : activeScratch_) {
        const Cycle end = sms_[s]->now();
        std::uint64_t credit = 0;
        for (const auto &[b, e] : idleScratch_) {
            const Cycle lo = std::max(b, t0);
            const Cycle hi = std::min(e, end);
            if (hi > lo)
                credit += hi - lo;
        }
        if (credit)
            sms_[s]->creditFastforward(credit);
    }
    for (const auto &[b, e] : idleScratch_) {
        if (b <= epochEnd - 1 && epochEnd - 1 < e) {
            epochEndPrevCredited_ = true;
            break;
        }
    }
}

bool
GpuCore::finished() const
{
    if (!sched_.allPlaced())
        return false;
    for (const auto &sm : sms_) {
        if (!sm->finished())
            return false;
    }
    return true;
}

RunStats
GpuCore::finishRun()
{
    if (ran_)
        panic("GpuCore::finishRun: already ran");
    for (unsigned s = 0; s < config_.numSms; ++s) {
        if (!sms_[s]->finished())
            panic("GpuCore::finishRun before the grid drained");
    }
    if (!sched_.allPlaced())
        panic("GpuCore::finishRun with unplaced CTAs");

    const std::vector<Cta> &ctas = sched_.ctas();

    perSm_.reserve(config_.numSms);
    for (unsigned s = 0; s < config_.numSms; ++s)
        perSm_.push_back(sms_[s]->finalize());

    // Aggregate: counts sum, the clock is the global makespan and
    // occupancy peaks take the max.
    aggregate_ = RunStats{};
    aggregate_.srcOperandHist.assign(4, 0);
    aggregate_.bocOccupancyHist.assign(
        config_.effectiveBocEntries() + 1, 0);
    for (const RunStats &s : perSm_) {
        aggregate_.instructions += s.instructions;
        aggregate_.ocCyclesMem += s.ocCyclesMem;
        aggregate_.ocCyclesNonMem += s.ocCyclesNonMem;
        aggregate_.totalCyclesMem += s.totalCyclesMem;
        aggregate_.totalCyclesNonMem += s.totalCyclesNonMem;
        aggregate_.instsMem += s.instsMem;
        aggregate_.instsNonMem += s.instsNonMem;
        aggregate_.rfReads += s.rfReads;
        aggregate_.rfWrites += s.rfWrites;
        aggregate_.bocForwards += s.bocForwards;
        aggregate_.bocDeposits += s.bocDeposits;
        aggregate_.bocResultWrites += s.bocResultWrites;
        aggregate_.rfcReads += s.rfcReads;
        aggregate_.rfcWrites += s.rfcWrites;
        aggregate_.consolidatedWrites += s.consolidatedWrites;
        aggregate_.transientDrops += s.transientDrops;
        aggregate_.safetyWrites += s.safetyWrites;
        aggregate_.destRfOnly += s.destRfOnly;
        aggregate_.destBocOnly += s.destBocOnly;
        aggregate_.destBocAndRf += s.destBocAndRf;
        for (std::size_t i = 0; i < s.srcOperandHist.size(); ++i)
            aggregate_.srcOperandHist[i] += s.srcOperandHist[i];
        for (std::size_t i = 0; i < s.bocOccupancyHist.size(); ++i)
            aggregate_.bocOccupancyHist[i] += s.bocOccupancyHist[i];
        aggregate_.bankReadConflicts += s.bankReadConflicts;
        aggregate_.bankWriteConflicts += s.bankWriteConflicts;
        aggregate_.l1Hits += s.l1Hits;
        aggregate_.l1Misses += s.l1Misses;
        aggregate_.fastforwardCycles += s.fastforwardCycles;
        aggregate_.peakResident =
            std::max(aggregate_.peakResident, s.peakResident);
    }
    // With one SM the makespan IS the SM's busy-cycle count; with
    // several it is the global cycle at which the last SM drained.
    aggregate_.cycles =
        config_.numSms == 1 ? perSm_[0].cycles : gcycle_;

    // Merge the final registers by CTA placement: each SM only ever
    // ran (and recorded) its own warps.
    for (std::size_t c = 0; c < ctas.size(); ++c) {
        const SmCore &sm = *sms_[sched_.placements()[c]];
        for (unsigned i = 0; i < ctas[c].numWarps; ++i) {
            const WarpId w =
                static_cast<WarpId>(ctas[c].firstWarp + i);
            finalRegs_[w] = sm.finalRegs()[w];
        }
    }

    ran_ = true;
    return aggregate_;
}

const RunStats &
GpuCore::smStats(unsigned sm) const
{
    if (!ran_)
        panic("GpuCore::smStats before run()");
    return perSm_.at(sm);
}

bool
GpuCore::smFinished(unsigned sm) const
{
    return sms_.at(sm)->finished();
}

const std::vector<RegFileState> &
GpuCore::finalRegs() const
{
    if (!ran_)
        panic("GpuCore::finalRegs before run()");
    return finalRegs_;
}

void
GpuCore::exportMetrics(MetricsRegistry &out) const
{
    if (!ran_)
        panic("GpuCore::exportMetrics before run()");

    for (unsigned s = 0; s < config_.numSms; ++s)
        sms_[s]->exportMetrics(out);

    out.setCounter("gpu.num_sms", config_.numSms);
    out.setCounter("gpu.cycles", aggregate_.cycles);
    out.setCounter("gpu.instructions", aggregate_.instructions);
    out.setValue("gpu.ipc", aggregate_.ipc());
    out.setCounter("gpu.peak_resident_warps", aggregate_.peakResident);
    out.setCounter("gpu.occupancy_cap", cap_);
    out.setCounter("gpu.cta.launched", numCtas());
    out.setCounter("gpu.cta.warps_per_cta", launch_->warpsPerCta);

    std::vector<std::uint64_t> perSmCtas(config_.numSms, 0);
    for (unsigned smOfCta : sched_.placements())
        ++perSmCtas[smOfCta];
    out.setHist("gpu.cta.per_sm", perSmCtas);

    if (l2_)
        l2_->stats().exportTo(out, "gpu.l2");
}

JsonValue
GpuCore::saveState() const
{
    if (ran_)
        fatal("GpuCore::saveState: run already finalized");
    JsonValue out = JsonValue::object();
    out.set("gcycle", JsonValue(gcycle_));
    out.set("mem", memoryStoreToJson(mem_));
    out.set("l2", l2_ ? l2_->saveState() : JsonValue());
    out.set("sched", sched_.saveState());
    JsonValue sms = JsonValue::array();
    for (const auto &sm : sms_)
        sms.push(sm->saveState());
    out.set("sms", std::move(sms));
    return out;
}

void
GpuCore::loadState(const JsonValue &v)
{
    if (deviceFault_) {
        fatal("GpuCore::loadState: cannot resume with a device "
              "fault plan armed");
    }
    if (gcycle_ != 0)
        panic("GpuCore::loadState: core already stepped");
    gcycle_ = jsonio::getUint(v, "gcycle");
    mem_ = memoryStoreFromJson(jsonio::member(v, "mem"));
    const JsonValue &l2 = jsonio::member(v, "l2");
    if (l2_) {
        if (l2.isNull())
            fatal("GpuCore::loadState: snapshot lacks shared-L2 "
                  "state");
        l2_->loadState(l2);
    } else if (!l2.isNull()) {
        fatal("GpuCore::loadState: snapshot carries shared-L2 state "
              "but this device has none");
    }
    sched_.loadState(jsonio::member(v, "sched"));
    const JsonValue &sms = jsonio::getArray(v, "sms");
    if (sms.size() != sms_.size())
        fatal("GpuCore::loadState: SM count mismatch");
    for (std::size_t s = 0; s < sms_.size(); ++s)
        sms_[s]->loadState(sms.at(s));
}

void
GpuCore::setIssueFrozen(bool frozen)
{
    issueFrozen_ = frozen;
    for (auto &sm : sms_)
        sm->setIssueFrozen(frozen);
}

bool
GpuCore::pipelineQuiet() const
{
    for (const auto &sm : sms_) {
        if (!sm->pipelineQuiet())
            return false;
    }
    return true;
}

void
GpuCore::flushOperandState()
{
    for (auto &sm : sms_)
        sm->flushOperandState();
}

std::uint64_t
GpuCore::functionalAdvance(std::uint64_t budget)
{
    // Per-SM slice per round: coarse interleaving is fine (the
    // functional semantics are warp-order insensitive for the
    // workload suite), but admission must run between rounds so a
    // draining grid keeps filling SMs like the timing loop would.
    constexpr std::uint64_t kSlice = 1024;
    const std::vector<Cta> &ctas = sched_.ctas();
    std::uint64_t done = 0;
    bool progress = true;
    while (done < budget && progress) {
        progress = false;
        if (!sched_.allPlaced()) {
            residentScratch_.assign(config_.numSms, 0);
            for (unsigned s = 0; s < config_.numSms; ++s)
                residentScratch_[s] = sms_[s]->unfinishedAssigned();
            for (const CtaScheduler::Placement &p :
                 sched_.place(residentScratch_)) {
                sms_[p.sm]->assignWarps(ctas[p.cta].firstWarp,
                                        ctas[p.cta].numWarps);
            }
        }
        for (unsigned s = 0;
             s < config_.numSms && done < budget; ++s) {
            const std::uint64_t got = sms_[s]->functionalAdvance(
                std::min<std::uint64_t>(kSlice, budget - done));
            done += got;
            progress = progress || got > 0;
        }
    }
    return done;
}

std::uint64_t
GpuCore::liveInstructions() const
{
    std::uint64_t total = 0;
    for (const auto &sm : sms_)
        total += sm->liveStats().instructions;
    return total;
}

} // namespace bow
