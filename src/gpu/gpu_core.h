/**
 * @file
 * The GPU-level model: config.numSms independent SmCores behind a
 * grid/CTA scheduler, sharing device memory and (when numSms > 1) a
 * banked chip-level L2. Each global cycle the GpuCore first lets the
 * CTA scheduler place pending CTAs, then steps every SM in ascending
 * SM-index order — that fixed order is the cross-SM arbitration rule,
 * so shared-memory effects, L2 bank queues and MSHR state evolve
 * identically on every run regardless of host threading (--jobs).
 *
 * With hostThreads > 1 the SMs of one cycle step concurrently on a
 * StepTeam; each SM stages its memory instructions instead of
 * touching the shared MemoryStore/L2 (SmContext::stagedMemory), and
 * the coordinator drains the staged queues in ascending SM-index
 * order at the cycle barrier — replaying the exact serial
 * arbitration, so results stay bit-identical at any host thread
 * count (docs/PERFORMANCE.md "Parallel SM stepping").
 *
 * With epochCycles > 1 the barrier moves from every cycle to every
 * epoch: each SM free-runs up to epochCycles cycles (stalling early
 * when it would consume the result of an uncommitted staged access),
 * then the coordinator commits all staged accesses in ascending
 * (cycle, smIndex) order — the exact serial arbitration order, since
 * ldstWidth dispatch slots per SM per cycle drain in SM-index order
 * under per-cycle stepping too. Commit rounds repeat until every SM
 * reaches the epoch target, so results again stay bit-identical at
 * any epoch length and thread count (docs/PERFORMANCE.md "Epoch
 * stepping").
 *
 * With numSms == 1 the single SM keeps a private L2 and receives
 * every CTA up front, which reproduces the legacy single-SM
 * Simulator path bit-for-bit (tests/test_gpu_core.cc pins this
 * against the golden cases).
 */

#ifndef BOWSIM_GPU_GPU_CORE_H
#define BOWSIM_GPU_GPU_CORE_H

#include <memory>
#include <utility>
#include <vector>

#include "gpu/cta_scheduler.h"
#include "gpu/device_fault.h"
#include "gpu/shared_l2.h"
#include "gpu/step_team.h"
#include "sm/sm_core.h"

namespace bow {

class MetricsRegistry;
class Watchdog;

class GpuCore
{
  public:
    /**
     * @param config   Machine configuration; numSms/ctaPolicy/l2Banks
     *                 select the GPU-level shape.
     * @param launch   The grid to execute (Launch::warpsPerCta sets
     *                 the CTA granularity).
     * @param watchdog Optional cooperative watchdog. Budgets are per
     *                 SM: each SmCore checkpoints its own busy-cycle
     *                 count, so a hung SM trips on its own activity
     *                 and a finished SM stops consuming budget.
     *                 HangError/FatalError from an SM are rethrown
     *                 prefixed with "sm<N>: ".
     * @param injector Optional fault injector. Per-SM sites
     *                 (rf/boc/rfc) attach it to the SM named by
     *                 FaultPlan::sm; device sites (l2/cta) arm an
     *                 internal DeviceFaultInjector instead (its
     *                 report is read via deviceFaultReport()). An
     *                 active injector forces serial SM stepping:
     *                 hostThreads is clamped to 1 with a one-line
     *                 warning, never a panic (injection hooks observe
     *                 mid-cycle state that staged-memory dispatch
     *                 would reorder).
     */
    GpuCore(const SimConfig &config, const Launch &launch,
            const Watchdog *watchdog = nullptr,
            FaultInjector *injector = nullptr);

    /** Simulate the whole grid to completion; returns the aggregate
     *  statistics (cycles = global makespan, counts summed across
     *  SMs, peakResident = max over SMs). Equivalent to
     *  `while (stepCycle()) {}` followed by finishRun(). */
    RunStats run();

    /**
     * Advance one global cycle: probe the device-fault injector,
     * place pending CTAs, fast-forward across provably inert SMs,
     * then step every unfinished SM in the fixed SM-index order
     * (parallel or serial) and drain staged memory. Returns false —
     * without consuming a cycle — once the whole grid has drained.
     */
    bool stepCycle();

    /** Seal a finished grid: per-SM finalize, aggregate statistics,
     *  merge final registers. Panics unless every SM has finished. */
    RunStats finishRun();

    /** Global GPU cycle (lockstep across all SMs). */
    Cycle gcycle() const { return gcycle_; }

    /** Every CTA placed and every SM drained. */
    bool finished() const;

    // --- snapshots (core/snapshot.h) ---

    /** Serialize the complete device state at a global cycle
     *  boundary: shared memory, shared L2, CTA-scheduler progress
     *  and every SM's full microarchitectural state. */
    JsonValue saveState() const;
    /** Restore from saveState() output; only legal on a freshly
     *  constructed core with no fault injector armed. */
    void loadState(const JsonValue &v);

    // --- sampled mode (core/sampled.h) ---

    /** Freeze/unfreeze instruction issue on every SM; while frozen,
     *  CTA placement also pauses so no new warps activate. */
    void setIssueFrozen(bool frozen);

    /** Every SM's pipeline has drained (see SmCore::pipelineQuiet). */
    bool pipelineQuiet() const;

    /** Flush BOC/RFC contents on every SM (SmCore's contract). */
    void flushOperandState();

    /**
     * Functionally execute up to @p budget instructions across all
     * SMs in ascending SM-index order (the same cross-SM memory
     * arbitration the timing loop uses), admitting pending CTAs as
     * warps retire. Clock does not advance.
     */
    std::uint64_t functionalAdvance(std::uint64_t budget);

    /** Instructions completed so far across all SMs (live). */
    std::uint64_t liveInstructions() const;

    unsigned numSms() const { return config_.numSms; }

    /** Per-SM statistics (valid after run()). */
    const RunStats &smStats(unsigned sm) const;

    /** Whether SM @p sm has drained all its assigned warps — usable
     *  even after run() aborted with HangError, to see which SMs made
     *  it to the end. */
    bool smFinished(unsigned sm) const;

    /** Final registers of every launch warp, merged across SMs. */
    const std::vector<RegFileState> &finalRegs() const;

    /** Shared device memory after the run. */
    const MemoryStore &memory() const { return mem_; }

    /** Effective per-SM resident-warp limit (occupancy). */
    unsigned occupancyCap() const { return cap_; }

    /** SM index each CTA ran on (valid after run()). */
    const std::vector<unsigned> &ctaPlacements() const
    {
        return sched_.placements();
    }

    unsigned numCtas() const
    {
        return static_cast<unsigned>(sched_.ctas().size());
    }

    /**
     * Export per-SM metrics (`sm<N>.*`, one namespace per SM) plus
     * the GPU-level aggregates (`gpu.cycles`, `gpu.ipc`,
     * `gpu.cta.launched`, `gpu.l2.*`, ...). Panics before run().
     */
    void exportMetrics(MetricsRegistry &out) const;

    /** Host threads the cycle loop will use (>= 1, resolved from
     *  config.hostThreads; see src/core/host_threads.h). Always 1
     *  while a fault injector is armed (serial fallback). */
    unsigned hostThreads() const { return hostThreads_; }

    /** Epoch length the cycle loop will use (>= 1, resolved from
     *  config.epochCycles; see src/core/host_threads.h). Always 1
     *  with a single SM (nothing to decouple) and while a per-SM
     *  fault injector or tracer observes individual cycles. */
    unsigned epochCycles() const { return epochCycles_; }

    /** Report of the device-site injector, or nullptr when the armed
     *  plan targets a per-SM site (read the FaultInjector's own
     *  report) or no injector is armed. */
    const FaultReport *deviceFaultReport() const
    {
        return deviceFault_ ? &deviceFault_->report() : nullptr;
    }

  private:
    /** Step SM @p s serially, wrapping HangError/FatalError with the
     *  "sm<N>: " prefix, then drain its staged accesses. */
    void stepAndDrainOne(unsigned s);
    /** Rethrow a StepTeam-captured exception like stepAndDrainOne
     *  would have. */
    [[noreturn]] static void rethrowSmError(unsigned s,
                                            std::exception_ptr err);
    /** Lazily create the StepTeam; per-cycle steps and epoch rounds
     *  share it (epochTarget_ selects the member behaviour). */
    void ensureTeam();

    /**
     * Advance every unfinished SM from gcycle_ to the epoch target
     * (gcycle_ + epochCycles_, clamped to an unfired device fault's
     * planned cycle) by alternating free-run rounds with
     * (cycle, smIndex)-ordered staged-memory commits; ends with every
     * staged queue drained, fast-forward credit reconciled and
     * gcycle_ at the target (docs/PERFORMANCE.md "Epoch stepping").
     */
    void stepEpoch();
    /** Commit staged accesses across all SMs in ascending
     *  (cycle, smIndex) order while that key is strictly below
     *  (@p limitCycle, @p limitSm); kNoCycle = drain everything. */
    void commitStagedBelow(Cycle limitCycle, unsigned limitSm);
    /**
     * Serial multi-SM stepping only credits fastforwardCycles for
     * cycles every unfinished SM skipped together. An epoch free-run
     * cannot see its siblings, so SMs record per-epoch workless
     * spans instead; this intersects them and credits each
     * participant with the globally-idle cycles in
     * [@p t0, its epoch-end clock) — reproducing the serial
     * statistic exactly.
     *
     * @p epochEnd is the cycle this epoch's clock lands on;
     * @p excludeT0 drops cycle @p t0 from the credit set — used when
     * the serial loop's fault-clamped jump would have *landed* on t0
     * and stepped it uncredited (see stepEpoch).
     */
    void applyFastforwardCredit(Cycle t0, Cycle epochEnd,
                                bool excludeT0);

    SimConfig config_;
    const Launch *launch_;
    MemoryStore mem_;
    std::unique_ptr<SharedL2> l2_;
    /** Armed for device-site plans (L2Line / CtaSched) only. */
    std::unique_ptr<DeviceFaultInjector> deviceFault_;
    std::vector<std::unique_ptr<SmCore>> sms_;
    CtaScheduler sched_;
    unsigned cap_ = 0;
    Cycle gcycle_ = 0;
    std::vector<RunStats> perSm_;
    RunStats aggregate_;
    std::vector<RegFileState> finalRegs_;
    bool ran_ = false;

    // --- parallel SM stepping (docs/PERFORMANCE.md) ---
    /** Resolved host thread budget; > 1 enables staged memory
     *  dispatch in every SmCore. */
    unsigned hostThreads_ = 1;
    /** Created on the first cycle with two steppable SMs; cycles
     *  with fewer step serially (workers stay parked). */
    std::unique_ptr<StepTeam> team_;
    /** Unfinished SM indices of the current cycle, ascending
     *  (per-cycle scratch; the hot loop never allocates). */
    std::vector<unsigned> activeScratch_;
    /** Per-SM resident-warp counts (per-cycle scratch). */
    std::vector<unsigned> residentScratch_;
    /** Sampled-mode quiesce: pause CTA placement and warp issue. */
    bool issueFrozen_ = false;

    // --- epoch stepping (docs/PERFORMANCE.md) ---
    /** Resolved epoch length; > 1 moves the SM barrier from every
     *  cycle to every epoch and enables staged memory dispatch. */
    unsigned epochCycles_ = 1;
    /** Target cycle for the StepTeam's current epoch round; kNoCycle
     *  selects plain per-cycle step() (the team lambda reads this on
     *  the worker threads, published by the stepAll barrier). */
    Cycle epochTarget_ = kNoCycle;
    /** SMs still short of the epoch target (per-round scratch). */
    std::vector<unsigned> runScratch_;
    /** Globally-workless span intersection (per-epoch scratch). */
    std::vector<std::pair<Cycle, Cycle>> idleScratch_;
    std::vector<std::pair<Cycle, Cycle>> idleScratch2_;
    /** Where the previous epoch's clock landed, and whether the
     *  cycle just before that landing was fast-forward credited.
     *  Together they tell the next epoch whether the serial loop
     *  would have *jumped onto* its start cycle — a jump clamped by
     *  an unfired device fault lands exactly on the planned cycle
     *  and then steps it uncredited, even though it may be globally
     *  workless. */
    Cycle epochEndPrev_ = kNoCycle;
    bool epochEndPrevCredited_ = false;
};

} // namespace bow

#endif // BOWSIM_GPU_GPU_CORE_H
