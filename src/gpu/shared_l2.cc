#include "gpu/shared_l2.h"

#include <algorithm>

#include "common/json_util.h"
#include "common/log.h"

namespace bow {

SharedL2::SharedL2(const SimConfig &config)
    : config_(&config), stats_("shared_l2")
{
    const unsigned nbanks = std::max(1u, config.l2Banks);
    banks_.resize(nbanks);

    lineShift_ = 0;
    while ((1u << lineShift_) < config.l2LineBytes)
        ++lineShift_;

    // The 3 MB device L2 is carved evenly across the slices; a tiny
    // configuration still gets at least one set per bank.
    const unsigned bytesPerBank =
        std::max(config.l2Bytes / nbanks,
                 config.l2LineBytes * config.l2Ways);
    for (Bank &b : banks_)
        b.tags.init(bytesPerBank, config.l2LineBytes, config.l2Ways);
}

bool
SharedL2::lineResident(std::uint32_t addr) const
{
    const std::uint64_t line = addr >> lineShift_;
    return banks_[line % banks_.size()].tags.probeLine(addr);
}

unsigned
SharedL2::access(std::uint32_t addr, bool isStore, Cycle now)
{
    // Every stepping mode — serial, per-cycle parallel drain, epoch
    // commit — must present accesses in non-decreasing arrival time;
    // the bank queues and MSHR files below silently corrupt their
    // schedules otherwise. Cheap to check, and it turns an ordering
    // bug in a commit path into an immediate loud failure instead of
    // a statistics mismatch three layers up.
    if (now < lastAccess_)
        panic(strf("SharedL2: access at cycle ", now,
                   " after one at cycle ", lastAccess_,
                   " (commit order violated)"));
    lastAccess_ = now;

    const std::uint64_t line = addr >> lineShift_;
    Bank &bank = banks_[line % banks_.size()];

    // Serial service port: one access per bank per cycle. Arrivals
    // within a cycle are already in deterministic SM-index order.
    const Cycle start = std::max(now, bank.nextFree);
    if (start > now)
        stats_.counter("queue_cycles").inc(start - now);
    bank.nextFree = start + 1;

    // Retire MSHRs whose DRAM fill has come back by service time.
    while (!bank.inflight.empty() && bank.inflight.front() <= start)
        bank.inflight.pop_front();

    if (isStore) {
        // Write-through / allocating, like the private L2: the store
        // streams out in the background and adds no warp latency.
        stats_.counter("stores").inc();
        bank.tags.accessLine(addr, true);
        return 0;
    }

    stats_.counter("loads").inc();
    if (bank.tags.accessLine(addr, true)) {
        stats_.counter("hits").inc();
        return static_cast<unsigned>(start - now) + config_->l2Latency;
    }

    stats_.counter("misses").inc();
    // A full MSHR file stalls the miss until the oldest entry frees.
    Cycle admitted = start;
    if (bank.inflight.size() >= config_->l2MshrsPerBank) {
        admitted = std::max(admitted, bank.inflight.front());
        bank.inflight.pop_front();
        stats_.counter("mshr_stall_cycles").inc(admitted - start);
    }
    bank.inflight.push_back(admitted + config_->dramLatency);
    return static_cast<unsigned>(admitted - now) + config_->l2Latency +
        config_->dramLatency;
}

JsonValue
SharedL2::saveState() const
{
    JsonValue banks = JsonValue::array();
    for (const Bank &bank : banks_) {
        JsonValue inflight = JsonValue::array();
        for (Cycle c : bank.inflight)
            inflight.push(JsonValue(c));
        JsonValue o = JsonValue::object();
        o.set("tags", cacheTagsToJson(bank.tags));
        o.set("next_free", JsonValue(bank.nextFree));
        o.set("inflight", std::move(inflight));
        banks.push(std::move(o));
    }
    JsonValue out = JsonValue::object();
    out.set("banks", std::move(banks));
    out.set("stats", stats_.saveJson());
    return out;
}

void
SharedL2::loadState(const JsonValue &v)
{
    const JsonValue &banks = jsonio::getArray(v, "banks");
    if (banks.size() != banks_.size())
        fatal("SharedL2::loadState: bank count mismatch");
    for (std::size_t b = 0; b < banks_.size(); ++b) {
        const JsonValue &o = banks.at(b);
        Bank &bank = banks_[b];
        cacheTagsFromJson(bank.tags, jsonio::member(o, "tags"));
        bank.nextFree = jsonio::getUint(o, "next_free");
        bank.inflight.clear();
        for (const JsonValue &c :
             jsonio::getArray(o, "inflight").items()) {
            bank.inflight.push_back(c.asUint());
        }
    }
    stats_.loadJson(jsonio::member(v, "stats"));
}

} // namespace bow
