/**
 * @file
 * Chip-level shared L2: a line-interleaved array of banks, each with
 * its own tag array, a single service port (one access per cycle) and
 * a bounded MSHR file for DRAM misses. Per-SM MemoryTiming models
 * forward their L1 misses (and write-through stores) here when a
 * GpuCore runs more than one SM, so cross-SM sharing and contention
 * are modelled at the level the paper's TITAN X actually shares them.
 *
 * Determinism: a SharedL2 is private to one simulation and is only
 * ever accessed from the GpuCore's fixed SM-index stepping order, so
 * bank-queue and MSHR state evolve identically on every run at any
 * --jobs count.
 */

#ifndef BOWSIM_GPU_SHARED_L2_H
#define BOWSIM_GPU_SHARED_L2_H

#include <deque>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "sm/memory_model.h"
#include "sm/sim_config.h"

namespace bow {

class SharedL2
{
  public:
    explicit SharedL2(const SimConfig &config);

    /**
     * Account one global-memory access that missed (or wrote through)
     * a per-SM L1 and return the latency it adds beyond the L1 trip.
     *
     * @param addr    Byte address (bank = line index % banks).
     * @param isStore Write-through stores occupy the bank port and
     *                allocate the line but add no warp-visible
     *                latency, mirroring the private-L2 model.
     * @param now     Global GPU cycle of the access.
     */
    unsigned access(std::uint32_t addr, bool isStore, Cycle now);

    unsigned numBanks() const
    {
        return static_cast<unsigned>(banks_.size());
    }

    /**
     * Whether @p addr's line is currently resident in its bank's tag
     * array. Pure probe for the fault injector: no allocation, no
     * LRU update — observing residency must not perturb timing.
     */
    bool lineResident(std::uint32_t addr) const;

    const StatGroup &stats() const { return stats_; }

    /** Serialize bank tags/ports/MSHRs + stats for a snapshot. */
    JsonValue saveState() const;
    /** Overwrite contents from saveState() output. */
    void loadState(const JsonValue &v);

  private:
    /** One slice: tags + a serial service port + its MSHR file. */
    struct Bank
    {
        CacheTagArray tags;
        Cycle nextFree = 0;             ///< port busy until here
        std::deque<Cycle> inflight;     ///< MSHR release cycles, sorted
    };

    const SimConfig *config_;
    std::vector<Bank> banks_;
    unsigned lineShift_ = 0;
    StatGroup stats_;
    /** Arrival-time watermark asserting accesses stay in order —
     *  pure self-check, deliberately not serialized (a restored run
     *  resumes at a cycle past every pre-snapshot access). */
    Cycle lastAccess_ = 0;
};

} // namespace bow

#endif // BOWSIM_GPU_SHARED_L2_H
