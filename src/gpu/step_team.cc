#include "gpu/step_team.h"

#include <thread>
#include <utility>

#include "common/log.h"

namespace bow {

namespace {

/** Spins on the generation word before the first yield(). */
constexpr unsigned kSpinsBeforeYield = 256;

} // namespace

void
CycleBarrier::arriveAndWait()
{
    const std::uint64_t gen =
        generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        parties_) {
        // Last arriver: reset the count *before* publishing the new
        // generation, so early re-arrivals (next crossing) start
        // from zero. The release store heads the synchronizes-with
        // edge every spinner's acquire load completes — which also
        // publishes every member's pre-barrier writes (the arrival
        // RMWs form one release sequence on arrived_).
        arrived_.store(0, std::memory_order_relaxed);
        generation_.store(gen + 1, std::memory_order_release);
        return;
    }
    unsigned spins = 0;
    while (generation_.load(std::memory_order_acquire) == gen) {
        if (++spins >= kSpinsBeforeYield)
            std::this_thread::yield();
    }
}

StepTeam::StepTeam(unsigned hostThreads, unsigned slots,
                   std::function<void(unsigned)> step)
    : step_(std::move(step)),
      errors_(slots),
      start_(hostThreads),
      end_(hostThreads),
      pool_(hostThreads >= 2 ? hostThreads - 1 : 1)
{
    if (hostThreads < 2)
        panic("StepTeam: needs at least two members (use no team "
              "for serial stepping)");
    for (unsigned t = 0; t + 1 < hostThreads; ++t)
        pool_.post([this] { memberLoop(); });
}

StepTeam::~StepTeam()
{
    stop_ = true;
    start_.arriveAndWait();
    pool_.wait();
}

void
StepTeam::stepAll(const std::vector<unsigned> &active)
{
    active_ = &active;
    next_.store(0, std::memory_order_relaxed);
    start_.arriveAndWait();
    claimLoop();
    end_.arriveAndWait();
}

void
StepTeam::memberLoop()
{
    for (;;) {
        start_.arriveAndWait();
        if (stop_)
            return;
        claimLoop();
        end_.arriveAndWait();
    }
}

void
StepTeam::claimLoop()
{
    const std::vector<unsigned> &active = *active_;
    for (;;) {
        const unsigned i =
            next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= active.size())
            return;
        const unsigned slot = active[i];
        try {
            step_(slot);
        } catch (...) {
            errors_[slot] = std::current_exception();
        }
    }
}

} // namespace bow
