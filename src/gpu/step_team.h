/**
 * @file
 * The host-thread team behind GpuCore's parallel SM stepping
 * (docs/PERFORMANCE.md "Parallel SM stepping"). A StepTeam keeps
 * hostThreads - 1 long-running workers parked on a spin-then-yield
 * cycle barrier; each stepAll() call releases them, every member
 * (the calling coordinator included) claims SM indices from a shared
 * counter and steps them, and a second barrier closes the cycle
 * before the coordinator touches any shared state (staged-queue
 * drain, CTA placement, fast-forward).
 *
 * Work is claimed dynamically — which thread steps which SM is a
 * race — but that is invisible by construction: under staged memory
 * dispatch an SmCore::step() only touches its own state, and all
 * cross-SM arbitration happens in the coordinator's ordered drain
 * between barriers. Determinism never depends on the claim order.
 *
 * Epoch stepping (docs/PERFORMANCE.md "Epoch stepping") reuses the
 * same team with a different step function: each stepAll() becomes
 * one free-run *round* toward GpuCore::epochTarget_ — an SM runs many
 * cycles, not one, before the barrier — and the coordinator's
 * (cycle, smIndex)-ordered commit replaces the per-cycle drain. The
 * claim-order argument is unchanged: free-running SMs still touch
 * only SM-private state, and the target is published to the members
 * by the stepAll() start barrier.
 */

#ifndef BOWSIM_GPU_STEP_TEAM_H
#define BOWSIM_GPU_STEP_TEAM_H

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <vector>

#include "core/thread_pool.h"

namespace bow {

/**
 * A sense-reversing barrier for a fixed party count. Spins briefly
 * (a simulation cycle is microseconds, far below a futex round
 * trip), then yields. Safe to reuse in the classic two-barrier
 * ping-pong: a crossing of the partner barrier separates successive
 * crossings of this one, so no party can lap a slow sibling.
 */
class CycleBarrier
{
  public:
    explicit CycleBarrier(unsigned parties)
        : parties_(parties)
    {
    }

    /** Block (spin, then yield) until all parties have arrived. */
    void arriveAndWait();

  private:
    const unsigned parties_;
    std::atomic<unsigned> arrived_{0};
    std::atomic<std::uint64_t> generation_{0};
};

/**
 * hostThreads - 1 pool workers plus the calling coordinator,
 * stepping a set of slots (SM indices) per stepAll() call.
 *
 * A slot whose step throws records the exception at error(slot) —
 * step functions must not let exceptions escape the team's control
 * any other way — and the remaining slots still step, so the
 * coordinator can surface the lowest-indexed failure
 * deterministically. The destructor releases and joins the workers;
 * it must run on the coordinator thread.
 */
class StepTeam
{
  public:
    /**
     * @param hostThreads Total members including the coordinator
     *                    (>= 2; use no team at all for 1).
     * @param slots       Exclusive upper bound of slot indices
     *                    (sizes the error table).
     * @param step        Called once per active slot per stepAll(),
     *                    from an arbitrary member thread.
     */
    StepTeam(unsigned hostThreads, unsigned slots,
             std::function<void(unsigned)> step);

    ~StepTeam();

    StepTeam(const StepTeam &) = delete;
    StepTeam &operator=(const StepTeam &) = delete;

    /**
     * Step every slot in @p active exactly once, on all members
     * concurrently; returns after every step finished (barrier).
     * @p active must stay valid for the duration of the call.
     */
    void stepAll(const std::vector<unsigned> &active);

    /** Exception a slot's step threw (nullptr if none so far). */
    const std::exception_ptr &
    error(unsigned slot) const
    {
        return errors_[slot];
    }

    /** Team size including the coordinator. */
    unsigned threads() const { return pool_.threads() + 1; }

  private:
    void memberLoop();
    void claimLoop();

    std::function<void(unsigned)> step_;
    /** Indexed by slot; each slot is claimed by exactly one member
     *  per cycle, so writes never race. */
    std::vector<std::exception_ptr> errors_;
    const std::vector<unsigned> *active_ = nullptr;
    std::atomic<unsigned> next_{0};
    CycleBarrier start_;
    CycleBarrier end_;
    /** Written by the coordinator before releasing start_, read by
     *  workers after crossing it: the barrier's atomics carry the
     *  ordering, so a plain bool is race-free. */
    bool stop_ = false;
    /** Declared last so it is destroyed first — by then the
     *  destructor body has already drained the member tasks. */
    ThreadPool pool_;
};

} // namespace bow

#endif // BOWSIM_GPU_STEP_TEAM_H
