#include "isa/assembler.h"

#include <cctype>
#include <map>
#include <optional>
#include <vector>

#include "common/log.h"

namespace bow {

namespace {

/** A statement split out of the source with its line for messages. */
struct RawStmt
{
    std::string text;
    unsigned line;
};

[[noreturn]] void
syntaxError(unsigned line, const std::string &msg)
{
    fatal(strf("assembler: line ", line, ": ", msg));
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
lower(std::string s)
{
    for (auto &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/** Split a mnemonic like "mul.wide.u16" into its dot-parts. */
std::vector<std::string>
splitDots(const std::string &s)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t dot = s.find('.', start);
        if (dot == std::string::npos) {
            parts.push_back(s.substr(start));
            break;
        }
        parts.push_back(s.substr(start, dot - start));
        start = dot + 1;
    }
    return parts;
}

/** Split operand list on top-level commas (not inside brackets). */
std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    int depth = 0;
    std::string cur;
    for (char c : s) {
        if (c == '[')
            ++depth;
        else if (c == ']')
            --depth;
        if (c == ',' && depth == 0) {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    cur = trim(cur);
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::optional<std::int64_t>
parseNumber(const std::string &tok)
{
    std::string t = tok;
    bool neg = false;
    if (!t.empty() && (t[0] == '-' || t[0] == '+')) {
        neg = (t[0] == '-');
        t = t.substr(1);
    }
    if (t.empty())
        return std::nullopt;
    int base = 10;
    if (t.size() > 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
        base = 16;
        t = t.substr(2);
    }
    std::int64_t v = 0;
    for (char c : t) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (base == 16 && c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return std::nullopt;
        v = v * base + digit;
    }
    return neg ? -v : v;
}

/**
 * Parse a register token: $rN (with optional .lo/.hi discarded),
 * $pN (predicate), $oN (SASS bit-bucket, mapped to a scratch GPR).
 * A compound destination "$p0/$o127" resolves to the part before '/'.
 */
std::optional<RegId>
parseReg(const std::string &tok_in, unsigned line)
{
    std::string tok = tok_in;
    const std::size_t slash = tok.find('/');
    if (slash != std::string::npos)
        tok = tok.substr(0, slash);
    // Strip .lo/.hi half-register selectors.
    const std::size_t dot = tok.find('.');
    if (dot != std::string::npos)
        tok = tok.substr(0, dot);
    if (tok.size() < 3 || tok[0] != '$')
        return std::nullopt;
    const char cls = tok[1];
    auto num = parseNumber(tok.substr(2));
    if (!num || *num < 0)
        syntaxError(line, strf("bad register '", tok_in, "'"));
    switch (cls) {
      case 'r':
        if (*num >= kPredRegBase)
            syntaxError(line, strf("GPR index out of range: ", tok_in));
        return static_cast<RegId>(*num);
      case 'p':
        if (*num >= 16)
            syntaxError(line, strf("predicate index out of range: ",
                                   tok_in));
        return predReg(static_cast<unsigned>(*num));
      case 'o':
        // SASS output bit-bucket; model as a scratch GPR so dataflow
        // stays well-formed.
        return static_cast<RegId>(kPredRegBase - 1);
      default:
        return std::nullopt;
    }
}

/** Result of parsing one non-destination operand token. */
struct ParsedSrc
{
    enum class Kind { VALUE, MEM_ADDR } kind = Kind::VALUE;
    Operand operand;            ///< valid when kind == VALUE
    RegId addrReg = kNoReg;     ///< valid when kind == MEM_ADDR
    std::int32_t offset = 0;    ///< valid when kind == MEM_ADDR
};

ParsedSrc
parseSrc(const std::string &tok, unsigned line)
{
    ParsedSrc out;
    if (tok.empty())
        syntaxError(line, "empty operand");

    if (tok.front() == '[') {
        // Memory address operand: [$rN], [$rN+imm], [$rN-imm], [imm].
        if (tok.back() != ']')
            syntaxError(line, strf("unterminated address '", tok, "'"));
        std::string inner = trim(tok.substr(1, tok.size() - 2));
        std::size_t split = inner.find_first_of("+-", 1);
        std::string base = trim(split == std::string::npos
                                ? inner : inner.substr(0, split));
        std::int64_t off = 0;
        if (split != std::string::npos) {
            auto num = parseNumber(trim(inner.substr(split)));
            if (!num)
                syntaxError(line, strf("bad address offset in '", tok,
                                       "'"));
            off = *num;
        }
        out.kind = ParsedSrc::Kind::MEM_ADDR;
        out.offset = static_cast<std::int32_t>(off);
        if (auto reg = parseReg(base, line)) {
            out.addrReg = *reg;
        } else if (auto num = parseNumber(base)) {
            // Absolute address: no base register.
            out.addrReg = kNoReg;
            out.offset = static_cast<std::int32_t>(*num + off);
        } else {
            syntaxError(line, strf("bad address base '", base, "'"));
        }
        return out;
    }

    if ((tok.front() == 's' || tok.front() == 'c') && tok.size() > 1 &&
        tok[1] == '[') {
        if (tok.back() != ']')
            syntaxError(line, strf("unterminated const read '", tok,
                                   "'"));
        auto num = parseNumber(trim(tok.substr(2, tok.size() - 3)));
        if (!num || *num < 0)
            syntaxError(line, strf("bad const address '", tok, "'"));
        out.operand = Operand::makeConstMem(
            static_cast<std::uint32_t>(*num));
        return out;
    }

    if (tok.front() == '%') {
        const std::string name = lower(tok.substr(1));
        if (name == "warpid" || name == "wid") {
            out.operand = Operand::makeSpecial(SpecialReg::WARP_ID);
        } else if (name == "nwarps" || name == "warpcount") {
            out.operand = Operand::makeSpecial(SpecialReg::WARP_COUNT);
        } else {
            syntaxError(line, strf("unknown special register '", tok,
                                   "'"));
        }
        return out;
    }

    if (auto reg = parseReg(tok, line)) {
        out.operand = Operand::makeReg(*reg);
        return out;
    }
    if (auto num = parseNumber(tok)) {
        out.operand = Operand::makeImm(static_cast<std::uint32_t>(
            static_cast<std::int64_t>(*num)));
        return out;
    }
    syntaxError(line, strf("cannot parse operand '", tok, "'"));
}

const std::map<std::string, Opcode> &
mnemonicMap()
{
    static const std::map<std::string, Opcode> m = {
        {"mov", Opcode::MOV},   {"add", Opcode::ADD},
        {"sub", Opcode::SUB},   {"mul", Opcode::MUL},
        {"mad", Opcode::MAD},   {"min", Opcode::MIN},
        {"max", Opcode::MAX},   {"and", Opcode::AND},
        {"or", Opcode::OR},     {"xor", Opcode::XOR},
        {"shl", Opcode::SHL},   {"shr", Opcode::SHR},
        {"abs", Opcode::ABS},   {"neg", Opcode::NEG},
        {"cvt", Opcode::CVT},   {"set", Opcode::SET},
        {"setp", Opcode::SETP}, {"rcp", Opcode::RCP},
        {"sqrt", Opcode::SQRT}, {"sin", Opcode::SIN},
        {"ex2", Opcode::EX2},   {"lg2", Opcode::LG2},
        {"bra", Opcode::BRA},   {"ssy", Opcode::SSY},
        {"bar", Opcode::BAR},   {"nop", Opcode::NOP},
        {"ret", Opcode::RET},   {"exit", Opcode::EXIT},
        {"ld.global", Opcode::LD_GLOBAL},
        {"st.global", Opcode::ST_GLOBAL},
        {"ld.shared", Opcode::LD_SHARED},
        {"st.shared", Opcode::ST_SHARED},
        {"ld.const", Opcode::LD_CONST},
        {"ld.param", Opcode::LD_CONST},
        {"ld.local", Opcode::LD_GLOBAL},
        {"st.local", Opcode::ST_GLOBAL},
    };
    return m;
}

std::optional<CondCode>
parseCond(const std::string &s)
{
    if (s == "eq") return CondCode::EQ;
    if (s == "ne") return CondCode::NE;
    if (s == "lt") return CondCode::LT;
    if (s == "le") return CondCode::LE;
    if (s == "gt") return CondCode::GT;
    if (s == "ge") return CondCode::GE;
    return std::nullopt;
}

bool
isIdentifier(const std::string &s)
{
    if (s.empty())
        return false;
    if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_')
        return false;
    for (char c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
            return false;
    }
    return true;
}

} // namespace

Kernel
assemble(const std::string &source, const std::string &name)
{
    // Pass 1: strip comments, split into label defs and statements.
    std::vector<RawStmt> stmts;
    std::map<std::string, InstIdx> labels;
    // Pending labels bind to the next emitted instruction.
    std::vector<std::pair<std::string, unsigned>> pendingLabels;
    // Branch fixups: instruction -> (label, line).
    std::vector<std::pair<InstIdx, std::pair<std::string, unsigned>>>
        fixups;

    Kernel kernel(name);

    unsigned lineNo = 0;
    std::string line;
    std::size_t pos = 0;
    auto nextLine = [&](std::string &out) -> bool {
        if (pos >= source.size())
            return false;
        std::size_t nl = source.find('\n', pos);
        if (nl == std::string::npos)
            nl = source.size();
        out = source.substr(pos, nl - pos);
        pos = nl + 1;
        return true;
    };

    auto emit = [&](Instruction inst, unsigned at_line,
                    const std::string &target_label) {
        const InstIdx idx = kernel.add(std::move(inst));
        for (auto &lbl : pendingLabels) {
            if (labels.count(lbl.first)) {
                syntaxError(lbl.second,
                            strf("duplicate label '", lbl.first, "'"));
            }
            labels[lbl.first] = idx;
        }
        pendingLabels.clear();
        if (!target_label.empty())
            fixups.push_back({idx, {target_label, at_line}});
    };

    while (nextLine(line)) {
        ++lineNo;
        // Strip comments.
        for (const char *marker : {"//", "#"}) {
            const std::size_t c = line.find(marker);
            if (c != std::string::npos)
                line = line.substr(0, c);
        }
        // A line may contain label definitions and ';'-separated
        // statements.
        std::string rest = line;
        while (true) {
            rest = trim(rest);
            if (rest.empty())
                break;
            // Label definition?
            const std::size_t colon = rest.find(':');
            const std::size_t semi = rest.find(';');
            if (colon != std::string::npos &&
                (semi == std::string::npos || colon < semi)) {
                std::string lbl = trim(rest.substr(0, colon));
                if (!isIdentifier(lbl))
                    syntaxError(lineNo, strf("bad label '", lbl, "'"));
                pendingLabels.push_back({lbl, lineNo});
                rest = rest.substr(colon + 1);
                continue;
            }
            std::string stmt;
            if (semi == std::string::npos) {
                stmt = rest;
                rest.clear();
            } else {
                stmt = trim(rest.substr(0, semi));
                rest = rest.substr(semi + 1);
            }
            if (stmt.empty())
                continue;

            // Parse one statement.
            Instruction inst;
            std::string target_label;

            // Optional guard predicate: @$p0 or @!$p0.
            if (stmt[0] == '@') {
                std::size_t sp = stmt.find_first_of(" \t");
                if (sp == std::string::npos)
                    syntaxError(lineNo, "guard predicate without "
                                        "instruction");
                std::string guard = stmt.substr(1, sp - 1);
                stmt = trim(stmt.substr(sp));
                if (!guard.empty() && guard[0] == '!') {
                    inst.predNegate = true;
                    guard = guard.substr(1);
                }
                auto reg = parseReg(guard, lineNo);
                if (!reg || *reg < kPredRegBase)
                    syntaxError(lineNo, strf("bad guard predicate '@",
                                             guard, "'"));
                inst.pred = *reg;
            }

            // Mnemonic token.
            std::size_t sp = stmt.find_first_of(" \t");
            std::string mnemonic = lower(
                sp == std::string::npos ? stmt : stmt.substr(0, sp));
            std::string opnds =
                sp == std::string::npos ? "" : trim(stmt.substr(sp));

            auto parts = splitDots(mnemonic);
            std::string key = parts[0];
            if ((key == "ld" || key == "st") && parts.size() >= 2)
                key += "." + parts[1];
            auto it = mnemonicMap().find(key);
            if (it == mnemonicMap().end())
                syntaxError(lineNo, strf("unknown mnemonic '", mnemonic,
                                         "'"));
            inst.op = it->second;

            // Condition code for set/setp from the suffix.
            if (inst.op == Opcode::SET || inst.op == Opcode::SETP) {
                bool found = false;
                for (std::size_t p = 1; p < parts.size(); ++p) {
                    if (auto cc = parseCond(parts[p])) {
                        inst.cc = *cc;
                        found = true;
                        break;
                    }
                }
                if (!found)
                    syntaxError(lineNo, strf("set/setp without condition "
                                             "code: '", mnemonic, "'"));
            }

            const OpcodeInfo &info = opcodeInfo(inst.op);
            auto tokens = splitOperands(opnds);

            if (inst.op == Opcode::BRA) {
                if (tokens.size() != 1 || !isIdentifier(tokens[0]))
                    syntaxError(lineNo, "bra expects one label operand");
                target_label = tokens[0];
            } else if (inst.op == Opcode::SSY ||
                       inst.op == Opcode::BAR) {
                // Optional (ignored) operand: ssy label; bar.sync 0;
                if (tokens.size() > 1)
                    syntaxError(lineNo, strf(opcodeName(inst.op),
                                             " takes at most one "
                                             "operand"));
            } else if (inst.op == Opcode::NOP ||
                       inst.op == Opcode::EXIT ||
                       inst.op == Opcode::RET) {
                if (!tokens.empty())
                    syntaxError(lineNo, strf(opcodeName(inst.op),
                                             " takes no operands"));
            } else if (info.isStore) {
                // st.global [$addr], $data
                if (tokens.size() != 2)
                    syntaxError(lineNo, "store expects address and data "
                                        "operands");
                ParsedSrc addr = parseSrc(tokens[0], lineNo);
                if (addr.kind != ParsedSrc::Kind::MEM_ADDR)
                    syntaxError(lineNo, "store address must be "
                                        "bracketed");
                inst.memOffset = addr.offset;
                inst.addSrc(addr.addrReg == kNoReg
                            ? Operand::makeImm(0)
                            : Operand::makeReg(addr.addrReg));
                ParsedSrc data = parseSrc(tokens[1], lineNo);
                if (data.kind != ParsedSrc::Kind::VALUE)
                    syntaxError(lineNo, "store data must be a value "
                                        "operand");
                inst.addSrc(data.operand);
            } else {
                // Destination-first instructions.
                if (tokens.empty())
                    syntaxError(lineNo, strf(opcodeName(inst.op),
                                             " needs operands"));
                auto dst = parseReg(tokens[0], lineNo);
                if (!dst)
                    syntaxError(lineNo, strf("bad destination '",
                                             tokens[0], "'"));
                inst.dst = *dst;
                for (std::size_t i = 1; i < tokens.size(); ++i) {
                    ParsedSrc src = parseSrc(tokens[i], lineNo);
                    if (src.kind == ParsedSrc::Kind::MEM_ADDR) {
                        if (!info.isLoad)
                            syntaxError(lineNo, "address operand on "
                                                "non-memory "
                                                "instruction");
                        inst.memOffset = src.offset;
                        inst.addSrc(src.addrReg == kNoReg
                                    ? Operand::makeImm(0)
                                    : Operand::makeReg(src.addrReg));
                    } else {
                        inst.addSrc(src.operand);
                    }
                }
                if (inst.numSrcs != info.numSrcs)
                    syntaxError(lineNo,
                                strf(opcodeName(inst.op), " expects ",
                                     static_cast<unsigned>(info.numSrcs),
                                     " source operands, got ",
                                     static_cast<unsigned>(
                                         inst.numSrcs)));
            }
            emit(std::move(inst), lineNo, target_label);
        }
    }
    (void)stmts;

    if (!pendingLabels.empty()) {
        syntaxError(pendingLabels.front().second,
                    strf("label '", pendingLabels.front().first,
                         "' at end of kernel binds to no instruction"));
    }

    // Pass 2: resolve branch targets.
    for (auto &fix : fixups) {
        auto it = labels.find(fix.second.first);
        if (it == labels.end())
            syntaxError(fix.second.second,
                        strf("undefined label '", fix.second.first,
                             "'"));
        kernel.inst(fix.first).branchTarget = it->second;
    }

    kernel.finalize();
    return kernel;
}

} // namespace bow
