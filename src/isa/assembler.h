/**
 * @file
 * Textual assembler for the bowsim warp ISA.
 *
 * The accepted syntax is deliberately close to the decompiled SASS
 * style the paper uses in its Figure 6 listing, so that the BTREE
 * code snippet can be assembled nearly verbatim:
 *
 *     // comment
 *     label:
 *     ld.global.u32 $r3, [$r8];
 *     mov.u32 $r2, 0x00000ff4;
 *     mul.wide.u16 $r1, $r0.lo, $r2.hi;
 *     add.half.u32 $r0, s[0x0018], $r0;
 *     set.ne.s32.s32 $p0/$o127, $r3, $r1;
 *     @$p0 bra label;
 *     exit;
 *
 * Type/width suffixes (.u32, .wide, .half, .lo, .hi, ...) are parsed
 * and discarded: bowsim models 32-bit warp-uniform values, and the
 * paper's mechanism depends only on the register dataflow.
 */

#ifndef BOWSIM_ISA_ASSEMBLER_H
#define BOWSIM_ISA_ASSEMBLER_H

#include <string>

#include "isa/kernel.h"

namespace bow {

/**
 * Assemble @p source into a finalized Kernel.
 *
 * @param source Assembly text (statements separated by ';', labels
 *               ending in ':').
 * @param name   Kernel name used in diagnostics and reports.
 * @return The finalized kernel.
 * @throws FatalError on any syntax or semantic error, with the 1-based
 *         source line in the message.
 */
Kernel assemble(const std::string &source,
                const std::string &name = "kernel");

} // namespace bow

#endif // BOWSIM_ISA_ASSEMBLER_H
