#include "isa/disassembler.h"

#include <set>
#include <sstream>

#include "common/log.h"

namespace bow {

std::string
regName(RegId reg)
{
    if (reg == kNoReg)
        return "$r?";
    if (reg >= kPredRegBase)
        return strf("$p", reg - kPredRegBase);
    return strf("$r", reg);
}

namespace {

std::string
hexImm(std::uint32_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

std::string
operandText(const Operand &o)
{
    switch (o.kind) {
      case Operand::Kind::REG:
        return regName(o.reg);
      case Operand::Kind::IMM:
        return hexImm(o.imm);
      case Operand::Kind::SPECIAL:
        return o.special == SpecialReg::WARP_ID ? "%warpid" : "%nwarps";
      case Operand::Kind::CONST_MEM:
        return strf("s[", hexImm(o.imm), "]");
      case Operand::Kind::NONE:
        return "<none>";
    }
    panic("operandText: bad operand kind");
}

std::string
addressText(const Operand &base, std::int32_t offset)
{
    std::string inner;
    if (base.isReg()) {
        inner = regName(base.reg);
        if (offset > 0)
            inner += strf("+", hexImm(static_cast<std::uint32_t>(offset)));
        else if (offset < 0)
            inner += strf("-", hexImm(static_cast<std::uint32_t>(-offset)));
    } else {
        inner = hexImm(static_cast<std::uint32_t>(offset));
    }
    return "[" + inner + "]";
}

} // namespace

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    if (inst.pred != kNoReg)
        os << "@" << (inst.predNegate ? "!" : "") << regName(inst.pred)
           << " ";

    os << opcodeName(inst.op);
    if (inst.op == Opcode::SET || inst.op == Opcode::SETP)
        os << "." << condName(inst.cc);

    const OpcodeInfo &info = opcodeInfo(inst.op);
    std::vector<std::string> fields;

    if (inst.op == Opcode::BRA) {
        fields.push_back(strf("L", inst.branchTarget));
    } else if (info.isStore) {
        fields.push_back(addressText(inst.srcs[0], inst.memOffset));
        fields.push_back(operandText(inst.srcs[1]));
    } else {
        if (inst.hasDest())
            fields.push_back(regName(inst.dst));
        for (unsigned i = 0; i < inst.numSrcs; ++i) {
            if (info.isLoad && i == 0) {
                fields.push_back(
                    addressText(inst.srcs[0], inst.memOffset));
            } else {
                fields.push_back(operandText(inst.srcs[i]));
            }
        }
    }
    for (std::size_t i = 0; i < fields.size(); ++i)
        os << (i ? ", " : " ") << fields[i];
    return os.str();
}

std::string
disassemble(const Kernel &kernel)
{
    std::set<InstIdx> targets;
    for (const auto &inst : kernel.instructions()) {
        if (inst.isBranch() && inst.branchTarget != kNoInst)
            targets.insert(inst.branchTarget);
    }
    std::ostringstream os;
    for (InstIdx i = 0; i < kernel.size(); ++i) {
        if (targets.count(i))
            os << "L" << i << ":\n";
        os << "    " << disassemble(kernel.inst(i)) << ";\n";
    }
    return os.str();
}

} // namespace bow
