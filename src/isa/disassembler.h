/**
 * @file
 * Disassembler: renders instructions and kernels back to the textual
 * form the assembler accepts (round-trippable, used in tests and
 * debug dumps).
 */

#ifndef BOWSIM_ISA_DISASSEMBLER_H
#define BOWSIM_ISA_DISASSEMBLER_H

#include <string>

#include "isa/instruction.h"
#include "isa/kernel.h"

namespace bow {

/** Render one instruction (no trailing semicolon, no label). */
std::string disassemble(const Instruction &inst);

/**
 * Render a whole kernel with synthesised labels (`L<idx>:`) at branch
 * targets; the output re-assembles to an equivalent kernel.
 */
std::string disassemble(const Kernel &kernel);

/** Render a register id ("$r5" or "$p1"). */
std::string regName(RegId reg);

} // namespace bow

#endif // BOWSIM_ISA_DISASSEMBLER_H
