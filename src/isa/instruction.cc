#include "isa/instruction.h"

#include <algorithm>

#include "common/log.h"
#include "isa/disassembler.h"

namespace bow {

void
Instruction::addSrc(const Operand &o)
{
    if (numSrcs >= srcs.size())
        panic(strf("Instruction::addSrc: too many sources for ",
                   opcodeName(op)));
    srcs[numSrcs++] = o;
}

Instruction::SrcRegList
Instruction::srcRegs() const
{
    SrcRegList regs;
    for (unsigned i = 0; i < numSrcs; ++i) {
        if (srcs[i].isReg())
            regs.push_back(srcs[i].reg);
    }
    if (pred != kNoReg)
        regs.push_back(pred);
    return regs;
}

Instruction::SrcRegList
Instruction::uniqueSrcRegs() const
{
    SrcRegList regs = srcRegs();
    std::sort(regs.begin(), regs.end());
    regs.truncate(static_cast<std::size_t>(
        std::unique(regs.begin(), regs.end()) - regs.begin()));
    return regs;
}

unsigned
Instruction::numRegSrcs() const
{
    unsigned n = 0;
    for (unsigned i = 0; i < numSrcs; ++i) {
        if (srcs[i].isReg())
            ++n;
    }
    return n;
}

std::string
Instruction::toString() const
{
    return disassemble(*this);
}

} // namespace bow
