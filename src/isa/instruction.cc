#include "isa/instruction.h"

#include <algorithm>

#include "common/log.h"
#include "isa/disassembler.h"

namespace bow {

void
Instruction::addSrc(const Operand &o)
{
    if (numSrcs >= srcs.size())
        panic(strf("Instruction::addSrc: too many sources for ",
                   opcodeName(op)));
    srcs[numSrcs++] = o;
}

std::vector<RegId>
Instruction::srcRegs() const
{
    std::vector<RegId> regs;
    for (unsigned i = 0; i < numSrcs; ++i) {
        if (srcs[i].isReg())
            regs.push_back(srcs[i].reg);
    }
    if (pred != kNoReg)
        regs.push_back(pred);
    return regs;
}

std::vector<RegId>
Instruction::uniqueSrcRegs() const
{
    std::vector<RegId> regs = srcRegs();
    std::sort(regs.begin(), regs.end());
    regs.erase(std::unique(regs.begin(), regs.end()), regs.end());
    return regs;
}

unsigned
Instruction::numRegSrcs() const
{
    unsigned n = 0;
    for (unsigned i = 0; i < numSrcs; ++i) {
        if (srcs[i].isReg())
            ++n;
    }
    return n;
}

std::string
Instruction::toString() const
{
    return disassemble(*this);
}

} // namespace bow
