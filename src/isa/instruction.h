/**
 * @file
 * Instruction and operand representation for the bowsim warp ISA.
 */

#ifndef BOWSIM_ISA_INSTRUCTION_H
#define BOWSIM_ISA_INSTRUCTION_H

#include <array>
#include <cstdint>
#include <string>

#include "common/small_vec.h"
#include "common/types.h"
#include "isa/opcode.h"

namespace bow {

/**
 * Predicate registers ($p0..$p15) share the architectural register
 * space with GPRs; they live in a reserved range starting here.
 */
inline constexpr RegId kPredRegBase = 224;

/** Map a predicate index to its architectural register id. */
inline RegId
predReg(unsigned idx)
{
    return static_cast<RegId>(kPredRegBase + idx);
}

/** Special (read-only, non-RF) value sources. */
enum class SpecialReg : std::uint8_t
{
    WARP_ID,    ///< hardware warp index within the launch
    WARP_COUNT  ///< total warps in the launch
};

/**
 * One source operand. Register operands generate register-file (or
 * bypass) traffic; immediates, specials and inline const-memory reads
 * (SASS `s[imm]` style) do not touch the RF.
 */
struct Operand
{
    enum class Kind : std::uint8_t
    {
        NONE,       ///< slot unused
        REG,        ///< architectural register
        IMM,        ///< inline immediate
        SPECIAL,    ///< special register (%warpid, ...)
        CONST_MEM   ///< inline constant-bank read s[imm]
    };

    Kind kind = Kind::NONE;
    RegId reg = kNoReg;         ///< valid when kind == REG
    std::uint32_t imm = 0;      ///< immediate value or const address
    SpecialReg special = SpecialReg::WARP_ID;

    static Operand
    makeReg(RegId r)
    {
        Operand o;
        o.kind = Kind::REG;
        o.reg = r;
        return o;
    }

    static Operand
    makeImm(std::uint32_t v)
    {
        Operand o;
        o.kind = Kind::IMM;
        o.imm = v;
        return o;
    }

    static Operand
    makeSpecial(SpecialReg s)
    {
        Operand o;
        o.kind = Kind::SPECIAL;
        o.special = s;
        return o;
    }

    static Operand
    makeConstMem(std::uint32_t addr)
    {
        Operand o;
        o.kind = Kind::CONST_MEM;
        o.imm = addr;
        return o;
    }

    bool isReg() const { return kind == Kind::REG; }
    bool isUsed() const { return kind != Kind::NONE; }
};

/**
 * The compiler-assigned write-back destination hint (the paper's two
 * extra instruction bits, Sec. IV-B). Ignored by the baseline and
 * plain BOW pipelines; consumed by BOW-WR with compiler optimisation.
 */
enum class WritebackHint : std::uint8_t
{
    BocAndRf,   ///< default: reused in window and live beyond it
    RfOnly,     ///< no reuse inside the window -> skip the BOC write
    BocOnly     ///< transient: dead once it leaves the window
};

/** A single static warp instruction. */
struct Instruction
{
    Opcode op = Opcode::NOP;
    CondCode cc = CondCode::NE;     ///< for SET/SETP

    RegId dst = kNoReg;             ///< destination register, if any
    std::array<Operand, 3> srcs;    ///< up to three source operands
    std::uint8_t numSrcs = 0;

    /** Optional guard predicate (@$p0 bra ...); kNoReg when absent. */
    RegId pred = kNoReg;
    bool predNegate = false;

    /** Address offset for memory operations ([$r8+0x10]). */
    std::int32_t memOffset = 0;

    /** Resolved branch target (instruction index); kNoInst otherwise. */
    InstIdx branchTarget = kNoInst;

    /** Compiler write-back destination hint (BOW-WR-opt only). */
    WritebackHint hint = WritebackHint::BocAndRf;

    /** Append a source operand; panics past three. */
    void addSrc(const Operand &o);

    /**
     * Register ids read by one instruction: at most three sources
     * plus the guard predicate, so the list always fits the inline
     * storage and issue-time queries never touch the heap.
     */
    using SrcRegList = SmallVec<RegId, 4>;

    /** Register ids read by this instruction (guard predicate
     *  included, duplicates preserved in operand order). */
    SrcRegList srcRegs() const;

    /** Distinct register ids read (duplicates removed). */
    SrcRegList uniqueSrcRegs() const;

    /** Number of *register* source operands (what occupies OCU
     *  entries; immediates and const reads do not). */
    unsigned numRegSrcs() const;

    bool hasDest() const { return dst != kNoReg; }
    bool isMemory() const { return isMemoryOp(op); }
    bool isBranch() const { return opcodeInfo(op).isBranch; }
    bool endsWarp() const { return opcodeInfo(op).endsWarp; }

    /** Render as assembly text (without trailing semicolon). */
    std::string toString() const;
};

} // namespace bow

#endif // BOWSIM_ISA_INSTRUCTION_H
