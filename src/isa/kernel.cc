#include "isa/kernel.h"

#include <algorithm>

#include "common/log.h"

namespace bow {

InstIdx
Kernel::add(Instruction inst)
{
    finalized_ = false;
    insts_.push_back(std::move(inst));
    return static_cast<InstIdx>(insts_.size() - 1);
}

const Instruction &
Kernel::inst(InstIdx i) const
{
    if (i >= insts_.size())
        panic(strf("Kernel::inst: index ", i, " out of range in '",
                   name_, "'"));
    return insts_[i];
}

Instruction &
Kernel::inst(InstIdx i)
{
    if (i >= insts_.size())
        panic(strf("Kernel::inst: index ", i, " out of range in '",
                   name_, "'"));
    return insts_[i];
}

void
Kernel::finalize()
{
    if (insts_.empty())
        fatal(strf("kernel '", name_, "' has no instructions"));

    bool hasEnd = false;
    numGprs_ = 0;
    for (InstIdx i = 0; i < insts_.size(); ++i) {
        const Instruction &in = insts_[i];
        const OpcodeInfo &info = opcodeInfo(in.op);

        if (in.isBranch()) {
            if (in.branchTarget == kNoInst ||
                in.branchTarget >= insts_.size()) {
                fatal(strf("kernel '", name_, "': instruction ", i,
                           " has unresolved or out-of-range branch "
                           "target"));
            }
        }
        if (info.hasDest && in.dst == kNoReg)
            fatal(strf("kernel '", name_, "': instruction ", i, " (",
                       opcodeName(in.op), ") needs a destination"));
        if (!info.hasDest && in.dst != kNoReg)
            fatal(strf("kernel '", name_, "': instruction ", i, " (",
                       opcodeName(in.op),
                       ") must not have a destination"));
        if (in.numSrcs != info.numSrcs)
            fatal(strf("kernel '", name_, "': instruction ", i, " (",
                       opcodeName(in.op), ") has ", in.numSrcs,
                       " sources, expects ",
                       static_cast<unsigned>(info.numSrcs)));
        if (in.endsWarp())
            hasEnd = true;

        auto note_reg = [&](RegId r) {
            if (r != kNoReg && r < kPredRegBase)
                numGprs_ = std::max(numGprs_, static_cast<unsigned>(r) + 1);
        };
        note_reg(in.dst);
        for (RegId r : in.srcRegs())
            note_reg(r);
    }
    if (!hasEnd)
        fatal(strf("kernel '", name_,
                   "' never terminates (no exit/ret)"));

    // Basic-block leaders: entry, every branch target, and every
    // instruction following a branch or warp-terminating instruction.
    leaderFlags_.assign(insts_.size(), false);
    leaderFlags_[0] = true;
    for (InstIdx i = 0; i < insts_.size(); ++i) {
        const Instruction &in = insts_[i];
        if (in.isBranch()) {
            leaderFlags_[in.branchTarget] = true;
            if (i + 1 < insts_.size())
                leaderFlags_[i + 1] = true;
        } else if (in.endsWarp() && i + 1 < insts_.size()) {
            leaderFlags_[i + 1] = true;
        }
    }
    leaders_.clear();
    for (InstIdx i = 0; i < insts_.size(); ++i) {
        if (leaderFlags_[i])
            leaders_.push_back(i);
    }
    finalized_ = true;
}

bool
Kernel::isLeader(InstIdx i) const
{
    if (!finalized_)
        panic("Kernel::isLeader before finalize()");
    if (i >= leaderFlags_.size())
        panic("Kernel::isLeader: out of range");
    return leaderFlags_[i];
}

} // namespace bow
