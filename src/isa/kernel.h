/**
 * @file
 * A Kernel is a flat list of instructions (the unit of work launched
 * onto the simulated SM) plus derived metadata: register usage and
 * basic-block leader information.
 */

#ifndef BOWSIM_ISA_KERNEL_H
#define BOWSIM_ISA_KERNEL_H

#include <string>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"

namespace bow {

/** A static kernel: the program every warp of a launch executes. */
class Kernel
{
  public:
    Kernel() = default;
    explicit Kernel(std::string name) : name_(std::move(name)) {}

    /** Append an instruction; returns its index. */
    InstIdx add(Instruction inst);

    /**
     * Validate structural invariants (branch targets in range, source
     * counts consistent with opcode traits, terminating instruction
     * reachable) and compute derived metadata. fatal()s on malformed
     * kernels. Must be called after construction and before use.
     */
    void finalize();

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    std::size_t size() const { return insts_.size(); }
    bool empty() const { return insts_.empty(); }

    const Instruction &inst(InstIdx i) const;
    Instruction &inst(InstIdx i);

    const std::vector<Instruction> &instructions() const { return insts_; }

    /** Highest GPR id referenced, plus one (excludes predicates). */
    unsigned numGprs() const { return numGprs_; }

    /** True when instruction @p i starts a basic block. */
    bool isLeader(InstIdx i) const;

    /** Indices of all basic-block leaders, ascending. */
    const std::vector<InstIdx> &leaders() const { return leaders_; }

    bool finalized() const { return finalized_; }

  private:
    std::string name_;
    std::vector<Instruction> insts_;
    std::vector<bool> leaderFlags_;
    std::vector<InstIdx> leaders_;
    unsigned numGprs_ = 0;
    bool finalized_ = false;
};

} // namespace bow

#endif // BOWSIM_ISA_KERNEL_H
