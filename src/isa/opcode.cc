#include "isa/opcode.h"

#include <array>

#include "common/log.h"

namespace bow {

namespace {

constexpr std::size_t kNumOps =
    static_cast<std::size_t>(Opcode::NUM_OPCODES);

// Keep the order in exact sync with the Opcode enum.
const std::array<OpcodeInfo, kNumOps> opcodeTable = {{
    // mnemonic    unit            srcs dest  load   store  branch end
    {"mov",        ExecUnit::ALU,  1,   true, false, false, false, false},
    {"add",        ExecUnit::ALU,  2,   true, false, false, false, false},
    {"sub",        ExecUnit::ALU,  2,   true, false, false, false, false},
    {"mul",        ExecUnit::ALU,  2,   true, false, false, false, false},
    {"mad",        ExecUnit::ALU,  3,   true, false, false, false, false},
    {"min",        ExecUnit::ALU,  2,   true, false, false, false, false},
    {"max",        ExecUnit::ALU,  2,   true, false, false, false, false},
    {"and",        ExecUnit::ALU,  2,   true, false, false, false, false},
    {"or",         ExecUnit::ALU,  2,   true, false, false, false, false},
    {"xor",        ExecUnit::ALU,  2,   true, false, false, false, false},
    {"shl",        ExecUnit::ALU,  2,   true, false, false, false, false},
    {"shr",        ExecUnit::ALU,  2,   true, false, false, false, false},
    {"abs",        ExecUnit::ALU,  1,   true, false, false, false, false},
    {"neg",        ExecUnit::ALU,  1,   true, false, false, false, false},
    {"cvt",        ExecUnit::ALU,  1,   true, false, false, false, false},
    {"set",        ExecUnit::ALU,  2,   true, false, false, false, false},
    {"setp",       ExecUnit::ALU,  2,   true, false, false, false, false},
    {"rcp",        ExecUnit::SFU,  1,   true, false, false, false, false},
    {"sqrt",       ExecUnit::SFU,  1,   true, false, false, false, false},
    {"sin",        ExecUnit::SFU,  1,   true, false, false, false, false},
    {"ex2",        ExecUnit::SFU,  1,   true, false, false, false, false},
    {"lg2",        ExecUnit::SFU,  1,   true, false, false, false, false},
    {"ld.global",  ExecUnit::LDST, 1,   true, true,  false, false, false},
    {"st.global",  ExecUnit::LDST, 2,   false, false, true, false, false},
    {"ld.shared",  ExecUnit::LDST, 1,   true, true,  false, false, false},
    {"st.shared",  ExecUnit::LDST, 2,   false, false, true, false, false},
    {"ld.const",   ExecUnit::LDST, 1,   true, true,  false, false, false},
    {"bra",        ExecUnit::CTRL, 0,   false, false, false, true, false},
    {"ssy",        ExecUnit::CTRL, 0,   false, false, false, false, false},
    {"bar",        ExecUnit::CTRL, 0,   false, false, false, false, false},
    {"nop",        ExecUnit::CTRL, 0,   false, false, false, false, false},
    {"ret",        ExecUnit::CTRL, 0,   false, false, false, false, true},
    {"exit",       ExecUnit::CTRL, 0,   false, false, false, false, true},
}};

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    if (idx >= kNumOps)
        panic(strf("opcodeInfo: bad opcode ", idx));
    return opcodeTable[idx];
}

std::string
opcodeName(Opcode op)
{
    return opcodeInfo(op).mnemonic;
}

bool
isMemoryOp(Opcode op)
{
    const auto &info = opcodeInfo(op);
    return info.isLoad || info.isStore;
}

std::string
condName(CondCode cc)
{
    switch (cc) {
      case CondCode::EQ: return "eq";
      case CondCode::NE: return "ne";
      case CondCode::LT: return "lt";
      case CondCode::LE: return "le";
      case CondCode::GT: return "gt";
      case CondCode::GE: return "ge";
    }
    panic("condName: bad condition code");
}

bool
evalCond(CondCode cc, std::uint32_t a, std::uint32_t b)
{
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    switch (cc) {
      case CondCode::EQ: return sa == sb;
      case CondCode::NE: return sa != sb;
      case CondCode::LT: return sa < sb;
      case CondCode::LE: return sa <= sb;
      case CondCode::GT: return sa > sb;
      case CondCode::GE: return sa >= sb;
    }
    panic("evalCond: bad condition code");
}

} // namespace bow
