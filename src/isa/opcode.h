/**
 * @file
 * The bowsim warp-level ISA opcode set and static opcode traits.
 *
 * The ISA is a compact SASS/PTX-flavoured instruction set: enough to
 * express the register dataflow patterns of the paper's benchmarks
 * (arithmetic chains, fused multiply-add, shifts/logic, comparisons
 * and predicated branches, global/shared/const memory accesses, and
 * transcendental SFU ops) while staying warp-uniform and fully
 * deterministic so the simulator can execute kernels functionally.
 */

#ifndef BOWSIM_ISA_OPCODE_H
#define BOWSIM_ISA_OPCODE_H

#include <cstdint>
#include <string>

namespace bow {

/** All warp-level opcodes understood by the simulator. */
enum class Opcode : std::uint8_t
{
    // Integer / generic ALU.
    MOV,    ///< dst = src0
    ADD,    ///< dst = src0 + src1
    SUB,    ///< dst = src0 - src1
    MUL,    ///< dst = src0 * src1 (low 32 bits)
    MAD,    ///< dst = src0 * src1 + src2
    MIN,    ///< dst = min(src0, src1)
    MAX,    ///< dst = max(src0, src1)
    AND,    ///< dst = src0 & src1
    OR,     ///< dst = src0 | src1
    XOR,    ///< dst = src0 ^ src1
    SHL,    ///< dst = src0 << (src1 & 31)
    SHR,    ///< dst = src0 >> (src1 & 31)
    ABS,    ///< dst = |src0| (two's complement)
    NEG,    ///< dst = -src0
    CVT,    ///< dst = src0 (type conversion; value-preserving here)
    SET,    ///< dst = cond(src0, src1) ? 1 : 0
    SETP,   ///< predicate dst = cond(src0, src1) ? 1 : 0

    // Special function unit (transcendental) ops.
    RCP,    ///< dst = pseudo-reciprocal(src0)
    SQRT,   ///< dst = integer sqrt(src0)
    SIN,    ///< dst = pseudo-sine(src0)
    EX2,    ///< dst = pseudo-exp2(src0)
    LG2,    ///< dst = floor(log2(src0))

    // Memory.
    LD_GLOBAL,  ///< dst = global[src0 + imm]
    ST_GLOBAL,  ///< global[src0 + imm] = src1
    LD_SHARED,  ///< dst = shared[src0 + imm]
    ST_SHARED,  ///< shared[src0 + imm] = src1
    LD_CONST,   ///< dst = const[src0 + imm] (src0 optional)

    // Control flow and misc.
    BRA,    ///< unconditional (or predicated) branch to target
    SSY,    ///< reconvergence push marker (no dataflow effect)
    BAR,    ///< barrier (modelled as a fixed-latency no-op per warp)
    NOP,    ///< no operation
    RET,    ///< return (treated like EXIT for a single-kernel warp)
    EXIT,   ///< terminate the warp

    NUM_OPCODES
};

/** Comparison condition used by SET/SETP. */
enum class CondCode : std::uint8_t
{
    EQ, NE, LT, LE, GT, GE
};

/** Which execution unit an opcode dispatches to. */
enum class ExecUnit : std::uint8_t
{
    ALU,    ///< integer/single-precision pipeline
    SFU,    ///< special function unit
    LDST,   ///< load/store unit
    CTRL    ///< branch/barrier handling (executes in the ALU slot)
};

/** Static, per-opcode properties. */
struct OpcodeInfo
{
    const char *mnemonic;   ///< canonical assembly mnemonic
    ExecUnit unit;          ///< execution unit class
    std::uint8_t numSrcs;   ///< architectural source-operand count
    bool hasDest;           ///< produces a destination register
    bool isLoad;            ///< reads memory
    bool isStore;           ///< writes memory
    bool isBranch;          ///< may redirect control flow
    bool endsWarp;          ///< EXIT/RET terminate the warp
};

/** Look up the static traits of @p op. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** Canonical mnemonic string for @p op. */
std::string opcodeName(Opcode op);

/** True when @p op is a memory (load or store) instruction. */
bool isMemoryOp(Opcode op);

/** Canonical name for a condition code ("ne", "lt", ...). */
std::string condName(CondCode cc);

/** Evaluate a condition code over two signed 32-bit values. */
bool evalCond(CondCode cc, std::uint32_t a, std::uint32_t b);

} // namespace bow

#endif // BOWSIM_ISA_OPCODE_H
