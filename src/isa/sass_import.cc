#include "isa/sass_import.h"

#include <cctype>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "common/log.h"
#include "workloads/builder.h"

namespace bow {

namespace {

/** Scratch GPR standing in for SASS's RZ/bit-bucket destinations. */
constexpr RegId kScratchReg = 223;

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok)
        out.push_back(tok);
    return out;
}

bool
isHexToken(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isxdigit(static_cast<unsigned char>(c)))
            return false;
    }
    return true;
}

std::optional<long long>
parseInt(const std::string &s)
{
    if (s.empty())
        return std::nullopt;
    char *end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 0);
    if (end != s.c_str() + s.size())
        return std::nullopt;
    return v;
}

/** Parse a SASS operand token into a bowsim operand. */
std::optional<Operand>
parseSassOperand(const std::string &tok)
{
    if (tok == "RZ" || tok == "R255" || tok == "PT")
        return Operand::makeImm(tok == "PT" ? 1 : 0);
    if (tok.size() >= 2 && tok[0] == 'R' &&
        std::isdigit(static_cast<unsigned char>(tok[1]))) {
        const auto n = parseInt(tok.substr(1));
        if (n && *n >= 0 && *n < kPredRegBase)
            return Operand::makeReg(static_cast<RegId>(*n));
        return Operand::makeReg(kScratchReg);
    }
    if (tok.size() >= 2 && tok[0] == 'P' &&
        std::isdigit(static_cast<unsigned char>(tok[1]))) {
        const auto n = parseInt(tok.substr(1));
        if (n && *n >= 0 && *n < 16)
            return Operand::makeReg(predReg(
                static_cast<unsigned>(*n)));
        return std::nullopt;
    }
    if (auto v = parseInt(tok))
        return Operand::makeImm(static_cast<std::uint32_t>(*v));
    // Float immediate: use its bit pattern (only dataflow matters).
    char *end = nullptr;
    const float f = std::strtof(tok.c_str(), &end);
    if (end == tok.c_str() + tok.size()) {
        std::uint32_t bits = 0;
        std::memcpy(&bits, &f, sizeof bits);
        return Operand::makeImm(bits);
    }
    return std::nullopt;
}

/** Base mnemonic up to the first '.', upper-cased as SASS emits it. */
std::string
baseMnemonic(const std::string &op)
{
    const std::size_t dot = op.find('.');
    return dot == std::string::npos ? op : op.substr(0, dot);
}

std::optional<CondCode>
sassCond(const std::string &op)
{
    for (const auto &[mod, cc] :
         {std::pair<const char *, CondCode>{".LT", CondCode::LT},
          {".LE", CondCode::LE},
          {".GT", CondCode::GT},
          {".GE", CondCode::GE},
          {".EQ", CondCode::EQ},
          {".NE", CondCode::NE},
          {".NEU", CondCode::NE},
          {".EQU", CondCode::EQ}}) {
        if (op.find(mod) != std::string::npos)
            return cc;
    }
    return std::nullopt;
}

/** How a SASS base mnemonic maps into the bowsim ISA. */
enum class SassClass
{
    ALU,        ///< arity-dependent ALU op
    SETP,       ///< predicate-setting comparison
    SFU,        ///< MUFU transcendental (modifier selects which)
    CVT,        ///< conversions
    S2R,        ///< special-register read
    LOAD_GLOBAL,
    LOAD_SHARED,
    LOAD_CONST,
    STORE_GLOBAL,
    STORE_SHARED,
    EXIT,
    BARRIER,
    NOP,
    CONTROL     ///< resolved control flow: dropped from the stream
};

const std::map<std::string, SassClass> &
sassMap()
{
    static const std::map<std::string, SassClass> m = {
        {"MOV", SassClass::ALU},     {"MOV32I", SassClass::ALU},
        {"IMAD", SassClass::ALU},    {"XMAD", SassClass::ALU},
        {"FFMA", SassClass::ALU},    {"DFMA", SassClass::ALU},
        {"IADD", SassClass::ALU},    {"IADD3", SassClass::ALU},
        {"FADD", SassClass::ALU},    {"DADD", SassClass::ALU},
        {"IMUL", SassClass::ALU},    {"FMUL", SassClass::ALU},
        {"DMUL", SassClass::ALU},    {"FMNMX", SassClass::ALU},
        {"IMNMX", SassClass::ALU},   {"SHL", SassClass::ALU},
        {"SHR", SassClass::ALU},     {"SHF", SassClass::ALU},
        {"LOP", SassClass::ALU},     {"LOP3", SassClass::ALU},
        {"LOP32I", SassClass::ALU},  {"AND", SassClass::ALU},
        {"OR", SassClass::ALU},      {"XOR", SassClass::ALU},
        {"SEL", SassClass::ALU},     {"FSEL", SassClass::ALU},
        {"ISCADD", SassClass::ALU},  {"LEA", SassClass::ALU},
        {"IABS", SassClass::ALU},    {"FABS", SassClass::ALU},
        {"INEG", SassClass::ALU},    {"POPC", SassClass::ALU},
        {"FLO", SassClass::ALU},     {"BFE", SassClass::ALU},
        {"BFI", SassClass::ALU},     {"PRMT", SassClass::ALU},
        {"VADD", SassClass::ALU},    {"VABSDIFF", SassClass::ALU},
        {"VABSDIFF4", SassClass::ALU},
        {"HADD2", SassClass::ALU},   {"HMUL2", SassClass::ALU},
        {"HFMA2", SassClass::ALU},
        {"ISETP", SassClass::SETP},  {"FSETP", SassClass::SETP},
        {"DSETP", SassClass::SETP},  {"CSETP", SassClass::SETP},
        {"ISET", SassClass::SETP},   {"FSET", SassClass::SETP},
        {"MUFU", SassClass::SFU},    {"RRO", SassClass::SFU},
        {"F2I", SassClass::CVT},     {"I2F", SassClass::CVT},
        {"F2F", SassClass::CVT},     {"I2I", SassClass::CVT},
        {"FRND", SassClass::CVT},
        {"S2R", SassClass::S2R},     {"CS2R", SassClass::S2R},
        {"LDG", SassClass::LOAD_GLOBAL},
        {"LD", SassClass::LOAD_GLOBAL},
        {"LDL", SassClass::LOAD_GLOBAL},
        {"LDS", SassClass::LOAD_SHARED},
        {"LDSM", SassClass::LOAD_SHARED},
        {"LDC", SassClass::LOAD_CONST},
        {"STG", SassClass::STORE_GLOBAL},
        {"ST", SassClass::STORE_GLOBAL},
        {"STL", SassClass::STORE_GLOBAL},
        {"STS", SassClass::STORE_SHARED},
        {"EXIT", SassClass::EXIT},   {"RET", SassClass::EXIT},
        {"BAR", SassClass::BARRIER}, {"MEMBAR", SassClass::BARRIER},
        {"DEPBAR", SassClass::BARRIER},
        {"NOP", SassClass::NOP},
        {"BRA", SassClass::CONTROL}, {"JMP", SassClass::CONTROL},
        {"JMX", SassClass::CONTROL}, {"BRX", SassClass::CONTROL},
        {"SSY", SassClass::CONTROL}, {"SYNC", SassClass::CONTROL},
        {"BSSY", SassClass::CONTROL},{"BSYNC", SassClass::CONTROL},
        {"BREAK", SassClass::CONTROL},
        {"PBK", SassClass::CONTROL}, {"CAL", SassClass::CONTROL},
        {"PRET", SassClass::CONTROL},
        {"BMOV", SassClass::CONTROL},
    };
    return m;
}

/** One parsed trace line. */
struct SassLine
{
    RegId dest = kNoReg;
    std::string opcode;
    std::vector<Operand> srcs;
    unsigned memWidth = 0;
    std::uint32_t address = 0;
    bool hasAddress = false;
};

/** Parse an instruction line; @p lineNo for diagnostics. */
SassLine
parseLine(const std::vector<std::string> &toks, unsigned lineNo)
{
    // <pc> <mask> <ndest> [Rd..] <OPCODE> <nsrc> [src..]
    //      [<mem-width> [<address>]]
    SassLine out;
    std::size_t i = 2;
    auto need = [&](const char *what) -> const std::string & {
        if (i >= toks.size())
            fatal(strf("sass: line ", lineNo, ": truncated (missing ",
                       what, ")"));
        return toks[i++];
    };

    const auto ndest = parseInt(need("dest count"));
    if (!ndest || *ndest < 0 || *ndest > 4)
        fatal(strf("sass: line ", lineNo, ": bad destination count"));
    for (long long d = 0; d < *ndest; ++d) {
        const auto op = parseSassOperand(need("dest register"));
        if (!op)
            fatal(strf("sass: line ", lineNo,
                       ": bad destination register"));
        // Only the first register destination is modelled (wide
        // results occupy register pairs; the second half adds no new
        // reuse information). RZ destinations hit the scratch reg.
        if (d == 0) {
            out.dest = op->isReg() ? op->reg : kScratchReg;
        }
    }

    out.opcode = need("opcode");
    const auto nsrc = parseInt(need("source count"));
    if (!nsrc || *nsrc < 0 || *nsrc > 8)
        fatal(strf("sass: line ", lineNo, ": bad source count"));
    for (long long s = 0; s < *nsrc; ++s) {
        const auto op = parseSassOperand(need("source operand"));
        if (!op)
            fatal(strf("sass: line ", lineNo, ": bad source operand '",
                       toks[i - 1], "'"));
        out.srcs.push_back(*op);
    }

    if (i < toks.size()) {
        const auto width = parseInt(toks[i]);
        if (width && *width >= 0) {
            ++i;
            out.memWidth = static_cast<unsigned>(*width);
            if (out.memWidth > 0 && i < toks.size()) {
                const auto addr = parseInt(toks[i]);
                if (addr) {
                    out.address = static_cast<std::uint32_t>(*addr);
                    out.hasAddress = true;
                    ++i;
                }
            }
        }
    }
    return out;
}

/** First register source, if any. */
std::optional<RegId>
firstReg(const std::vector<Operand> &srcs)
{
    for (const auto &s : srcs) {
        if (s.isReg())
            return s.reg;
    }
    return std::nullopt;
}

/** Emit the bowsim instruction(s) for one parsed line. */
void
emitLine(KernelBuilder &kb, const SassLine &line, unsigned lineNo,
         SassImportStats &stats)
{
    const std::string base = baseMnemonic(line.opcode);
    auto it = sassMap().find(base);
    SassClass cls;
    if (it == sassMap().end()) {
        ++stats.unknown;
        // Unknown opcodes keep their register dataflow: synthesize a
        // generic ALU op of matching arity.
        cls = line.dest != kNoReg ? SassClass::ALU : SassClass::NOP;
    } else {
        cls = it->second;
    }

    auto dest = [&] {
        return line.dest == kNoReg ? kScratchReg : line.dest;
    };
    auto padSrc = [&](std::size_t k) {
        return k < line.srcs.size() ? line.srcs[k]
                                    : Operand::makeImm(0);
    };

    switch (cls) {
      case SassClass::ALU: {
        Instruction inst;
        inst.dst = dest();
        std::size_t regSrcs = line.srcs.size();
        if (regSrcs >= 3) {
            inst.op = Opcode::MAD;
            inst.addSrc(padSrc(0));
            inst.addSrc(padSrc(1));
            inst.addSrc(padSrc(2));
        } else if (regSrcs == 2) {
            inst.op = Opcode::ADD;
            inst.addSrc(padSrc(0));
            inst.addSrc(padSrc(1));
        } else {
            inst.op = Opcode::MOV;
            inst.addSrc(padSrc(0));
        }
        kb.emit(inst);
        ++stats.instructions;
        break;
      }
      case SassClass::SETP: {
        Instruction inst;
        inst.op = Opcode::SETP;
        inst.cc = sassCond(line.opcode).value_or(CondCode::NE);
        inst.dst = line.dest != kNoReg ? line.dest : predReg(0);
        inst.addSrc(padSrc(0));
        inst.addSrc(padSrc(1));
        kb.emit(inst);
        ++stats.instructions;
        break;
      }
      case SassClass::SFU: {
        Opcode op = Opcode::RCP;
        if (line.opcode.find(".SIN") != std::string::npos ||
            line.opcode.find(".COS") != std::string::npos) {
            op = Opcode::SIN;
        } else if (line.opcode.find(".LG2") != std::string::npos) {
            op = Opcode::LG2;
        } else if (line.opcode.find(".EX2") != std::string::npos) {
            op = Opcode::EX2;
        } else if (line.opcode.find("SQ") != std::string::npos) {
            op = Opcode::SQRT;
        }
        Instruction inst;
        inst.op = op;
        inst.dst = dest();
        inst.addSrc(padSrc(0));
        kb.emit(inst);
        ++stats.instructions;
        break;
      }
      case SassClass::CVT: {
        Instruction inst;
        inst.op = Opcode::CVT;
        inst.dst = dest();
        inst.addSrc(padSrc(0));
        kb.emit(inst);
        ++stats.instructions;
        break;
      }
      case SassClass::S2R:
        kb.movSpecial(dest(), SpecialReg::WARP_ID);
        ++stats.instructions;
        break;
      case SassClass::LOAD_GLOBAL:
      case SassClass::LOAD_SHARED:
      case SassClass::LOAD_CONST: {
        const Opcode op = cls == SassClass::LOAD_GLOBAL
            ? Opcode::LD_GLOBAL
            : cls == SassClass::LOAD_SHARED ? Opcode::LD_SHARED
                                            : Opcode::LD_CONST;
        Instruction inst;
        inst.op = op;
        inst.dst = dest();
        // Prefer the address register for register-traffic fidelity;
        // an absolute traced address is used when no register source
        // is listed (see docs/ISA.md).
        if (auto reg = firstReg(line.srcs)) {
            inst.addSrc(Operand::makeReg(*reg));
        } else {
            inst.addSrc(Operand::makeImm(0));
            inst.memOffset = static_cast<std::int32_t>(line.address);
        }
        kb.emit(inst);
        ++stats.instructions;
        break;
      }
      case SassClass::STORE_GLOBAL:
      case SassClass::STORE_SHARED: {
        const Opcode op = cls == SassClass::STORE_GLOBAL
            ? Opcode::ST_GLOBAL
            : Opcode::ST_SHARED;
        Instruction inst;
        inst.op = op;
        if (auto reg = firstReg(line.srcs)) {
            inst.addSrc(Operand::makeReg(*reg));
        } else {
            inst.addSrc(Operand::makeImm(0));
            inst.memOffset = static_cast<std::int32_t>(line.address);
        }
        // Data operand: the last source that is not the address reg.
        Operand data = Operand::makeImm(0);
        for (auto rit = line.srcs.rbegin(); rit != line.srcs.rend();
             ++rit) {
            if (!(rit->isReg() && inst.srcs[0].isReg() &&
                  rit->reg == inst.srcs[0].reg)) {
                data = *rit;
                break;
            }
        }
        inst.addSrc(data);
        kb.emit(inst);
        ++stats.instructions;
        break;
      }
      case SassClass::EXIT:
        kb.exit();
        ++stats.instructions;
        break;
      case SassClass::BARRIER:
        kb.barSync();
        ++stats.instructions;
        break;
      case SassClass::NOP:
        kb.nop();
        ++stats.instructions;
        break;
      case SassClass::CONTROL:
        ++stats.dropped;
        break;
    }
    (void)lineNo;
}

} // namespace

Launch
importSassTrace(const std::string &text, const std::string &name,
                SassImportStats *statsOut)
{
    SassImportStats stats;

    // Per-warp builders, created on 'warp = N' headers.
    std::map<unsigned, KernelBuilder> builders;
    KernelBuilder *current = nullptr;
    std::map<unsigned, bool> sawExit;
    unsigned currentWarp = 0;

    std::istringstream is(text);
    std::string line;
    unsigned lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        const auto toks = tokenize(line);
        if (toks.empty() || toks[0][0] == '#' || toks[0][0] == '-')
            continue;

        // 'warp = N' headers open a section.
        if (toks[0] == "warp") {
            if (toks.size() != 3 || toks[1] != "=")
                fatal(strf("sass '", name, "': line ", lineNo,
                           ": malformed warp header"));
            const auto id = parseInt(toks[2]);
            if (!id || *id < 0 || *id > 0xFFFF)
                fatal(strf("sass '", name, "': line ", lineNo,
                           ": bad warp id"));
            currentWarp = static_cast<unsigned>(*id);
            auto [bit, inserted] = builders.try_emplace(
                currentWarp,
                strf(name, ".warp", currentWarp));
            if (!inserted)
                fatal(strf("sass '", name, "': duplicate warp ",
                           currentWarp));
            current = &bit->second;
            continue;
        }

        // Instruction lines start with a hex PC and a hex mask.
        if (toks.size() >= 4 && isHexToken(toks[0]) &&
            isHexToken(toks[1])) {
            if (!current)
                fatal(strf("sass '", name, "': line ", lineNo,
                           ": instruction before any warp header"));
            const SassLine parsed = parseLine(toks, lineNo);
            emitLine(*current, parsed, lineNo, stats);
            if (baseMnemonic(parsed.opcode) == "EXIT" ||
                baseMnemonic(parsed.opcode) == "RET") {
                sawExit[currentWarp] = true;
            }
            continue;
        }

        // Other metadata (kernel name, TB markers, insts = N, ...)
        // is skipped.
    }

    if (builders.empty())
        fatal(strf("sass '", name, "': no warp sections"));

    unsigned maxWarp = 0;
    for (const auto &kv : builders)
        maxWarp = std::max(maxWarp, kv.first);

    Launch launch;
    launch.numWarps = maxWarp + 1;
    launch.warpKernels.resize(launch.numWarps);
    for (auto &[id, kb] : builders) {
        if (!sawExit[id])
            kb.exit();
        launch.warpKernels[id] = kb.build();
    }
    for (unsigned w = 0; w < launch.numWarps; ++w) {
        if (!builders.count(w))
            fatal(strf("sass '", name, "': missing section for warp ",
                       w));
    }
    launch.kernel = launch.warpKernels[0];

    if (statsOut)
        *statsOut = stats;
    return launch;
}

Launch
importSassTraceFile(const std::string &path, SassImportStats *stats)
{
    std::ifstream in(path);
    if (!in)
        fatal(strf("sass: cannot open '", path, "'"));
    std::ostringstream text;
    text << in.rdbuf();
    return importSassTrace(text.str(), path, stats);
}

} // namespace bow
