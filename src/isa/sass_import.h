/**
 * @file
 * Importer for Accel-Sim-style SASS instruction traces.
 *
 * Accel-Sim's tracer emits one line per executed warp instruction:
 *
 *     <pc> <active-mask> <ndest> [Rd..] <OPCODE[.MOD..]> <nsrc>
 *          [operand..] <mem-width> [<address>]
 *
 * e.g.
 *
 *     0008 ffffffff 1 R4 IMAD.WIDE 2 R2 R3 0
 *     0010 ffffffff 1 R5 LDG.E.SYS 1 R4 4 0x7f0010
 *     0018 ffffffff 0 EXIT 0 0
 *
 * This importer consumes a documented subset of that format (see
 * docs/ISA.md, "SASS trace import"): the common integer/float ALU,
 * transcendental, memory and control opcodes, register operands
 * `RN`/`PN`, immediates, and per-access addresses. Warps are
 * introduced by `warp = N` headers (kernel/TB headers and `-` lines
 * are skipped). Each warp's stream becomes a straight-line bowsim
 * kernel:
 *
 *  - SASS mnemonics map onto bowsim opcodes (IMAD/FFMA -> mad,
 *    IADD3/FADD -> add, ISETP.CC -> setp, MUFU.RCP -> rcp, ...);
 *  - memory instructions take their *traced* address (absolute), so
 *    replay reproduces the recorded access stream and cache
 *    behaviour without needing the original values;
 *  - control-flow opcodes (BRA/JMP/BSSY/...) are dropped — the trace
 *    is already a resolved dynamic stream — while EXIT terminates
 *    the warp;
 *  - the active mask is parsed and ignored (bowsim models warps
 *    uniformly; the paper's mechanism depends on register ids and
 *    distances, not lane contents).
 *
 * The result is a per-warp-kernel Launch, directly runnable on every
 * architecture variant.
 */

#ifndef BOWSIM_ISA_SASS_IMPORT_H
#define BOWSIM_ISA_SASS_IMPORT_H

#include <string>

#include "sm/functional.h"

namespace bow {

/** Per-import diagnostics. */
struct SassImportStats
{
    std::uint64_t instructions = 0; ///< imported instructions
    std::uint64_t dropped = 0;      ///< control-flow lines dropped
    std::uint64_t unknown = 0;      ///< unknown opcodes (mapped to
                                    ///< ALU no-ops, counted here)
};

/**
 * Import SASS trace @p text.
 *
 * @param text  Trace text (see file comment for the grammar).
 * @param name  Diagnostic name.
 * @param stats Optional out-parameter for import diagnostics.
 * @throws FatalError on malformed lines or missing warp headers.
 */
Launch importSassTrace(const std::string &text,
                       const std::string &name = "sass",
                       SassImportStats *stats = nullptr);

/** Read @p path and importSassTrace() its contents. */
Launch importSassTraceFile(const std::string &path,
                           SassImportStats *stats = nullptr);

} // namespace bow

#endif // BOWSIM_ISA_SASS_IMPORT_H
