#include "service/daemon.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>

#include "common/log.h"
#include "core/parallel_runner.h"
#include "core/run_manifest.h"
#include "service/result_store.h"
#include "service/sim_codec.h"
#include "service/wire.h"
#include "workloads/registry.h"

namespace bow {

namespace {

/** The display fields a client needs to print a sweep row; the full
 *  result (registers, memory, metrics) stays daemon-side. */
JsonValue
summarize(const std::string &workload, const SimResult &r)
{
    JsonValue s = JsonValue::object();
    s.set("workload", workload);
    s.set("arch", r.arch);
    s.set("window_size", std::uint64_t{r.windowSize});
    s.set("cycles", std::uint64_t{r.stats.cycles});
    s.set("instructions", r.stats.instructions);
    s.set("rf_reads", r.stats.rfReads);
    s.set("rf_writes", r.stats.rfWrites);
    s.set("boc_forwards", r.stats.bocForwards);
    s.set("consolidated_writes", r.stats.consolidatedWrites);
    s.set("transient_drops", r.stats.transientDrops);
    s.set("energy_total_pj", r.energy.totalPj);
    return s;
}

JsonValue
errorMessage(const std::string &message)
{
    JsonValue e = JsonValue::object();
    e.set("type", "error");
    e.set("message", message);
    return e;
}

} // namespace

Daemon::Daemon(DaemonOptions options) : options_(std::move(options))
{}

Daemon::~Daemon()
{
    stop();
}

void
Daemon::start()
{
    if (options_.socketPath.empty())
        fatal("bowsimd: empty socket path");
    listenFd_ = listenUnix(options_.socketPath);
    acceptThread_ = std::thread(&Daemon::acceptLoop, this);
}

void
Daemon::acceptLoop()
{
    for (;;) {
        const int listenFd = listenFd_.load();
        if (listenFd < 0)
            return; // stop() already retired the socket
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            // stop() closed the listening socket (or it broke);
            // either way the daemon is done accepting.
            return;
        }
        if (stopping_.load()) {
            closeFd(fd);
            continue;
        }
        std::lock_guard<std::mutex> lock(connMutex_);
        activeFds_.push_back(fd);
        connThreads_.emplace_back(&Daemon::serveConnection, this, fd);
    }
}

JsonValue
Daemon::pongMessage() const
{
    JsonValue pong = JsonValue::object();
    pong.set("type", "pong");
    pong.set("version", RunManifest::buildVersion());
    pong.set("schema", simSchemaHash());
    const ResultStore *store = globalResultStore();
    pong.set("store_dir",
             store ? JsonValue(store->dir()) : JsonValue());
    pong.set("jobs", std::uint64_t{ParallelRunner(options_.jobs)
                                       .jobs()});
    return pong;
}

bool
Daemon::handleSweep(const JsonValue &request, int fd)
{
    const JsonValue *jobsJson = request.find("jobs");
    if (jobsJson == nullptr ||
        jobsJson->kind() != JsonValue::Kind::Array) {
        return writeFrame(fd, errorMessage(
            "sweep: missing 'jobs' array"));
    }

    // Materialize the workloads first (reserve: SimJob borrows
    // pointers into this vector, so it must never reallocate).
    std::vector<Workload> workloadPool;
    std::vector<SimJob> jobs;
    workloadPool.reserve(jobsJson->size());
    jobs.reserve(jobsJson->size());
    for (const JsonValue &spec : jobsJson->items()) {
        const JsonValue *name = spec.find("workload");
        const JsonValue *scale = spec.find("scale");
        const JsonValue *config = spec.find("config");
        if (name == nullptr ||
            name->kind() != JsonValue::Kind::String ||
            scale == nullptr || !scale->isNumber() ||
            config == nullptr) {
            return writeFrame(fd, errorMessage(
                "sweep: job wants workload, scale and config"));
        }
        workloadPool.push_back(
            workloads::make(name->asString(), scale->asDouble()));
        jobs.emplace_back(workloadPool.back(),
                          simConfigFromJson(*config));
    }

    // Counter snapshots bracket the batch so the done-trailer
    // reports this sweep's deltas (approximate under concurrent
    // clients, exact for a single client — which is what the CI
    // gates drive).
    ResultCache &cache = globalResultCache();
    ResultStore *store = globalResultStore();
    const std::uint64_t memHits0 = cache.hits();
    const std::uint64_t storeHits0 = cache.storeHits();
    const std::uint64_t sims0 = ParallelRunner::simulationsRun();
    const std::uint64_t invalidated0 =
        store ? store->invalidated() : 0;
    const std::uint64_t torn0 = store ? store->torn() : 0;

    const std::vector<SimOutcome> outcomes =
        ParallelRunner(options_.jobs).runAll(jobs);
    sweeps_.fetch_add(1, std::memory_order_relaxed);

    // Stream per-job frames in submission order — the client prints
    // as rows arrive and its output is deterministic at any daemon
    // job count, for the same reason bench tables are.
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        JsonValue frame = JsonValue::object();
        frame.set("type", "result");
        frame.set("index", std::uint64_t{i});
        if (outcomes[i].ok()) {
            frame.set("ok", true);
            frame.set("summary", summarize(workloadPool[i].name,
                                           outcomes[i].value()));
        } else {
            frame.set("ok", false);
            JsonValue err = JsonValue::object();
            err.set("kind",
                    simErrorKindName(outcomes[i].error().kind));
            err.set("message", outcomes[i].error().message);
            frame.set("error", std::move(err));
        }
        if (!writeFrame(fd, frame))
            return false;
    }

    JsonValue done = JsonValue::object();
    done.set("type", "done");
    done.set("results", std::uint64_t{outcomes.size()});
    done.set("memory_hits", cache.hits() - memHits0);
    done.set("store_hits", cache.storeHits() - storeHits0);
    done.set("simulated", ParallelRunner::simulationsRun() - sims0);
    done.set("invalidated",
             store ? store->invalidated() - invalidated0 : 0);
    done.set("torn", store ? store->torn() - torn0 : 0);
    return writeFrame(fd, done);
}

void
Daemon::serveConnection(int fd)
{
    try {
        for (;;) {
            std::optional<JsonValue> frame;
            try {
                frame = readFrame(fd);
            } catch (const FatalError &) {
                break;  // framing lost; drop the connection
            }
            if (!frame)
                break;  // clean EOF

            const JsonValue *type = frame->find("type");
            const std::string kind =
                (type && type->kind() == JsonValue::Kind::String)
                    ? type->asString()
                    : "";
            if (kind == "ping") {
                if (!writeFrame(fd, pongMessage()))
                    break;
            } else if (kind == "sweep") {
                bool alive = true;
                try {
                    alive = handleSweep(*frame, fd);
                } catch (const FatalError &e) {
                    // Bad request (unknown workload, malformed
                    // config): report and keep the connection.
                    alive = writeFrame(fd, errorMessage(e.what()));
                }
                if (!alive)
                    break;
            } else if (kind == "shutdown") {
                JsonValue bye = JsonValue::object();
                bye.set("type", "bye");
                writeFrame(fd, bye);
                {
                    std::lock_guard<std::mutex> lock(waitMutex_);
                    shutdownRequested_ = true;
                }
                waitCv_.notify_all();
                break;
            } else {
                if (!writeFrame(fd, errorMessage(
                        strf("unknown message type '", kind, "'"))))
                    break;
            }
        }
    } catch (const std::exception &e) {
        warn(strf("bowsimd: connection error: ", e.what()));
    }

    {
        std::lock_guard<std::mutex> lock(connMutex_);
        activeFds_.erase(std::remove(activeFds_.begin(),
                                     activeFds_.end(), fd),
                         activeFds_.end());
    }
    closeFd(fd);
}

void
Daemon::wait(const std::atomic<bool> *interrupted)
{
    std::unique_lock<std::mutex> lock(waitMutex_);
    // Timed waits so a signal-handler flag (which cannot touch the
    // condition variable) still gets noticed promptly.
    while (!shutdownRequested_) {
        if (interrupted != nullptr && interrupted->load())
            return;
        waitCv_.wait_for(lock, std::chrono::milliseconds(200));
    }
}

void
Daemon::stop()
{
    if (stopping_.exchange(true))
        return;

    // Break the accept loop, then every blocked connection read.
    const int listenFd = listenFd_.exchange(-1);
    if (listenFd >= 0) {
        ::shutdown(listenFd, SHUT_RDWR);
        closeFd(listenFd);
    }
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (const int fd : activeFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    if (acceptThread_.joinable())
        acceptThread_.join();

    // No lock while joining: the threads themselves take connMutex_
    // to deregister, and no new threads can appear (accept loop is
    // gone, stopping_ is set).
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        threads.swap(connThreads_);
    }
    for (std::thread &t : threads) {
        if (t.joinable())
            t.join();
    }
    if (!options_.socketPath.empty())
        ::unlink(options_.socketPath.c_str());

    {
        std::lock_guard<std::mutex> lock(waitMutex_);
        shutdownRequested_ = true;
    }
    waitCv_.notify_all();
}

} // namespace bow
