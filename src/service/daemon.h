/**
 * @file
 * bowsimd: the persistent simulation service. A Daemon listens on a
 * Unix-domain socket, accepts batched sweep requests (wire.h
 * framing, docs/SERVICE.md message catalogue), shards each batch
 * across a ParallelRunner, and streams per-job results back in
 * submission order. Every simulation funnels through the process's
 * ResultCache — and through the on-disk ResultStore when one is
 * attached — so a warm daemon answers repeat sweeps without
 * simulating anything, and any number of concurrent clients share
 * one ever-growing memo table.
 *
 * Messages (client -> daemon):
 *   {"type":"ping"}                    liveness + identity probe
 *   {"type":"sweep","jobs":[...]}      run a batch (see below)
 *   {"type":"shutdown"}                stop accepting, exit serve()
 *
 * One sweep job: {"workload":NAME,"scale":S,"config":{...}} with the
 * config in sim_codec.h form. Responses to one sweep: for each job,
 * in submission order, {"type":"result","index":i,"ok":...}, then a
 * {"type":"done"} trailer with cache/store counter deltas.
 */

#ifndef BOWSIM_SERVICE_DAEMON_H
#define BOWSIM_SERVICE_DAEMON_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"

namespace bow {

struct DaemonOptions
{
    /** Unix-domain socket path to listen on. */
    std::string socketPath;

    /** ParallelRunner worker count per sweep (0 = engine default). */
    unsigned jobs = 0;
};

/**
 * The service core, embeddable for tests: start() binds and serves
 * from a background thread, stop() tears everything down (including
 * connections blocked mid-read). The bowsimd binary is a thin main
 * around this class.
 */
class Daemon
{
  public:
    explicit Daemon(DaemonOptions options);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /** Bind the socket and start the accept loop.
     *  @throws FatalError when the socket cannot be bound. */
    void start();

    /**
     * Block until a client's shutdown request (or stop() from
     * another thread, or @p interrupted returns true; polled a few
     * times a second so a signal flag works).
     */
    void wait(const std::atomic<bool> *interrupted = nullptr);

    /** Stop accepting, unblock every connection, join all threads
     *  and remove the socket file. Idempotent. */
    void stop();

    const std::string &socketPath() const
    {
        return options_.socketPath;
    }

    /** Sweeps served since start() (all connections). */
    std::uint64_t sweepsServed() const { return sweeps_.load(); }

  private:
    void acceptLoop();
    void serveConnection(int fd);

    /** Handle one sweep request, streaming result frames to @p fd.
     *  @return false when the client hung up mid-stream. */
    bool handleSweep(const JsonValue &request, int fd);

    JsonValue pongMessage() const;

    DaemonOptions options_;
    /** Atomic: stop() retires the fd while acceptLoop blocks on it. */
    std::atomic<int> listenFd_{-1};
    std::thread acceptThread_;

    std::mutex connMutex_;
    std::vector<int> activeFds_;
    std::vector<std::thread> connThreads_;

    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> sweeps_{0};

    std::mutex waitMutex_;
    std::condition_variable waitCv_;
    bool shutdownRequested_ = false;
};

} // namespace bow

#endif // BOWSIM_SERVICE_DAEMON_H
