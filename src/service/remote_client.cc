#include "service/remote_client.h"

#include "common/log.h"
#include "service/sim_codec.h"
#include "service/wire.h"

namespace bow {

namespace {

/** RAII socket so protocol errors cannot leak the fd. */
class ClientSocket
{
  public:
    explicit ClientSocket(const std::string &path)
        : fd_(connectUnix(path))
    {}
    ~ClientSocket() { closeFd(fd_); }
    ClientSocket(const ClientSocket &) = delete;
    ClientSocket &operator=(const ClientSocket &) = delete;
    int fd() const { return fd_; }

  private:
    int fd_;
};

/** Next frame, or a fatal on EOF (the caller expected an answer). */
JsonValue
expectFrame(int fd)
{
    std::optional<JsonValue> frame = readFrame(fd);
    if (!frame)
        fatal("remote: daemon closed the connection mid-reply");
    return std::move(*frame);
}

std::string
frameType(const JsonValue &frame)
{
    const JsonValue *type = frame.find("type");
    return (type && type->kind() == JsonValue::Kind::String)
        ? type->asString()
        : "";
}

/** Surface a daemon-side {"type":"error"} frame as a FatalError. */
[[noreturn]] void
raiseRemoteError(const JsonValue &frame)
{
    const JsonValue *msg = frame.find("message");
    fatal(strf("remote: daemon error: ",
               (msg && msg->kind() == JsonValue::Kind::String)
                   ? msg->asString()
                   : std::string("(no message)")));
}

std::uint64_t
getUint(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr || v->kind() != JsonValue::Kind::Uint)
        fatal(strf("remote: reply missing integer '", key, "'"));
    return v->asUint();
}

std::string
getString(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr || v->kind() != JsonValue::Kind::String)
        fatal(strf("remote: reply missing string '", key, "'"));
    return v->asString();
}

RemoteSummary
summaryFromJson(const JsonValue &s)
{
    RemoteSummary out;
    out.workload = getString(s, "workload");
    out.arch = getString(s, "arch");
    out.windowSize = static_cast<unsigned>(getUint(s, "window_size"));
    out.cycles = getUint(s, "cycles");
    out.instructions = getUint(s, "instructions");
    out.rfReads = getUint(s, "rf_reads");
    out.rfWrites = getUint(s, "rf_writes");
    out.bocForwards = getUint(s, "boc_forwards");
    out.consolidatedWrites = getUint(s, "consolidated_writes");
    out.transientDrops = getUint(s, "transient_drops");
    const JsonValue *energy = s.find("energy_total_pj");
    if (energy == nullptr || !energy->isNumber())
        fatal("remote: reply missing 'energy_total_pj'");
    out.energyTotalPj = energy->asDouble();
    return out;
}

} // namespace

RemoteSweepStats
runRemoteSweep(const std::string &socketPath,
               const std::vector<RemoteJobSpec> &jobs,
               std::vector<RemoteSummary> &summaries)
{
    ClientSocket sock(socketPath);

    JsonValue request = JsonValue::object();
    request.set("type", "sweep");
    JsonValue jobsJson = JsonValue::array();
    for (const RemoteJobSpec &job : jobs) {
        JsonValue spec = JsonValue::object();
        spec.set("workload", job.workload);
        spec.set("scale", job.scale);
        spec.set("config", simConfigToJson(job.config));
        jobsJson.push(std::move(spec));
    }
    request.set("jobs", std::move(jobsJson));
    if (!writeFrame(sock.fd(), request))
        fatal("remote: daemon hung up before the request was sent");

    summaries.assign(jobs.size(), RemoteSummary{});
    std::vector<bool> seen(jobs.size(), false);
    std::string firstError;

    RemoteSweepStats stats;
    for (;;) {
        JsonValue frame = expectFrame(sock.fd());
        const std::string type = frameType(frame);
        if (type == "error")
            raiseRemoteError(frame);
        if (type == "result") {
            const std::uint64_t index = getUint(frame, "index");
            if (index >= jobs.size())
                fatal("remote: result index out of range");
            const JsonValue *ok = frame.find("ok");
            if (ok == nullptr ||
                ok->kind() != JsonValue::Kind::Bool) {
                fatal("remote: result frame missing 'ok'");
            }
            if (ok->asBool()) {
                const JsonValue *summary = frame.find("summary");
                if (summary == nullptr)
                    fatal("remote: result frame missing 'summary'");
                summaries[index] = summaryFromJson(*summary);
            } else if (firstError.empty()) {
                // Frames arrive in submission order, so the first
                // failure seen is the lowest-indexed one — the same
                // failure a local strict run() would surface.
                const JsonValue *err = frame.find("error");
                const JsonValue *msg =
                    err ? err->find("message") : nullptr;
                firstError =
                    (msg && msg->kind() == JsonValue::Kind::String)
                        ? msg->asString()
                        : "remote job failed";
            }
            seen[index] = true;
            continue;
        }
        if (type == "done") {
            stats.results = getUint(frame, "results");
            stats.memoryHits = getUint(frame, "memory_hits");
            stats.storeHits = getUint(frame, "store_hits");
            stats.simulated = getUint(frame, "simulated");
            stats.invalidated = getUint(frame, "invalidated");
            stats.torn = getUint(frame, "torn");
            break;
        }
        fatal(strf("remote: unexpected frame type '", type, "'"));
    }

    if (!firstError.empty())
        fatal(firstError);
    for (std::size_t i = 0; i < seen.size(); ++i) {
        if (!seen[i])
            fatal(strf("remote: no result for job ", i));
    }
    return stats;
}

RemotePong
remotePing(const std::string &socketPath)
{
    ClientSocket sock(socketPath);
    JsonValue ping = JsonValue::object();
    ping.set("type", "ping");
    if (!writeFrame(sock.fd(), ping))
        fatal("remote: daemon hung up during ping");
    const JsonValue frame = expectFrame(sock.fd());
    if (frameType(frame) != "pong")
        fatal("remote: expected pong");
    RemotePong pong;
    pong.version = getString(frame, "version");
    pong.schema = getUint(frame, "schema");
    const JsonValue *dir = frame.find("store_dir");
    if (dir != nullptr && dir->kind() == JsonValue::Kind::String) {
        pong.hasStore = true;
        pong.storeDir = dir->asString();
    }
    pong.jobs = static_cast<unsigned>(getUint(frame, "jobs"));
    return pong;
}

bool
remoteShutdown(const std::string &socketPath)
{
    ClientSocket sock(socketPath);
    JsonValue msg = JsonValue::object();
    msg.set("type", "shutdown");
    if (!writeFrame(sock.fd(), msg))
        return false;
    const std::optional<JsonValue> frame = readFrame(sock.fd());
    return frame && frameType(*frame) == "bye";
}

} // namespace bow
