/**
 * @file
 * Client side of the bowsimd protocol: submit a batched sweep over
 * the daemon's Unix-domain socket and collect the per-job summaries
 * in submission order. This is the engine behind `bowsim_cli
 * --remote` and is exercised directly by the RemoteCli test suite,
 * so the binary's remote path and the tested path are one code
 * path (docs/SERVICE.md).
 */

#ifndef BOWSIM_SERVICE_REMOTE_CLIENT_H
#define BOWSIM_SERVICE_REMOTE_CLIENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "sm/sim_config.h"

namespace bow {

/** One job of a remote sweep: a registry workload + a machine. */
struct RemoteJobSpec
{
    std::string workload;
    double scale = 1.0;
    SimConfig config;
};

/** The display summary the daemon returns for one finished job. */
struct RemoteSummary
{
    std::string workload;
    std::string arch;
    unsigned windowSize = 0;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t rfReads = 0;
    std::uint64_t rfWrites = 0;
    std::uint64_t bocForwards = 0;
    std::uint64_t consolidatedWrites = 0;
    std::uint64_t transientDrops = 0;
    double energyTotalPj = 0.0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                static_cast<double>(cycles)
                      : 0.0;
    }
};

/** The done-trailer of one sweep: where the results came from. */
struct RemoteSweepStats
{
    std::uint64_t results = 0;
    std::uint64_t memoryHits = 0;
    std::uint64_t storeHits = 0;
    std::uint64_t simulated = 0;
    std::uint64_t invalidated = 0;
    std::uint64_t torn = 0;
};

/** The daemon's pong identity frame. */
struct RemotePong
{
    std::string version;
    std::uint64_t schema = 0;
    bool hasStore = false;
    std::string storeDir;
    unsigned jobs = 0;
};

/**
 * Run @p jobs on the daemon at @p socketPath. @p summaries comes
 * back indexed exactly like @p jobs.
 * @throws FatalError on connection/protocol errors or when any job
 * fails remotely (lowest-indexed failure first, mirroring
 * ParallelRunner::run's strict contract).
 */
RemoteSweepStats runRemoteSweep(const std::string &socketPath,
                                const std::vector<RemoteJobSpec> &jobs,
                                std::vector<RemoteSummary> &summaries);

/** Liveness/identity probe. @throws FatalError when unreachable. */
RemotePong remotePing(const std::string &socketPath);

/** Ask the daemon to shut down. @return true on an acknowledged
 *  ("bye") shutdown. */
bool remoteShutdown(const std::string &socketPath);

} // namespace bow

#endif // BOWSIM_SERVICE_REMOTE_CLIENT_H
