#include "service/result_store.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/log.h"
#include "core/run_manifest.h"
#include "service/sim_codec.h"

namespace bow {

namespace {

/** On-disk entry format; bumped only for layout changes that the
 *  schema hash cannot see (it covers the payload codec). */
constexpr const char *kStoreFormat = "bowsim-result-store-v1";

std::string
keyHex(std::uint64_t key)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

} // namespace

StoreVersion
StoreVersion::current()
{
    StoreVersion v;
    v.schemaHash = simSchemaHash();
    v.binaryVersion = RunManifest::buildVersion();
    if (const char *salt = std::getenv("BOWSIM_STORE_VERSION_SALT")) {
        v.binaryVersion += '+';
        v.binaryVersion += salt;
    }
    return v;
}

ResultStore::ResultStore(std::string dir, StoreVersion version)
    : dir_(std::move(dir)), version_(std::move(version))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        fatal(strf("result store: cannot create directory '", dir_,
                   "': ", ec.message()));
    }
}

std::string
ResultStore::entryPath(std::uint64_t key) const
{
    return dir_ + "/" + keyHex(key) + ".json";
}

std::shared_ptr<const SimResult>
ResultStore::load(std::uint64_t key)
{
    const std::string path = entryPath(key);
    std::string text;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
    }

    // Anything that fails from here on is an entry we must not
    // serve; delete it so the recompute happens exactly once and
    // the rewritten entry is clean again.
    const auto drop = [&](std::atomic<std::uint64_t> &counter) {
        counter.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        std::remove(path.c_str());
        return nullptr;
    };

    JsonValue entry;
    try {
        entry = parseJson(text);
    } catch (const FatalError &) {
        // Torn or truncated write (the same taxonomy as the
        // campaign checkpoints' trailing-line tolerance).
        return drop(torn_);
    }

    try {
        const JsonValue *format = entry.find("store");
        if (format == nullptr ||
            format->kind() != JsonValue::Kind::String) {
            return drop(torn_);
        }
        if (format->asString() != kStoreFormat)
            return drop(invalidated_);

        const JsonValue *schema = entry.find("schema");
        const JsonValue *binary = entry.find("binary");
        if (schema == nullptr ||
            schema->kind() != JsonValue::Kind::Uint ||
            binary == nullptr ||
            binary->kind() != JsonValue::Kind::String) {
            return drop(torn_);
        }
        if (schema->asUint() != version_.schemaHash ||
            binary->asString() != version_.binaryVersion) {
            return drop(invalidated_);
        }

        const JsonValue *storedKey = entry.find("key");
        if (storedKey == nullptr ||
            storedKey->kind() != JsonValue::Kind::Uint ||
            storedKey->asUint() != key) {
            return drop(torn_);
        }

        const JsonValue *payload = entry.find("result");
        if (payload == nullptr)
            return drop(torn_);
        auto result = std::make_shared<SimResult>(
            simResultFromJson(*payload));
        hits_.fetch_add(1, std::memory_order_relaxed);
        return result;
    } catch (const FatalError &) {
        // Structurally valid JSON whose payload does not decode:
        // same treatment as a torn entry.
        return drop(torn_);
    }
}

void
ResultStore::publish(std::uint64_t key, const SimResult &result)
{
    // Sampled (estimated) results never enter the store: a later
    // exact run with the same key must not be served an
    // approximation (core/sampled.h).
    if (result.estimate)
        return;

    JsonValue entry = JsonValue::object();
    entry.set("store", kStoreFormat);
    entry.set("schema", version_.schemaHash);
    entry.set("binary", version_.binaryVersion);
    entry.set("key", key);
    entry.set("result", simResultToJson(result));
    const std::string text = entry.dump();

    // Private tmp name per (process, publish): two concurrent
    // writers of the same key never share a tmp file, and each
    // rename atomically replaces the target with a complete entry.
    const std::string path = entryPath(key);
    const std::string tmp = strf(
        path, ".tmp.", ::getpid(), ".",
        tmpSeq_.fetch_add(1, std::memory_order_relaxed));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out << text << '\n';
        out.flush();
        if (!out) {
            // A full or broken disk must not fail the simulation
            // that produced the result; the store just stays cold.
            warn(strf("result store: cannot write '", tmp, "'"));
            std::remove(tmp.c_str());
            return;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn(strf("result store: cannot rename '", tmp, "' over '",
                  path, "'"));
        std::remove(tmp.c_str());
        return;
    }
    stores_.fetch_add(1, std::memory_order_relaxed);
}

namespace {

std::mutex gStoreMutex;
// keepalive for the attached store and any detached predecessors
// (outstanding readers may still hold raw pointers).
std::vector<std::shared_ptr<ResultStore>> gStores;
ResultStore *gAttached = nullptr;
bool gEnvChecked = false;

void
printStoreSummary()
{
    std::lock_guard<std::mutex> lock(gStoreMutex);
    if (gAttached == nullptr)
        return;
    std::cerr << "# result-store: dir=" << gAttached->dir()
              << " hits=" << gAttached->hits()
              << " stores=" << gAttached->stores()
              << " invalidated=" << gAttached->invalidated()
              << " torn=" << gAttached->torn() << "\n";
}

} // namespace

ResultStore *
attachGlobalResultStore(const std::string &dir, StoreVersion version)
{
    std::lock_guard<std::mutex> lock(gStoreMutex);
    if (gAttached != nullptr) {
        if (gAttached->dir() != dir) {
            fatal(strf("result store: already attached at '",
                       gAttached->dir(), "', refusing to switch to '",
                       dir, "'"));
        }
        return gAttached;
    }
    gStores.push_back(
        std::make_shared<ResultStore>(dir, std::move(version)));
    gAttached = gStores.back().get();
    globalResultCache().attachTier(gAttached);
    return gAttached;
}

ResultStore *
attachGlobalResultStoreFromEnv()
{
    {
        std::lock_guard<std::mutex> lock(gStoreMutex);
        if (gEnvChecked)
            return gAttached;
        gEnvChecked = true;
    }
    const char *dir = std::getenv("BOWSIM_STORE_DIR");
    if (dir == nullptr || *dir == '\0')
        return nullptr;
    ResultStore *store = attachGlobalResultStore(dir);
    // Visible proof of reuse for the warm-sweep recipes: one stderr
    // line at exit, never on stdout (bench stdout is diffed
    // byte-for-byte in CI).
    std::atexit(printStoreSummary);
    return store;
}

ResultStore *
globalResultStore()
{
    std::lock_guard<std::mutex> lock(gStoreMutex);
    return gAttached;
}

void
detachGlobalResultStore()
{
    std::lock_guard<std::mutex> lock(gStoreMutex);
    if (gAttached == nullptr)
        return;
    globalResultCache().attachTier(nullptr);
    gAttached = nullptr;
    gEnvChecked = false;
}

} // namespace bow
