/**
 * @file
 * Content-addressed on-disk result store: a persistent map from
 * simCacheKey() to a serialized SimResult that survives the process.
 * This is the substrate that turns repeated sweeps into memo-table
 * queries — the second tier behind the in-memory ResultCache, shared
 * by the benches (BOWSIM_STORE_DIR), the CLI and the bowsimd daemon
 * (docs/SERVICE.md).
 *
 * Layout: one file per entry, `<dir>/<key as %016x>.json`, holding a
 * header (store format, schema hash, binary version) plus the
 * sim_codec payload. Writes go through the tmp+rename atomicity
 * discipline the fault-campaign checkpoints established: concurrent
 * writers of the same key each rename a private tmp file over the
 * target, and since equal keys hold bit-identical results, whichever
 * rename lands last is indistinguishable from the first.
 *
 * Versioning/eviction: an entry is served only when its store
 * format, schema hash (sim_codec.h, auto-derived from the codec's
 * key paths) and binary version (git describe +
 * BOWSIM_STORE_VERSION_SALT) all match the reader. Anything else —
 * torn or truncated JSON, a key mismatch, a stale version — is
 * deleted and reported as a miss, so a crash mid-write or a schema
 * change costs a recompute, never a wrong result.
 */

#ifndef BOWSIM_SERVICE_RESULT_STORE_H
#define BOWSIM_SERVICE_RESULT_STORE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/result_cache.h"

namespace bow {

/** What must match for a stored entry to be served. */
struct StoreVersion
{
    /** Codec shape (sim_codec's simSchemaHash() by default). */
    std::uint64_t schemaHash = 0;

    /**
     * Identity of the producing binary: RunManifest::buildVersion()
     * with BOWSIM_STORE_VERSION_SALT appended when set (the salt is
     * the CI/test hook for forcing invalidation without rebuilding).
     */
    std::string binaryVersion;

    /** The version of the running process. */
    static StoreVersion current();
};

class ResultStore : public ResultTier
{
  public:
    /**
     * Open (creating the directory if needed) the store at @p dir.
     * @throws FatalError when the directory cannot be created.
     */
    explicit ResultStore(std::string dir,
                         StoreVersion version = StoreVersion::current());

    /** Serve @p key, or nullptr on miss/torn/stale (stale and torn
     *  entries are deleted so they are recomputed exactly once). */
    std::shared_ptr<const SimResult> load(std::uint64_t key) override;

    /** Atomically write @p result under @p key (tmp+rename). */
    void publish(std::uint64_t key, const SimResult &result) override;

    const std::string &dir() const { return dir_; }
    const StoreVersion &version() const { return version_; }

    /** Entry file path for @p key (tests and tooling). */
    std::string entryPath(std::uint64_t key) const;

    // Counters (monotonic, thread-safe).
    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::uint64_t stores() const { return stores_.load(); }
    /** Entries dropped for a store/schema/binary version mismatch. */
    std::uint64_t invalidated() const { return invalidated_.load(); }
    /** Entries dropped as torn/truncated/corrupt. */
    std::uint64_t torn() const { return torn_.load(); }

  private:
    std::string dir_;
    StoreVersion version_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> stores_{0};
    std::atomic<std::uint64_t> invalidated_{0};
    std::atomic<std::uint64_t> torn_{0};
    std::atomic<std::uint64_t> tmpSeq_{0};
};

/**
 * Attach a process-wide ResultStore at @p dir behind
 * globalResultCache(). Idempotent for the same directory; fatal()s
 * on an attempt to attach a second, different directory.
 * @return the (static-lifetime) store.
 */
ResultStore *attachGlobalResultStore(
    const std::string &dir,
    StoreVersion version = StoreVersion::current());

/**
 * BOWSIM_STORE_DIR wiring: when the variable is set and no store is
 * attached yet, attach one there and register an atexit stderr
 * summary line ("# result-store: ..."). Called lazily from
 * ParallelRunner's simulation path, so every bench and the CLI
 * become store-backed without code changes. @return the store, or
 * nullptr when the variable is unset.
 */
ResultStore *attachGlobalResultStoreFromEnv();

/** The store attached by the helpers above, or nullptr. */
ResultStore *globalResultStore();

/** Detach the global store (tests only; the store object itself is
 *  kept alive so outstanding readers stay valid). */
void detachGlobalResultStore();

} // namespace bow

#endif // BOWSIM_SERVICE_RESULT_STORE_H
