#include "service/sim_codec.h"

#include <cmath>

#include "common/log.h"

namespace bow {

namespace {

/** Codec generation, folded into simSchemaHash() so a representation
 *  change that keeps every key name still invalidates the store. */
constexpr const char *kCodecVersion = "bowsim-sim-codec-v1";

const JsonValue &
member(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        fatal(strf("sim codec: missing member '", key, "'"));
    return *v;
}

std::uint64_t
getUint(const JsonValue &obj, const char *key)
{
    const JsonValue &v = member(obj, key);
    if (v.kind() != JsonValue::Kind::Uint)
        fatal(strf("sim codec: member '", key, "' is not an integer"));
    return v.asUint();
}

unsigned
getUnsigned(const JsonValue &obj, const char *key)
{
    return static_cast<unsigned>(getUint(obj, key));
}

/** Numbers decode exactly (shortest-round-trip render); null is the
 *  JSON spelling of NaN (common/json.h). */
double
getDouble(const JsonValue &obj, const char *key)
{
    const JsonValue &v = member(obj, key);
    if (v.isNull())
        return std::nan("");
    if (!v.isNumber())
        fatal(strf("sim codec: member '", key, "' is not a number"));
    return v.asDouble();
}

bool
getBool(const JsonValue &obj, const char *key)
{
    const JsonValue &v = member(obj, key);
    if (v.kind() != JsonValue::Kind::Bool)
        fatal(strf("sim codec: member '", key, "' is not a bool"));
    return v.asBool();
}

const JsonValue &
getArray(const JsonValue &obj, const char *key)
{
    const JsonValue &v = member(obj, key);
    if (v.kind() != JsonValue::Kind::Array)
        fatal(strf("sim codec: member '", key, "' is not an array"));
    return v;
}

JsonValue
histToJson(const std::vector<std::uint64_t> &buckets)
{
    JsonValue arr = JsonValue::array();
    for (std::uint64_t b : buckets)
        arr.push(b);
    return arr;
}

std::vector<std::uint64_t>
histFromJson(const JsonValue &obj, const char *key)
{
    const JsonValue &arr = getArray(obj, key);
    std::vector<std::uint64_t> buckets;
    buckets.reserve(arr.size());
    for (const JsonValue &v : arr.items()) {
        if (v.kind() != JsonValue::Kind::Uint)
            fatal(strf("sim codec: '", key,
                       "' bucket is not an integer"));
        buckets.push_back(v.asUint());
    }
    return buckets;
}

JsonValue
statsToJson(const RunStats &s)
{
    JsonValue o = JsonValue::object();
    o.set("cycles", std::uint64_t{s.cycles});
    o.set("instructions", s.instructions);
    o.set("oc_cycles_mem", s.ocCyclesMem);
    o.set("oc_cycles_nonmem", s.ocCyclesNonMem);
    o.set("total_cycles_mem", s.totalCyclesMem);
    o.set("total_cycles_nonmem", s.totalCyclesNonMem);
    o.set("insts_mem", s.instsMem);
    o.set("insts_nonmem", s.instsNonMem);
    o.set("rf_reads", s.rfReads);
    o.set("rf_writes", s.rfWrites);
    o.set("boc_forwards", s.bocForwards);
    o.set("boc_deposits", s.bocDeposits);
    o.set("boc_result_writes", s.bocResultWrites);
    o.set("rfc_reads", s.rfcReads);
    o.set("rfc_writes", s.rfcWrites);
    o.set("consolidated_writes", s.consolidatedWrites);
    o.set("transient_drops", s.transientDrops);
    o.set("safety_writes", s.safetyWrites);
    o.set("dest_rf_only", s.destRfOnly);
    o.set("dest_boc_only", s.destBocOnly);
    o.set("dest_boc_and_rf", s.destBocAndRf);
    o.set("src_operand_hist", histToJson(s.srcOperandHist));
    o.set("boc_occupancy_hist", histToJson(s.bocOccupancyHist));
    o.set("bank_read_conflicts", s.bankReadConflicts);
    o.set("bank_write_conflicts", s.bankWriteConflicts);
    o.set("l1_hits", s.l1Hits);
    o.set("l1_misses", s.l1Misses);
    o.set("peak_resident", s.peakResident);
    o.set("fastforward_cycles", s.fastforwardCycles);
    return o;
}

RunStats
statsFromJson(const JsonValue &o)
{
    RunStats s;
    s.cycles = getUint(o, "cycles");
    s.instructions = getUint(o, "instructions");
    s.ocCyclesMem = getUint(o, "oc_cycles_mem");
    s.ocCyclesNonMem = getUint(o, "oc_cycles_nonmem");
    s.totalCyclesMem = getUint(o, "total_cycles_mem");
    s.totalCyclesNonMem = getUint(o, "total_cycles_nonmem");
    s.instsMem = getUint(o, "insts_mem");
    s.instsNonMem = getUint(o, "insts_nonmem");
    s.rfReads = getUint(o, "rf_reads");
    s.rfWrites = getUint(o, "rf_writes");
    s.bocForwards = getUint(o, "boc_forwards");
    s.bocDeposits = getUint(o, "boc_deposits");
    s.bocResultWrites = getUint(o, "boc_result_writes");
    s.rfcReads = getUint(o, "rfc_reads");
    s.rfcWrites = getUint(o, "rfc_writes");
    s.consolidatedWrites = getUint(o, "consolidated_writes");
    s.transientDrops = getUint(o, "transient_drops");
    s.safetyWrites = getUint(o, "safety_writes");
    s.destRfOnly = getUint(o, "dest_rf_only");
    s.destBocOnly = getUint(o, "dest_boc_only");
    s.destBocAndRf = getUint(o, "dest_boc_and_rf");
    s.srcOperandHist = histFromJson(o, "src_operand_hist");
    s.bocOccupancyHist = histFromJson(o, "boc_occupancy_hist");
    s.bankReadConflicts = getUint(o, "bank_read_conflicts");
    s.bankWriteConflicts = getUint(o, "bank_write_conflicts");
    s.l1Hits = getUint(o, "l1_hits");
    s.l1Misses = getUint(o, "l1_misses");
    s.peakResident = getUint(o, "peak_resident");
    s.fastforwardCycles = getUint(o, "fastforward_cycles");
    return s;
}

JsonValue
energyToJson(const EnergyBreakdown &e)
{
    JsonValue o = JsonValue::object();
    o.set("rf_dynamic_pj", e.rfDynamicPj);
    o.set("overhead_pj", e.overheadPj);
    o.set("protection_pj", e.protectionPj);
    o.set("total_pj", e.totalPj);
    return o;
}

EnergyBreakdown
energyFromJson(const JsonValue &o)
{
    EnergyBreakdown e;
    e.rfDynamicPj = getDouble(o, "rf_dynamic_pj");
    e.overheadPj = getDouble(o, "overhead_pj");
    e.protectionPj = getDouble(o, "protection_pj");
    e.totalPj = getDouble(o, "total_pj");
    return e;
}

JsonValue
tagsToJson(const TagStats &t)
{
    JsonValue o = JsonValue::object();
    o.set("rf_only", t.rfOnly);
    o.set("boc_only", t.bocOnly);
    o.set("boc_and_rf", t.bocAndRf);
    return o;
}

TagStats
tagsFromJson(const JsonValue &o)
{
    TagStats t;
    t.rfOnly = getUint(o, "rf_only");
    t.bocOnly = getUint(o, "boc_only");
    t.bocAndRf = getUint(o, "boc_and_rf");
    return t;
}

JsonValue
faultToJson(const FaultReport &f)
{
    JsonValue o = JsonValue::object();
    o.set("enabled", f.enabled);
    o.set("fired", f.fired);
    o.set("landed", f.landed);
    o.set("stale_masked", f.staleMasked);
    o.set("detected_by_parity", f.detectedByParity);
    o.set("corrected_by_ecc", f.correctedByEcc);
    o.set("repaired_by_refetch", f.repairedByRefetch);
    return o;
}

FaultReport
faultFromJson(const JsonValue &o)
{
    FaultReport f;
    f.enabled = getBool(o, "enabled");
    f.fired = getBool(o, "fired");
    f.landed = getBool(o, "landed");
    f.staleMasked = getBool(o, "stale_masked");
    f.detectedByParity = getBool(o, "detected_by_parity");
    f.correctedByEcc = getBool(o, "corrected_by_ecc");
    f.repairedByRefetch = getBool(o, "repaired_by_refetch");
    return f;
}

/** Per-warp register file as an array with trailing zeros trimmed
 *  (deterministic, and final register images are mostly sparse). */
JsonValue
regsToJson(const std::vector<RegFileState> &regs)
{
    JsonValue arr = JsonValue::array();
    for (const RegFileState &file : regs) {
        std::size_t n = file.size();
        while (n > 0 && file[n - 1] == 0)
            --n;
        JsonValue warp = JsonValue::array();
        for (std::size_t i = 0; i < n; ++i)
            warp.push(std::uint64_t{file[i]});
        arr.push(std::move(warp));
    }
    return arr;
}

std::vector<RegFileState>
regsFromJson(const JsonValue &o, const char *key)
{
    const JsonValue &arr = getArray(o, key);
    std::vector<RegFileState> regs;
    regs.reserve(arr.size());
    for (const JsonValue &warp : arr.items()) {
        if (warp.kind() != JsonValue::Kind::Array ||
            warp.size() > std::tuple_size_v<RegFileState>) {
            fatal("sim codec: malformed register-file image");
        }
        RegFileState file{};
        for (std::size_t i = 0; i < warp.size(); ++i)
            file[i] = static_cast<Value>(warp.at(i).asUint());
        regs.push_back(file);
    }
    return regs;
}

/** Memory image as [space, addr, value] triples in the deterministic
 *  exportEntries() order. */
JsonValue
memToJson(const MemoryStore &mem)
{
    JsonValue arr = JsonValue::array();
    for (const MemoryStore::Entry &e : mem.exportEntries()) {
        JsonValue triple = JsonValue::array();
        triple.push(std::uint64_t{static_cast<unsigned>(e.space)});
        triple.push(std::uint64_t{e.addr});
        triple.push(std::uint64_t{e.value});
        arr.push(std::move(triple));
    }
    return arr;
}

MemoryStore
memFromJson(const JsonValue &o, const char *key)
{
    const JsonValue &arr = getArray(o, key);
    MemoryStore mem;
    for (const JsonValue &triple : arr.items()) {
        if (triple.kind() != JsonValue::Kind::Array ||
            triple.size() != 3) {
            fatal("sim codec: malformed memory entry");
        }
        const auto space = triple.at(0).asUint();
        if (space > static_cast<unsigned>(MemSpace::Const))
            fatal("sim codec: bad memory space");
        mem.store(static_cast<MemSpace>(space),
                  static_cast<std::uint32_t>(triple.at(1).asUint()),
                  static_cast<Value>(triple.at(2).asUint()));
    }
    return mem;
}

/** Recursively collect "a.b.c" key paths for simSchemaHash(). */
void
collectKeyPaths(const JsonValue &v, const std::string &prefix,
                std::vector<std::string> &paths)
{
    if (v.kind() != JsonValue::Kind::Object)
        return;
    for (const auto &[key, val] : v.members()) {
        const std::string path =
            prefix.empty() ? key : prefix + "." + key;
        paths.push_back(path);
        collectKeyPaths(val, path, paths);
    }
}

} // namespace

JsonValue
simConfigToJson(const SimConfig &c)
{
    JsonValue o = JsonValue::object();
    o.set("num_schedulers", std::uint64_t{c.numSchedulers});
    o.set("issue_per_scheduler", std::uint64_t{c.issuePerScheduler});
    o.set("max_resident_warps", std::uint64_t{c.maxResidentWarps});
    o.set("num_banks", std::uint64_t{c.numBanks});
    o.set("rf_bytes_per_sm", std::uint64_t{c.rfBytesPerSm});
    o.set("num_collectors", std::uint64_t{c.numCollectors});
    o.set("collector_ports", std::uint64_t{c.collectorPorts});
    o.set("sched_policy",
          std::uint64_t{static_cast<unsigned>(c.schedPolicy)});
    o.set("alu_latency", std::uint64_t{c.aluLatency});
    o.set("sfu_latency", std::uint64_t{c.sfuLatency});
    o.set("ctrl_latency", std::uint64_t{c.ctrlLatency});
    o.set("alu_width", std::uint64_t{c.aluWidth});
    o.set("sfu_width", std::uint64_t{c.sfuWidth});
    o.set("ldst_width", std::uint64_t{c.ldstWidth});
    o.set("l1_latency", std::uint64_t{c.l1Latency});
    o.set("l2_latency", std::uint64_t{c.l2Latency});
    o.set("dram_latency", std::uint64_t{c.dramLatency});
    o.set("l1_bytes", std::uint64_t{c.l1Bytes});
    o.set("l1_line_bytes", std::uint64_t{c.l1LineBytes});
    o.set("l1_ways", std::uint64_t{c.l1Ways});
    o.set("l2_bytes", std::uint64_t{c.l2Bytes});
    o.set("l2_line_bytes", std::uint64_t{c.l2LineBytes});
    o.set("l2_ways", std::uint64_t{c.l2Ways});
    o.set("shared_latency", std::uint64_t{c.sharedLatency});
    o.set("max_pending_loads", std::uint64_t{c.maxPendingLoads});
    o.set("num_sms", std::uint64_t{c.numSms});
    o.set("cta_policy",
          std::uint64_t{static_cast<unsigned>(c.ctaPolicy)});
    o.set("l2_banks", std::uint64_t{c.l2Banks});
    o.set("l2_mshrs_per_bank", std::uint64_t{c.l2MshrsPerBank});
    o.set("arch", std::uint64_t{static_cast<unsigned>(c.arch)});
    o.set("window_size", std::uint64_t{c.windowSize});
    o.set("boc_entries", std::uint64_t{c.bocEntries});
    o.set("extended_window", c.extendedWindow);
    o.set("rfc_entries_per_warp", std::uint64_t{c.rfcEntriesPerWarp});
    o.set("fault_protection",
          std::uint64_t{static_cast<unsigned>(c.faultProtection)});
    o.set("max_cycles", c.maxCycles);
    o.set("host_fastforward", c.hostFastForward);
    o.set("host_threads", std::uint64_t{c.hostThreads});
    o.set("epoch_cycles", std::uint64_t{c.epochCycles});
    return o;
}

SimConfig
simConfigFromJson(const JsonValue &o)
{
    SimConfig c;
    c.numSchedulers = getUnsigned(o, "num_schedulers");
    c.issuePerScheduler = getUnsigned(o, "issue_per_scheduler");
    c.maxResidentWarps = getUnsigned(o, "max_resident_warps");
    c.numBanks = getUnsigned(o, "num_banks");
    c.rfBytesPerSm = getUnsigned(o, "rf_bytes_per_sm");
    c.numCollectors = getUnsigned(o, "num_collectors");
    c.collectorPorts = getUnsigned(o, "collector_ports");
    const auto sched = getUint(o, "sched_policy");
    if (sched > static_cast<unsigned>(SchedPolicy::TWO_LEVEL))
        fatal("sim codec: bad sched_policy");
    c.schedPolicy = static_cast<SchedPolicy>(sched);
    c.aluLatency = getUnsigned(o, "alu_latency");
    c.sfuLatency = getUnsigned(o, "sfu_latency");
    c.ctrlLatency = getUnsigned(o, "ctrl_latency");
    c.aluWidth = getUnsigned(o, "alu_width");
    c.sfuWidth = getUnsigned(o, "sfu_width");
    c.ldstWidth = getUnsigned(o, "ldst_width");
    c.l1Latency = getUnsigned(o, "l1_latency");
    c.l2Latency = getUnsigned(o, "l2_latency");
    c.dramLatency = getUnsigned(o, "dram_latency");
    c.l1Bytes = getUnsigned(o, "l1_bytes");
    c.l1LineBytes = getUnsigned(o, "l1_line_bytes");
    c.l1Ways = getUnsigned(o, "l1_ways");
    c.l2Bytes = getUnsigned(o, "l2_bytes");
    c.l2LineBytes = getUnsigned(o, "l2_line_bytes");
    c.l2Ways = getUnsigned(o, "l2_ways");
    c.sharedLatency = getUnsigned(o, "shared_latency");
    c.maxPendingLoads = getUnsigned(o, "max_pending_loads");
    c.numSms = getUnsigned(o, "num_sms");
    const auto cta = getUint(o, "cta_policy");
    if (cta > static_cast<unsigned>(CtaPolicy::LooseRoundRobin))
        fatal("sim codec: bad cta_policy");
    c.ctaPolicy = static_cast<CtaPolicy>(cta);
    c.l2Banks = getUnsigned(o, "l2_banks");
    c.l2MshrsPerBank = getUnsigned(o, "l2_mshrs_per_bank");
    const auto arch = getUint(o, "arch");
    if (arch > static_cast<unsigned>(Architecture::RFC))
        fatal("sim codec: bad arch");
    c.arch = static_cast<Architecture>(arch);
    c.windowSize = getUnsigned(o, "window_size");
    c.bocEntries = getUnsigned(o, "boc_entries");
    c.extendedWindow = getBool(o, "extended_window");
    c.rfcEntriesPerWarp = getUnsigned(o, "rfc_entries_per_warp");
    const auto prot = getUint(o, "fault_protection");
    if (prot > static_cast<unsigned>(FaultProtection::Secded))
        fatal("sim codec: bad fault_protection");
    c.faultProtection = static_cast<FaultProtection>(prot);
    c.maxCycles = getUint(o, "max_cycles");
    c.hostFastForward = getBool(o, "host_fastforward");
    c.hostThreads = getUnsigned(o, "host_threads");
    c.epochCycles = getUnsigned(o, "epoch_cycles");
    return c;
}

JsonValue
simResultToJson(const SimResult &r)
{
    JsonValue o = JsonValue::object();
    o.set("arch", r.arch);
    o.set("window_size", std::uint64_t{r.windowSize});
    o.set("stats", statsToJson(r.stats));
    o.set("energy", energyToJson(r.energy));
    o.set("tags", tagsToJson(r.tags));
    o.set("fault", faultToJson(r.fault));
    JsonValue placements = JsonValue::array();
    for (unsigned sm : r.ctaPlacements)
        placements.push(std::uint64_t{sm});
    o.set("cta_placements", std::move(placements));
    o.set("final_regs", regsToJson(r.finalRegs));
    o.set("final_mem", memToJson(r.finalMem));
    o.set("metrics", r.metrics.toJson());
    o.set("estimate", r.estimate);
    return o;
}

SimResult
simResultFromJson(const JsonValue &o)
{
    SimResult r;
    const JsonValue &arch = member(o, "arch");
    if (arch.kind() != JsonValue::Kind::String)
        fatal("sim codec: 'arch' is not a string");
    r.arch = arch.asString();
    r.windowSize = getUnsigned(o, "window_size");
    r.stats = statsFromJson(member(o, "stats"));
    r.energy = energyFromJson(member(o, "energy"));
    r.tags = tagsFromJson(member(o, "tags"));
    r.fault = faultFromJson(member(o, "fault"));
    for (const JsonValue &sm :
         getArray(o, "cta_placements").items()) {
        r.ctaPlacements.push_back(
            static_cast<unsigned>(sm.asUint()));
    }
    r.finalRegs = regsFromJson(o, "final_regs");
    r.finalMem = memFromJson(o, "final_mem");
    r.metrics = MetricsRegistry::fromJson(member(o, "metrics"));
    r.estimate = getBool(o, "estimate");
    return r;
}

std::uint64_t
simSchemaHash()
{
    // The shape of the serialization, computed once: every key path
    // a default-constructed encode produces, plus the codec version
    // literal. Field additions/renames change the hash without
    // anyone having to remember a manual schema bump.
    static const std::uint64_t hash = [] {
        std::vector<std::string> paths;
        paths.emplace_back(kCodecVersion);
        collectKeyPaths(simConfigToJson(SimConfig{}), "config",
                        paths);
        collectKeyPaths(simResultToJson(SimResult{}), "result",
                        paths);
        std::uint64_t h = 0xCBF29CE484222325ull;
        for (const std::string &p : paths) {
            for (const char ch : p) {
                h ^= static_cast<unsigned char>(ch);
                h *= 0x100000001B3ull;
            }
            h ^= '\n';
            h *= 0x100000001B3ull;
        }
        return h;
    }();
    return hash;
}

} // namespace bow
