/**
 * @file
 * JSON codecs for the persistent-service layer: a full, bit-exact
 * round trip for SimConfig (the daemon wire protocol ships
 * configurations as JSON) and SimResult (the on-disk result store
 * serializes finished simulations, including their MetricsRegistry).
 *
 * Exactness contract: decode(encode(x)) reproduces every counter,
 * register, memory word and metric of x bit-for-bit. Doubles ride on
 * the shortest-round-trip rendering of common/json.h (std::to_chars),
 * so even IPC/energy figures survive unchanged; NaN serializes as
 * null and decodes back to NaN (tests/test_result_store.cc).
 *
 * Schema hash: both codecs enumerate their fields explicitly, and
 * simSchemaHash() is derived from the key paths of a
 * default-constructed encode — adding, removing or renaming a field
 * changes the hash automatically, which is what the result store
 * keys its invalidation on (docs/SERVICE.md).
 */

#ifndef BOWSIM_SERVICE_SIM_CODEC_H
#define BOWSIM_SERVICE_SIM_CODEC_H

#include <cstdint>

#include "common/json.h"
#include "core/simulator.h"
#include "sm/sim_config.h"

namespace bow {

/** Serialize every SimConfig field (enums as integers). */
JsonValue simConfigToJson(const SimConfig &config);

/**
 * Rebuild a SimConfig from simConfigToJson() output.
 * @throws FatalError on missing/mistyped members.
 */
SimConfig simConfigFromJson(const JsonValue &json);

/** Serialize a finished simulation, metrics included. */
JsonValue simResultToJson(const SimResult &result);

/**
 * Rebuild a SimResult from simResultToJson() output.
 * @throws FatalError on missing/mistyped members.
 */
SimResult simResultFromJson(const JsonValue &json);

/**
 * FNV-1a hash over the sorted key paths of a default-constructed
 * SimConfig + SimResult encode: the "shape" of the serialization,
 * independent of any particular values. The result store folds this
 * into every entry header so a codec change invalidates all stored
 * results instead of mis-decoding them.
 */
std::uint64_t simSchemaHash();

} // namespace bow

#endif // BOWSIM_SERVICE_SIM_CODEC_H
