#include "service/wire.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.h"

namespace bow {

namespace {

/** Fill a sockaddr_un for @p path; fatal()s when it does not fit. */
sockaddr_un
unixAddr(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        fatal(strf("socket path too long (", path.size(), " > ",
                   sizeof(addr.sun_path) - 1, "): '", path, "'"));
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

/** write() all of @p n bytes; false on peer hangup/error. */
bool
writeAll(int fd, const void *data, std::size_t n)
{
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        // MSG_NOSIGNAL: a vanished peer must surface as an error
        // return, not a process-killing SIGPIPE.
        const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

/** read() exactly @p n bytes. @return bytes read (short on EOF). */
std::size_t
readAll(int fd, void *data, std::size_t n)
{
    char *p = static_cast<char *>(data);
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::recv(fd, p + got, n - got, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return got;
        }
        if (r == 0)
            return got;
        got += static_cast<std::size_t>(r);
    }
    return got;
}

} // namespace

int
listenUnix(const std::string &path)
{
    const sockaddr_un addr = unixAddr(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal(strf("socket(): ", std::strerror(errno)));
    // A stale socket file from a crashed daemon would make bind()
    // fail; a live daemon still wins the race because we only
    // unlink, never steal a bound name mid-listen.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        fatal(strf("bind('", path, "'): ", std::strerror(err)));
    }
    if (::listen(fd, 64) != 0) {
        const int err = errno;
        ::close(fd);
        fatal(strf("listen('", path, "'): ", std::strerror(err)));
    }
    return fd;
}

int
connectUnix(const std::string &path)
{
    const sockaddr_un addr = unixAddr(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal(strf("socket(): ", std::strerror(errno)));
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        fatal(strf("cannot connect to bowsimd at '", path, "': ",
                   std::strerror(err)));
    }
    return fd;
}

bool
writeFrame(int fd, const JsonValue &message)
{
    const std::string payload = message.dump();
    if (payload.size() > kMaxFrameBytes)
        fatal(strf("frame too large (", payload.size(), " bytes)"));
    const auto n = static_cast<std::uint32_t>(payload.size());
    const unsigned char header[4] = {
        static_cast<unsigned char>(n >> 24),
        static_cast<unsigned char>(n >> 16),
        static_cast<unsigned char>(n >> 8),
        static_cast<unsigned char>(n),
    };
    return writeAll(fd, header, sizeof(header)) &&
        writeAll(fd, payload.data(), payload.size());
}

std::optional<JsonValue>
readFrame(int fd)
{
    unsigned char header[4];
    const std::size_t got = readAll(fd, header, sizeof(header));
    if (got == 0)
        return std::nullopt;    // clean EOF between frames
    if (got < sizeof(header))
        fatal("wire: truncated frame header");
    const std::uint32_t n =
        (std::uint32_t{header[0]} << 24) |
        (std::uint32_t{header[1]} << 16) |
        (std::uint32_t{header[2]} << 8) | std::uint32_t{header[3]};
    if (n > kMaxFrameBytes)
        fatal(strf("wire: oversized frame (", n, " bytes)"));
    std::string payload(n, '\0');
    if (readAll(fd, payload.data(), n) != n)
        fatal("wire: truncated frame payload");
    return parseJson(payload);
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

} // namespace bow
