/**
 * @file
 * Wire layer of the bowsimd protocol: Unix-domain stream sockets
 * plus length-prefixed JSON frames. A frame is a 4-byte big-endian
 * payload length followed by exactly that many bytes of compact
 * JSON (docs/SERVICE.md). The framing is symmetric — daemon and
 * client use the same two calls — and deliberately dumb: all
 * message semantics live in daemon.cc / remote_client.cc.
 */

#ifndef BOWSIM_SERVICE_WIRE_H
#define BOWSIM_SERVICE_WIRE_H

#include <optional>
#include <string>

#include "common/json.h"

namespace bow {

/** Frames above this are a protocol violation (a length this large
 *  is a desynchronized or hostile peer, not a real request). */
constexpr std::uint32_t kMaxFrameBytes = 256u * 1024u * 1024u;

/**
 * Bind + listen on a Unix-domain socket at @p path, unlinking any
 * stale socket file first. @return the listening fd.
 * @throws FatalError on any socket/bind/listen failure (including a
 * path longer than sockaddr_un allows).
 */
int listenUnix(const std::string &path);

/**
 * Connect to the daemon at @p path. @return the connected fd.
 * @throws FatalError when the socket cannot be reached.
 */
int connectUnix(const std::string &path);

/**
 * Send one frame. @return false when the peer hung up (EPIPE and
 * friends); throws nothing and never raises SIGPIPE.
 */
bool writeFrame(int fd, const JsonValue &message);

/**
 * Receive one frame. @return nullopt on a clean EOF at a frame
 * boundary. @throws FatalError on a malformed frame (oversized
 * length, truncated payload, invalid JSON) — after framing is lost
 * the stream cannot be resynchronized.
 */
std::optional<JsonValue> readFrame(int fd);

/** Close @p fd, ignoring errors (idempotent convenience). */
void closeFd(int fd);

} // namespace bow

#endif // BOWSIM_SERVICE_WIRE_H
