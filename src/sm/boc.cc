#include "sm/boc.h"

#include "common/json_util.h"
#include "common/log.h"

namespace bow {

Boc::Boc(Architecture arch, unsigned windowSize, unsigned capacity,
         bool extendedWindow)
    : arch_(arch), windowSize_(windowSize), capacity_(capacity),
      extendedWindow_(extendedWindow)
{
    if (arch != Architecture::BOW && arch != Architecture::BOW_WR &&
        arch != Architecture::BOW_WR_OPT) {
        panic("Boc: architecture without a BOC");
    }
    if (capacity < 2)
        fatal("Boc: capacity must be at least 2");
    if (extendedWindow && arch == Architecture::BOW_WR_OPT) {
        fatal("Boc: extended-window bypassing cannot be combined "
              "with compiler hints (their safety proof assumes the "
              "nominal window; see paper Sec. IV-C)");
    }
    entries_.reserve(capacity);
}

BocEntry *
Boc::find(RegId reg)
{
    for (auto &e : entries_) {
        if (e.reg == reg)
            return &e;
    }
    return nullptr;
}

BocEviction
Boc::evictEntry(BocEntry &e, bool expired)
{
    BocEviction ev;
    ev.reg = e.reg;
    if (e.dirty) {
        if (arch_ == Architecture::BOW_WR_OPT && e.noRfWb) {
            if (expired) {
                // Compiler proved the value dead beyond its window:
                // the RF write (and allocation) is skipped entirely.
                ev.transientDrop = true;
            } else {
                // Evicted early by capacity pressure while still in
                // its window: later consumers may refetch from the
                // RF, so the value must be saved (Sec. IV-C).
                ev.needsRfWrite = true;
                ev.safetyWrite = true;
            }
        } else {
            ev.needsRfWrite = true;
        }
    }
    return ev;
}

void
Boc::expire(SeqNum seq, std::vector<BocEviction> &evictions)
{
    if (extendedWindow_)
        return;     // residency limited only by capacity
    for (std::size_t i = 0; i < entries_.size();) {
        BocEntry &e = entries_[i];
        // An entry expires when its last access slid out of the
        // window: entries accessed at position p serve positions
        // p+1 .. p+IW-1.
        if (!e.fetching && e.lastUse + windowSize_ <= seq) {
            evictions.push_back(evictEntry(e, true));
            entries_.erase(entries_.begin() +
                           static_cast<std::ptrdiff_t>(i));
        } else {
            ++i;
        }
    }
}

BocEntry *
Boc::allocate(RegId reg, SeqNum seq, std::vector<BocEviction> &evictions)
{
    if (entries_.size() >= capacity_) {
        // FIFO: evict the oldest-allocated non-fetching entry.
        std::size_t victim = entries_.size();
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].fetching)
                continue;
            if (victim == entries_.size() ||
                entries_[i].allocSeq < entries_[victim].allocSeq) {
                victim = i;
            }
        }
        if (victim == entries_.size()) {
            // Every entry has a fetch in flight; the caller must
            // retry later. Signalled by returning nullptr.
            return nullptr;
        }
        evictions.push_back(evictEntry(entries_[victim], false));
        entries_.erase(entries_.begin() +
                       static_cast<std::ptrdiff_t>(victim));
    }
    BocEntry e;
    e.reg = reg;
    e.lastUse = seq;
    e.allocSeq = seq;
    entries_.push_back(e);
    return &entries_.back();
}

BocInsertResult
Boc::insert(SeqNum seq, std::span<const RegId> srcs)
{
    BocInsertResult out;
    insertInto(seq, srcs, out);
    return out;
}

void
Boc::insertInto(SeqNum seq, std::span<const RegId> srcs,
                BocInsertResult &out)
{
    out.reset();
    headSeq_ = seq;

    // Slide the window first: a value whose last access is windowSize
    // instructions back is no longer forwardable (its residency ends
    // exactly where the compiler's chain analysis assumes it does).
    expire(seq, out.evictions);

    for (RegId r : srcs) {
        BocEntry *e = find(r);
        if (e && e->valid) {
            ++out.forwarded;
            e->lastUse = seq;
        } else if (e && e->fetching) {
            out.sharedFetch.push_back(r);
            e->lastUse = seq;
        } else {
            BocEntry *fresh = allocate(r, seq, out.evictions);
            if (fresh) {
                fresh->fetching = true;
                out.toFetch.push_back(r);
            } else {
                // No allocatable entry: fall back to a plain RF read
                // that bypasses the buffer (rare worst case).
                out.toFetch.push_back(r);
            }
        }
    }
}

void
Boc::fetchComplete(RegId reg)
{
    BocEntry *e = find(reg);
    if (!e) {
        // The fetch fell back to a plain RF read (allocation failed);
        // nothing to mark.
        return;
    }
    if (e->fetching) {
        e->fetching = false;
        e->valid = true;
    }
}

BocWriteResult
Boc::writeResult(SeqNum writerSeq, RegId reg, WritebackHint hint)
{
    BocWriteResult out;
    writeResultInto(writerSeq, reg, hint, out);
    return out;
}

void
Boc::writeResultInto(SeqNum writerSeq, RegId reg, WritebackHint hint,
                     BocWriteResult &out)
{
    out.reset();

    if (arch_ == Architecture::BOW_WR_OPT &&
        hint == WritebackHint::RfOnly) {
        // No reuse in the window: send straight to the RF and drop
        // any stale copy.
        out.writeRfNow = true;
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].reg == reg && !entries_[i].fetching) {
                entries_.erase(entries_.begin() +
                               static_cast<std::ptrdiff_t>(i));
                break;
            }
        }
        return;
    }

    BocEntry *e = find(reg);
    if (e) {
        if (e->dirty)
            out.consolidatedPrev = true;
        e->valid = true;
        e->fetching = false;
    } else {
        e = allocate(reg, writerSeq, out.evictions);
        if (!e) {
            // Could not buffer the result at all: it must go to the
            // RF directly to stay reachable.
            out.writeRfNow = true;
            return;
        }
        e->valid = true;
    }
    e->lastUse = writerSeq;
    out.wroteBoc = true;

    switch (arch_) {
      case Architecture::BOW:
        // Write-through: the RF copy is updated in parallel.
        e->dirty = false;
        out.writeRfNow = true;
        break;
      case Architecture::BOW_WR:
        e->dirty = true;
        e->noRfWb = false;
        break;
      case Architecture::BOW_WR_OPT:
        e->dirty = true;
        e->noRfWb = (hint == WritebackHint::BocOnly);
        break;
      default:
        panic("Boc::writeResult: bad architecture");
    }
}

std::vector<BocEviction>
Boc::flush()
{
    std::vector<BocEviction> out;
    flushInto(out);
    return out;
}

void
Boc::flushInto(std::vector<BocEviction> &out)
{
    for (auto &e : entries_) {
        if (e.dirty) {
            // Kernel end: transient values are dead either way; only
            // untagged dirty values must reach the RF (the hardware
            // cannot prove deadness without the hint).
            if (arch_ == Architecture::BOW_WR_OPT && e.noRfWb) {
                BocEviction ev;
                ev.reg = e.reg;
                ev.transientDrop = true;
                out.push_back(ev);
            } else {
                BocEviction ev;
                ev.reg = e.reg;
                ev.needsRfWrite = true;
                out.push_back(ev);
            }
        }
    }
    entries_.clear();
}

unsigned
Boc::occupied() const
{
    return static_cast<unsigned>(entries_.size());
}

bool
Boc::holds(RegId reg) const
{
    for (const auto &e : entries_) {
        if (e.reg == reg && e.valid)
            return true;
    }
    return false;
}

bool
Boc::holdsDirty(RegId reg) const
{
    for (const auto &e : entries_) {
        if (e.reg == reg && e.valid && (e.dirty || e.noRfWb))
            return true;
    }
    return false;
}

JsonValue
Boc::saveState() const
{
    JsonValue entries = JsonValue::array();
    for (const BocEntry &e : entries_) {
        JsonValue a = JsonValue::array();
        a.push(JsonValue(std::uint64_t(e.reg)));
        a.push(JsonValue(e.valid));
        a.push(JsonValue(e.fetching));
        a.push(JsonValue(e.dirty));
        a.push(JsonValue(e.noRfWb));
        a.push(JsonValue(e.lastUse));
        a.push(JsonValue(e.allocSeq));
        entries.push(std::move(a));
    }
    JsonValue out = JsonValue::object();
    out.set("entries", std::move(entries));
    out.set("head_seq", JsonValue(headSeq_));
    return out;
}

void
Boc::loadState(const JsonValue &v)
{
    const JsonValue &entries = jsonio::getArray(v, "entries");
    if (entries.size() > capacity_)
        fatal("Boc::loadState: more entries than capacity");
    entries_.clear();
    for (const JsonValue &a : entries.items()) {
        BocEntry e;
        e.reg = static_cast<RegId>(a.at(0).asUint());
        e.valid = a.at(1).asBool();
        e.fetching = a.at(2).asBool();
        e.dirty = a.at(3).asBool();
        e.noRfWb = a.at(4).asBool();
        e.lastUse = a.at(5).asUint();
        e.allocSeq = a.at(6).asUint();
        entries_.push_back(e);
    }
    headSeq_ = jsonio::getUint(v, "head_seq");
}

} // namespace bow
