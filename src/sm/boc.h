/**
 * @file
 * The Bypassing Operand Collector (BOC): the paper's central
 * structure (Sec. IV). One BOC is dedicated to each warp and holds
 * the register operands of the warp's sliding instruction window.
 *
 * This class models the *contents* and forwarding/eviction policy of
 * one BOC; ports, request queues and the rest of the pipeline live in
 * the SM core. Like the RF timing model it tracks which registers are
 * resident, not their values (architectural values live in the Warp).
 */

#ifndef BOWSIM_SM_BOC_H
#define BOWSIM_SM_BOC_H

#include <span>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"
#include "sm/sim_config.h"

namespace bow {

class JsonValue;

/** One register entry inside a BOC. */
struct BocEntry
{
    RegId reg = kNoReg;
    bool valid = false;     ///< value present (fetch done or written)
    bool fetching = false;  ///< RF fetch in flight
    bool dirty = false;     ///< newer than the RF copy
    bool noRfWb = false;    ///< compiler-tagged transient (BocOnly)
    SeqNum lastUse = 0;     ///< window position of the last access
    SeqNum allocSeq = 0;    ///< allocation order (FIFO victims)
};

/** Why and how an entry left the BOC. */
struct BocEviction
{
    RegId reg = kNoReg;
    bool needsRfWrite = false;  ///< dirty value must reach the RF
    bool safetyWrite = false;   ///< forced write of a transient value
                                ///< evicted early by capacity pressure
    bool consolidated = false;  ///< dirty value superseded: RF write
                                ///< bypassed entirely
    bool transientDrop = false; ///< transient value expired: RF write
                                ///< bypassed and never allocated
};

/** Effect of inserting one instruction into the window. */
struct BocInsertResult
{
    /** Register operands this instruction must fetch from the RF. */
    std::vector<RegId> toFetch;
    /** Operands already being fetched on behalf of an earlier
     *  instruction in the window (shared fetch; no extra RF read). */
    std::vector<RegId> sharedFetch;
    /** Operands forwarded immediately (valid in the BOC). */
    unsigned forwarded = 0;
    /** Entries pushed out by the window slide or capacity pressure. */
    std::vector<BocEviction> evictions;

    /** Reset for reuse as a per-cycle scratch result (keeps the
     *  vectors' capacity, per the no-allocation-per-cycle rule). */
    void
    reset()
    {
        toFetch.clear();
        sharedFetch.clear();
        forwarded = 0;
        evictions.clear();
    }
};

/** Effect of depositing an instruction's result. */
struct BocWriteResult
{
    bool wroteBoc = false;  ///< result deposited into the BOC
    bool writeRfNow = false;///< result must be sent to the RF now
    bool consolidatedPrev = false; ///< a previous dirty value for the
                                   ///< same register was superseded
    std::vector<BocEviction> evictions; ///< capacity-pressure victims

    /** Reset for reuse as a per-cycle scratch result. */
    void
    reset()
    {
        wroteBoc = false;
        writeRfNow = false;
        consolidatedPrev = false;
        evictions.clear();
    }
};

/** One warp's bypassing operand collector. */
class Boc
{
  public:
    /**
     * @param arch       BOW / BOW_WR / BOW_WR_OPT — selects the
     *                   write-through vs write-back vs hint policy.
     * @param windowSize IW, the sliding-window length.
     * @param capacity   Register-entry capacity (12 = conservative,
     *                   6 = the paper's half-size configuration).
     * @param extendedWindow When true, entries never expire by
     *                   window distance — residency is limited only
     *                   by buffer capacity (the paper's future-work
     *                   variant, Sec. IV-C). Incompatible with
     *                   compiler hints, whose safety argument assumes
     *                   the nominal window.
     */
    Boc(Architecture arch, unsigned windowSize, unsigned capacity,
        bool extendedWindow = false);

    /**
     * Insert the instruction with window sequence number @p seq and
     * unique source registers @p srcs. Slides the window (expiring
     * stale entries) and classifies every operand.
     */
    BocInsertResult insert(SeqNum seq, std::span<const RegId> srcs);

    /** Brace-list convenience (tests): insert(3, {r1, r2}). */
    BocInsertResult
    insert(SeqNum seq, std::initializer_list<RegId> srcs)
    {
        return insert(seq,
                      std::span<const RegId>(srcs.begin(),
                                             srcs.size()));
    }

    /** As insert(), writing into a caller-owned reusable result
     *  (reset first) — the SM core's per-cycle path. */
    void insertInto(SeqNum seq, std::span<const RegId> srcs,
                    BocInsertResult &out);

    /** An RF fetch for @p reg completed; the entry becomes valid. */
    void fetchComplete(RegId reg);

    /**
     * Deposit the result of the instruction at window position
     * @p writerSeq per the architecture's write policy and the
     * instruction's compiler hint.
     */
    BocWriteResult writeResult(SeqNum writerSeq, RegId reg,
                               WritebackHint hint);

    /** As writeResult(), into a caller-owned reusable result. */
    void writeResultInto(SeqNum writerSeq, RegId reg,
                         WritebackHint hint, BocWriteResult &out);

    /** Warp terminated: flush remaining dirty entries. */
    std::vector<BocEviction> flush();

    /** As flush(), appending into a caller-owned buffer. */
    void flushInto(std::vector<BocEviction> &out);

    /** Number of occupied (valid or fetching) entries. */
    unsigned occupied() const;

    unsigned capacity() const { return capacity_; }

    /** A valid (value-holding) entry for @p reg is resident. */
    bool holds(RegId reg) const;

    /**
     * The resident entry for @p reg is the *only* live copy of the
     * value: dirty (newer than the RF) or compiler-tagged transient
     * (the RF copy will never be written). This is the exposure the
     * fault-injection subsystem measures — a flip here corrupts
     * architectural state with no backing copy to recover from.
     */
    bool holdsDirty(RegId reg) const;

    /** Serialize entry slots + window head for a snapshot. Slot
     *  positions are preserved — allocation scans and FIFO victim
     *  selection depend on them. */
    JsonValue saveState() const;
    /** Overwrite contents from saveState() output; the shape
     *  parameters (arch/window/capacity) stay construction-time. */
    void loadState(const JsonValue &v);

  private:
    BocEntry *find(RegId reg);
    /** Allocate an entry, evicting a FIFO victim under pressure. */
    BocEntry *allocate(RegId reg, SeqNum seq,
                       std::vector<BocEviction> &evictions);
    /** Expire entries that slid out of the window ending at @p seq. */
    void expire(SeqNum seq, std::vector<BocEviction> &evictions);
    /** Classify the eviction of @p e (window-expiry or capacity). */
    BocEviction evictEntry(BocEntry &e, bool expired);

    Architecture arch_;
    unsigned windowSize_;
    unsigned capacity_;
    bool extendedWindow_;
    std::vector<BocEntry> entries_;
    SeqNum headSeq_ = 0;
};

} // namespace bow

#endif // BOWSIM_SM_BOC_H
