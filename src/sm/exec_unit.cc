#include "sm/exec_unit.h"

#include "common/log.h"

namespace bow {

ExecUnits::ExecUnits(const SimConfig &config)
    : config_(&config), stats_("exec")
{
}

void
ExecUnits::newCycle()
{
    aluUsed_ = 0;
    sfuUsed_ = 0;
    ldstUsed_ = 0;
}

bool
ExecUnits::canDispatch(ExecUnit unit) const
{
    switch (unit) {
      case ExecUnit::ALU:
        return aluUsed_ < config_->aluWidth;
      case ExecUnit::SFU:
        return sfuUsed_ < config_->sfuWidth;
      case ExecUnit::LDST:
        return ldstUsed_ < config_->ldstWidth;
      case ExecUnit::CTRL:
        return aluUsed_ < config_->aluWidth; // shares the ALU slot
    }
    panic("ExecUnits::canDispatch: bad unit");
}

void
ExecUnits::dispatch(ExecUnit unit)
{
    switch (unit) {
      case ExecUnit::ALU:
      case ExecUnit::CTRL:
        ++aluUsed_;
        stats_.counter("alu_dispatches").inc();
        break;
      case ExecUnit::SFU:
        ++sfuUsed_;
        stats_.counter("sfu_dispatches").inc();
        break;
      case ExecUnit::LDST:
        ++ldstUsed_;
        stats_.counter("ldst_dispatches").inc();
        break;
    }
}

unsigned
ExecUnits::latency(Opcode op) const
{
    switch (opcodeInfo(op).unit) {
      case ExecUnit::ALU:
        return config_->aluLatency;
      case ExecUnit::SFU:
        return config_->sfuLatency;
      case ExecUnit::CTRL:
        return config_->ctrlLatency;
      case ExecUnit::LDST:
        // Memory latency added by the caller from MemoryTiming.
        return 1;
    }
    panic("ExecUnits::latency: bad unit");
}

} // namespace bow
