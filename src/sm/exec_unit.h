/**
 * @file
 * Execution-unit pools: per-cycle dispatch width for ALU, SFU and
 * LD/ST pipelines plus the per-opcode latency model. Completion
 * scheduling itself lives in the SM core's event queue.
 */

#ifndef BOWSIM_SM_EXEC_UNIT_H
#define BOWSIM_SM_EXEC_UNIT_H

#include "common/stats.h"
#include "isa/opcode.h"
#include "sm/sim_config.h"

namespace bow {

/** Tracks how many warp-instructions each unit accepted this cycle. */
class ExecUnits
{
  public:
    explicit ExecUnits(const SimConfig &config);

    /** Reset per-cycle dispatch counters. */
    void newCycle();

    /** True when unit @p unit can accept another dispatch now. */
    bool canDispatch(ExecUnit unit) const;

    /** Consume one dispatch slot on @p unit. */
    void dispatch(ExecUnit unit);

    /** Pipeline latency of @p op, excluding memory service time. */
    unsigned latency(Opcode op) const;

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    const SimConfig *config_;
    unsigned aluUsed_ = 0;
    unsigned sfuUsed_ = 0;
    unsigned ldstUsed_ = 0;
    StatGroup stats_;
};

} // namespace bow

#endif // BOWSIM_SM_EXEC_UNIT_H
