#include "sm/fault_injector.h"

#include <algorithm>
#include <set>

#include "common/log.h"
#include "common/rng.h"

namespace bow {

std::string
faultSiteName(FaultSite s)
{
    switch (s) {
      case FaultSite::RfBank:   return "rf";
      case FaultSite::BocEntry: return "boc";
      case FaultSite::RfcEntry: return "rfc";
      case FaultSite::L2Line:   return "l2";
      case FaultSite::CtaSched: return "cta";
    }
    panic("faultSiteName: bad site");
}

FaultSite
parseFaultSite(const std::string &name)
{
    if (name == "rf")
        return FaultSite::RfBank;
    if (name == "boc")
        return FaultSite::BocEntry;
    if (name == "rfc")
        return FaultSite::RfcEntry;
    if (name == "l2")
        return FaultSite::L2Line;
    if (name == "cta")
        return FaultSite::CtaSched;
    fatal(strf("unknown fault site '", name,
               "' (want rf, boc, rfc, l2 or cta)"));
}

bool
faultSiteIsPerSm(FaultSite s)
{
    return s == FaultSite::RfBank || s == FaultSite::BocEntry ||
        s == FaultSite::RfcEntry;
}

std::string
FaultPlan::describe() const
{
    if (!enabled)
        return "none";
    switch (site) {
      case FaultSite::L2Line:
        return strf("l2 a", addr, " bit", bit, " @", cycle);
      case FaultSite::CtaSched:
        return strf("cta c", cta, " bit", bit, " @", cycle);
      default:
        break;
    }
    // The " sm<N>" suffix appears only off SM 0 so single-SM
    // descriptions (and the logs/tests built on them) are unchanged.
    return strf(faultSiteName(site), " w", warp, " r", reg, " bit", bit,
                " @", cycle, sm ? strf(" sm", sm) : "");
}

FaultPlan
makeFaultPlan(std::uint64_t seed, unsigned trial,
              const std::vector<FaultSite> &sites, const Launch &launch,
              Cycle cycleWindow, const FaultPlanContext *ctx)
{
    if (sites.empty())
        fatal("makeFaultPlan: no fault sites requested");
    if (launch.numWarps == 0)
        fatal("makeFaultPlan: launch has no warps");
    if (cycleWindow == 0)
        fatal("makeFaultPlan: empty cycle window");

    // Golden-ratio mixing keeps per-trial streams independent while
    // the whole campaign stays a pure function of (seed, trial).
    Rng rng(seed ^ (0x9E3779B97F4A7C15ull * (std::uint64_t{trial} + 1)));

    FaultPlan p;
    p.enabled = true;
    p.site = sites[rng.below(sites.size())];

    if (p.site == FaultSite::L2Line) {
        // Candidate addresses: every distinct global word the clean
        // run wrote (ctx->globalAddrs — covers runtime-computed
        // addresses), falling back to the launch's initMem words.
        // Either way the words are in the functional store, so a
        // flip + refetch-heal toggles values the oracle comparison
        // actually inspects.
        std::vector<std::uint32_t> addrs;
        if (ctx && !ctx->globalAddrs.empty()) {
            addrs = ctx->globalAddrs;
        } else {
            std::set<std::uint32_t> addrSet;
            for (const auto &[space, addr, val] : launch.initMem) {
                if (space == MemSpace::Global)
                    addrSet.insert(addr);
            }
            addrs.assign(addrSet.begin(), addrSet.end());
        }
        if (addrs.empty())
            addrs.push_back(0);
        p.addr = addrs[rng.below(addrs.size())];
        p.bit = static_cast<unsigned>(rng.below(32));
        p.cycle = rng.below(cycleWindow);
        return p;
    }

    if (p.site == FaultSite::CtaSched) {
        const unsigned perCta = std::max(1u, launch.warpsPerCta);
        const unsigned numCtas =
            (launch.numWarps + perCta - 1) / perCta;
        p.cta = static_cast<unsigned>(rng.below(numCtas));
        // Flip within (or just above) the width of real warp indices
        // so the campaign sees both survivable mis-placements and
        // out-of-range records the machine detects. Capped to the
        // 16-bit WarpId record width.
        unsigned bitBound = 2;
        while ((1u << bitBound) < launch.numWarps && bitBound < 14)
            ++bitBound;
        p.bit = static_cast<unsigned>(rng.below(bitBound + 2));
        p.cycle = rng.below(cycleWindow);
        return p;
    }

    // Candidate registers: every destination the program writes.
    // Flips in never-written registers would be trivially masked for
    // programs that only read what they first wrote, so the campaign
    // concentrates trials where outcomes are informative.
    std::set<RegId> dsts;
    auto scan = [&dsts](const Kernel &k) {
        for (const Instruction &inst : k.instructions()) {
            if (inst.hasDest())
                dsts.insert(inst.dst);
        }
    };
    if (!launch.warpKernels.empty()) {
        for (const Kernel &k : launch.warpKernels)
            scan(k);
    } else {
        scan(launch.kernel);
    }
    std::vector<RegId> regs(dsts.begin(), dsts.end());
    if (regs.empty())
        regs.push_back(0);

    // The SM a warp runs on is derived from the clean run's CTA
    // placement, never drawn — so the draw sequence below is
    // byte-identical to the historical single-SM derivation.
    const unsigned perCta = std::max(1u, launch.warpsPerCta);
    auto smOfWarp = [&](WarpId w) -> unsigned {
        if (!ctx || ctx->ctaPlacements.empty())
            return 0;
        const std::size_t cta = w / perCta;
        return cta < ctx->ctaPlacements.size()
            ? ctx->ctaPlacements[cta]
            : 0;
    };

    if (ctx && !ctx->sms.empty()) {
        // --fault-sms: restrict the warp draw to warps the clean run
        // placed on an allowed SM. (The all-SMs case keeps the empty
        // filter and the identity draw below.)
        std::vector<WarpId> candidates;
        for (WarpId w = 0; w < launch.numWarps; ++w) {
            const unsigned sm = smOfWarp(w);
            if (std::find(ctx->sms.begin(), ctx->sms.end(), sm) !=
                ctx->sms.end()) {
                candidates.push_back(w);
            }
        }
        if (candidates.empty())
            fatal("makeFaultPlan: --fault-sms selects no warps "
                  "(no CTA was placed on the listed SMs)");
        p.warp = candidates[rng.below(candidates.size())];
    } else {
        p.warp = static_cast<WarpId>(rng.below(launch.numWarps));
    }
    p.reg = regs[rng.below(regs.size())];
    p.bit = static_cast<unsigned>(rng.below(32));
    p.cycle = rng.below(cycleWindow);
    p.sm = smOfWarp(p.warp);
    return p;
}

FaultInjector::FaultInjector(const FaultPlan &plan,
                             FaultProtection protection)
    : plan_(plan), protection_(protection)
{
    report_.enabled = plan.enabled;
}

void
FaultInjector::onCycle(Cycle now, std::vector<Warp> &warps,
                       const std::vector<std::optional<Boc>> &bocs,
                       const std::vector<Rfc> &rfcs)
{
    if (!plan_.enabled)
        return;

    if (pending_ != Pending::None) {
        // The follow-up waits for the targeted BOC entry to depart
        // (expire, eviction, or overwrite dropping the clean copy).
        const bool resident = plan_.warp < bocs.size() &&
                              bocs[plan_.warp] &&
                              bocs[plan_.warp]->holds(plan_.reg);
        if (!resident)
            resolvePending(warps[plan_.warp].regs);
        return;
    }

    if (!report_.fired && now == plan_.cycle)
        fire(warps, bocs, rfcs);
}

void
FaultInjector::fire(std::vector<Warp> &warps,
                    const std::vector<std::optional<Boc>> &bocs,
                    const std::vector<Rfc> &rfcs)
{
    report_.fired = true;

    if (plan_.warp >= warps.size())
        return;                         // masked: no such warp slot
    Warp &warp = warps[plan_.warp];
    if (warp.state == WarpState::Inactive ||
        warp.state == WarpState::Finished) {
        // The slot holds no live context (final registers of a
        // finished warp were already snapshotted): masked.
        return;
    }

    const Boc *boc = plan_.warp < bocs.size() && bocs[plan_.warp]
                         ? &*bocs[plan_.warp]
                         : nullptr;
    const Rfc *rfc =
        plan_.warp < rfcs.size() ? &rfcs[plan_.warp] : nullptr;

    switch (plan_.site) {
      case FaultSite::RfBank: {
        const bool dirtyElsewhere =
            (boc && boc->holdsDirty(plan_.reg)) ||
            (rfc && rfc->holdsDirty(plan_.reg));
        if (dirtyElsewhere) {
            // The RF cell is stale; the dirty copy overwrites it at
            // write-back (or the compiler proved it dead).
            report_.staleMasked = true;
            return;
        }
        if (boc && boc->holds(plan_.reg)) {
            // Clean copy shadows the RF cell: readers keep getting
            // the good value until the entry departs. Defer.
            pending_ = Pending::DeferredRfFlip;
            refValue_ = warp.regs[plan_.reg];
            return;
        }
        warp.regs[plan_.reg] ^= flipMask();
        report_.landed = true;
        return;
      }

      case FaultSite::BocEntry: {
        if (!boc || !boc->holds(plan_.reg))
            return;                     // masked: target not resident
        report_.landed = true;
        if (protection_ == FaultProtection::Parity) {
            report_.detectedByParity = true;
            return;
        }
        if (protection_ == FaultProtection::Secded) {
            report_.correctedByEcc = true;
            return;
        }
        warp.regs[plan_.reg] ^= flipMask();
        if (!boc->holdsDirty(plan_.reg)) {
            // Clean entry: the pristine RF copy repairs the state
            // once the entry departs — unless the corrupt value was
            // consumed or superseded first.
            pending_ = Pending::BocRestore;
            refValue_ = warp.regs[plan_.reg];
        }
        return;
      }

      case FaultSite::RfcEntry: {
        if (!rfc || !rfc->readHit(plan_.reg))
            return;                     // masked: target not resident
        report_.landed = true;
        if (protection_ == FaultProtection::Parity) {
            report_.detectedByParity = true;
            return;
        }
        if (protection_ == FaultProtection::Secded) {
            report_.correctedByEcc = true;
            return;
        }
        // RFC entries are write-allocate and always dirty: the
        // entry is the only live copy — permanent corruption.
        warp.regs[plan_.reg] ^= flipMask();
        return;
      }

      case FaultSite::L2Line:
      case FaultSite::CtaSched:
        // Device-level sites are handled by the GpuCore's
        // DeviceFaultInjector (gpu/device_fault.h); inside one SM
        // they have nothing to strike.
        return;
    }
}

void
FaultInjector::resolvePending(RegFileState &regs)
{
    switch (pending_) {
      case Pending::None:
        return;
      case Pending::DeferredRfFlip:
        if (regs[plan_.reg] == refValue_) {
            // Entry departed clean and the register was never
            // rewritten: readers now hit the corrupt RF cell.
            regs[plan_.reg] ^= flipMask();
            report_.landed = true;
        } else {
            // A write-through refreshed the RF cell in the meantime,
            // healing the flip before anyone read it.
            report_.staleMasked = true;
        }
        break;
      case Pending::BocRestore:
        if (regs[plan_.reg] == refValue_) {
            // The corrupt value was never superseded; readers revert
            // to the pristine RF copy once the entry is gone.
            regs[plan_.reg] ^= flipMask();
            report_.repairedByRefetch = true;
        }
        // else: the register was rewritten while corrupt — whatever
        // propagated through dependent instructions stands.
        break;
    }
    pending_ = Pending::None;
}

void
FaultInjector::onWarpFinish(WarpId warp, RegFileState &regs)
{
    if (!plan_.enabled || warp != plan_.warp)
        return;
    // The warp's BOC/RFC is flushed at finish: any shadowing entry
    // departs now, so resolve before the core snapshots the state.
    resolvePending(regs);
}

} // namespace bow
