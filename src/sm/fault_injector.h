/**
 * @file
 * Single-event-upset (bit-flip) fault injection into the operand
 * storage structures of one SM: register-file banks, BOC entries and
 * RFC entries.
 *
 * The timing model keeps architectural values in `Warp::regs` (the
 * committed state read by evaluate()); the RF/BOC/RFC models track
 * only *which* registers are resident where. A fault therefore lands
 * by flipping a bit of the warp's architectural register value,
 * conditioned on which structure holds the live copy at the fault
 * cycle:
 *
 *  - RfBank site: the flip strikes the RF cell. If a dirty (or
 *    compiler-transient) copy lives in the warp's BOC/RFC, the RF
 *    cell is stale and will be overwritten at write-back — masked
 *    ("stale-masked"). If a *clean* BOC copy is resident, reads are
 *    served from the BOC while it lives; the corrupt RF cell only
 *    becomes visible when the entry departs, and a write-through in
 *    the meantime heals it (deferred flip). Otherwise the flip is
 *    immediately architectural.
 *
 *  - BocEntry site: the flip strikes the resident BOC entry. A dirty
 *    entry is the only live copy — permanent corruption. A clean
 *    entry forwards the corrupt value to readers while resident, but
 *    the pristine RF copy repairs the state once the entry departs
 *    (repaired-by-refetch). A non-resident target is masked.
 *
 *  - RfcEntry site: like a dirty BOC entry (the RFC is
 *    write-allocate; resident entries are dirty until flushed).
 *
 * BOC/RFC entries may carry a protection code (SimConfig::
 * faultProtection): parity detects the flip (no corruption, outcome
 * "detected"), SECDED corrects it (outcome "masked"). RF banks are
 * modelled unprotected — the paper's premise is that the small
 * bypass structures are the cheap place to add protection.
 */

#ifndef BOWSIM_SM_FAULT_INJECTOR_H
#define BOWSIM_SM_FAULT_INJECTOR_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "sm/boc.h"
#include "sm/functional.h"
#include "sm/rfc.h"
#include "sm/sim_config.h"
#include "sm/warp.h"

namespace bow {

/** Storage structure a fault strikes. */
enum class FaultSite
{
    RfBank,     ///< a register-file bank cell
    BocEntry,   ///< a bypass-operand-collector entry
    RfcEntry    ///< a register-file-cache entry
};

/** Short site name used by the CLI and reports ("rf"/"boc"/"rfc"). */
std::string faultSiteName(FaultSite s);

/** Parse "rf" / "boc" / "rfc"; fatal()s on anything else. */
FaultSite parseFaultSite(const std::string &name);

/**
 * One deterministic fault: a single bit flip at a fixed site, warp,
 * register, bit position and cycle. Folded into the simulation cache
 * key so faulty and clean runs never alias.
 */
struct FaultPlan
{
    bool enabled = false;
    FaultSite site = FaultSite::RfBank;
    WarpId warp = 0;
    RegId reg = 0;
    unsigned bit = 0;
    Cycle cycle = 0;

    /** Compact human-readable description for logs and checkpoints. */
    std::string describe() const;
};

/**
 * Derive trial @p trial of a campaign from @p seed: uniform over the
 * requested sites, the launch's warps, the destination registers the
 * program actually writes, the 32 value bits and cycles in
 * [0, cycleWindow). Deterministic: same (seed, trial, sites, launch,
 * window) always yields the same plan.
 */
FaultPlan makeFaultPlan(std::uint64_t seed, unsigned trial,
                        const std::vector<FaultSite> &sites,
                        const Launch &launch, Cycle cycleWindow);

/** What happened to the injected fault (filled in during the run). */
struct FaultReport
{
    bool enabled = false;   ///< a plan was armed
    bool fired = false;     ///< the fault cycle was reached
    bool landed = false;    ///< the flip struck live data
    bool staleMasked = false;       ///< struck a stale RF cell
    bool detectedByParity = false;  ///< protection flagged the flip
    bool correctedByEcc = false;    ///< protection repaired the flip
    bool repairedByRefetch = false; ///< clean RF copy healed the state
};

/**
 * Applies one FaultPlan to a running SmCore. The core calls
 * onCycle() at the top of every cycle and onWarpFinish() just before
 * it captures a warp's final register state.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultPlan &plan, FaultProtection protection);

    /** Fire the fault when its cycle arrives and resolve any pending
     *  deferred flip / restore once the BOC entry departs. */
    void onCycle(Cycle now, std::vector<Warp> &warps,
                 const std::vector<std::optional<Boc>> &bocs,
                 const std::vector<Rfc> &rfcs);

    /** Warp is finishing: resolve pending state against @p regs
     *  before the core snapshots it as the final register file. */
    void onWarpFinish(WarpId warp, RegFileState &regs);

    const FaultReport &report() const { return report_; }
    const FaultPlan &plan() const { return plan_; }

  private:
    /** Outstanding follow-up once the targeted BOC entry departs. */
    enum class Pending
    {
        None,
        DeferredRfFlip,  ///< RF cell flipped while a clean BOC copy
                         ///< shadowed it; apply when the copy departs
        BocRestore       ///< clean BOC entry corrupted; heal from the
                         ///< RF copy when the entry departs
    };

    void fire(std::vector<Warp> &warps,
              const std::vector<std::optional<Boc>> &bocs,
              const std::vector<Rfc> &rfcs);
    void resolvePending(RegFileState &regs);

    Value flipMask() const { return Value{1} << plan_.bit; }

    FaultPlan plan_;
    FaultProtection protection_;
    FaultReport report_;
    Pending pending_ = Pending::None;
    /** DeferredRfFlip: pre-flip value (flip is dead if it changed).
     *  BocRestore: the corrupt value (heal only while it persists). */
    Value refValue_ = 0;
};

} // namespace bow

#endif // BOWSIM_SM_FAULT_INJECTOR_H
