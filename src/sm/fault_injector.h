/**
 * @file
 * Single-event-upset (bit-flip) fault injection into the operand
 * storage structures of one SM: register-file banks, BOC entries and
 * RFC entries.
 *
 * The timing model keeps architectural values in `Warp::regs` (the
 * committed state read by evaluate()); the RF/BOC/RFC models track
 * only *which* registers are resident where. A fault therefore lands
 * by flipping a bit of the warp's architectural register value,
 * conditioned on which structure holds the live copy at the fault
 * cycle:
 *
 *  - RfBank site: the flip strikes the RF cell. If a dirty (or
 *    compiler-transient) copy lives in the warp's BOC/RFC, the RF
 *    cell is stale and will be overwritten at write-back — masked
 *    ("stale-masked"). If a *clean* BOC copy is resident, reads are
 *    served from the BOC while it lives; the corrupt RF cell only
 *    becomes visible when the entry departs, and a write-through in
 *    the meantime heals it (deferred flip). Otherwise the flip is
 *    immediately architectural.
 *
 *  - BocEntry site: the flip strikes the resident BOC entry. A dirty
 *    entry is the only live copy — permanent corruption. A clean
 *    entry forwards the corrupt value to readers while resident, but
 *    the pristine RF copy repairs the state once the entry departs
 *    (repaired-by-refetch). A non-resident target is masked.
 *
 *  - RfcEntry site: like a dirty BOC entry (the RFC is
 *    write-allocate; resident entries are dirty until flushed).
 *
 * BOC/RFC entries may carry a protection code (SimConfig::
 * faultProtection): parity detects the flip (no corruption, outcome
 * "detected"), SECDED corrects it (outcome "masked"). RF banks are
 * modelled unprotected — the paper's premise is that the small
 * bypass structures are the cheap place to add protection.
 */

#ifndef BOWSIM_SM_FAULT_INJECTOR_H
#define BOWSIM_SM_FAULT_INJECTOR_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "sm/boc.h"
#include "sm/functional.h"
#include "sm/rfc.h"
#include "sm/sim_config.h"
#include "sm/warp.h"

namespace bow {

/** Storage structure a fault strikes. */
enum class FaultSite
{
    RfBank,     ///< a register-file bank cell
    BocEntry,   ///< a bypass-operand-collector entry
    RfcEntry,   ///< a register-file-cache entry
    L2Line,     ///< a shared-L2 data-array line word (numSms > 1)
    CtaSched    ///< a pending CTA's placement record (numSms > 1)
};

/** Short site name used by the CLI and reports
 *  ("rf"/"boc"/"rfc"/"l2"/"cta"). */
std::string faultSiteName(FaultSite s);

/** Parse "rf" / "boc" / "rfc" / "l2" / "cta"; fatal()s on anything
 *  else. */
FaultSite parseFaultSite(const std::string &name);

/** The site lives inside one SM (as opposed to device-level state
 *  shared by every SM: the L2 and the CTA scheduler). */
bool faultSiteIsPerSm(FaultSite s);

/**
 * One deterministic fault: a single bit flip at a fixed site, warp,
 * register, bit position and cycle. Folded into the simulation cache
 * key so faulty and clean runs never alias.
 *
 * Per-SM sites (rf/boc/rfc) additionally carry `sm`, the SM the
 * clean run placed the target warp's CTA on — derived from the
 * placement, never drawn, so single-SM plans are byte-identical to
 * the historical derivation. Device sites use `addr` (L2Line: the
 * global byte address whose line the flip strikes) or `cta`
 * (CtaSched: the pending CTA whose placement record is corrupted).
 */
struct FaultPlan
{
    bool enabled = false;
    FaultSite site = FaultSite::RfBank;
    WarpId warp = 0;
    RegId reg = 0;
    unsigned bit = 0;
    Cycle cycle = 0;
    /** SM holding the target warp (per-SM sites; derived, see above). */
    unsigned sm = 0;
    /** Global byte address (L2Line site only). */
    std::uint32_t addr = 0;
    /** CTA index (CtaSched site only). */
    unsigned cta = 0;

    /** Compact human-readable description for logs and checkpoints. */
    std::string describe() const;
};

/**
 * Device context for plan derivation when the campaign targets a
 * multi-SM configuration. All fields are outputs of the clean
 * (fault-free) run of the same (workload, config), so plans remain a
 * pure function of campaign inputs.
 */
struct FaultPlanContext
{
    /** SM index each CTA ran on in the clean run (empty = every CTA
     *  on SM 0, the single-SM layout). */
    std::vector<unsigned> ctaPlacements;
    /** SMs eligible for per-SM sites (--fault-sms; empty = all). */
    std::vector<unsigned> sms;
    unsigned numSms = 1;
    /** L2Line candidate pool: the distinct Global addresses the
     *  clean run wrote (MemoryStore::globalAddrs()), sorted. When
     *  empty the draw falls back to the launch's initMem words —
     *  generated workloads compute their addresses at runtime, so
     *  without this pool every L2 draw would strike address 0. */
    std::vector<std::uint32_t> globalAddrs;
};

/**
 * Derive trial @p trial of a campaign from @p seed: uniform over the
 * requested sites, then site-specific coordinates — per-SM sites
 * draw a warp (optionally restricted to SMs in @p ctx->sms), the
 * destination registers the program actually writes, the 32 value
 * bits and a cycle in [0, cycleWindow); L2Line draws a global
 * address from @p ctx->globalAddrs (falling back to the launch's
 * initMem words); CtaSched draws a CTA index.
 * Deterministic: same (seed, trial, sites, launch, window, ctx)
 * always yields the same plan, and with a null / single-SM context
 * the per-SM draw order matches the historical single-SM derivation
 * bit-for-bit.
 */
FaultPlan makeFaultPlan(std::uint64_t seed, unsigned trial,
                        const std::vector<FaultSite> &sites,
                        const Launch &launch, Cycle cycleWindow,
                        const FaultPlanContext *ctx = nullptr);

/** What happened to the injected fault (filled in during the run). */
struct FaultReport
{
    bool enabled = false;   ///< a plan was armed
    bool fired = false;     ///< the fault cycle was reached
    bool landed = false;    ///< the flip struck live data
    bool staleMasked = false;       ///< struck a stale RF cell
    bool detectedByParity = false;  ///< protection flagged the flip
    bool correctedByEcc = false;    ///< protection repaired the flip
    bool repairedByRefetch = false; ///< clean RF copy healed the state
};

/**
 * Applies one FaultPlan to a running SmCore. The core calls
 * onCycle() at the top of every cycle and onWarpFinish() just before
 * it captures a warp's final register state.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultPlan &plan, FaultProtection protection);

    /** Fire the fault when its cycle arrives and resolve any pending
     *  deferred flip / restore once the BOC entry departs. */
    void onCycle(Cycle now, std::vector<Warp> &warps,
                 const std::vector<std::optional<Boc>> &bocs,
                 const std::vector<Rfc> &rfcs);

    /** Warp is finishing: resolve pending state against @p regs
     *  before the core snapshots it as the final register file. */
    void onWarpFinish(WarpId warp, RegFileState &regs);

    const FaultReport &report() const { return report_; }
    const FaultPlan &plan() const { return plan_; }

  private:
    /** Outstanding follow-up once the targeted BOC entry departs. */
    enum class Pending
    {
        None,
        DeferredRfFlip,  ///< RF cell flipped while a clean BOC copy
                         ///< shadowed it; apply when the copy departs
        BocRestore       ///< clean BOC entry corrupted; heal from the
                         ///< RF copy when the entry departs
    };

    void fire(std::vector<Warp> &warps,
              const std::vector<std::optional<Boc>> &bocs,
              const std::vector<Rfc> &rfcs);
    void resolvePending(RegFileState &regs);

    Value flipMask() const { return Value{1} << plan_.bit; }

    FaultPlan plan_;
    FaultProtection protection_;
    FaultReport report_;
    Pending pending_ = Pending::None;
    /** DeferredRfFlip: pre-flip value (flip is dead if it changed).
     *  BocRestore: the corrupt value (heal only while it persists). */
    Value refValue_ = 0;
};

} // namespace bow

#endif // BOWSIM_SM_FAULT_INJECTOR_H
