#include "sm/functional.h"

#include "common/log.h"

namespace bow {

const Kernel &
Launch::kernelOf(WarpId w) const
{
    if (warpKernels.empty())
        return kernel;
    if (w >= warpKernels.size())
        panic(strf("Launch::kernelOf: warp ", w, " out of range"));
    return warpKernels[w];
}

void
Launch::validate() const
{
    if (numWarps == 0)
        fatal("Launch: needs at least one warp");
    if (warpsPerCta == 0)
        fatal("Launch: CTAs need at least one warp");
    if (!warpKernels.empty() && warpKernels.size() != numWarps) {
        fatal(strf("Launch: ", warpKernels.size(),
                   " per-warp kernels but ", numWarps, " warps"));
    }
    for (WarpId w = 0; w < numWarps; ++w) {
        if (!kernelOf(w).finalized())
            fatal(strf("Launch: kernel for warp ", w,
                       " not finalized"));
    }
}

void
Launch::applyInit(RegFileState &regs, WarpId warpId,
                  MemoryStore &mem) const
{
    regs.fill(0);
    for (const auto &[reg, val] : initRegs)
        regs[reg] = val;
    (void)warpId;
    (void)mem;
}

FunctionalResult
runFunctional(const Launch &launch, std::uint64_t maxPerWarp,
              bool recordTraces)
{
    launch.validate();

    FunctionalResult out;
    for (const auto &[space, addr, val] : launch.initMem)
        out.finalMem.store(space, addr, val);

    out.traces.resize(launch.numWarps);
    out.finalRegs.resize(launch.numWarps);

    for (WarpId w = 0; w < launch.numWarps; ++w) {
        RegFileState &regs = out.finalRegs[w];
        launch.applyInit(regs, w, out.finalMem);
        const Kernel &kernel = launch.kernelOf(w);

        InstIdx pc = 0;
        std::uint64_t steps = 0;
        while (true) {
            if (steps++ >= maxPerWarp) {
                fatal(strf("runFunctional: warp ", w, " of kernel '",
                           kernel.name(), "' exceeded ", maxPerWarp,
                           " dynamic instructions"));
            }
            const ExecEffect fx = evaluate(kernel, pc, regs, w,
                                           launch.numWarps,
                                           out.finalMem);
            if (recordTraces) {
                out.traces[w].insts.push_back(
                    DynInst{pc, fx.wrote});
            }
            ++out.dynamicInsts;
            if (fx.wrote)
                regs[kernel.inst(pc).dst] = fx.result;
            if (fx.warpDone)
                break;
            pc = fx.nextPc;
        }
    }
    return out;
}

} // namespace bow
