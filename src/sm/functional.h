/**
 * @file
 * Pure functional (timing-free) execution of a launch: runs every
 * warp sequentially to completion, producing the dynamic instruction
 * traces consumed by the reuse characterisation (Fig. 3) and the
 * golden architectural state the timing simulator is checked against.
 */

#ifndef BOWSIM_SM_FUNCTIONAL_H
#define BOWSIM_SM_FUNCTIONAL_H

#include <vector>

#include "compiler/reuse.h"
#include "isa/kernel.h"
#include "sm/memory_model.h"
#include "sm/semantics.h"

namespace bow {

/** A kernel launch: the program plus its execution environment. */
struct Launch
{
    /** The SPMD program every warp runs (unless warpKernels is set). */
    Kernel kernel;
    unsigned numWarps = 1;

    /**
     * CTA granularity for the multi-SM grid scheduler: consecutive
     * groups of this many warps are placed on one SM as a unit (the
     * last CTA may be smaller). 1 — the default, and the only value
     * single-SM runs ever observe — makes every warp its own CTA.
     */
    unsigned warpsPerCta = 1;

    /**
     * Trace-driven mode: one program per warp (e.g. loaded from a
     * SASS-style dynamic trace). When non-empty its size must equal
     * numWarps and `kernel` is ignored.
     */
    std::vector<Kernel> warpKernels;

    /** Initial architectural register values, applied to every warp. */
    std::vector<std::pair<RegId, Value>> initRegs;
    /** Initial memory image. */
    std::vector<std::tuple<MemSpace, std::uint32_t, Value>> initMem;

    /** The program warp @p w executes. */
    const Kernel &kernelOf(WarpId w) const;

    /** Check structural consistency; fatal()s when broken. */
    void validate() const;

    /** Seed registers/memory of a fresh simulation instance. */
    void applyInit(RegFileState &regs, WarpId warpId,
                   MemoryStore &mem) const;
};

/** Result of a functional run. */
struct FunctionalResult
{
    std::vector<WarpTrace> traces;          ///< one per warp
    std::vector<RegFileState> finalRegs;    ///< one per warp
    MemoryStore finalMem;
    std::uint64_t dynamicInsts = 0;
};

/**
 * Execute @p launch functionally.
 *
 * @param launch       The kernel and its environment.
 * @param maxPerWarp   Per-warp dynamic instruction budget; exceeded
 *                     budgets are a fatal() (runaway kernel).
 * @param recordTraces When false, traces are left empty (cheaper).
 */
FunctionalResult runFunctional(const Launch &launch,
                               std::uint64_t maxPerWarp = 4'000'000,
                               bool recordTraces = true);

} // namespace bow

#endif // BOWSIM_SM_FUNCTIONAL_H
