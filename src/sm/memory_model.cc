#include "sm/memory_model.h"

#include <algorithm>

#include "common/json_util.h"
#include "common/log.h"
#include "gpu/shared_l2.h"

namespace bow {

namespace {

/** Deterministic value for never-written memory locations. */
Value
defaultValue(MemSpace space, std::uint32_t addr)
{
    std::uint64_t x = (static_cast<std::uint64_t>(
        static_cast<unsigned>(space) + 1) << 32) | addr;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return static_cast<Value>(x);
}

} // namespace

const std::unordered_map<std::uint32_t, Value> &
MemoryStore::spaceMap(MemSpace space) const
{
    switch (space) {
      case MemSpace::Global: return global_;
      case MemSpace::Shared: return shared_;
      case MemSpace::Const:  return const_;
    }
    panic("MemoryStore: bad space");
}

std::unordered_map<std::uint32_t, Value> &
MemoryStore::spaceMap(MemSpace space)
{
    return const_cast<std::unordered_map<std::uint32_t, Value> &>(
        static_cast<const MemoryStore *>(this)->spaceMap(space));
}

Value
MemoryStore::load(MemSpace space, std::uint32_t addr) const
{
    const auto &m = spaceMap(space);
    auto it = m.find(addr);
    return it == m.end() ? defaultValue(space, addr) : it->second;
}

void
MemoryStore::store(MemSpace space, std::uint32_t addr, Value v)
{
    spaceMap(space)[addr] = v;
}

void
MemoryStore::fill(MemSpace space, std::uint32_t addr,
                  const std::vector<Value> &values)
{
    auto &m = spaceMap(space);
    for (std::size_t i = 0; i < values.size(); ++i)
        m[addr + static_cast<std::uint32_t>(i * 4)] = values[i];
}

bool
MemoryStore::contentsEqual(const MemoryStore &other) const
{
    return global_ == other.global_ && shared_ == other.shared_ &&
        const_ == other.const_;
}

std::vector<std::uint32_t>
MemoryStore::globalAddrs() const
{
    std::vector<std::uint32_t> addrs;
    addrs.reserve(global_.size());
    for (const auto &[addr, val] : global_)
        addrs.push_back(addr);
    std::sort(addrs.begin(), addrs.end());
    return addrs;
}

std::vector<MemoryStore::Entry>
MemoryStore::exportEntries() const
{
    std::vector<Entry> entries;
    entries.reserve(global_.size() + shared_.size() + const_.size());
    for (const MemSpace space :
         {MemSpace::Global, MemSpace::Shared, MemSpace::Const}) {
        const std::size_t first = entries.size();
        for (const auto &[addr, val] : spaceMap(space))
            entries.push_back(Entry{space, addr, val});
        std::sort(entries.begin() + static_cast<std::ptrdiff_t>(first),
                  entries.end(),
                  [](const Entry &a, const Entry &b) {
                      return a.addr < b.addr;
                  });
    }
    return entries;
}

void
CacheTagArray::init(unsigned bytes, unsigned lineBytes,
                    unsigned nways)
{
    lineShift = 0;
    while ((1u << lineShift) < lineBytes)
        ++lineShift;
    const unsigned lines = bytes / lineBytes;
    ways = nways;
    sets = lines / nways;
    if (sets == 0)
        sets = 1;
    tags.assign(static_cast<std::size_t>(sets) * ways, kNoTag);
    lru.assign(static_cast<std::size_t>(sets) * ways, 0);
    tick = 0;
}

bool
CacheTagArray::accessLine(std::uint32_t addr, bool allocate)
{
    const std::uint64_t line = addr >> lineShift;
    const unsigned set = static_cast<unsigned>(line % sets);
    const std::uint64_t tag = line / sets;
    const std::size_t base = static_cast<std::size_t>(set) * ways;
    ++tick;
    for (unsigned w = 0; w < ways; ++w) {
        if (tags[base + w] == tag) {
            lru[base + w] = tick;
            return true;
        }
    }
    if (allocate) {
        unsigned victim = 0;
        for (unsigned w = 1; w < ways; ++w) {
            if (lru[base + w] < lru[base + victim])
                victim = w;
        }
        tags[base + victim] = tag;
        lru[base + victim] = tick;
    }
    return false;
}

bool
CacheTagArray::probeLine(std::uint32_t addr) const
{
    const std::uint64_t line = addr >> lineShift;
    const unsigned set = static_cast<unsigned>(line % sets);
    const std::uint64_t tag = line / sets;
    const std::size_t base = static_cast<std::size_t>(set) * ways;
    for (unsigned w = 0; w < ways; ++w) {
        if (tags[base + w] == tag)
            return true;
    }
    return false;
}

MemoryTiming::MemoryTiming(const SimConfig &config)
    : config_(&config), stats_("memory")
{
    l1_.init(config.l1Bytes, config.l1LineBytes, config.l1Ways);
    l2_.init(config.l2Bytes, config.l2LineBytes, config.l2Ways);
}

unsigned
MemoryTiming::access(MemSpace space, std::uint32_t addr, bool isStore,
                     Cycle now)
{
    if (space == MemSpace::Shared) {
        stats_.counter("shared_accesses").inc();
        return config_->sharedLatency;
    }
    if (space == MemSpace::Const) {
        stats_.counter("const_accesses").inc();
        return config_->l1Latency;
    }

    stats_.counter(isStore ? "global_stores" : "global_loads").inc();
    // Stores are write-through / no-allocate: they cost L1 latency on
    // the warp and stream to L2 in the background.
    if (isStore) {
        l1_.accessLine(addr, false);
        if (sharedL2_)
            sharedL2_->access(addr, true, now);
        else
            l2_.accessLine(addr, true);
        return config_->l1Latency;
    }
    if (l1_.accessLine(addr, true)) {
        stats_.counter("l1_hits").inc();
        return config_->l1Latency;
    }
    stats_.counter("l1_misses").inc();
    if (sharedL2_)
        return config_->l1Latency + sharedL2_->access(addr, false, now);
    if (l2_.accessLine(addr, true)) {
        stats_.counter("l2_hits").inc();
        return config_->l1Latency + config_->l2Latency;
    }
    stats_.counter("l2_misses").inc();
    return config_->l1Latency + config_->l2Latency +
        config_->dramLatency;
}

JsonValue
cacheTagsToJson(const CacheTagArray &t)
{
    JsonValue tags = JsonValue::array();
    for (std::uint64_t v : t.tags)
        tags.push(JsonValue(v));
    JsonValue lru = JsonValue::array();
    for (std::uint64_t v : t.lru)
        lru.push(JsonValue(v));
    JsonValue out = JsonValue::object();
    out.set("sets", JsonValue(std::uint64_t(t.sets)));
    out.set("ways", JsonValue(std::uint64_t(t.ways)));
    out.set("tags", std::move(tags));
    out.set("lru", std::move(lru));
    out.set("tick", JsonValue(t.tick));
    return out;
}

void
cacheTagsFromJson(CacheTagArray &t, const JsonValue &v)
{
    if (jsonio::getUint(v, "sets") != t.sets ||
        jsonio::getUint(v, "ways") != t.ways) {
        fatal("CacheTagArray restore: geometry mismatch");
    }
    const JsonValue &tags = jsonio::getArray(v, "tags");
    const JsonValue &lru = jsonio::getArray(v, "lru");
    if (tags.size() != t.tags.size() || lru.size() != t.lru.size())
        fatal("CacheTagArray restore: array size mismatch");
    for (std::size_t i = 0; i < t.tags.size(); ++i)
        t.tags[i] = tags.at(i).asUint();
    for (std::size_t i = 0; i < t.lru.size(); ++i)
        t.lru[i] = lru.at(i).asUint();
    t.tick = jsonio::getUint(v, "tick");
}

JsonValue
memoryStoreToJson(const MemoryStore &m)
{
    JsonValue out = JsonValue::array();
    for (const MemoryStore::Entry &e : m.exportEntries()) {
        JsonValue triple = JsonValue::array();
        triple.push(
            JsonValue(std::uint64_t(static_cast<unsigned>(e.space))));
        triple.push(JsonValue(std::uint64_t(e.addr)));
        triple.push(JsonValue(std::uint64_t(e.value)));
        out.push(std::move(triple));
    }
    return out;
}

MemoryStore
memoryStoreFromJson(const JsonValue &v)
{
    MemoryStore m;
    for (const JsonValue &triple : v.items()) {
        const unsigned space =
            static_cast<unsigned>(triple.at(0).asUint());
        if (space > static_cast<unsigned>(MemSpace::Const))
            fatal("MemoryStore restore: bad address space");
        m.store(static_cast<MemSpace>(space),
                static_cast<std::uint32_t>(triple.at(1).asUint()),
                static_cast<Value>(triple.at(2).asUint()));
    }
    return m;
}

JsonValue
MemoryTiming::saveState() const
{
    JsonValue out = JsonValue::object();
    out.set("l1", cacheTagsToJson(l1_));
    out.set("l2", cacheTagsToJson(l2_));
    out.set("stats", stats_.saveJson());
    return out;
}

void
MemoryTiming::loadState(const JsonValue &v)
{
    cacheTagsFromJson(l1_, jsonio::member(v, "l1"));
    cacheTagsFromJson(l2_, jsonio::member(v, "l2"));
    stats_.loadJson(jsonio::member(v, "stats"));
}

} // namespace bow
