/**
 * @file
 * Memory subsystem: functional storage (MemoryStore) plus a timing
 * model (MemoryTiming) with L1/L2 tag arrays and fixed service
 * latencies per level. Addresses are 32-bit byte addresses; values
 * are 32-bit words.
 */

#ifndef BOWSIM_SM_MEMORY_MODEL_H
#define BOWSIM_SM_MEMORY_MODEL_H

#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "sm/sim_config.h"

namespace bow {

/** Which address space a memory instruction targets. */
enum class MemSpace
{
    Global,
    Shared,
    Const
};

/**
 * Functional memory contents. Sparse: unwritten locations read as a
 * deterministic pseudo-random function of their address so loads from
 * uninitialised memory are reproducible.
 */
class MemoryStore
{
  public:
    /** Read a 32-bit word. */
    Value load(MemSpace space, std::uint32_t addr) const;

    /** Write a 32-bit word. */
    void store(MemSpace space, std::uint32_t addr, Value v);

    /** Bulk-initialise consecutive words starting at @p addr. */
    void fill(MemSpace space, std::uint32_t addr,
              const std::vector<Value> &values);

    /** True when the two stores have identical written contents. */
    bool contentsEqual(const MemoryStore &other) const;

    /** Every written Global address, sorted ascending — the
     *  deterministic candidate pool for L2-line fault targeting
     *  (fault plans must not depend on hash-map iteration order). */
    std::vector<std::uint32_t> globalAddrs() const;

    /** One written memory word (the unit of serialization). */
    struct Entry
    {
        MemSpace space = MemSpace::Global;
        std::uint32_t addr = 0;
        Value value = 0;
    };

    /**
     * Every written word of every space, ordered (space, addr)
     * ascending — a deterministic flat image for the result-store
     * codec (service/sim_codec.h). Replaying the entries through
     * store() on an empty MemoryStore reproduces contentsEqual()
     * contents exactly.
     */
    std::vector<Entry> exportEntries() const;

  private:
    const std::unordered_map<std::uint32_t, Value> &
    spaceMap(MemSpace space) const;
    std::unordered_map<std::uint32_t, Value> &spaceMap(MemSpace space);

    std::unordered_map<std::uint32_t, Value> global_;
    std::unordered_map<std::uint32_t, Value> shared_;
    std::unordered_map<std::uint32_t, Value> const_;
};

/**
 * One set-associative tag-only cache level with LRU replacement.
 * Shared between the per-SM MemoryTiming levels and the banked
 * device-level L2 (gpu/shared_l2.h), which carves one of these per
 * bank.
 */
struct CacheTagArray
{
    unsigned sets = 0;
    unsigned ways = 0;
    unsigned lineShift = 0;
    // tags[set * ways + way]; kNoTag means invalid.
    std::vector<std::uint64_t> tags;
    std::vector<std::uint64_t> lru;
    std::uint64_t tick = 0;

    static constexpr std::uint64_t kNoTag = ~0ull;

    void init(unsigned bytes, unsigned lineBytes, unsigned nways);
    /** Probe for @p addr; allocates on miss. @return hit? */
    bool accessLine(std::uint32_t addr, bool allocate);
    /** Pure residency probe: no allocation, no LRU/tick update. */
    bool probeLine(std::uint32_t addr) const;
};

/** Snapshot codec for one tag array (geometry checked on restore). */
JsonValue cacheTagsToJson(const CacheTagArray &t);
void cacheTagsFromJson(CacheTagArray &t, const JsonValue &v);

/** Snapshot codec for the functional memory image: [space, addr,
 *  value] triples in exportEntries() order, replayed through store(). */
JsonValue memoryStoreToJson(const MemoryStore &m);
MemoryStore memoryStoreFromJson(const JsonValue &v);

class SharedL2;

/**
 * Timing model: a two-level tag-only cache hierarchy with LRU
 * replacement. An access returns its total service latency; the
 * functional value comes from MemoryStore independently.
 *
 * In a multi-SM GPU the L2 is a chip-level shared resource: after
 * attachSharedL2() the private L2 tags are ignored and L1 misses are
 * forwarded to the banked device L2 instead (timestamped with the
 * global cycle so bank queueing is modelled). Without an attached
 * SharedL2 the behaviour is bit-identical to the legacy private
 * hierarchy.
 */
class MemoryTiming
{
  public:
    explicit MemoryTiming(const SimConfig &config);

    /**
     * Account one access and return its latency in cycles.
     *
     * @param space   Address space (shared/const accesses bypass the
     *                global cache hierarchy at fixed latency).
     * @param addr    Byte address.
     * @param isStore Stores are write-through/no-allocate.
     * @param now     Global cycle of the access; only consulted by an
     *                attached SharedL2 (bank-queue timestamps).
     */
    unsigned access(MemSpace space, std::uint32_t addr, bool isStore,
                    Cycle now = 0);

    /** Route L1 misses to the chip-level L2 instead of the private
     *  one (multi-SM runs; see gpu/gpu_core.h). */
    void attachSharedL2(SharedL2 *l2) { sharedL2_ = l2; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** Serialize L1/L2 tags + stats for a snapshot (the attached
     *  SharedL2, if any, serializes with its owning GpuCore). */
    JsonValue saveState() const;
    /** Overwrite timing state from saveState() output. */
    void loadState(const JsonValue &v);

  private:
    const SimConfig *config_;
    CacheTagArray l1_;
    CacheTagArray l2_;
    SharedL2 *sharedL2_ = nullptr;
    StatGroup stats_;
};

} // namespace bow

#endif // BOWSIM_SM_MEMORY_MODEL_H
