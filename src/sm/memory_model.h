/**
 * @file
 * Memory subsystem: functional storage (MemoryStore) plus a timing
 * model (MemoryTiming) with L1/L2 tag arrays and fixed service
 * latencies per level. Addresses are 32-bit byte addresses; values
 * are 32-bit words.
 */

#ifndef BOWSIM_SM_MEMORY_MODEL_H
#define BOWSIM_SM_MEMORY_MODEL_H

#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "sm/sim_config.h"

namespace bow {

/** Which address space a memory instruction targets. */
enum class MemSpace
{
    Global,
    Shared,
    Const
};

/**
 * Functional memory contents. Sparse: unwritten locations read as a
 * deterministic pseudo-random function of their address so loads from
 * uninitialised memory are reproducible.
 */
class MemoryStore
{
  public:
    /** Read a 32-bit word. */
    Value load(MemSpace space, std::uint32_t addr) const;

    /** Write a 32-bit word. */
    void store(MemSpace space, std::uint32_t addr, Value v);

    /** Bulk-initialise consecutive words starting at @p addr. */
    void fill(MemSpace space, std::uint32_t addr,
              const std::vector<Value> &values);

    /** True when the two stores have identical written contents. */
    bool contentsEqual(const MemoryStore &other) const;

  private:
    const std::unordered_map<std::uint32_t, Value> &
    spaceMap(MemSpace space) const;
    std::unordered_map<std::uint32_t, Value> &spaceMap(MemSpace space);

    std::unordered_map<std::uint32_t, Value> global_;
    std::unordered_map<std::uint32_t, Value> shared_;
    std::unordered_map<std::uint32_t, Value> const_;
};

/**
 * Timing model: a two-level tag-only cache hierarchy with LRU
 * replacement. An access returns its total service latency; the
 * functional value comes from MemoryStore independently.
 */
class MemoryTiming
{
  public:
    explicit MemoryTiming(const SimConfig &config);

    /**
     * Account one access and return its latency in cycles.
     *
     * @param space   Address space (shared/const accesses bypass the
     *                global cache hierarchy at fixed latency).
     * @param addr    Byte address.
     * @param isStore Stores are write-through/no-allocate.
     */
    unsigned access(MemSpace space, std::uint32_t addr, bool isStore);

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    /** One set-associative tag-only cache level. */
    struct CacheLevel
    {
        unsigned sets = 0;
        unsigned ways = 0;
        unsigned lineShift = 0;
        // tags[set * ways + way]; kNoTag means invalid.
        std::vector<std::uint64_t> tags;
        std::vector<std::uint64_t> lru;
        std::uint64_t tick = 0;

        static constexpr std::uint64_t kNoTag = ~0ull;

        void init(unsigned bytes, unsigned lineBytes, unsigned nways);
        /** Probe for @p addr; allocates on miss. @return hit? */
        bool accessLine(std::uint32_t addr, bool allocate);
    };

    const SimConfig *config_;
    CacheLevel l1_;
    CacheLevel l2_;
    StatGroup stats_;
};

} // namespace bow

#endif // BOWSIM_SM_MEMORY_MODEL_H
