#include "sm/register_file.h"

#include "common/log.h"

namespace bow {

RegisterFile::RegisterFile(const SimConfig &config)
    : config_(&config),
      readQueues_(config.numBanks),
      writeQueues_(config.numBanks),
      stats_("rf")
{
}

BankId
RegisterFile::bankOf(WarpId warp, RegId reg) const
{
    return static_cast<BankId>(
        (static_cast<unsigned>(reg) + warp) % config_->numBanks);
}

void
RegisterFile::pushRead(WarpId warp, RegId reg, std::uint32_t collector,
                       bool rfcHit)
{
    RfRequest req;
    req.isWrite = false;
    req.warp = warp;
    req.reg = reg;
    req.collector = collector;
    req.rfcHit = rfcHit;
    const BankId bank = bankOf(warp, reg);
    if (!readQueues_[bank].empty() || !writeQueues_[bank].empty())
        stats_.counter("read_conflicts").inc();
    readQueues_[bank].push_back(req);
    stats_.counter("read_requests").inc();
}

void
RegisterFile::pushWrite(WarpId warp, RegId reg, bool releaseOnComplete)
{
    RfRequest req;
    req.isWrite = true;
    req.warp = warp;
    req.reg = reg;
    req.releaseOnComplete = releaseOnComplete;
    const BankId bank = bankOf(warp, reg);
    if (!readQueues_[bank].empty() || !writeQueues_[bank].empty())
        stats_.counter("write_conflicts").inc();
    writeQueues_[bank].push_back(req);
    stats_.counter("write_requests").inc();
}

std::vector<RfRequest>
RegisterFile::tick()
{
    std::vector<RfRequest> served;
    for (unsigned bank = 0; bank < config_->numBanks; ++bank) {
        auto &writes = writeQueues_[bank];
        auto &reads = readQueues_[bank];
        if (!writes.empty()) {
            served.push_back(writes.front());
            writes.pop_front();
            stats_.counter("writes").inc();
        } else if (!reads.empty()) {
            served.push_back(reads.front());
            reads.pop_front();
            stats_.counter("reads").inc();
        }
    }
    return served;
}

std::size_t
RegisterFile::pending() const
{
    std::size_t n = 0;
    for (const auto &q : readQueues_)
        n += q.size();
    for (const auto &q : writeQueues_)
        n += q.size();
    return n;
}

} // namespace bow
