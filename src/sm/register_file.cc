#include "sm/register_file.h"

#include "common/json_util.h"
#include "common/log.h"

namespace bow {

namespace {

JsonValue
rfRequestToJson(const RfRequest &r)
{
    JsonValue a = JsonValue::array();
    a.push(JsonValue(r.isWrite));
    a.push(JsonValue(std::uint64_t(r.warp)));
    a.push(JsonValue(std::uint64_t(r.reg)));
    a.push(JsonValue(std::uint64_t(r.collector)));
    a.push(JsonValue(r.releaseOnComplete));
    a.push(JsonValue(r.rfcHit));
    return a;
}

RfRequest
rfRequestFromJson(const JsonValue &a)
{
    RfRequest r;
    r.isWrite = a.at(0).asBool();
    r.warp = static_cast<WarpId>(a.at(1).asUint());
    r.reg = static_cast<RegId>(a.at(2).asUint());
    r.collector = static_cast<std::uint32_t>(a.at(3).asUint());
    r.releaseOnComplete = a.at(4).asBool();
    r.rfcHit = a.at(5).asBool();
    return r;
}

JsonValue
queuesToJson(const std::vector<std::deque<RfRequest>> &queues)
{
    JsonValue out = JsonValue::array();
    for (const auto &q : queues) {
        JsonValue bank = JsonValue::array();
        for (const RfRequest &r : q)
            bank.push(rfRequestToJson(r));
        out.push(std::move(bank));
    }
    return out;
}

void
queuesFromJson(std::vector<std::deque<RfRequest>> &queues,
               const JsonValue &v, std::size_t &pending)
{
    if (v.size() != queues.size())
        fatal("RegisterFile::loadState: bank count mismatch");
    for (std::size_t b = 0; b < queues.size(); ++b) {
        queues[b].clear();
        for (const JsonValue &r : v.at(b).items()) {
            queues[b].push_back(rfRequestFromJson(r));
            ++pending;
        }
    }
}

} // namespace

RegisterFile::RegisterFile(const SimConfig &config)
    : config_(&config),
      readQueues_(config.numBanks),
      writeQueues_(config.numBanks),
      stats_("rf"),
      readConflicts_(&stats_.counter("read_conflicts")),
      writeConflicts_(&stats_.counter("write_conflicts")),
      readRequests_(&stats_.counter("read_requests")),
      writeRequests_(&stats_.counter("write_requests")),
      reads_(&stats_.counter("reads")),
      writes_(&stats_.counter("writes"))
{
}

BankId
RegisterFile::bankOf(WarpId warp, RegId reg) const
{
    return static_cast<BankId>(
        (static_cast<unsigned>(reg) + warp) % config_->numBanks);
}

void
RegisterFile::pushRead(WarpId warp, RegId reg, std::uint32_t collector,
                       bool rfcHit)
{
    RfRequest req;
    req.isWrite = false;
    req.warp = warp;
    req.reg = reg;
    req.collector = collector;
    req.rfcHit = rfcHit;
    const BankId bank = bankOf(warp, reg);
    if (!readQueues_[bank].empty() || !writeQueues_[bank].empty())
        readConflicts_->inc();
    readQueues_[bank].push_back(req);
    ++pending_;
    readRequests_->inc();
}

void
RegisterFile::pushWrite(WarpId warp, RegId reg, bool releaseOnComplete)
{
    RfRequest req;
    req.isWrite = true;
    req.warp = warp;
    req.reg = reg;
    req.releaseOnComplete = releaseOnComplete;
    const BankId bank = bankOf(warp, reg);
    if (!readQueues_[bank].empty() || !writeQueues_[bank].empty())
        writeConflicts_->inc();
    writeQueues_[bank].push_back(req);
    ++pending_;
    writeRequests_->inc();
}

JsonValue
RegisterFile::saveState() const
{
    JsonValue out = JsonValue::object();
    out.set("reads", queuesToJson(readQueues_));
    out.set("writes", queuesToJson(writeQueues_));
    out.set("stats", stats_.saveJson());
    return out;
}

void
RegisterFile::loadState(const JsonValue &v)
{
    pending_ = 0;
    queuesFromJson(readQueues_, jsonio::getArray(v, "reads"), pending_);
    queuesFromJson(writeQueues_, jsonio::getArray(v, "writes"),
                   pending_);
    stats_.loadJson(jsonio::member(v, "stats"));
}

std::vector<RfRequest>
RegisterFile::tick()
{
    std::vector<RfRequest> served;
    tick(served);
    return served;
}

void
RegisterFile::tick(std::vector<RfRequest> &served)
{
    served.clear();
    if (pending_ == 0)
        return;
    for (unsigned bank = 0; bank < config_->numBanks; ++bank) {
        auto &writes = writeQueues_[bank];
        auto &reads = readQueues_[bank];
        if (!writes.empty()) {
            served.push_back(writes.front());
            writes.pop_front();
            writes_->inc();
        } else if (!reads.empty()) {
            served.push_back(reads.front());
            reads.pop_front();
            reads_->inc();
        }
    }
    pending_ -= served.size();
}

} // namespace bow
