#include "sm/register_file.h"

#include "common/log.h"

namespace bow {

RegisterFile::RegisterFile(const SimConfig &config)
    : config_(&config),
      readQueues_(config.numBanks),
      writeQueues_(config.numBanks),
      stats_("rf"),
      readConflicts_(&stats_.counter("read_conflicts")),
      writeConflicts_(&stats_.counter("write_conflicts")),
      readRequests_(&stats_.counter("read_requests")),
      writeRequests_(&stats_.counter("write_requests")),
      reads_(&stats_.counter("reads")),
      writes_(&stats_.counter("writes"))
{
}

BankId
RegisterFile::bankOf(WarpId warp, RegId reg) const
{
    return static_cast<BankId>(
        (static_cast<unsigned>(reg) + warp) % config_->numBanks);
}

void
RegisterFile::pushRead(WarpId warp, RegId reg, std::uint32_t collector,
                       bool rfcHit)
{
    RfRequest req;
    req.isWrite = false;
    req.warp = warp;
    req.reg = reg;
    req.collector = collector;
    req.rfcHit = rfcHit;
    const BankId bank = bankOf(warp, reg);
    if (!readQueues_[bank].empty() || !writeQueues_[bank].empty())
        readConflicts_->inc();
    readQueues_[bank].push_back(req);
    ++pending_;
    readRequests_->inc();
}

void
RegisterFile::pushWrite(WarpId warp, RegId reg, bool releaseOnComplete)
{
    RfRequest req;
    req.isWrite = true;
    req.warp = warp;
    req.reg = reg;
    req.releaseOnComplete = releaseOnComplete;
    const BankId bank = bankOf(warp, reg);
    if (!readQueues_[bank].empty() || !writeQueues_[bank].empty())
        writeConflicts_->inc();
    writeQueues_[bank].push_back(req);
    ++pending_;
    writeRequests_->inc();
}

std::vector<RfRequest>
RegisterFile::tick()
{
    std::vector<RfRequest> served;
    tick(served);
    return served;
}

void
RegisterFile::tick(std::vector<RfRequest> &served)
{
    served.clear();
    if (pending_ == 0)
        return;
    for (unsigned bank = 0; bank < config_->numBanks; ++bank) {
        auto &writes = writeQueues_[bank];
        auto &reads = readQueues_[bank];
        if (!writes.empty()) {
            served.push_back(writes.front());
            writes.pop_front();
            writes_->inc();
        } else if (!reads.empty()) {
            served.push_back(reads.front());
            reads.pop_front();
            reads_->inc();
        }
    }
    pending_ -= served.size();
}

} // namespace bow
