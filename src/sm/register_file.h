/**
 * @file
 * Timing model of the banked register file (Fig. 2 of the paper):
 * 32 single-ported banks behind a bank arbitrator. Warp-register
 * (w, r) maps to bank (r + w) % numBanks — the GPGPU-Sim swizzle —
 * and each bank serves one request per cycle from a FIFO queue, so
 * conflicting accesses serialize exactly as in the baseline machine.
 *
 * The register file carries no values (architectural state lives in
 * the Warp); it models ports, conflicts and access counts.
 */

#ifndef BOWSIM_SM_REGISTER_FILE_H
#define BOWSIM_SM_REGISTER_FILE_H

#include <deque>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "sm/sim_config.h"

namespace bow {

/** One queued register-bank access. */
struct RfRequest
{
    bool isWrite = false;
    WarpId warp = 0;
    RegId reg = kNoReg;
    /** Collector that issued a read; ~0u for writes. */
    std::uint32_t collector = ~0u;
    /** Release the scoreboard write reservation when this write
     *  completes (baseline / RfOnly-tagged writes). */
    bool releaseOnComplete = false;
    /**
     * The read will be served by the register-file cache. The RFC is
     * organised like the RF (same banks, arbiter and collector port),
     * so the access costs the same time but cheaper energy — the
     * paper's explanation of why RFC saves power yet barely improves
     * performance (Sec. V-A).
     */
    bool rfcHit = false;
};

/**
 * The banked register file. Each bank serves one request per cycle;
 * write-backs have priority over reads (as in GPGPU-Sim's operand
 * collector arbitration), and each class is FIFO within itself.
 * Write priority also guarantees a read never overtakes an earlier
 * write to the same register.
 */
class RegisterFile
{
  public:
    explicit RegisterFile(const SimConfig &config);

    /** Bank holding register @p reg of warp @p warp. */
    BankId bankOf(WarpId warp, RegId reg) const;

    /** Enqueue a read; served FIFO within its bank. */
    void pushRead(WarpId warp, RegId reg, std::uint32_t collector,
                  bool rfcHit = false);

    /** Enqueue a write-back. */
    void pushWrite(WarpId warp, RegId reg, bool releaseOnComplete);

    /**
     * Advance one cycle: each bank serves at most one request.
     * @return The requests served this cycle.
     */
    std::vector<RfRequest> tick();

    /** As tick(), writing the served requests into a caller-owned
     *  reusable buffer (cleared first) — the per-cycle path. */
    void tick(std::vector<RfRequest> &served);

    /** Total queued requests across all banks (O(1)). */
    std::size_t pending() const { return pending_; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** Serialize queued requests + stats for a snapshot. */
    JsonValue saveState() const;
    /** Overwrite queue contents from saveState() output. */
    void loadState(const JsonValue &v);

  private:
    const SimConfig *config_;
    std::vector<std::deque<RfRequest>> readQueues_;
    std::vector<std::deque<RfRequest>> writeQueues_;
    std::size_t pending_ = 0;   ///< total queued, kept by push/tick
    StatGroup stats_;
    // Hot-path counters resolved once (Counter nodes are
    // address-stable), so ticks don't re-hash the key every cycle.
    Counter *readConflicts_ = nullptr;
    Counter *writeConflicts_ = nullptr;
    Counter *readRequests_ = nullptr;
    Counter *writeRequests_ = nullptr;
    Counter *reads_ = nullptr;
    Counter *writes_ = nullptr;
};

} // namespace bow

#endif // BOWSIM_SM_REGISTER_FILE_H
