#include "sm/rfc.h"

#include "common/json_util.h"
#include "common/log.h"

namespace bow {

Rfc::Rfc(unsigned entries)
    : capacity_(entries)
{
    if (entries == 0)
        fatal("Rfc: needs at least one entry");
    entries_.reserve(entries);
}

bool
Rfc::readHit(RegId reg) const
{
    for (const auto &e : entries_) {
        if (e.reg == reg)
            return true;
    }
    return false;
}

Rfc::WriteResult
Rfc::write(RegId reg)
{
    WriteResult out;
    ++tick_;
    for (auto &e : entries_) {
        if (e.reg == reg) {
            e.dirty = true;
            return out;
        }
    }
    if (entries_.size() >= capacity_) {
        std::size_t victim = 0;
        for (std::size_t i = 1; i < entries_.size(); ++i) {
            if (entries_[i].allocTick < entries_[victim].allocTick)
                victim = i;
        }
        if (entries_[victim].dirty) {
            out.evictedDirty = true;
            out.evictedReg = entries_[victim].reg;
        }
        entries_.erase(entries_.begin() +
                       static_cast<std::ptrdiff_t>(victim));
    }
    Entry e;
    e.reg = reg;
    e.dirty = true;
    e.allocTick = tick_;
    entries_.push_back(e);
    return out;
}

bool
Rfc::holdsDirty(RegId reg) const
{
    for (const auto &e : entries_) {
        if (e.reg == reg && e.dirty)
            return true;
    }
    return false;
}

std::vector<RegId>
Rfc::flushDirty()
{
    std::vector<RegId> out;
    for (const auto &e : entries_) {
        if (e.dirty)
            out.push_back(e.reg);
    }
    entries_.clear();
    return out;
}

JsonValue
Rfc::saveState() const
{
    JsonValue entries = JsonValue::array();
    for (const Entry &e : entries_) {
        JsonValue a = JsonValue::array();
        a.push(JsonValue(std::uint64_t(e.reg)));
        a.push(JsonValue(e.dirty));
        a.push(JsonValue(e.allocTick));
        entries.push(std::move(a));
    }
    JsonValue out = JsonValue::object();
    out.set("entries", std::move(entries));
    out.set("tick", JsonValue(tick_));
    return out;
}

void
Rfc::loadState(const JsonValue &v)
{
    const JsonValue &entries = jsonio::getArray(v, "entries");
    if (entries.size() > capacity_)
        fatal("Rfc::loadState: more entries than capacity");
    entries_.clear();
    for (const JsonValue &a : entries.items()) {
        Entry e;
        e.reg = static_cast<RegId>(a.at(0).asUint());
        e.dirty = a.at(1).asBool();
        e.allocTick = a.at(2).asUint();
        entries_.push_back(e);
    }
    tick_ = jsonio::getUint(v, "tick");
}

} // namespace bow
