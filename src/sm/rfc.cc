#include "sm/rfc.h"

#include "common/log.h"

namespace bow {

Rfc::Rfc(unsigned entries)
    : capacity_(entries)
{
    if (entries == 0)
        fatal("Rfc: needs at least one entry");
    entries_.reserve(entries);
}

bool
Rfc::readHit(RegId reg) const
{
    for (const auto &e : entries_) {
        if (e.reg == reg)
            return true;
    }
    return false;
}

Rfc::WriteResult
Rfc::write(RegId reg)
{
    WriteResult out;
    ++tick_;
    for (auto &e : entries_) {
        if (e.reg == reg) {
            e.dirty = true;
            return out;
        }
    }
    if (entries_.size() >= capacity_) {
        std::size_t victim = 0;
        for (std::size_t i = 1; i < entries_.size(); ++i) {
            if (entries_[i].allocTick < entries_[victim].allocTick)
                victim = i;
        }
        if (entries_[victim].dirty) {
            out.evictedDirty = true;
            out.evictedReg = entries_[victim].reg;
        }
        entries_.erase(entries_.begin() +
                       static_cast<std::ptrdiff_t>(victim));
    }
    Entry e;
    e.reg = reg;
    e.dirty = true;
    e.allocTick = tick_;
    entries_.push_back(e);
    return out;
}

bool
Rfc::holdsDirty(RegId reg) const
{
    for (const auto &e : entries_) {
        if (e.reg == reg && e.dirty)
            return true;
    }
    return false;
}

std::vector<RegId>
Rfc::flushDirty()
{
    std::vector<RegId> out;
    for (const auto &e : entries_) {
        if (e.dirty)
            out.push_back(e.reg);
    }
    entries_.clear();
    return out;
}

} // namespace bow
