/**
 * @file
 * Register-file cache (RFC) baseline, after Gebhart et al. (ISCA'11)
 * as characterised in the paper's Sec. V-A comparison: a small
 * per-warp cache organised like the RF. All computed results are
 * written to the RFC (write-allocate); reads that hit skip the RF
 * bank access (saving energy) but still traverse the collector's
 * single port, so port contention is not relieved.
 */

#ifndef BOWSIM_SM_RFC_H
#define BOWSIM_SM_RFC_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace bow {

class JsonValue;

/** One warp's register-file cache. */
class Rfc
{
  public:
    explicit Rfc(unsigned entries);

    /** Probe for a read; hits do not re-order the FIFO. */
    bool readHit(RegId reg) const;

    /** Result of a write allocation. */
    struct WriteResult
    {
        bool evictedDirty = false;
        RegId evictedReg = kNoReg;
    };

    /** Allocate/update @p reg on a result write (FIFO replacement). */
    WriteResult write(RegId reg);

    /** Warp ended: dirty registers that must be written to the RF. */
    std::vector<RegId> flushDirty();

    /** The resident entry for @p reg holds the only live copy (the
     *  RFC is write-allocate, so resident entries are dirty until
     *  flushed). Fault-injection exposure query. */
    bool holdsDirty(RegId reg) const;

    /** Serialize entries + allocation clock for a snapshot. */
    JsonValue saveState() const;
    /** Overwrite contents from saveState() output. */
    void loadState(const JsonValue &v);

  private:
    struct Entry
    {
        RegId reg = kNoReg;
        bool dirty = false;
        std::uint64_t allocTick = 0;
    };

    unsigned capacity_;
    std::uint64_t tick_ = 0;
    std::vector<Entry> entries_;
};

} // namespace bow

#endif // BOWSIM_SM_RFC_H
