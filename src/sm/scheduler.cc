#include "sm/scheduler.h"

#include <algorithm>

#include "common/json_util.h"
#include "common/log.h"

namespace bow {

WarpSchedulers::WarpSchedulers(const SimConfig &config)
    : config_(&config),
      greedy_(config.numSchedulers, static_cast<WarpId>(kNoReg)),
      rotor_(config.numSchedulers, 0)
{
}

std::vector<WarpId>
WarpSchedulers::pickOrder(unsigned sid,
                          const std::vector<Warp> &warps) const
{
    std::vector<WarpId> mine;
    pickOrder(sid, warps, mine);
    return mine;
}

void
WarpSchedulers::pickOrder(unsigned sid, const std::vector<Warp> &warps,
                          std::vector<WarpId> &mine) const
{
    mine.clear();
    for (const Warp &w : warps) {
        if (w.id % config_->numSchedulers == sid &&
            w.state == WarpState::Active) {
            mine.push_back(w.id);
        }
    }
    if (mine.empty())
        return;

    switch (config_->schedPolicy) {
      case SchedPolicy::GTO: {
        // Oldest-first by activation time, with the greedy favourite
        // hoisted to the front.
        std::stable_sort(mine.begin(), mine.end(),
                         [&](WarpId a, WarpId b) {
                             return warps[a].activated <
                                 warps[b].activated;
                         });
        const WarpId fav = greedy_[sid];
        auto it = std::find(mine.begin(), mine.end(), fav);
        if (it != mine.end())
            std::rotate(mine.begin(), it, it + 1);
        break;
      }
      case SchedPolicy::LRR: {
        // LRR: rotate the candidate list.
        const unsigned start = rotor_[sid] % mine.size();
        std::rotate(mine.begin(), mine.begin() + start, mine.end());
        break;
      }
      case SchedPolicy::TWO_LEVEL: {
        // Active set first: warps with no outstanding loads, oldest
        // first; memory-waiting warps trail in age order.
        std::stable_sort(mine.begin(), mine.end(),
                         [&](WarpId a, WarpId b) {
                             const bool wa = warps[a].pendingLoads > 0;
                             const bool wb = warps[b].pendingLoads > 0;
                             if (wa != wb)
                                 return !wa;
                             return warps[a].activated <
                                 warps[b].activated;
                         });
        break;
      }
    }
}

void
WarpSchedulers::noteIssue(unsigned sid, WarpId w)
{
    if (sid >= greedy_.size())
        panic("WarpSchedulers::noteIssue: bad scheduler id");
    greedy_[sid] = w;
    ++rotor_[sid];
}

JsonValue
WarpSchedulers::saveState() const
{
    JsonValue greedy = JsonValue::array();
    for (WarpId w : greedy_)
        greedy.push(JsonValue(std::uint64_t(w)));
    JsonValue rotor = JsonValue::array();
    for (unsigned r : rotor_)
        rotor.push(JsonValue(std::uint64_t(r)));
    JsonValue out = JsonValue::object();
    out.set("greedy", std::move(greedy));
    out.set("rotor", std::move(rotor));
    return out;
}

void
WarpSchedulers::loadState(const JsonValue &v)
{
    const JsonValue &greedy = jsonio::getArray(v, "greedy");
    const JsonValue &rotor = jsonio::getArray(v, "rotor");
    if (greedy.size() != greedy_.size() ||
        rotor.size() != rotor_.size()) {
        fatal("WarpSchedulers::loadState: scheduler count mismatch");
    }
    for (std::size_t i = 0; i < greedy_.size(); ++i)
        greedy_[i] = static_cast<WarpId>(greedy.at(i).asUint());
    for (std::size_t i = 0; i < rotor_.size(); ++i)
        rotor_[i] = static_cast<unsigned>(rotor.at(i).asUint());
}

} // namespace bow
