/**
 * @file
 * Warp schedulers. Each SM has `numSchedulers` schedulers; warp w
 * belongs to scheduler (w % numSchedulers). Each cycle a scheduler
 * issues up to `issuePerScheduler` instructions, choosing warps by
 * policy:
 *
 *  - GTO (greedy-then-oldest, Table II): keep issuing the warp that
 *    issued last; when it stalls, fall back to the oldest ready warp.
 *  - LRR (loose round-robin): rotate through ready warps.
 */

#ifndef BOWSIM_SM_SCHEDULER_H
#define BOWSIM_SM_SCHEDULER_H

#include <vector>

#include "common/types.h"
#include "sm/sim_config.h"
#include "sm/warp.h"

namespace bow {

class JsonValue;

/** All of an SM's warp schedulers. */
class WarpSchedulers
{
  public:
    explicit WarpSchedulers(const SimConfig &config);

    /**
     * Candidate issue order for scheduler @p sid this cycle; the SM
     * core walks this order and issues from the first warps that
     * pass the scoreboard/collector checks.
     */
    std::vector<WarpId> pickOrder(unsigned sid,
                                  const std::vector<Warp> &warps) const;

    /** As above, writing into a caller-owned reusable buffer
     *  (cleared first) — the SM core's per-cycle path. */
    void pickOrder(unsigned sid, const std::vector<Warp> &warps,
                   std::vector<WarpId> &out) const;

    /** Record that @p w issued (updates GTO greediness / LRR rotor). */
    void noteIssue(unsigned sid, WarpId w);

    /** Serialize per-scheduler favourites/rotors for a snapshot. */
    JsonValue saveState() const;
    /** Overwrite scheduler state from saveState() output. */
    void loadState(const JsonValue &v);

  private:
    const SimConfig *config_;
    std::vector<WarpId> greedy_;        ///< per-scheduler GTO favourite
    std::vector<unsigned> rotor_;       ///< per-scheduler LRR position
};

} // namespace bow

#endif // BOWSIM_SM_SCHEDULER_H
