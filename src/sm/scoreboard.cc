#include "sm/scoreboard.h"

#include "common/json_util.h"
#include "common/log.h"

namespace bow {

Scoreboard::Scoreboard(unsigned numWarps)
    : warps_(numWarps),
      rawStalls_(&stats_.counter("raw_stalls")),
      wawStalls_(&stats_.counter("waw_stalls")),
      warStalls_(&stats_.counter("war_stalls")),
      reservations_(&stats_.counter("reservations"))
{
}

bool
Scoreboard::canIssue(WarpId w, const Instruction &inst) const
{
    const PerWarp &pw = warps_.at(w);
    for (RegId r : inst.srcRegs()) {
        if (pw.pendingWrites[r]) {
            rawStalls_->inc();
            return false;   // RAW
        }
    }
    if (inst.hasDest()) {
        if (pw.pendingWrites[inst.dst]) {
            wawStalls_->inc();
            return false;   // WAW
        }
        if (pw.pendingReads[inst.dst]) {
            warStalls_->inc();
            return false;   // WAR
        }
    }
    return true;
}

void
Scoreboard::reserve(WarpId w, const Instruction &inst)
{
    reservations_->inc();
    PerWarp &pw = warps_.at(w);
    for (RegId r : inst.uniqueSrcRegs()) {
        if (pw.pendingReads[r] == 0xFF)
            panic("Scoreboard: pendingReads overflow");
        ++pw.pendingReads[r];
    }
    if (inst.hasDest()) {
        if (pw.pendingWrites[inst.dst])
            panic(strf("Scoreboard: WAW slipped through for warp ", w,
                       " reg ", inst.dst));
        pw.pendingWrites[inst.dst] = 1;
    }
}

void
Scoreboard::releaseReads(WarpId w, const Instruction &inst)
{
    PerWarp &pw = warps_.at(w);
    for (RegId r : inst.uniqueSrcRegs()) {
        if (pw.pendingReads[r] == 0)
            panic(strf("Scoreboard: read release underflow, warp ", w,
                       " reg ", r));
        --pw.pendingReads[r];
    }
}

void
Scoreboard::releaseWrite(WarpId w, RegId dst)
{
    PerWarp &pw = warps_.at(w);
    if (dst == kNoReg)
        return;
    if (!pw.pendingWrites[dst])
        panic(strf("Scoreboard: write release without reservation, "
                   "warp ", w, " reg ", dst));
    pw.pendingWrites[dst] = 0;
}

std::vector<RegId>
Scoreboard::pendingWriteRegs(WarpId w) const
{
    std::vector<RegId> out;
    pendingWriteRegsInto(w, out);
    return out;
}

std::vector<RegId>
Scoreboard::pendingReadRegs(WarpId w) const
{
    std::vector<RegId> out;
    pendingReadRegsInto(w, out);
    return out;
}

void
Scoreboard::pendingWriteRegsInto(WarpId w,
                                 std::vector<RegId> &out) const
{
    out.clear();
    const PerWarp &pw = warps_.at(w);
    for (unsigned r = 0; r < 256; ++r) {
        if (pw.pendingWrites[r])
            out.push_back(static_cast<RegId>(r));
    }
}

void
Scoreboard::pendingReadRegsInto(WarpId w,
                                std::vector<RegId> &out) const
{
    out.clear();
    const PerWarp &pw = warps_.at(w);
    for (unsigned r = 0; r < 256; ++r) {
        if (pw.pendingReads[r])
            out.push_back(static_cast<RegId>(r));
    }
}

std::array<std::uint64_t, 3>
Scoreboard::stallCounts() const
{
    return {rawStalls_->value(), wawStalls_->value(),
            warStalls_->value()};
}

void
Scoreboard::addStalls(const std::array<std::uint64_t, 3> &delta,
                      std::uint64_t times)
{
    rawStalls_->inc(delta[0] * times);
    wawStalls_->inc(delta[1] * times);
    warStalls_->inc(delta[2] * times);
}

JsonValue
Scoreboard::saveState() const
{
    // Sparse per-warp reservation image: [reg, count] pairs; warps
    // with no reservations serialize as null.
    JsonValue warps = JsonValue::array();
    for (const PerWarp &pw : warps_) {
        JsonValue writes = JsonValue::array();
        JsonValue reads = JsonValue::array();
        for (unsigned r = 0; r < 256; ++r) {
            if (pw.pendingWrites[r]) {
                JsonValue p = JsonValue::array();
                p.push(JsonValue(std::uint64_t(r)));
                p.push(JsonValue(std::uint64_t(pw.pendingWrites[r])));
                writes.push(std::move(p));
            }
            if (pw.pendingReads[r]) {
                JsonValue p = JsonValue::array();
                p.push(JsonValue(std::uint64_t(r)));
                p.push(JsonValue(std::uint64_t(pw.pendingReads[r])));
                reads.push(std::move(p));
            }
        }
        if (writes.size() == 0 && reads.size() == 0) {
            warps.push(JsonValue());
            continue;
        }
        JsonValue o = JsonValue::object();
        o.set("w", std::move(writes));
        o.set("r", std::move(reads));
        warps.push(std::move(o));
    }
    JsonValue out = JsonValue::object();
    out.set("warps", std::move(warps));
    out.set("stats", stats_.saveJson());
    return out;
}

void
Scoreboard::loadState(const JsonValue &v)
{
    const JsonValue &warps = jsonio::getArray(v, "warps");
    if (warps.size() != warps_.size())
        fatal("Scoreboard::loadState: warp count mismatch");
    for (std::size_t w = 0; w < warps_.size(); ++w) {
        PerWarp &pw = warps_[w];
        pw = PerWarp{};
        const JsonValue &o = warps.at(w);
        if (o.isNull())
            continue;
        for (const JsonValue &p : jsonio::getArray(o, "w").items()) {
            pw.pendingWrites[p.at(0).asUint() & 0xFF] =
                static_cast<std::uint8_t>(p.at(1).asUint());
        }
        for (const JsonValue &p : jsonio::getArray(o, "r").items()) {
            pw.pendingReads[p.at(0).asUint() & 0xFF] =
                static_cast<std::uint8_t>(p.at(1).asUint());
        }
    }
    stats_.loadJson(jsonio::member(v, "stats"));
}

bool
Scoreboard::idle(WarpId w) const
{
    const PerWarp &pw = warps_.at(w);
    for (unsigned r = 0; r < 256; ++r) {
        if (pw.pendingWrites[r] || pw.pendingReads[r])
            return false;
    }
    return true;
}

} // namespace bow
