/**
 * @file
 * Per-warp scoreboard guarding register hazards at issue time.
 *
 * Tracks (a) destination registers with in-flight writes and (b) the
 * number of in-flight, not-yet-executed readers of each register.
 * Issue is blocked on RAW (source has a pending write), WAW
 * (destination has a pending write) and WAR (destination has pending
 * readers), which matches the paper's statement that two dependent
 * instructions are never simultaneously in the operand-collection
 * stage.
 */

#ifndef BOWSIM_SM_SCOREBOARD_H
#define BOWSIM_SM_SCOREBOARD_H

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "isa/instruction.h"

namespace bow {

/** Scoreboard for every warp slot of one SM. */
class Scoreboard
{
  public:
    explicit Scoreboard(unsigned numWarps);

    /** True when @p inst of warp @p w has no register hazards. */
    bool canIssue(WarpId w, const Instruction &inst) const;

    /** Reserve registers at issue. */
    void reserve(WarpId w, const Instruction &inst);

    /** Release source-read reservations when the instruction has
     *  consumed its operands (at execute). */
    void releaseReads(WarpId w, const Instruction &inst);

    /**
     * Release the destination reservation once the value is visible
     * to dependents (BOC write or RF write, per architecture).
     * @p wrote distinguishes guarded-off instructions that never
     * produced a value; the reservation is released either way.
     */
    void releaseWrite(WarpId w, RegId dst);

    /** True when warp @p w has no reservations (quiesced). */
    bool idle(WarpId w) const;

    /** Registers of warp @p w with an in-flight write reservation
     *  (deadlock diagnostics). */
    std::vector<RegId> pendingWriteRegs(WarpId w) const;

    /** Registers of warp @p w with in-flight read reservations. */
    std::vector<RegId> pendingReadRegs(WarpId w) const;

    /** In-place variants writing into a caller-owned buffer
     *  (cleared first); the reusable-scratch form of the above. */
    void pendingWriteRegsInto(WarpId w, std::vector<RegId> &out) const;
    void pendingReadRegsInto(WarpId w, std::vector<RegId> &out) const;

    /** Current raw/waw/war stall counts, in that order. Idle
     *  fast-forward snapshots these around an inert cycle to learn
     *  the per-cycle stall delta it must replicate. */
    std::array<std::uint64_t, 3> stallCounts() const;

    /**
     * Replay the hazard-stall accounting of @p times identical
     * cycles: each adds @p delta (a stallCounts() difference) to the
     * raw/waw/war counters. This is how skipped inert cycles keep
     * the golden statistics bit-identical to stepping them.
     */
    void addStalls(const std::array<std::uint64_t, 3> &delta,
                   std::uint64_t times);

    /** Hazard accounting (raw/waw/war stalls, reservations); the
     *  observability layer exports it as `sm0.scoreboard.*`. */
    const StatGroup &stats() const { return stats_; }

    /** Serialize reservations + stats for a snapshot. */
    JsonValue saveState() const;
    /** Overwrite this scoreboard's state from saveState() output. */
    void loadState(const JsonValue &v);

  private:
    struct PerWarp
    {
        std::array<std::uint8_t, 256> pendingWrites{};
        std::array<std::uint8_t, 256> pendingReads{};
    };

    std::vector<PerWarp> warps_;

    // canIssue() is conceptually const; the counters are bookkeeping
    // about the queries, hence mutable. Counter nodes in the map are
    // address-stable, so the hot path increments through cached
    // pointers instead of re-hashing the key every call.
    mutable StatGroup stats_{"scoreboard"};
    Counter *rawStalls_ = nullptr;
    Counter *wawStalls_ = nullptr;
    Counter *warStalls_ = nullptr;
    Counter *reservations_ = nullptr;
};

} // namespace bow

#endif // BOWSIM_SM_SCOREBOARD_H
