#include "sm/semantics.h"

#include "common/log.h"

namespace bow {

namespace {

/** Deterministic integer pseudo-transcendentals for the SFU ops. */
Value
sfuRcp(Value x)
{
    return x ? static_cast<Value>(0xFFFFFFFFu / x) : 0xFFFFFFFFu;
}

Value
sfuSqrt(Value x)
{
    // Integer square root by Newton iteration; the descent variant
    // terminates (plain fixed-point iteration can 2-cycle, e.g. x=3).
    if (x < 2)
        return x;
    std::uint64_t r = x;
    std::uint64_t next = (r + x / r) / 2;
    while (next < r) {
        r = next;
        next = (r + x / r) / 2;
    }
    return static_cast<Value>(r);
}

Value
sfuSin(Value x)
{
    // A deterministic odd-ish mixing function standing in for sine;
    // only dataflow matters to the microarchitecture.
    Value v = x * 2654435761u;
    v ^= v >> 15;
    return v;
}

Value
sfuEx2(Value x)
{
    return static_cast<Value>(1u << (x & 31));
}

Value
sfuLg2(Value x)
{
    Value r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

Value
operandValue(const Operand &o, const RegFileState &regs, WarpId warpId,
             unsigned numWarps, const MemoryStore &mem)
{
    switch (o.kind) {
      case Operand::Kind::REG:
        return regs[o.reg];
      case Operand::Kind::IMM:
        return o.imm;
      case Operand::Kind::SPECIAL:
        return o.special == SpecialReg::WARP_ID
            ? static_cast<Value>(warpId)
            : static_cast<Value>(numWarps);
      case Operand::Kind::CONST_MEM:
        return mem.load(MemSpace::Const, o.imm);
      case Operand::Kind::NONE:
        break;
    }
    panic("operandValue: unset operand");
}

MemSpace
spaceOf(Opcode op)
{
    switch (op) {
      case Opcode::LD_GLOBAL:
      case Opcode::ST_GLOBAL:
        return MemSpace::Global;
      case Opcode::LD_SHARED:
      case Opcode::ST_SHARED:
        return MemSpace::Shared;
      case Opcode::LD_CONST:
        return MemSpace::Const;
      default:
        panic("spaceOf: not a memory opcode");
    }
}

} // namespace

ExecEffect
evaluate(const Kernel &kernel, InstIdx pc, const RegFileState &regs,
         WarpId warpId, unsigned numWarps, MemoryStore &mem)
{
    const Instruction &inst = kernel.inst(pc);
    ExecEffect fx;
    fx.nextPc = pc + 1;

    // Guard predicate: a false guard suppresses all effects.
    if (inst.pred != kNoReg) {
        const bool p = regs[inst.pred] != 0;
        fx.guardPassed = inst.predNegate ? !p : p;
        if (!fx.guardPassed)
            return fx;
    }

    auto src = [&](unsigned i) {
        return operandValue(inst.srcs[i], regs, warpId, numWarps, mem);
    };

    switch (inst.op) {
      case Opcode::MOV:
      case Opcode::CVT:
        fx.wrote = true;
        fx.result = src(0);
        break;
      case Opcode::ADD:
        fx.wrote = true;
        fx.result = src(0) + src(1);
        break;
      case Opcode::SUB:
        fx.wrote = true;
        fx.result = src(0) - src(1);
        break;
      case Opcode::MUL:
        fx.wrote = true;
        fx.result = src(0) * src(1);
        break;
      case Opcode::MAD:
        fx.wrote = true;
        fx.result = src(0) * src(1) + src(2);
        break;
      case Opcode::MIN: {
        const auto a = static_cast<std::int32_t>(src(0));
        const auto b = static_cast<std::int32_t>(src(1));
        fx.wrote = true;
        fx.result = static_cast<Value>(a < b ? a : b);
        break;
      }
      case Opcode::MAX: {
        const auto a = static_cast<std::int32_t>(src(0));
        const auto b = static_cast<std::int32_t>(src(1));
        fx.wrote = true;
        fx.result = static_cast<Value>(a > b ? a : b);
        break;
      }
      case Opcode::AND:
        fx.wrote = true;
        fx.result = src(0) & src(1);
        break;
      case Opcode::OR:
        fx.wrote = true;
        fx.result = src(0) | src(1);
        break;
      case Opcode::XOR:
        fx.wrote = true;
        fx.result = src(0) ^ src(1);
        break;
      case Opcode::SHL:
        fx.wrote = true;
        fx.result = src(0) << (src(1) & 31);
        break;
      case Opcode::SHR:
        fx.wrote = true;
        fx.result = src(0) >> (src(1) & 31);
        break;
      case Opcode::ABS: {
        const auto a = static_cast<std::int32_t>(src(0));
        fx.wrote = true;
        fx.result = static_cast<Value>(a < 0 ? -a : a);
        break;
      }
      case Opcode::NEG:
        fx.wrote = true;
        fx.result = static_cast<Value>(-static_cast<std::int32_t>(
            src(0)));
        break;
      case Opcode::SET:
      case Opcode::SETP:
        fx.wrote = true;
        fx.result = evalCond(inst.cc, src(0), src(1)) ? 1u : 0u;
        break;
      case Opcode::RCP:
        fx.wrote = true;
        fx.result = sfuRcp(src(0));
        break;
      case Opcode::SQRT:
        fx.wrote = true;
        fx.result = sfuSqrt(src(0));
        break;
      case Opcode::SIN:
        fx.wrote = true;
        fx.result = sfuSin(src(0));
        break;
      case Opcode::EX2:
        fx.wrote = true;
        fx.result = sfuEx2(src(0));
        break;
      case Opcode::LG2:
        fx.wrote = true;
        fx.result = sfuLg2(src(0));
        break;
      case Opcode::LD_GLOBAL:
      case Opcode::LD_SHARED:
      case Opcode::LD_CONST: {
        fx.isMem = true;
        fx.space = spaceOf(inst.op);
        fx.addr = src(0) + static_cast<std::uint32_t>(inst.memOffset);
        fx.wrote = true;
        fx.result = mem.load(fx.space, fx.addr);
        break;
      }
      case Opcode::ST_GLOBAL:
      case Opcode::ST_SHARED: {
        fx.isMem = true;
        fx.space = spaceOf(inst.op);
        fx.addr = src(0) + static_cast<std::uint32_t>(inst.memOffset);
        mem.store(fx.space, fx.addr, src(1));
        break;
      }
      case Opcode::BRA:
        fx.branchTaken = true;
        fx.nextPc = inst.branchTarget;
        break;
      case Opcode::SSY:
      case Opcode::BAR:
      case Opcode::NOP:
        break;
      case Opcode::RET:
      case Opcode::EXIT:
        fx.warpDone = true;
        break;
      case Opcode::NUM_OPCODES:
        panic("evaluate: bad opcode");
    }
    return fx;
}

} // namespace bow
