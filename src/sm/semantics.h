/**
 * @file
 * Functional (architectural) semantics of the bowsim ISA: evaluate
 * one instruction against a warp's register state and memory. Used
 * by both the timing simulator's execute stage and the pure
 * functional trace runner, guaranteeing the two agree by
 * construction.
 */

#ifndef BOWSIM_SM_SEMANTICS_H
#define BOWSIM_SM_SEMANTICS_H

#include <array>

#include "common/types.h"
#include "isa/kernel.h"
#include "sm/memory_model.h"

namespace bow {

/** A warp's architectural register state. */
using RegFileState = std::array<Value, 256>;

/** The architectural effect of executing one instruction. */
struct ExecEffect
{
    bool guardPassed = true;    ///< guard predicate allowed execution
    bool wrote = false;         ///< destination register was written
    Value result = 0;           ///< value written when wrote
    bool branchTaken = false;   ///< branch redirected control flow
    InstIdx nextPc = 0;         ///< pc after this instruction
    bool warpDone = false;      ///< warp terminated (exit/ret)
    bool isMem = false;         ///< touched memory
    MemSpace space = MemSpace::Global;
    std::uint32_t addr = 0;     ///< effective address when isMem
};

/**
 * Execute the instruction at @p pc functionally.
 *
 * Reads @p regs, applies stores/loads to @p mem, and returns the
 * effect. The caller commits the register write
 * (`regs[dst] = effect.result`) so timing models can delay it.
 *
 * @param kernel Finalized kernel.
 * @param pc     Instruction index to execute.
 * @param regs   The warp's architectural registers (read-only here).
 * @param warpId Hardware warp id (feeds %warpid).
 * @param numWarps Launch warp count (feeds %nwarps).
 * @param mem    Functional memory (stores are applied immediately).
 */
ExecEffect evaluate(const Kernel &kernel, InstIdx pc,
                    const RegFileState &regs, WarpId warpId,
                    unsigned numWarps, MemoryStore &mem);

} // namespace bow

#endif // BOWSIM_SM_SEMANTICS_H
