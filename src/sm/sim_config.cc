#include "sm/sim_config.h"

#include "common/log.h"

namespace bow {

std::string
archName(Architecture arch)
{
    switch (arch) {
      case Architecture::Baseline:   return "baseline";
      case Architecture::BOW:        return "bow";
      case Architecture::BOW_WR:     return "bow-wr";
      case Architecture::BOW_WR_OPT: return "bow-wr-opt";
      case Architecture::RFC:        return "rfc";
    }
    panic("archName: bad architecture");
}

std::string
protectionName(FaultProtection p)
{
    switch (p) {
      case FaultProtection::None:   return "none";
      case FaultProtection::Parity: return "parity";
      case FaultProtection::Secded: return "secded";
    }
    panic("protectionName: bad protection scheme");
}

std::string
schedName(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::GTO: return "gto";
      case SchedPolicy::LRR: return "lrr";
      case SchedPolicy::TWO_LEVEL: return "two-level";
    }
    panic("schedName: bad scheduler policy");
}

std::string
ctaPolicyName(CtaPolicy policy)
{
    switch (policy) {
      case CtaPolicy::RoundRobin:      return "rr";
      case CtaPolicy::LooseRoundRobin: return "lrr";
    }
    panic("ctaPolicyName: bad CTA policy");
}

CtaPolicy
parseCtaPolicy(const std::string &name)
{
    if (name == "rr" || name == "round-robin")
        return CtaPolicy::RoundRobin;
    if (name == "lrr" || name == "loose-round-robin")
        return CtaPolicy::LooseRoundRobin;
    fatal(strf("unknown CTA policy '", name, "' (want rr or lrr)"));
}

void
SimConfig::validate() const
{
    if (numSchedulers == 0 || issuePerScheduler == 0)
        fatal("SimConfig: need at least one scheduler issuing at least "
              "one instruction");
    if (maxResidentWarps == 0 || maxResidentWarps > 64)
        fatal("SimConfig: resident warps must be in [1, 64]");
    if (numBanks == 0)
        fatal("SimConfig: need at least one register bank");
    if (numCollectors == 0)
        fatal("SimConfig: need at least one operand collector");
    if (collectorPorts == 0 || collectorPorts > 4)
        fatal("SimConfig: collector ports must be in [1, 4]");
    if (windowSize < 2 || windowSize > 16)
        fatal("SimConfig: window size must be in [2, 16]");
    if (bocEntries != 0 && bocEntries < 2)
        fatal("SimConfig: BOC needs at least two register entries");
    if (aluWidth == 0 || sfuWidth == 0 || ldstWidth == 0)
        fatal("SimConfig: execution unit widths must be non-zero");
    if (maxPendingLoads == 0)
        fatal("SimConfig: MSHR limit must be non-zero");
    if (numSms == 0 || numSms > 1024)
        fatal("SimConfig: SM count must be in [1, 1024]");
    if (l2Banks == 0)
        fatal("SimConfig: need at least one shared-L2 bank");
    if (l2MshrsPerBank == 0)
        fatal("SimConfig: shared-L2 MSHRs per bank must be non-zero");
    if (l1LineBytes == 0 || (l1LineBytes & (l1LineBytes - 1)))
        fatal("SimConfig: L1 line size must be a power of two");
    if (l2LineBytes == 0 || (l2LineBytes & (l2LineBytes - 1)))
        fatal("SimConfig: L2 line size must be a power of two");
    if ((arch == Architecture::BOW || arch == Architecture::BOW_WR ||
         arch == Architecture::BOW_WR_OPT) &&
        numCollectors < maxResidentWarps) {
        fatal("SimConfig: BOW needs one BOC per resident warp");
    }
    if (arch == Architecture::RFC && rfcEntriesPerWarp == 0)
        fatal("SimConfig: RFC needs at least one entry per warp");
    if (extendedWindow && arch == Architecture::BOW_WR_OPT) {
        fatal("SimConfig: extended-window bypassing is incompatible "
              "with compiler write-back hints");
    }
}

SimConfig
SimConfig::titanXPascal()
{
    return SimConfig{};
}

SimConfig
SimConfig::fermi()
{
    SimConfig c;
    c.numSchedulers = 2;
    c.issuePerScheduler = 1;
    c.maxResidentWarps = 48;
    c.numBanks = 16;
    c.rfBytesPerSm = 128 * 1024;
    c.numCollectors = 48;
    c.aluWidth = 1;
    c.l1Bytes = 16 * 1024;
    c.l2Bytes = 768 * 1024;
    return c;
}

SimConfig
SimConfig::volta()
{
    SimConfig c;
    c.numSchedulers = 4;
    c.issuePerScheduler = 1;
    c.maxResidentWarps = 64;
    c.numBanks = 32;
    c.rfBytesPerSm = 256 * 1024;
    c.numCollectors = 64;
    c.aluWidth = 2;
    c.l1Bytes = 128 * 1024;
    c.l2Bytes = 6 * 1024 * 1024;
    return c;
}

} // namespace bow
