/**
 * @file
 * Simulation configuration: the paper's Table II machine (NVIDIA
 * TITAN X, Pascal) plus the architecture-variant knobs BOW adds.
 */

#ifndef BOWSIM_SM_SIM_CONFIG_H
#define BOWSIM_SM_SIM_CONFIG_H

#include <cstdint>
#include <string>

namespace bow {

/** Which register-file / operand-collector architecture to simulate. */
enum class Architecture
{
    Baseline,   ///< conventional banked RF + shared OCUs
    BOW,        ///< read bypassing, write-through (paper Sec. IV-A)
    BOW_WR,     ///< read+write bypassing, write-back (Sec. IV-B)
    BOW_WR_OPT, ///< BOW-WR + compiler write-back hints (Sec. IV-B)
    RFC         ///< register-file cache baseline (Gebhart, ISCA'11)
};

/** Warp-scheduler policy. */
enum class SchedPolicy
{
    GTO,      ///< greedy-then-oldest (Table II default)
    LRR,      ///< loose round-robin
    TWO_LEVEL ///< two-level scheduling (Gebhart et al., ISCA'11):
              ///< warps waiting on memory are demoted behind the
              ///< compute-ready active set
};

/**
 * Error-protection scheme for the bypass structures (BOC / RFC).
 * The baseline RF banks carry ECC in real GPUs; the BOC does not,
 * which is exactly the exposure the fault-injection subsystem
 * quantifies (docs/RESILIENCE.md). Protection adds a per-access
 * energy overhead that flows into the Fig. 13-style energy tables.
 */
enum class FaultProtection
{
    None,   ///< unprotected (the paper's design as published)
    Parity, ///< per-entry parity: single-bit flips are detected
    Secded  ///< SECDED ECC: single-bit flips are corrected
};

/**
 * Grid-level CTA placement policy (multi-SM runs, docs/ARCHITECTURE.md
 * "Multi-SM model"). Both are deterministic: placement depends only on
 * the launch and the configuration, never on host threading.
 */
enum class CtaPolicy
{
    RoundRobin,      ///< static: CTA i runs on SM (i % numSms)
    LooseRoundRobin  ///< dynamic: next pending CTA goes to the first
                     ///< SM (rotor order) with free occupancy
};

/** Human-readable architecture name. */
std::string archName(Architecture arch);

/** Human-readable protection-scheme name. */
std::string protectionName(FaultProtection p);

/** Human-readable scheduler-policy name. */
std::string schedName(SchedPolicy policy);

/** Human-readable CTA-placement policy name. */
std::string ctaPolicyName(CtaPolicy policy);

/** Parse a CTA-policy name ("rr"/"lrr", long forms accepted). */
CtaPolicy parseCtaPolicy(const std::string &name);

/**
 * Full SM configuration. Defaults model one SM of the paper's
 * baseline GPU (Table II): 4 schedulers x 2 issue, 32 resident warps,
 * a 256 KB register file in 32 single-ported banks, and 32 operand
 * collectors.
 */
struct SimConfig
{
    // --- machine (Table II) ---
    unsigned numSchedulers = 4;
    unsigned issuePerScheduler = 2;
    unsigned maxResidentWarps = 32;
    unsigned numBanks = 32;
    unsigned rfBytesPerSm = 256 * 1024;
    unsigned numCollectors = 32;        ///< baseline OCUs / BOCs
    /**
     * Read ports per collector (baseline OCU or BOC). The paper's
     * machines are single-ported ("the cost of a port is extremely
     * high when considering the width of a warp register"); larger
     * values exist for the what-if ablation.
     */
    unsigned collectorPorts = 1;
    SchedPolicy schedPolicy = SchedPolicy::GTO;

    // --- execution units ---
    unsigned aluLatency = 4;
    unsigned sfuLatency = 16;
    unsigned ctrlLatency = 2;
    unsigned aluWidth = 4;  ///< warp-instructions accepted per cycle
    unsigned sfuWidth = 1;
    unsigned ldstWidth = 1;

    // --- memory hierarchy ---
    unsigned l1Latency = 28;
    unsigned l2Latency = 190;
    unsigned dramLatency = 350;
    unsigned l1Bytes = 48 * 1024;
    unsigned l1LineBytes = 128;
    unsigned l1Ways = 6;
    unsigned l2Bytes = 3 * 1024 * 1024;
    unsigned l2LineBytes = 128;
    unsigned l2Ways = 16;
    unsigned sharedLatency = 24;
    unsigned maxPendingLoads = 32;      ///< MSHR limit per SM

    // --- GPU level (multi-SM) ---
    /**
     * Streaming multiprocessors instantiated by the GpuCore layer.
     * 1 (the default) is the paper's single-SM proxy and runs the
     * exact legacy SmCore path; the full TITAN X (GP102) is 28.
     */
    unsigned numSms = 1;
    CtaPolicy ctaPolicy = CtaPolicy::RoundRobin;
    /**
     * Shared-L2 slices (line-interleaved). Only used when numSms > 1:
     * a single SM keeps its private L2 so the legacy path is
     * bit-preserved. GP102 has 12 memory partitions.
     */
    unsigned l2Banks = 12;
    unsigned l2MshrsPerBank = 32;       ///< miss-status registers/bank

    // --- BOW knobs ---
    Architecture arch = Architecture::Baseline;
    unsigned windowSize = 3;            ///< IW (instructions)
    /**
     * BOC register-entry capacity; 0 means the conservative default
     * of 4 entries per window slot (4 * windowSize). The paper's
     * half-size configuration uses 2 * windowSize.
     */
    unsigned bocEntries = 0;

    /**
     * Future-work variant (paper Sec. IV-C): bypass beyond the
     * nominal window, with residency limited only by BOC capacity.
     * Valid for BOW and BOW_WR; rejected with compiler hints.
     */
    bool extendedWindow = false;

    // --- RFC knobs ---
    unsigned rfcEntriesPerWarp = 6;

    // --- resilience knobs ---
    /**
     * Protection applied to the BOC/RFC entries (the RF banks are
     * modelled unprotected so the cross-design fault campaign can
     * also measure what the baseline's ECC buys). Affects fault
     * classification and adds per-access energy overhead.
     */
    FaultProtection faultProtection = FaultProtection::None;

    // --- safety valve ---
    /** Abort the simulation after this many cycles (0 = unlimited). */
    std::uint64_t maxCycles = 200'000'000ull;

    // --- host-side knobs (no effect on simulated statistics) ---
    /**
     * Idle fast-forward: when every resident warp is stalled on
     * in-flight completions and no CTA can be placed, jump the clock
     * to the next scheduled event instead of spinning cycle by
     * cycle. Purely a host-speed optimisation — every counter,
     * histogram and result is bit-identical either way (enforced by
     * tests/test_event_wheel.cc), which is also why the result
     * cache's simCacheKey deliberately ignores this field. Disabled
     * automatically when a fault injector or cycle tracer is
     * attached (they observe individual cycles).
     */
    bool hostFastForward = true;

    /**
     * Host threads stepping the SMs of one GpuCore (multi-SM runs,
     * docs/PERFORMANCE.md "Parallel SM stepping"). 0 (the default)
     * resolves at run start: BOWSIM_HOST_THREADS if set and valid,
     * else 1 inside a ParallelRunner worker (the batch already owns
     * the host cores), else hardware_concurrency(). Like
     * hostFastForward this is a pure host-speed knob — every
     * simulated statistic, register and memory word is bit-identical
     * at any thread count (tests/test_host_parallel.cc), so it is
     * likewise excluded from the result-cache key. No effect with
     * numSms == 1. The CLI exposes it as --host-threads.
     */
    unsigned hostThreads = 0;

    /**
     * Epoch length (in simulated cycles) for relaxed SM
     * synchronization (docs/PERFORMANCE.md "Epoch stepping"). With a
     * value E > 1 each SM of a multi-SM GpuCore free-runs up to E
     * cycles between barriers, logging its shared-memory/L2 traffic;
     * the coordinator then commits all logs in ascending
     * (cycle, smIndex) order — the exact serial arbitration order —
     * so every simulated statistic stays bit-identical at any epoch
     * length (tests/test_host_parallel.cc EpochStep suites). 0 (the
     * default) resolves at run start: BOWSIM_EPOCH_CYCLES if set and
     * valid, else 1 (per-cycle stepping). Like hostThreads this is a
     * pure host-speed knob excluded from the result-cache key; it has
     * no effect with numSms == 1 and is clamped to 1 while a fault
     * injector or tracer observes individual cycles. The CLI exposes
     * it as --epoch-cycles.
     */
    unsigned epochCycles = 0;

    /** Effective BOC capacity after applying the default rule. */
    unsigned
    effectiveBocEntries() const
    {
        return bocEntries ? bocEntries : 4 * windowSize;
    }

    /** Sanity-check the configuration; fatal()s when inconsistent. */
    void validate() const;

    /** The paper's baseline machine (identical to the defaults). */
    static SimConfig titanXPascal();

    /**
     * A Fermi-generation SM (GTX 480 class): fewer schedulers,
     * fewer banks, smaller RF. The paper repeats its reuse
     * characterisation on Fermi and Volta to show operand locality
     * is a computational property, not an architectural one.
     */
    static SimConfig fermi();

    /** A Volta-generation SM (V100 class). */
    static SimConfig volta();
};

} // namespace bow

#endif // BOWSIM_SM_SIM_CONFIG_H
