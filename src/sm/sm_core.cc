#include "sm/sm_core.h"

#include <algorithm>
#include <sstream>

#include "common/json.h"
#include "common/json_util.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/trace_events.h"
#include "common/watchdog.h"
#include "sm/fault_injector.h"

namespace bow {

namespace {

/**
 * Ring look-ahead for the completion wheel: the deepest pipeline
 * latency plus a full L1 -> L2 -> DRAM miss (plus the shared-memory
 * path). Queueing delays can push individual completions past this;
 * the wheel's overflow map keeps those correct, just slower.
 */
unsigned
completionHorizon(const SimConfig &c)
{
    unsigned lat = std::max({c.aluLatency, c.sfuLatency,
                             c.ctrlLatency});
    lat += c.l1Latency + c.l2Latency + c.dramLatency +
        c.sharedLatency;
    return lat;
}

/**
 * Floor of the memory latency a staged access can add at commit
 * time: a guard predicate may suppress the access entirely (0);
 * otherwise Shared and Const are constant-latency paths and a global
 * access costs at least the L1 trip (loads may add L2/DRAM and
 * queueing on top, which only pushes the completion later). The
 * space is opcode-static, so no operand evaluation is needed here.
 */
unsigned
stagedMinExtra(const SimConfig &c, const Instruction &inst)
{
    if (inst.pred != kNoReg)
        return 0;
    switch (inst.op) {
      case Opcode::LD_SHARED:
      case Opcode::ST_SHARED:
        return c.sharedLatency;
      default:
        return c.l1Latency;  // LD_CONST, LD_GLOBAL, ST_GLOBAL
    }
}

} // namespace

SmCore::SmCore(const SimConfig &config, const Launch &launch,
               FaultInjector *injector, const Watchdog *watchdog,
               TraceSink *tracer)
    : SmCore(config, launch, SmContext{}, injector, watchdog, tracer)
{
}

SmCore::SmCore(const SimConfig &config, const Launch &launch,
               const SmContext &ctx, FaultInjector *injector,
               const Watchdog *watchdog, TraceSink *tracer)
    : config_(config),
      launch_(&launch),
      injector_(injector),
      watchdog_(watchdog),
      tracer_(tracer),
      smIndex_(ctx.smIndex),
      externalAdmission_(ctx.externalAdmission),
      stagedMemory_(ctx.stagedMemory),
      scoreboard_(launch.numWarps),
      rf_(config_),
      memTiming_(config_),
      units_(config_),
      schedulers_(config_),
      completions_(completionHorizon(config))
{
    config_.validate();
    launch.validate();

    // Idle fast-forward only runs unobserved: a fault injector or
    // cycle tracer must see every individual cycle.
    ffEnabled_ = config_.hostFastForward && !injector_ && !tracer_;

    // Staged memory exists for parallel SM stepping, where per-cycle
    // observers are impossible anyway (they would see the deferred
    // register/memory writes one barrier late).
    if (stagedMemory_ && (injector_ || tracer_)) {
        panic("SmCore: staged memory dispatch is incompatible with a "
              "fault injector or tracer");
    }

    residentCap_ = ctx.residentCap
        ? std::min(ctx.residentCap, config_.maxResidentWarps)
        : config_.maxResidentWarps;
    mem_ = ctx.sharedMem ? ctx.sharedMem : &ownMem_;
    if (ctx.sharedL2)
        memTiming_.attachSharedL2(ctx.sharedL2);

    warps_.resize(launch.numWarps);
    finalRegs_.resize(launch.numWarps);
    for (WarpId w = 0; w < launch.numWarps; ++w)
        warps_[w].id = w;

    if (usesBoc()) {
        warpSlots_.resize(launch.numWarps);
        // Pre-size every slot vector at init so activateWarp()'s
        // assign() never reallocates mid-run.
        for (auto &slots : warpSlots_)
            slots.reserve(config_.windowSize);
        bocs_.resize(launch.numWarps);
        bocFetchOutstanding_.assign(launch.numWarps, 0);
    } else {
        sharedSlots_.resize(config_.numCollectors);
        if (config_.arch == Architecture::RFC) {
            rfcs_.reserve(launch.numWarps);
            for (WarpId w = 0; w < launch.numWarps; ++w)
                rfcs_.emplace_back(config_.rfcEntriesPerWarp);
        }
    }

    stats_.srcOperandHist.assign(4, 0);
    stats_.bocOccupancyHist.assign(config_.effectiveBocEntries() + 1,
                                   0);

    // Per-cycle scratch buffers: size for the worst case up front so
    // the steady-state hot path never touches the allocator.
    servedScratch_.reserve(config_.numBanks);
    orderScratch_.reserve(config_.maxResidentWarps);
    if (stagedMemory_) {
        // Per-cycle staging holds at most ldstWidth accesses; epoch
        // stepping accumulates across the free-run, so pre-size for
        // a (bounded) epoch's worth to keep the hot path off the
        // allocator.
        stagedMem_.reserve(std::max<std::size_t>(
            config_.ldstWidth,
            std::min<std::size_t>(config_.epochCycles, 4096)));
    }
    maxNonMemLat_ = std::max(
        {Cycle{1}, Cycle{config_.aluLatency}, Cycle{config_.sfuLatency},
         Cycle{config_.ctrlLatency}});
    readyScratch_.reserve(usesBoc() ? config_.windowSize
                                    : config_.numCollectors);

    if (!externalAdmission_) {
        // Standalone path: this SM owns the whole launch. The GpuCore
        // initialises shared memory itself (exactly once).
        for (const auto &[space, addr, val] : launch.initMem)
            mem_->store(space, addr, val);
        assigned_.reserve(launch.numWarps);
        for (WarpId w = 0; w < launch.numWarps; ++w)
            assigned_.push_back(w);
        ctasAssigned_ = (launch.numWarps + launch.warpsPerCta - 1) /
            launch.warpsPerCta;
        admitWarps();
    }
}

void
SmCore::assignWarps(WarpId first, unsigned count)
{
    if (!externalAdmission_)
        panic("SmCore::assignWarps: SM does not use external "
              "admission");
    if (ran_)
        panic("SmCore::assignWarps after finalize()");
    if (first + count > warps_.size())
        panic("SmCore::assignWarps: warp range outside the launch");
    for (unsigned i = 0; i < count; ++i)
        assigned_.push_back(static_cast<WarpId>(first + i));
    ++ctasAssigned_;
    admitWarps();
    // New warps may have been activated between cycles: the SM is no
    // longer provably inert, so fast-forward must re-prove it.
    lastCycleInert_ = false;
}

void
SmCore::admitWarps()
{
    while (residentWarps_ < residentCap_ &&
           nextToActivate_ < assigned_.size())
        activateWarp(assigned_[nextToActivate_++]);
}

bool
SmCore::usesBoc() const
{
    return config_.arch == Architecture::BOW ||
        config_.arch == Architecture::BOW_WR ||
        config_.arch == Architecture::BOW_WR_OPT;
}

void
SmCore::activateWarp(WarpId w)
{
    Warp &warp = warps_[w];
    warp.state = WarpState::Active;
    warp.pc = 0;
    warp.activated = now_;
    launch_->applyInit(warp.regs, w, *mem_);
    if (usesBoc()) {
        warpSlots_[w].assign(config_.windowSize, InstSlot{});
        bocs_[w].emplace(config_.arch, config_.windowSize,
                         config_.effectiveBocEntries(),
                         config_.extendedWindow);
    }
    ++residentWarps_;
    stats_.peakResident = std::max<std::uint64_t>(
        stats_.peakResident, residentWarps_);
}

void
SmCore::handleEviction(WarpId w, const BocEviction &ev)
{
    if (ev.needsRfWrite)
        rf_.pushWrite(w, ev.reg, false);
    if (ev.safetyWrite)
        ++stats_.safetyWrites;
    if (ev.transientDrop)
        ++stats_.transientDrops;
}

void
SmCore::finishWarp(Warp &warp)
{
    if (usesBoc()) {
        flushScratch_.clear();
        bocs_[warp.id]->flushInto(flushScratch_);
        for (const BocEviction &ev : flushScratch_)
            handleEviction(warp.id, ev);
    } else if (config_.arch == Architecture::RFC) {
        for (RegId r : rfcs_[warp.id].flushDirty())
            rf_.pushWrite(warp.id, r, false);
    }
    warp.state = WarpState::Finished;
    if (injector_)
        injector_->onWarpFinish(warp.id, warp.regs);
    finalRegs_[warp.id] = warp.regs;
    --residentWarps_;
    ++finishedWarps_;
    admitWarps();
}

void
SmCore::handleRfServed(const RfRequest &req)
{
    if (req.isWrite) {
        ++stats_.rfWrites;
        if (req.releaseOnComplete)
            scoreboard_.releaseWrite(req.warp, req.reg);
        return;
    }

    if (req.rfcHit)
        ++stats_.rfcReads;
    else
        ++stats_.rfReads;
    if (req.collector & kBocFlag) {
        // A BOC fetch: fill the entry and wake every slot of the warp
        // waiting on this register.
        const WarpId w = static_cast<WarpId>(req.collector & ~kBocFlag);
        if (bocFetchOutstanding_[w])
            --bocFetchOutstanding_[w];
        if (bocs_[w])
            bocs_[w]->fetchComplete(req.reg);
        ++stats_.bocDeposits;
        if (tracer_ && tracer_->wants(now_)) {
            tracer_->emit({now_, 1, TraceEventKind::Deposit, w,
                           req.reg, 0});
        }
        for (InstSlot &slot : warpSlots_[w]) {
            if (!slot.inUse)
                continue;
            auto it = std::find(slot.awaiting.begin(),
                                slot.awaiting.end(), req.reg);
            if (it != slot.awaiting.end())
                slot.awaiting.erase(it);
            if (slot.ready() && slot.readyCycle == kNoCycle)
                slot.readyCycle = now_;
        }
    } else {
        InstSlot &slot = sharedSlots_.at(req.collector);
        if (slot.outstanding)
            --slot.outstanding;
        auto it = std::find(slot.awaiting.begin(), slot.awaiting.end(),
                            req.reg);
        if (it == slot.awaiting.end())
            panic("SmCore: RF read served for an operand the collector "
                  "was not awaiting");
        slot.awaiting.erase(it);
        if (slot.ready() && slot.readyCycle == kNoCycle)
            slot.readyCycle = now_;
    }
}

void
SmCore::processCompletions()
{
    // The due bucket is swapped into the scratch before processing:
    // retire-side effects may not schedule into the current cycle.
    if (!completions_.takeDue(now_, doneScratch_))
        return;
    cycleDidWork_ = true;

    for (const Completion &c : doneScratch_) {
        Warp &warp = warps_[c.warp];
        const Instruction &inst = kernelOf(c.warp).inst(c.idx);

        // Statistics.
        ++stats_.instructions;
        const std::uint64_t ocCycles = c.readyCycle - c.issueCycle;
        const std::uint64_t totCycles = now_ - c.issueCycle;
        if (inst.isMemory()) {
            stats_.ocCyclesMem += ocCycles;
            stats_.totalCyclesMem += totCycles;
            ++stats_.instsMem;
        } else {
            stats_.ocCyclesNonMem += ocCycles;
            stats_.totalCyclesNonMem += totCycles;
            ++stats_.instsNonMem;
        }
        if (opcodeInfo(inst.op).isLoad) {
            --outstandingLoads_;
            --warp.pendingLoads;
        }

        const bool tracing = tracer_ && tracer_->wants(now_);
        if (tracing) {
            tracer_->emit({now_, 1, TraceEventKind::Complete, c.warp,
                           inst.hasDest() ? inst.dst : kNoReg,
                           c.idx});
        }

        // Destination write-back, per architecture.
        if (inst.hasDest()) {
            if (!c.fx.wrote) {
                // Guard predicate suppressed the write.
                scoreboard_.releaseWrite(c.warp, inst.dst);
            } else {
                switch (config_.arch) {
                  case Architecture::Baseline:
                    rf_.pushWrite(c.warp, inst.dst, true);
                    if (tracing) {
                        tracer_->emit({now_, 1,
                                       TraceEventKind::Writeback,
                                       c.warp, inst.dst, kTraceWbRf});
                    }
                    break;
                  case Architecture::RFC: {
                    ++stats_.rfcWrites;
                    const auto wr = rfcs_[c.warp].write(inst.dst);
                    if (wr.evictedDirty)
                        rf_.pushWrite(c.warp, wr.evictedReg, false);
                    scoreboard_.releaseWrite(c.warp, inst.dst);
                    if (tracing) {
                        tracer_->emit(
                            {now_, 1, TraceEventKind::Writeback,
                             c.warp, inst.dst,
                             kTraceWbBoc | (wr.evictedDirty
                                                ? kTraceWbRf
                                                : 0u)});
                    }
                    break;
                  }
                  case Architecture::BOW:
                  case Architecture::BOW_WR:
                  case Architecture::BOW_WR_OPT: {
                    bocs_[c.warp]->writeResultInto(
                        c.seq, inst.dst, inst.hint, writeScratch_);
                    const BocWriteResult &wres = writeScratch_;
                    if (wres.wroteBoc) {
                        ++stats_.bocResultWrites;
                        scoreboard_.releaseWrite(c.warp, inst.dst);
                        if (wres.writeRfNow)
                            rf_.pushWrite(c.warp, inst.dst, false);
                    } else {
                        // Result went straight to the RF (RfOnly hint
                        // or allocation failure): dependents wait for
                        // the bank write.
                        rf_.pushWrite(c.warp, inst.dst, true);
                    }
                    if (tracing) {
                        const std::uint32_t mask =
                            (wres.wroteBoc ? kTraceWbBoc : 0u) |
                            (!wres.wroteBoc || wres.writeRfNow
                                 ? kTraceWbRf
                                 : 0u);
                        tracer_->emit({now_, 1,
                                       TraceEventKind::Writeback,
                                       c.warp, inst.dst, mask});
                    }
                    if (wres.consolidatedPrev) {
                        ++stats_.consolidatedWrites;
                        if (tracing) {
                            tracer_->emit(
                                {now_, 1,
                                 TraceEventKind::Consolidate, c.warp,
                                 inst.dst, 0});
                        }
                    }
                    for (const BocEviction &ev : wres.evictions)
                        handleEviction(c.warp, ev);
                    if (config_.arch == Architecture::BOW_WR_OPT) {
                        switch (inst.hint) {
                          case WritebackHint::RfOnly:
                            ++stats_.destRfOnly;
                            break;
                          case WritebackHint::BocOnly:
                            ++stats_.destBocOnly;
                            break;
                          case WritebackHint::BocAndRf:
                            ++stats_.destBocAndRf;
                            break;
                        }
                    }
                    break;
                  }
                }
            }
        }

        // Control flow.
        if (inst.isBranch()) {
            warp.pc = c.fx.nextPc;
            warp.waitingBranch = false;
        }

        --warp.inFlight;
        if (warp.state == WarpState::Draining && warp.inFlight == 0)
            finishWarp(warp);
    }
}

void
SmCore::collectPhase()
{
    const unsigned ports = config_.collectorPorts;
    if (usesBoc()) {
        // `ports` fetch ports per BOC: send the oldest pending
        // requests of each warp while ports are free.
        for (Warp &warp : warps_) {
            if (warp.state == WarpState::Inactive ||
                warp.state == WarpState::Finished) {
                continue;
            }
            const WarpId w = warp.id;
            while (bocFetchOutstanding_[w] < ports) {
                InstSlot *oldest = nullptr;
                for (InstSlot &slot : warpSlots_[w]) {
                    if (slot.inUse && !slot.toRequest.empty() &&
                        (!oldest || slot.seq < oldest->seq)) {
                        oldest = &slot;
                    }
                }
                if (!oldest)
                    break;
                const RegId r = oldest->toRequest.front();
                oldest->toRequest.erase(oldest->toRequest.begin());
                oldest->awaiting.push_back(r);
                rf_.pushRead(w, r, kBocFlag | w);
                ++bocFetchOutstanding_[w];
                cycleDidWork_ = true;
            }
        }
        return;
    }

    // Baseline / RFC: each collector resolves at most `ports` source
    // operands per cycle (one on the paper's machines).
    for (std::uint32_t ci = 0; ci < sharedSlots_.size(); ++ci) {
        InstSlot &slot = sharedSlots_[ci];
        while (slot.inUse && slot.outstanding < ports &&
               !slot.toRequest.empty()) {
            const RegId r = slot.toRequest.front();
            slot.toRequest.erase(slot.toRequest.begin());
            slot.awaiting.push_back(r);
            ++slot.outstanding;
            // RFC hits travel the identical banked path (same
            // arbitration and port serialization) but are served by
            // the small cache, so only the energy accounting differs.
            const bool rfcHit = config_.arch == Architecture::RFC &&
                rfcs_[slot.warp].readHit(r);
            rf_.pushRead(slot.warp, r, ci, rfcHit);
            cycleDidWork_ = true;
        }
    }
}

bool
SmCore::tryDispatch(InstSlot &slot)
{
    const Instruction &inst = kernelOf(slot.warp).inst(slot.idx);
    const OpcodeInfo &info = opcodeInfo(inst.op);

    if (info.isLoad && outstandingLoads_ >= config_.maxPendingLoads)
        return false;
    if (!units_.canDispatch(info.unit))
        return false;

    Warp &warp = warps_[slot.warp];
    if (inst.isMemory() && slot.memIndex != warp.memDispatched)
        return false;

    if (stagedMemory_ && inst.isMemory()) {
        // Parallel stepping: everything that touches state shared
        // with sibling SMs — the functional evaluation (loads read,
        // stores write the device MemoryStore), the destination-
        // register commit and the L1/L2 timing access — is deferred
        // into the staging FIFO, which the GpuCore drains in
        // ascending SM-index order at the cycle barrier. Per-SM
        // bookkeeping (unit ports, scoreboard reads, load counters)
        // happens now, exactly as inline dispatch would.
        units_.dispatch(info.unit);
        scoreboard_.releaseReads(slot.warp, inst);
        ++warp.memDispatched;
        if (info.isLoad) {
            ++outstandingLoads_;
            ++warp.pendingLoads;
        }

        StagedAccess sa;
        sa.warp = slot.warp;
        sa.idx = slot.idx;
        sa.seq = slot.seq;
        sa.issueCycle = slot.issueCycle;
        sa.readyCycle = slot.readyCycle == kNoCycle ? now_
                                                    : slot.readyCycle;
        sa.dispatchCycle = now_;
        sa.minDue = now_ + std::max<Cycle>(
            1, units_.latency(inst.op) + stagedMinExtra(config_, inst));
        sa.srcRegs = inst.uniqueSrcRegs();
        for (RegId r : sa.srcRegs)
            sa.srcVals.push_back(warp.regs[r]);
        stagedMem_.push_back(sa);
        stagedStall_ = std::min(stagedStall_, stagedStallOf(sa));
        cycleDidWork_ = true;

        slot = InstSlot{};
        return true;
    }

    const ExecEffect fx = evaluate(kernelOf(slot.warp), slot.idx,
                                   warp.regs,
                                   slot.warp,
                                   static_cast<unsigned>(warps_.size()),
                                   *mem_);
    if (fx.wrote)
        warp.regs[inst.dst] = fx.result;

    units_.dispatch(info.unit);
    scoreboard_.releaseReads(slot.warp, inst);
    if (inst.isMemory())
        ++warp.memDispatched;
    if (info.isLoad) {
        ++outstandingLoads_;
        ++warp.pendingLoads;
    }

    unsigned latency = units_.latency(inst.op);
    if (inst.isMemory() && fx.guardPassed) {
        latency += memTiming_.access(fx.space, fx.addr,
                                     info.isStore, now_);
    }

    Completion c;
    c.warp = slot.warp;
    c.idx = slot.idx;
    c.seq = slot.seq;
    c.fx = fx;
    c.issueCycle = slot.issueCycle;
    c.readyCycle = slot.readyCycle == kNoCycle ? now_
                                               : slot.readyCycle;
    c.dispatchCycle = now_;
    completions_.schedule(now_, now_ + std::max(1u, latency), c);
    cycleDidWork_ = true;

    if (tracer_ && tracer_->wants(now_)) {
        tracer_->emit({now_, std::max(1u, latency),
                       TraceEventKind::Dispatch, slot.warp,
                       inst.hasDest() ? inst.dst : kNoReg,
                       slot.idx});
    }

    slot = InstSlot{};
    return true;
}

void
SmCore::dispatchPhase()
{
    if (usesBoc()) {
        for (Warp &warp : warps_) {
            if (warp.state == WarpState::Inactive ||
                warp.state == WarpState::Finished) {
                continue;
            }
            // Oldest-first dispatch within the warp.
            readyScratch_.clear();
            for (InstSlot &slot : warpSlots_[warp.id]) {
                if (slot.ready())
                    readyScratch_.push_back(&slot);
            }
            std::sort(readyScratch_.begin(), readyScratch_.end(),
                      [](const InstSlot *a, const InstSlot *b) {
                          return a->seq < b->seq;
                      });
            for (InstSlot *slot : readyScratch_)
                tryDispatch(*slot);
        }
    } else {
        for (InstSlot &slot : sharedSlots_) {
            if (slot.ready())
                tryDispatch(slot);
        }
    }
}

bool
SmCore::tryIssue(WarpId w)
{
    Warp &warp = warps_[w];
    if (!warp.canIssue())
        return false;
    const Instruction &inst = kernelOf(w).inst(warp.pc);
    if (!scoreboard_.canIssue(w, inst)) {
        if (tracer_ && tracer_->wants(now_)) {
            tracer_->emit({now_, 1, TraceEventKind::Stall, w,
                           inst.hasDest() ? inst.dst : kNoReg,
                           warp.pc});
        }
        return false;
    }

    InstSlot *slot = nullptr;
    if (usesBoc()) {
        for (InstSlot &s : warpSlots_[w]) {
            if (!s.inUse) {
                slot = &s;
                break;
            }
        }
    } else {
        for (InstSlot &s : sharedSlots_) {
            if (!s.inUse) {
                slot = &s;
                break;
            }
        }
    }
    if (!slot)
        return false;

    scoreboard_.reserve(w, inst);
    slot->inUse = true;
    slot->warp = w;
    slot->idx = warp.pc;
    slot->seq = warp.nextSeq++;
    slot->issueCycle = now_;
    slot->toRequest.clear();
    slot->awaiting.clear();
    slot->outstanding = 0;
    slot->readyCycle = kNoCycle;
    if (inst.isMemory())
        slot->memIndex = warp.memIssued++;

    const auto srcs = inst.uniqueSrcRegs();
    ++stats_.srcOperandHist[std::min<std::size_t>(srcs.size(), 3)];

    const bool tracing = tracer_ && tracer_->wants(now_);
    if (tracing) {
        tracer_->emit({now_, 1, TraceEventKind::Issue, w,
                       inst.hasDest() ? inst.dst : kNoReg,
                       slot->idx});
    }

    if (usesBoc()) {
        bocs_[w]->insertInto(slot->seq,
                             std::span<const RegId>(srcs.data(),
                                                    srcs.size()),
                             insertScratch_);
        const BocInsertResult &res = insertScratch_;
        stats_.bocForwards += res.forwarded;
        if (tracing && res.forwarded) {
            tracer_->emit({now_, 1, TraceEventKind::Bypass, w, kNoReg,
                           static_cast<std::uint32_t>(res.forwarded)});
        }
        for (RegId r : res.toFetch)
            slot->toRequest.push_back(r);
        for (RegId r : res.sharedFetch)
            slot->awaiting.push_back(r);
        for (const BocEviction &ev : res.evictions)
            handleEviction(w, ev);
    } else {
        slot->toRequest = srcs;
    }

    if (slot->ready())
        slot->readyCycle = now_;

    if (inst.isBranch()) {
        warp.waitingBranch = true;
    } else if (inst.endsWarp()) {
        warp.state = WarpState::Draining;
    } else {
        ++warp.pc;
    }
    ++warp.inFlight;
    warp.lastIssue = now_;
    cycleDidWork_ = true;
    return true;
}

void
SmCore::issuePhase()
{
    for (unsigned sid = 0; sid < config_.numSchedulers; ++sid) {
        unsigned issued = 0;
        schedulers_.pickOrder(sid, warps_, orderScratch_);
        for (WarpId w : orderScratch_) {
            while (issued < config_.issuePerScheduler && tryIssue(w)) {
                schedulers_.noteIssue(sid, w);
                ++issued;
            }
            if (issued >= config_.issuePerScheduler)
                break;
        }
    }
}

void
SmCore::samplePhase(std::uint64_t weight)
{
    if (!usesBoc())
        return;
    for (const Warp &warp : warps_) {
        if (warp.state != WarpState::Active &&
            warp.state != WarpState::Draining) {
            continue;
        }
        const unsigned occ = bocs_[warp.id]->occupied();
        const std::size_t bucket = std::min<std::size_t>(
            occ, stats_.bocOccupancyHist.size() - 1);
        stats_.bocOccupancyHist[bucket] += weight;
    }
}

void
SmCore::cycle()
{
    if (injector_)
        injector_->onCycle(now_, warps_, bocs_, rfcs_);
    cycleDidWork_ = false;
    // Snapshot the hazard-stall counters: if this cycle turns out
    // inert, their delta is what every skipped cycle must replay.
    std::array<std::uint64_t, 3> stallsBefore{};
    if (ffEnabled_)
        stallsBefore = scoreboard_.stallCounts();
    units_.newCycle();
    rf_.tick(servedScratch_);
    if (!servedScratch_.empty())
        cycleDidWork_ = true;
    for (const RfRequest &req : servedScratch_)
        handleRfServed(req);
    processCompletions();
    collectPhase();
    dispatchPhase();
    if (!issueFrozen_)
        issuePhase();
    samplePhase(1);
    if (ffEnabled_) {
        lastCycleInert_ = !cycleDidWork_;
        if (lastCycleInert_) {
            const auto after = scoreboard_.stallCounts();
            for (std::size_t i = 0; i < 3; ++i)
                inertStallDelta_[i] = after[i] - stallsBefore[i];
        }
    }
    ++now_;
}

Cycle
SmCore::budgetCap() const
{
    // Latest cycle fast-forward may reach: the maxCycles valve and
    // the watchdog's deterministic cycle budget both trip on exact
    // busy-cycle counts, so a jump must stop where stepping would.
    Cycle cap = kNoCycle;
    if (config_.maxCycles)
        cap = now_ + (config_.maxCycles - busyCycles_);
    if (watchdog_ && watchdog_->limits().cycleBudget) {
        const std::uint64_t budget = watchdog_->limits().cycleBudget;
        const Cycle left = budget > busyCycles_
            ? budget - busyCycles_
            : 0;
        cap = std::min(cap, now_ + left);
    }
    return cap;
}

Cycle
SmCore::nextWakeCycle() const
{
    if (finished())
        return kNoCycle;
    if (!ffEnabled_ || !lastCycleInert_)
        return now_;
    const Cycle next = completions_.nextEventCycle(now_);
    if (next == kNoCycle) {
        // Inert with an empty wheel: a genuine deadlock. Keep
        // stepping so the maxCycles diagnostic fires exactly as it
        // always did.
        return now_;
    }
    return std::min(next, budgetCap());
}

void
SmCore::fastForwardTo(Cycle target)
{
    if (!ffEnabled_ || !lastCycleInert_)
        panic("SmCore::fastForwardTo: SM is not provably inert");
    if (target <= now_)
        panic("SmCore::fastForwardTo: target is not in the future");
    const std::uint64_t skipped = target - now_;
    now_ = target;
    // Skipped cycles are real simulated cycles for every budget and
    // statistic; only the host never stepped them.
    busyCycles_ += skipped;
    stats_.fastforwardCycles += skipped;
    scoreboard_.addStalls(inertStallDelta_, skipped);
    samplePhase(skipped);
}

void
SmCore::commitOne(const StagedAccess &sa)
{
    // Runs between cycles (the GpuCore barrier): now_ may already
    // have advanced past the dispatch cycle, so every access and
    // schedule is stamped with the recorded dispatchCycle —
    // reproducing the inline path's timestamps, bucket placement and
    // L2 bank/MSHR arbitration exactly. The wheel accepts it: with
    // latency >= 1 the event is due no earlier than now_ (epoch
    // free-run stalls before the earliest possible due cycle), and
    // the ring-vs-overflow decision only depends on
    // (when - dispatchCycle), identical to the serial schedule.
    Warp &warp = warps_[sa.warp];
    const Instruction &inst = kernelOf(sa.warp).inst(sa.idx);
    const OpcodeInfo &info = opcodeInfo(inst.op);

    // Replay the dispatch-time source values around the evaluation:
    // read locks released at dispatch, so a later instruction of the
    // same warp may have legally overwritten a source register since
    // (WAR). Memory contents, by contrast, are *meant* to be read
    // now — commits run in global (cycle, SM) order, so the store is
    // in exactly the state the serial loop saw at this access's
    // dispatch. The destination needs no such care: its write lock
    // holds until the completion retires, which is never before the
    // commit.
    SmallVec<Value, 4> liveVals;
    for (std::size_t i = 0; i < sa.srcRegs.size(); ++i) {
        liveVals.push_back(warp.regs[sa.srcRegs[i]]);
        warp.regs[sa.srcRegs[i]] = sa.srcVals[i];
    }
    const ExecEffect fx =
        evaluate(kernelOf(sa.warp), sa.idx, warp.regs, sa.warp,
                 static_cast<unsigned>(warps_.size()), *mem_);
    for (std::size_t i = 0; i < sa.srcRegs.size(); ++i)
        warp.regs[sa.srcRegs[i]] = liveVals[i];
    if (fx.wrote)
        warp.regs[inst.dst] = fx.result;

    unsigned latency = units_.latency(inst.op);
    if (fx.guardPassed) {
        latency += memTiming_.access(fx.space, fx.addr,
                                     info.isStore,
                                     sa.dispatchCycle);
    }

    Completion c;
    c.warp = sa.warp;
    c.idx = sa.idx;
    c.seq = sa.seq;
    c.fx = fx;
    c.issueCycle = sa.issueCycle;
    c.readyCycle = sa.readyCycle;
    c.dispatchCycle = sa.dispatchCycle;
    completions_.schedule(sa.dispatchCycle,
                          sa.dispatchCycle + std::max(1u, latency),
                          c);
}

void
SmCore::drainStagedMem()
{
    while (stagedHead_ < stagedMem_.size())
        commitOne(stagedMem_[stagedHead_++]);
    stagedMem_.clear();
    stagedHead_ = 0;
    stagedStall_ = kNoCycle;
}

Cycle
SmCore::stagedFrontCycle() const
{
    return stagedHead_ < stagedMem_.size()
        ? stagedMem_[stagedHead_].dispatchCycle
        : kNoCycle;
}

void
SmCore::commitStagedFront()
{
    if (stagedHead_ >= stagedMem_.size())
        panic("SmCore::commitStagedFront: nothing staged");
    commitOne(stagedMem_[stagedHead_++]);
    if (stagedHead_ == stagedMem_.size()) {
        stagedMem_.clear();
        stagedHead_ = 0;
        stagedStall_ = kNoCycle;
    } else {
        // Commits can insert overflow events (queueing-delayed L2
        // misses), which tightens the window-edge hazard below, so
        // the stall bound is re-derived against the live wheel.
        recomputeStagedStall();
    }
}

Cycle
SmCore::stagedStallOf(const StagedAccess &sa) const
{
    // Free-run may not reach a cycle whose inline completion could
    // share a wheel bucket with this access's not-yet-scheduled
    // completion: inline (non-memory) events land at most
    // maxNonMemLat_ ahead, so stopping maxNonMemLat_ short of the
    // earliest possible due cycle keeps every inline schedule
    // strictly before it — bucket FIFO order then matches the serial
    // schedule order.
    Cycle stall = sa.minDue > maxNonMemLat_
        ? std::max(sa.minDue - maxNonMemLat_, sa.dispatchCycle + 1)
        : sa.dispatchCycle + 1;
    // Window-edge hazard: an overflow event due exactly at
    // dispatch + horizon would migrate into the ring during cycle
    // dispatch + 1 — before the commit schedules this access into
    // that same bucket — whereas the serial schedule (at dispatch
    // time) preceded the migration. Stall immediately in that rare
    // case so the migration happens after the commit, as in serial.
    if (completions_.hasOverflow() &&
        completions_.overflowContains(sa.dispatchCycle +
                                      completions_.horizon())) {
        stall = sa.dispatchCycle + 1;
    }
    return stall;
}

void
SmCore::recomputeStagedStall()
{
    stagedStall_ = kNoCycle;
    for (std::size_t i = stagedHead_; i < stagedMem_.size(); ++i) {
        stagedStall_ =
            std::min(stagedStall_, stagedStallOf(stagedMem_[i]));
    }
}

bool
SmCore::finished() const
{
    return finishedWarps_ == assigned_.size() &&
        completions_.empty() && rf_.pending() == 0 &&
        stagedMem_.empty();
}

namespace {

const char *
warpStateName(WarpState s)
{
    switch (s) {
      case WarpState::Inactive: return "inactive";
      case WarpState::Active:   return "active";
      case WarpState::Draining: return "draining";
      case WarpState::Finished: return "finished";
    }
    return "?";
}

void
appendRegList(std::ostringstream &os, const std::vector<RegId> &regs)
{
    if (regs.empty()) {
        os << "-";
        return;
    }
    for (std::size_t i = 0; i < regs.size(); ++i)
        os << (i ? "," : "") << "r" << regs[i];
}

} // namespace

std::string
SmCore::deadlockDiagnostics() const
{
    // Diagnostic snapshot for the maxCycles trip: for each stuck
    // warp, why it cannot make progress right now. Capped so a
    // large launch does not bury the interesting warps.
    constexpr std::size_t kMaxWarps = 12;

    std::ostringstream os;
    os << "  global: cycle=" << now_ << " sm=" << smIndex_
       << " rfPending=" << rf_.pending()
       << " completionsQueued=" << completions_.size()
       << " outstandingLoads=" << outstandingLoads_
       << " finishedWarps=" << finishedWarps_ << "/"
       << assigned_.size() << "\n";

    // Only this SM's warps are interesting: in a multi-SM run the
    // other SMs' warps are Inactive here by construction.
    std::vector<bool> mine(warps_.size(), !externalAdmission_);
    if (externalAdmission_) {
        for (WarpId w : assigned_)
            mine[w] = true;
    }

    std::size_t shown = 0;
    std::size_t skipped = 0;
    for (const Warp &warp : warps_) {
        if (!mine[warp.id] || warp.state == WarpState::Finished)
            continue;
        if (shown >= kMaxWarps) {
            ++skipped;
            continue;
        }
        ++shown;

        os << "  warp " << warp.id << ": state="
           << warpStateName(warp.state) << " pc=" << warp.pc
           << " inFlight=" << warp.inFlight
           << " pendingLoads=" << warp.pendingLoads;

        // Why is this warp not issuing?
        const char *reason = "schedulable";
        if (warp.state == WarpState::Inactive) {
            reason = "never-activated";
        } else if (warp.state == WarpState::Draining) {
            reason = "draining (waiting for in-flight to retire)";
        } else if (warp.waitingBranch) {
            reason = "waiting-branch (unresolved branch in flight)";
        } else {
            const Instruction &inst = kernelOf(warp.id).inst(warp.pc);
            if (!scoreboard_.canIssue(warp.id, inst)) {
                reason = "scoreboard-hazard (RAW/WAW/WAR)";
            } else {
                const auto &slots = usesBoc() ? warpSlots_[warp.id]
                                              : sharedSlots_;
                bool freeSlot = false;
                for (const InstSlot &s : slots)
                    freeSlot = freeSlot || !s.inUse;
                if (!freeSlot)
                    reason = "no-free-collector-slot";
            }
        }
        os << " stall=" << reason;

        os << " pendingWrites=";
        appendRegList(os, scoreboard_.pendingWriteRegs(warp.id));
        os << " pendingReads=";
        appendRegList(os, scoreboard_.pendingReadRegs(warp.id));

        if (usesBoc() && bocs_[warp.id]) {
            os << " bocOccupancy=" << bocs_[warp.id]->occupied() << "/"
               << bocs_[warp.id]->capacity();
        }
        os << "\n";
    }
    if (skipped)
        os << "  (" << skipped << " more unfinished warps omitted)\n";
    return os.str();
}

void
SmCore::stepBusy()
{
    if (config_.maxCycles && busyCycles_ >= config_.maxCycles) {
        fatal(strf("SmCore: kernel '",
                   kernelOf(assigned_.empty() ? 0 : assigned_[0])
                       .name(),
                   "' exceeded ", config_.maxCycles,
                   " cycles (deadlock or runaway kernel)\n",
                   deadlockDiagnostics()));
    }
    if (watchdog_)
        watchdog_->checkpoint(busyCycles_);
    cycle();
    ++busyCycles_;
}

void
SmCore::step()
{
    if (ran_)
        panic("SmCore::step after finalize()");
    if (finished()) {
        // Lockstep idle tick: keeps now_ equal to the global GPU
        // cycle without consuming any watchdog budget.
        ++now_;
        return;
    }
    stepBusy();
}

void
SmCore::recordWorkless(Cycle c)
{
    if (!worklessSpans_.empty() && worklessSpans_.back().second == c) {
        ++worklessSpans_.back().second;
        return;
    }
    worklessSpans_.emplace_back(c, c + 1);
}

void
SmCore::fastForwardEpoch(Cycle target)
{
    // Like fastForwardTo(), except the fastforwardCycles statistic is
    // NOT credited here: in serial multi-SM stepping only the cycles
    // every SM skipped together count as fast-forwarded, and during an
    // epoch this SM cannot see its siblings. The jump is recorded as a
    // workless span instead; GpuCore intersects the spans at the epoch
    // barrier and credits exactly the globally-idle cycles
    // (applyFastforwardCredit), so the statistic matches serial
    // stepping bit for bit.
    if (!ffEnabled_ || !lastCycleInert_)
        panic("SmCore::fastForwardEpoch: SM is not provably inert");
    if (target <= now_)
        panic("SmCore::fastForwardEpoch: target is not in the future");
    if (!worklessSpans_.empty() &&
        worklessSpans_.back().second == now_) {
        worklessSpans_.back().second = target;
    } else {
        worklessSpans_.emplace_back(now_, target);
    }
    const std::uint64_t skipped = target - now_;
    now_ = target;
    busyCycles_ += skipped;
    scoreboard_.addStalls(inertStallDelta_, skipped);
    samplePhase(skipped);
}

void
SmCore::beginEpoch(Cycle t0)
{
    worklessSpans_.clear();
    // Seed with the cycle before the epoch if it was inert: the
    // global fast-forward decision for cycle t0 depends on whether
    // every SM was idle *entering* the epoch, exactly like the serial
    // loop consults lastCycleInert_ from the previous cycle.
    if (ffEnabled_ && lastCycleInert_ && t0 > 0)
        recordWorkless(t0 - 1);
}

void
SmCore::runEpoch(Cycle target)
{
    if (ran_)
        panic("SmCore::runEpoch after finalize()");
    while (now_ < target && !finished()) {
        if (stagedStall_ != kNoCycle && now_ >= stagedStall_) {
            // Free-run bound reached: a staged access is waiting for
            // its barrier-ordered commit. The coordinator commits and
            // calls back in.
            return;
        }
        stepBusy();
        if (ffEnabled_ && lastCycleInert_) {
            recordWorkless(now_ - 1);
            if (!finished()) {
                const Cycle next = completions_.nextEventCycle(now_);
                if (next != kNoCycle) {
                    Cycle jump =
                        std::min({next, target, budgetCap()});
                    if (stagedStall_ != kNoCycle)
                        jump = std::min(jump, stagedStall_);
                    if (jump > now_)
                        fastForwardEpoch(jump);
                }
            }
        }
    }
}

RunStats
SmCore::run()
{
    if (ran_)
        panic("SmCore::run: already ran");
    while (!finished()) {
        step();
        // Idle fast-forward: if the cycle just simulated was inert,
        // every cycle until the next completion event is too — jump
        // straight there (multi-SM runs make this decision in
        // GpuCore instead, across all SMs).
        if (ffEnabled_ && lastCycleInert_ && !finished()) {
            const Cycle target = nextWakeCycle();
            if (target != kNoCycle && target > now_)
                fastForwardTo(target);
        }
    }
    return finalize();
}

RunStats
SmCore::finalize()
{
    if (ran_)
        panic("SmCore::finalize: already finalized");
    if (!finished())
        panic("SmCore::finalize before the SM finished");
    ran_ = true;

    stats_.cycles = busyCycles_;
    stats_.bankReadConflicts = rf_.stats().counterValue(
        "read_conflicts");
    stats_.bankWriteConflicts = rf_.stats().counterValue(
        "write_conflicts");
    stats_.l1Hits = memTiming_.stats().counterValue("l1_hits");
    stats_.l1Misses = memTiming_.stats().counterValue("l1_misses");
    return stats_;
}

const std::vector<RegFileState> &
SmCore::finalRegs() const
{
    if (!ran_)
        panic("SmCore::finalRegs before run()");
    return finalRegs_;
}

void
SmCore::exportMetrics(MetricsRegistry &out) const
{
    if (!ran_)
        panic("SmCore::exportMetrics before run()");

    const std::string p = strf("sm", smIndex_, ".");
    auto name = [&](const char *suffix) { return p + suffix; };

    // Aggregate pipeline statistics (RunStats), under the stable
    // names the golden regression gate pins down.
    out.setCounter(name("core.cycles"), stats_.cycles);
    out.setCounter(name("core.instructions"), stats_.instructions);
    out.setValue(name("core.ipc"), stats_.ipc());
    out.setCounter(name("core.peak_resident_warps"),
                   stats_.peakResident);
    out.setCounter(name("core.ctas"), ctasAssigned_);
    out.setCounter(name("core.fastforward_cycles"),
                   stats_.fastforwardCycles);

    out.setCounter(name("oc.cycles_mem"), stats_.ocCyclesMem);
    out.setCounter(name("oc.cycles_nonmem"), stats_.ocCyclesNonMem);
    out.setCounter(name("oc.total_cycles_mem"), stats_.totalCyclesMem);
    out.setCounter(name("oc.total_cycles_nonmem"),
                   stats_.totalCyclesNonMem);
    out.setCounter(name("oc.insts_mem"), stats_.instsMem);
    out.setCounter(name("oc.insts_nonmem"), stats_.instsNonMem);
    out.setHist(name("oc.src_operands_hist"), stats_.srcOperandHist);

    out.setCounter(name("rf.reads"), stats_.rfReads);
    out.setCounter(name("rf.writes"), stats_.rfWrites);

    out.setCounter(name("boc.bypass_hits"), stats_.bocForwards);
    out.setCounter(name("boc.deposits"), stats_.bocDeposits);
    out.setCounter(name("boc.result_writes"), stats_.bocResultWrites);
    out.setHist(name("boc.occupancy_hist"), stats_.bocOccupancyHist);

    out.setCounter(name("rfc.reads"), stats_.rfcReads);
    out.setCounter(name("rfc.writes"), stats_.rfcWrites);

    out.setCounter(name("wb.consolidated_writes"),
                   stats_.consolidatedWrites);
    out.setCounter(name("wb.transient_drops"), stats_.transientDrops);
    out.setCounter(name("wb.safety_writes"), stats_.safetyWrites);
    out.setCounter(name("wb.dest_rf_only"), stats_.destRfOnly);
    out.setCounter(name("wb.dest_boc_only"), stats_.destBocOnly);
    out.setCounter(name("wb.dest_boc_and_rf"), stats_.destBocAndRf);

    // The contention/L1 figures print these even when zero; exporting
    // them from RunStats first guarantees the names are always
    // present (an untouched StatGroup counter would be absent). The
    // shim below overwrites them with the identical group value.
    out.setCounter(name("rf_banks.read_conflicts"),
                   stats_.bankReadConflicts);
    out.setCounter(name("rf_banks.write_conflicts"),
                   stats_.bankWriteConflicts);
    out.setCounter(name("mem.l1_hits"), stats_.l1Hits);
    out.setCounter(name("mem.l1_misses"), stats_.l1Misses);

    // Per-component StatGroups, through the migration shim.
    rf_.stats().exportTo(out, p + "rf_banks");
    memTiming_.stats().exportTo(out, p + "mem");
    units_.stats().exportTo(out, p + "exec");
    scoreboard_.stats().exportTo(out, p + "scoreboard");
}

// ---------------------------------------------------------------------------
// Snapshot serialization
// ---------------------------------------------------------------------------

JsonValue
runStatsToJson(const RunStats &s)
{
    JsonValue v = JsonValue::object();
    v.set("cycles", JsonValue(s.cycles));
    v.set("instructions", JsonValue(s.instructions));
    v.set("oc_cycles_mem", JsonValue(s.ocCyclesMem));
    v.set("oc_cycles_nonmem", JsonValue(s.ocCyclesNonMem));
    v.set("total_cycles_mem", JsonValue(s.totalCyclesMem));
    v.set("total_cycles_nonmem", JsonValue(s.totalCyclesNonMem));
    v.set("insts_mem", JsonValue(s.instsMem));
    v.set("insts_nonmem", JsonValue(s.instsNonMem));
    v.set("rf_reads", JsonValue(s.rfReads));
    v.set("rf_writes", JsonValue(s.rfWrites));
    v.set("boc_forwards", JsonValue(s.bocForwards));
    v.set("boc_deposits", JsonValue(s.bocDeposits));
    v.set("boc_result_writes", JsonValue(s.bocResultWrites));
    v.set("rfc_reads", JsonValue(s.rfcReads));
    v.set("rfc_writes", JsonValue(s.rfcWrites));
    v.set("consolidated_writes", JsonValue(s.consolidatedWrites));
    v.set("transient_drops", JsonValue(s.transientDrops));
    v.set("safety_writes", JsonValue(s.safetyWrites));
    v.set("dest_rf_only", JsonValue(s.destRfOnly));
    v.set("dest_boc_only", JsonValue(s.destBocOnly));
    v.set("dest_boc_and_rf", JsonValue(s.destBocAndRf));
    JsonValue srcHist = JsonValue::array();
    for (std::uint64_t n : s.srcOperandHist)
        srcHist.push(JsonValue(n));
    v.set("src_operand_hist", std::move(srcHist));
    JsonValue occHist = JsonValue::array();
    for (std::uint64_t n : s.bocOccupancyHist)
        occHist.push(JsonValue(n));
    v.set("boc_occupancy_hist", std::move(occHist));
    v.set("bank_read_conflicts", JsonValue(s.bankReadConflicts));
    v.set("bank_write_conflicts", JsonValue(s.bankWriteConflicts));
    v.set("l1_hits", JsonValue(s.l1Hits));
    v.set("l1_misses", JsonValue(s.l1Misses));
    v.set("peak_resident", JsonValue(s.peakResident));
    v.set("fastforward_cycles", JsonValue(s.fastforwardCycles));
    return v;
}

RunStats
runStatsFromJson(const JsonValue &v)
{
    RunStats s;
    s.cycles = jsonio::getUint(v, "cycles");
    s.instructions = jsonio::getUint(v, "instructions");
    s.ocCyclesMem = jsonio::getUint(v, "oc_cycles_mem");
    s.ocCyclesNonMem = jsonio::getUint(v, "oc_cycles_nonmem");
    s.totalCyclesMem = jsonio::getUint(v, "total_cycles_mem");
    s.totalCyclesNonMem = jsonio::getUint(v, "total_cycles_nonmem");
    s.instsMem = jsonio::getUint(v, "insts_mem");
    s.instsNonMem = jsonio::getUint(v, "insts_nonmem");
    s.rfReads = jsonio::getUint(v, "rf_reads");
    s.rfWrites = jsonio::getUint(v, "rf_writes");
    s.bocForwards = jsonio::getUint(v, "boc_forwards");
    s.bocDeposits = jsonio::getUint(v, "boc_deposits");
    s.bocResultWrites = jsonio::getUint(v, "boc_result_writes");
    s.rfcReads = jsonio::getUint(v, "rfc_reads");
    s.rfcWrites = jsonio::getUint(v, "rfc_writes");
    s.consolidatedWrites = jsonio::getUint(v, "consolidated_writes");
    s.transientDrops = jsonio::getUint(v, "transient_drops");
    s.safetyWrites = jsonio::getUint(v, "safety_writes");
    s.destRfOnly = jsonio::getUint(v, "dest_rf_only");
    s.destBocOnly = jsonio::getUint(v, "dest_boc_only");
    s.destBocAndRf = jsonio::getUint(v, "dest_boc_and_rf");
    s.srcOperandHist.clear();
    for (const JsonValue &n :
         jsonio::getArray(v, "src_operand_hist").items()) {
        s.srcOperandHist.push_back(n.asUint());
    }
    s.bocOccupancyHist.clear();
    for (const JsonValue &n :
         jsonio::getArray(v, "boc_occupancy_hist").items()) {
        s.bocOccupancyHist.push_back(n.asUint());
    }
    s.bankReadConflicts = jsonio::getUint(v, "bank_read_conflicts");
    s.bankWriteConflicts = jsonio::getUint(v, "bank_write_conflicts");
    s.l1Hits = jsonio::getUint(v, "l1_hits");
    s.l1Misses = jsonio::getUint(v, "l1_misses");
    s.peakResident = jsonio::getUint(v, "peak_resident");
    s.fastforwardCycles = jsonio::getUint(v, "fastforward_cycles");
    return s;
}

namespace {

/** Trim a register file to its last non-zero value; restore
 *  zero-fills the tail. Keeps snapshots compact without losing
 *  information. */
JsonValue
regsToJson(const RegFileState &regs)
{
    std::size_t n = regs.size();
    while (n > 0 && regs[n - 1] == 0)
        --n;
    JsonValue out = JsonValue::array();
    for (std::size_t i = 0; i < n; ++i)
        out.push(JsonValue(std::uint64_t(regs[i])));
    return out;
}

void
regsFromJson(RegFileState &regs, const JsonValue &v)
{
    if (v.size() > regs.size())
        fatal("SmCore snapshot: register array too long");
    regs.fill(0);
    for (std::size_t i = 0; i < v.size(); ++i)
        regs[i] = static_cast<Value>(v.at(i).asUint());
}

/** Positional: [warp, idx, seq, issue, toRequest[], awaiting[],
 *  outstanding, memIndex, readyCycle]. Only inUse slots are stored. */
JsonValue
slotToJson(const InstSlot &s)
{
    JsonValue regs = JsonValue::array();
    for (RegId r : s.toRequest)
        regs.push(JsonValue(std::uint64_t(r)));
    JsonValue waits = JsonValue::array();
    for (RegId r : s.awaiting)
        waits.push(JsonValue(std::uint64_t(r)));
    JsonValue out = JsonValue::array();
    out.push(JsonValue(std::uint64_t(s.warp)));
    out.push(JsonValue(std::uint64_t(s.idx)));
    out.push(JsonValue(s.seq));
    out.push(JsonValue(s.issueCycle));
    out.push(std::move(regs));
    out.push(std::move(waits));
    out.push(JsonValue(std::uint64_t(s.outstanding)));
    out.push(JsonValue(std::uint64_t(s.memIndex)));
    out.push(JsonValue(s.readyCycle));
    return out;
}

InstSlot
slotFromJson(const JsonValue &v)
{
    if (v.size() != 9)
        fatal("SmCore snapshot: malformed collector-slot record");
    InstSlot s;
    s.inUse = true;
    s.warp = static_cast<WarpId>(v.at(0).asUint());
    s.idx = static_cast<InstIdx>(v.at(1).asUint());
    s.seq = v.at(2).asUint();
    s.issueCycle = v.at(3).asUint();
    for (const JsonValue &r : v.at(4).items())
        s.toRequest.push_back(static_cast<RegId>(r.asUint()));
    for (const JsonValue &r : v.at(5).items())
        s.awaiting.push_back(static_cast<RegId>(r.asUint()));
    s.outstanding = static_cast<std::uint8_t>(v.at(6).asUint());
    s.memIndex = static_cast<std::uint32_t>(v.at(7).asUint());
    s.readyCycle = v.at(8).asUint();
    return s;
}

/** Positional: [guardPassed, wrote, result, branchTaken, nextPc,
 *  warpDone, isMem, space, addr]. */
JsonValue
effectToJson(const ExecEffect &fx)
{
    JsonValue out = JsonValue::array();
    out.push(JsonValue(fx.guardPassed));
    out.push(JsonValue(fx.wrote));
    out.push(JsonValue(std::uint64_t(fx.result)));
    out.push(JsonValue(fx.branchTaken));
    out.push(JsonValue(std::uint64_t(fx.nextPc)));
    out.push(JsonValue(fx.warpDone));
    out.push(JsonValue(fx.isMem));
    out.push(JsonValue(std::uint64_t(fx.space)));
    out.push(JsonValue(std::uint64_t(fx.addr)));
    return out;
}

ExecEffect
effectFromJson(const JsonValue &v)
{
    if (v.size() != 9)
        fatal("SmCore snapshot: malformed exec-effect record");
    ExecEffect fx;
    fx.guardPassed = v.at(0).asBool();
    fx.wrote = v.at(1).asBool();
    fx.result = static_cast<Value>(v.at(2).asUint());
    fx.branchTaken = v.at(3).asBool();
    fx.nextPc = static_cast<InstIdx>(v.at(4).asUint());
    fx.warpDone = v.at(5).asBool();
    fx.isMem = v.at(6).asBool();
    fx.space = static_cast<MemSpace>(v.at(7).asUint());
    fx.addr = static_cast<std::uint32_t>(v.at(8).asUint());
    return fx;
}

} // namespace

JsonValue
SmCore::saveState() const
{
    if (ran_)
        fatal("SmCore::saveState: run already finalized");
    if (!stagedMem_.empty())
        panic("SmCore::saveState: staged memory FIFO not drained");

    JsonValue out = JsonValue::object();
    out.set("now", JsonValue(now_));
    out.set("busy_cycles", JsonValue(busyCycles_));
    out.set("outstanding_loads",
            JsonValue(std::uint64_t(outstandingLoads_)));
    out.set("resident_warps",
            JsonValue(std::uint64_t(residentWarps_)));
    JsonValue assigned = JsonValue::array();
    for (WarpId w : assigned_)
        assigned.push(JsonValue(std::uint64_t(w)));
    out.set("assigned", std::move(assigned));
    out.set("next_to_activate",
            JsonValue(std::uint64_t(nextToActivate_)));
    out.set("ctas_assigned", JsonValue(std::uint64_t(ctasAssigned_)));
    out.set("finished_warps",
            JsonValue(std::uint64_t(finishedWarps_)));
    out.set("last_cycle_inert", JsonValue(lastCycleInert_));
    JsonValue inert = JsonValue::array();
    for (std::uint64_t d : inertStallDelta_)
        inert.push(JsonValue(d));
    out.set("inert_stall_delta", std::move(inert));
    out.set("stats", runStatsToJson(stats_));

    // Warps: null = untouched (Inactive), a bare state for Finished
    // (registers live in final_regs), the full context otherwise.
    JsonValue warps = JsonValue::array();
    for (const Warp &w : warps_) {
        if (w.state == WarpState::Inactive) {
            warps.push(JsonValue());
            continue;
        }
        JsonValue rec = JsonValue::object();
        rec.set("state",
                JsonValue(std::uint64_t(static_cast<int>(w.state))));
        if (w.state != WarpState::Finished) {
            rec.set("pc", JsonValue(std::uint64_t(w.pc)));
            rec.set("regs", regsToJson(w.regs));
            rec.set("waiting_branch", JsonValue(w.waitingBranch));
            rec.set("next_seq", JsonValue(w.nextSeq));
            rec.set("in_flight", JsonValue(std::uint64_t(w.inFlight)));
            rec.set("last_issue", JsonValue(w.lastIssue));
            rec.set("activated", JsonValue(w.activated));
            rec.set("mem_issued",
                    JsonValue(std::uint64_t(w.memIssued)));
            rec.set("mem_dispatched",
                    JsonValue(std::uint64_t(w.memDispatched)));
            rec.set("pending_loads",
                    JsonValue(std::uint64_t(w.pendingLoads)));
        }
        warps.push(std::move(rec));
    }
    out.set("warps", std::move(warps));

    JsonValue finals = JsonValue::array();
    for (WarpId w = 0; w < warps_.size(); ++w) {
        if (warps_[w].state != WarpState::Finished)
            continue;
        JsonValue pair = JsonValue::array();
        pair.push(JsonValue(std::uint64_t(w)));
        pair.push(regsToJson(finalRegs_[w]));
        finals.push(std::move(pair));
    }
    out.set("final_regs", std::move(finals));

    out.set("scoreboard", scoreboard_.saveState());
    out.set("rf", rf_.saveState());
    out.set("mem_timing", memTiming_.saveState());
    out.set("exec_stats", units_.stats().saveJson());
    out.set("schedulers", schedulers_.saveState());

    if (usesBoc()) {
        // Per-warp windows: slots stored sparsely as [position,
        // record] pairs (allocation scans and FIFO victim choice
        // depend on position), BOCs as engaged-or-null.
        JsonValue slots = JsonValue::array();
        JsonValue bocs = JsonValue::array();
        JsonValue fetches = JsonValue::array();
        for (WarpId w = 0; w < warps_.size(); ++w) {
            if (!bocs_[w]) {
                slots.push(JsonValue());
                bocs.push(JsonValue());
            } else {
                JsonValue used = JsonValue::array();
                for (std::size_t i = 0; i < warpSlots_[w].size();
                     ++i) {
                    if (!warpSlots_[w][i].inUse)
                        continue;
                    JsonValue pair = JsonValue::array();
                    pair.push(JsonValue(std::uint64_t(i)));
                    pair.push(slotToJson(warpSlots_[w][i]));
                    used.push(std::move(pair));
                }
                slots.push(std::move(used));
                bocs.push(bocs_[w]->saveState());
            }
            fetches.push(
                JsonValue(std::uint64_t(bocFetchOutstanding_[w])));
        }
        out.set("warp_slots", std::move(slots));
        out.set("bocs", std::move(bocs));
        out.set("boc_fetch_outstanding", std::move(fetches));
    } else {
        JsonValue slots = JsonValue::array();
        for (const InstSlot &s : sharedSlots_)
            slots.push(s.inUse ? slotToJson(s) : JsonValue());
        out.set("shared_slots", std::move(slots));
        if (config_.arch == Architecture::RFC) {
            JsonValue rfcs = JsonValue::array();
            for (const Rfc &r : rfcs_)
                rfcs.push(r.saveState());
            out.set("rfcs", std::move(rfcs));
        }
    }

    // Pending completions, in the wheel's exact structural order
    // (ring FIFO first, then overflow): [when, inRing, warp, idx,
    // seq, issue, ready, dispatch, effect].
    JsonValue comps = JsonValue::array();
    completions_.forEachEvent(
        now_, [&](Cycle when, const Completion &c, bool inRing) {
            JsonValue rec = JsonValue::array();
            rec.push(JsonValue(when));
            rec.push(JsonValue(inRing));
            rec.push(JsonValue(std::uint64_t(c.warp)));
            rec.push(JsonValue(std::uint64_t(c.idx)));
            rec.push(JsonValue(c.seq));
            rec.push(JsonValue(c.issueCycle));
            rec.push(JsonValue(c.readyCycle));
            rec.push(JsonValue(c.dispatchCycle));
            rec.push(effectToJson(c.fx));
            comps.push(std::move(rec));
        });
    out.set("completions", std::move(comps));

    // Functional memory only when this SM owns it; a GpuCore's
    // shared store is serialized once, by the GpuCore.
    if (mem_ == &ownMem_)
        out.set("own_mem", memoryStoreToJson(ownMem_));
    return out;
}

void
SmCore::loadState(const JsonValue &v)
{
    if (injector_ || tracer_) {
        fatal("SmCore::loadState: cannot resume with a fault "
              "injector or tracer attached");
    }
    if (now_ != 0 || busyCycles_ != 0)
        panic("SmCore::loadState: core already stepped");
    if (ran_)
        panic("SmCore::loadState after finalize()");

    now_ = jsonio::getUint(v, "now");
    busyCycles_ = jsonio::getUint(v, "busy_cycles");
    outstandingLoads_ = static_cast<unsigned>(
        jsonio::getUint(v, "outstanding_loads"));
    residentWarps_ = static_cast<unsigned>(
        jsonio::getUint(v, "resident_warps"));
    assigned_.clear();
    for (const JsonValue &w : jsonio::getArray(v, "assigned").items())
        assigned_.push_back(static_cast<WarpId>(w.asUint()));
    nextToActivate_ = jsonio::getUint(v, "next_to_activate");
    ctasAssigned_ = static_cast<unsigned>(
        jsonio::getUint(v, "ctas_assigned"));
    finishedWarps_ = static_cast<unsigned>(
        jsonio::getUint(v, "finished_warps"));
    lastCycleInert_ = jsonio::getBool(v, "last_cycle_inert");
    const JsonValue &inert = jsonio::getArray(v, "inert_stall_delta");
    if (inert.size() != inertStallDelta_.size())
        fatal("SmCore snapshot: malformed inert_stall_delta");
    for (std::size_t i = 0; i < inertStallDelta_.size(); ++i)
        inertStallDelta_[i] = inert.at(i).asUint();
    stats_ = runStatsFromJson(jsonio::member(v, "stats"));

    const JsonValue &warps = jsonio::getArray(v, "warps");
    if (warps.size() != warps_.size())
        fatal("SmCore snapshot: warp count mismatch");
    for (WarpId w = 0; w < warps_.size(); ++w) {
        const JsonValue &rec = warps.at(w);
        Warp &warp = warps_[w];
        warp = Warp{};
        warp.id = w;
        if (rec.isNull())
            continue;
        warp.state = static_cast<WarpState>(
            jsonio::getUint(rec, "state"));
        if (warp.state == WarpState::Finished)
            continue;
        warp.pc = static_cast<InstIdx>(jsonio::getUint(rec, "pc"));
        regsFromJson(warp.regs, jsonio::getArray(rec, "regs"));
        warp.waitingBranch = jsonio::getBool(rec, "waiting_branch");
        warp.nextSeq = jsonio::getUint(rec, "next_seq");
        warp.inFlight = static_cast<unsigned>(
            jsonio::getUint(rec, "in_flight"));
        warp.lastIssue = jsonio::getUint(rec, "last_issue");
        warp.activated = jsonio::getUint(rec, "activated");
        warp.memIssued = static_cast<std::uint32_t>(
            jsonio::getUint(rec, "mem_issued"));
        warp.memDispatched = static_cast<std::uint32_t>(
            jsonio::getUint(rec, "mem_dispatched"));
        warp.pendingLoads = static_cast<std::uint32_t>(
            jsonio::getUint(rec, "pending_loads"));
    }

    for (RegFileState &regs : finalRegs_)
        regs.fill(0);
    for (const JsonValue &pair :
         jsonio::getArray(v, "final_regs").items()) {
        const WarpId w = static_cast<WarpId>(pair.at(0).asUint());
        if (w >= finalRegs_.size())
            fatal("SmCore snapshot: final_regs warp out of range");
        regsFromJson(finalRegs_[w], pair.at(1));
    }

    scoreboard_.loadState(jsonio::member(v, "scoreboard"));
    rf_.loadState(jsonio::member(v, "rf"));
    memTiming_.loadState(jsonio::member(v, "mem_timing"));
    units_.stats().loadJson(jsonio::member(v, "exec_stats"));
    schedulers_.loadState(jsonio::member(v, "schedulers"));

    if (usesBoc()) {
        const JsonValue &slots = jsonio::getArray(v, "warp_slots");
        const JsonValue &bocs = jsonio::getArray(v, "bocs");
        const JsonValue &fetches =
            jsonio::getArray(v, "boc_fetch_outstanding");
        if (slots.size() != warps_.size() ||
            bocs.size() != warps_.size() ||
            fetches.size() != warps_.size()) {
            fatal("SmCore snapshot: warp window count mismatch");
        }
        for (WarpId w = 0; w < warps_.size(); ++w) {
            bocFetchOutstanding_[w] = static_cast<std::uint8_t>(
                fetches.at(w).asUint());
            if (bocs.at(w).isNull()) {
                bocs_[w].reset();
                warpSlots_[w].clear();
                continue;
            }
            bocs_[w].emplace(config_.arch, config_.windowSize,
                             config_.effectiveBocEntries(),
                             config_.extendedWindow);
            bocs_[w]->loadState(bocs.at(w));
            warpSlots_[w].assign(config_.windowSize, InstSlot{});
            for (const JsonValue &pair : slots.at(w).items()) {
                const std::size_t pos = pair.at(0).asUint();
                if (pos >= warpSlots_[w].size())
                    fatal("SmCore snapshot: slot position out of "
                          "range");
                warpSlots_[w][pos] = slotFromJson(pair.at(1));
            }
        }
    } else {
        const JsonValue &slots = jsonio::getArray(v, "shared_slots");
        if (slots.size() != sharedSlots_.size())
            fatal("SmCore snapshot: collector count mismatch");
        for (std::size_t i = 0; i < sharedSlots_.size(); ++i) {
            sharedSlots_[i] = slots.at(i).isNull()
                ? InstSlot{}
                : slotFromJson(slots.at(i));
        }
        if (config_.arch == Architecture::RFC) {
            const JsonValue &rfcs = jsonio::getArray(v, "rfcs");
            if (rfcs.size() != rfcs_.size())
                fatal("SmCore snapshot: RFC count mismatch");
            for (std::size_t i = 0; i < rfcs_.size(); ++i)
                rfcs_[i].loadState(rfcs.at(i));
        }
    }

    for (const JsonValue &rec :
         jsonio::getArray(v, "completions").items()) {
        if (rec.size() != 9)
            fatal("SmCore snapshot: malformed completion record");
        Completion c;
        const Cycle when = rec.at(0).asUint();
        const bool inRing = rec.at(1).asBool();
        c.warp = static_cast<WarpId>(rec.at(2).asUint());
        c.idx = static_cast<InstIdx>(rec.at(3).asUint());
        c.seq = rec.at(4).asUint();
        c.issueCycle = rec.at(5).asUint();
        c.readyCycle = rec.at(6).asUint();
        c.dispatchCycle = rec.at(7).asUint();
        c.fx = effectFromJson(rec.at(8));
        completions_.restoreEvent(when, std::move(c), inRing);
    }

    if (mem_ == &ownMem_) {
        ownMem_ =
            memoryStoreFromJson(jsonio::member(v, "own_mem"));
    }
}

// ---------------------------------------------------------------------------
// Sampled mode (SMARTS-style) support
// ---------------------------------------------------------------------------

bool
SmCore::pipelineQuiet() const
{
    if (!completions_.empty() || rf_.pending() != 0 ||
        !stagedMem_.empty()) {
        return false;
    }
    for (const Warp &warp : warps_) {
        if (warp.inFlight)
            return false;
    }
    return true;
}

void
SmCore::flushOperandState()
{
    if (!pipelineQuiet())
        panic("SmCore::flushOperandState: pipeline not quiet");
    for (Warp &warp : warps_) {
        if (warp.state != WarpState::Active)
            continue;
        if (usesBoc()) {
            flushScratch_.clear();
            bocs_[warp.id]->flushInto(flushScratch_);
            for (const BocEviction &ev : flushScratch_)
                handleEviction(warp.id, ev);
            // A flushed window restarts empty, like a freshly
            // activated warp's.
            bocs_[warp.id].emplace(config_.arch, config_.windowSize,
                                   config_.effectiveBocEntries(),
                                   config_.extendedWindow);
        } else if (config_.arch == Architecture::RFC) {
            for (RegId r : rfcs_[warp.id].flushDirty())
                rf_.pushWrite(warp.id, r, false);
        }
    }
    // The flush queued RF writes: the SM is no longer provably inert.
    lastCycleInert_ = false;
}

std::uint64_t
SmCore::functionalAdvance(std::uint64_t budget)
{
    if (!pipelineQuiet())
        panic("SmCore::functionalAdvance: pipeline not quiet");
    // Round-robin in chunks so concurrent warps interleave roughly
    // fairly; the functional oracle is warp-order insensitive for
    // every workload the suite runs (verifyAgainstFunctional pins
    // that), so the interleaving only shapes which warps reach the
    // next detailed window first.
    constexpr std::uint64_t kChunk = 32;
    std::uint64_t done = 0;
    bool anyRunnable = true;
    while (done < budget && anyRunnable) {
        anyRunnable = false;
        for (WarpId w = 0; w < warps_.size() && done < budget; ++w) {
            Warp &warp = warps_[w];
            if (warp.state != WarpState::Active)
                continue;
            anyRunnable = true;
            const Kernel &kernel = kernelOf(w);
            for (std::uint64_t i = 0; i < kChunk && done < budget;
                 ++i) {
                const Instruction &inst = kernel.inst(warp.pc);
                const ExecEffect fx = evaluate(
                    kernel, warp.pc, warp.regs, w,
                    static_cast<unsigned>(warps_.size()), *mem_);
                if (fx.wrote)
                    warp.regs[inst.dst] = fx.result;
                ++stats_.instructions;
                if (inst.isMemory())
                    ++stats_.instsMem;
                else
                    ++stats_.instsNonMem;
                // Warm the caches: tags and LRU advance, timing
                // queues tick at a frozen clock.
                if (inst.isMemory() && fx.guardPassed) {
                    memTiming_.access(fx.space, fx.addr,
                                      opcodeInfo(inst.op).isStore,
                                      now_);
                }
                ++done;
                if (fx.warpDone) {
                    finishWarp(warp);
                    break;
                }
                warp.pc = fx.nextPc;
            }
        }
    }
    lastCycleInert_ = false;
    return done;
}

} // namespace bow
