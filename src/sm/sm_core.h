/**
 * @file
 * The cycle-level streaming-multiprocessor model: warp schedulers,
 * scoreboard, operand collection (baseline OCUs, BOW/BOW-WR BOCs, or
 * the RFC baseline), banked register file, execution units and the
 * write-back stage. One SmCore simulates one launch to completion on
 * one SM, which is the scope of every experiment in the paper.
 */

#ifndef BOWSIM_SM_SM_CORE_H
#define BOWSIM_SM_SM_CORE_H

#include <array>
#include <optional>
#include <utility>
#include <vector>

#include "common/event_wheel.h"
#include "common/small_vec.h"
#include "common/stats.h"
#include "common/types.h"
#include "sm/boc.h"
#include "sm/exec_unit.h"
#include "sm/functional.h"
#include "sm/memory_model.h"
#include "sm/register_file.h"
#include "sm/rfc.h"
#include "sm/scheduler.h"
#include "sm/scoreboard.h"
#include "sm/sim_config.h"
#include "sm/warp.h"

namespace bow {

class FaultInjector;
class JsonValue;
class MetricsRegistry;
class TraceSink;
class Watchdog;

/** Aggregate results of one timing simulation. */
struct RunStats
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;

    /** Instructions per cycle. */
    double
    ipc() const
    {
        return cycles
            ? static_cast<double>(instructions) /
              static_cast<double>(cycles)
            : 0.0;
    }

    // Operand-collection residency (paper Fig. 4 and Fig. 12).
    std::uint64_t ocCyclesMem = 0;
    std::uint64_t ocCyclesNonMem = 0;
    std::uint64_t totalCyclesMem = 0;
    std::uint64_t totalCyclesNonMem = 0;
    std::uint64_t instsMem = 0;
    std::uint64_t instsNonMem = 0;

    /** Total cycles spent in the operand-collection stage. */
    std::uint64_t
    ocCyclesTotal() const
    {
        return ocCyclesMem + ocCyclesNonMem;
    }

    // Register-file / BOC / RFC access counts (energy inputs).
    std::uint64_t rfReads = 0;
    std::uint64_t rfWrites = 0;
    std::uint64_t bocForwards = 0;      ///< operands forwarded (reads
                                        ///< bypassed)
    std::uint64_t bocDeposits = 0;      ///< fetched operands deposited
    std::uint64_t bocResultWrites = 0;  ///< results written to a BOC
    std::uint64_t rfcReads = 0;
    std::uint64_t rfcWrites = 0;

    // Write-bypassing outcomes.
    std::uint64_t consolidatedWrites = 0; ///< dirty value superseded
    std::uint64_t transientDrops = 0;     ///< compiler-tagged value
                                          ///< expired without RF write
    std::uint64_t safetyWrites = 0;       ///< forced early write-backs

    // Dynamic write-destination distribution (paper Fig. 7).
    std::uint64_t destRfOnly = 0;
    std::uint64_t destBocOnly = 0;
    std::uint64_t destBocAndRf = 0;

    // Occupancy histograms.
    std::vector<std::uint64_t> srcOperandHist;   ///< Fig. 8 (0..3)
    std::vector<std::uint64_t> bocOccupancyHist; ///< Fig. 9 (0..cap)

    // Bank contention.
    std::uint64_t bankReadConflicts = 0;
    std::uint64_t bankWriteConflicts = 0;

    // Memory system.
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;

    /** High-water mark of concurrently resident warps (occupancy). */
    std::uint64_t peakResident = 0;

    /** Simulated cycles skipped by idle fast-forward (host-speed
     *  accounting only; they are fully included in `cycles`). */
    std::uint64_t fastforwardCycles = 0;
};

/** Serialize @p s under the same snake_case keys service/sim_codec.cc
 *  uses for SimResult stats, so snapshot and result encodings agree. */
JsonValue runStatsToJson(const RunStats &s);
/** Inverse of runStatsToJson (fatal on missing/odd-shaped keys). */
RunStats runStatsFromJson(const JsonValue &v);

/** One in-flight instruction occupying a collector slot. */
struct InstSlot
{
    bool inUse = false;
    WarpId warp = 0;
    InstIdx idx = 0;
    SeqNum seq = 0;
    Cycle issueCycle = 0;
    /** Register reads not yet sent to the RF (this slot's fetches).
     *  Inline storage: an instruction has at most 3 register sources
     *  plus a predicate, so these never allocate. */
    SmallVec<RegId, 4> toRequest;
    /** Register reads in flight (own or shared), awaiting arrival. */
    SmallVec<RegId, 4> awaiting;
    /** RF reads in flight on this slot's own port(s) (baseline). */
    std::uint8_t outstanding = 0;
    /** Program-order index among the warp's memory instructions. */
    std::uint32_t memIndex = 0;
    /** Cycle all source operands became available (kNoCycle until
     *  then); OC residency (Fig. 4/12) = readyCycle - issueCycle. */
    Cycle readyCycle = kNoCycle;

    bool
    ready() const
    {
        return inUse && toRequest.empty() && awaiting.empty();
    }
};

class SharedL2;

/**
 * Wiring for one SM instantiated inside a multi-SM GpuCore. The
 * defaults reproduce the standalone single-SM behaviour exactly.
 */
struct SmContext
{
    unsigned smIndex = 0;
    /** Device memory shared by every SM (GpuCore-owned); nullptr
     *  means the SM owns a private store (legacy path). */
    MemoryStore *sharedMem = nullptr;
    /** Chip-level L2 the per-SM L1 misses into; nullptr keeps the
     *  private L2 (legacy path, and numSms == 1). */
    SharedL2 *sharedL2 = nullptr;
    /** Occupancy limit (resident warps); 0 = config.maxResidentWarps.
     *  Clamped to config.maxResidentWarps either way. */
    unsigned residentCap = 0;
    /** When true the SM starts empty and warps arrive in CTA batches
     *  via assignWarps(); when false every launch warp is assigned
     *  up front (legacy path). */
    bool externalAdmission = false;
    /**
     * Parallel-stepping mode (docs/PERFORMANCE.md "Parallel SM
     * stepping"): a dispatching memory instruction is *staged* — its
     * functional evaluation, the shared MemoryStore access and the
     * L1/L2 timing lookup are deferred into a per-SM FIFO — instead
     * of executed inline. The owning GpuCore drains the FIFOs in
     * ascending SM-index order at the end-of-cycle barrier
     * (drainStagedMem()), which replays the serial stepping order's
     * shared-state arbitration exactly, so step() never touches
     * state shared with sibling SMs and results are bit-identical.
     * Incompatible with a fault injector or tracer.
     */
    bool stagedMemory = false;
};

/** Cycle-level simulation of one kernel launch on one SM. */
class SmCore
{
  public:
    /**
     * @param config Machine + architecture configuration (validated).
     * @param launch The kernel launch to execute.
     * @param injector Optional fault injector; onCycle() is called at
     *                 the top of every cycle and onWarpFinish() just
     *                 before a warp's final registers are captured.
     * @param watchdog Optional cooperative watchdog; checkpoint() is
     *                 called once per busy cycle (with this SM's own
     *                 busy-cycle count, so budgets are scoped per SM)
     *                 and may throw HangError.
     * @param tracer Optional event tracer; pipeline events inside its
     *               sampled cycle window are recorded. nullptr (the
     *               default) keeps tracing entirely off the hot path.
     */
    SmCore(const SimConfig &config, const Launch &launch,
           FaultInjector *injector = nullptr,
           const Watchdog *watchdog = nullptr,
           TraceSink *tracer = nullptr);

    /** Multi-SM variant: one SM of a GpuCore (see SmContext). */
    SmCore(const SimConfig &config, const Launch &launch,
           const SmContext &ctx, FaultInjector *injector = nullptr,
           const Watchdog *watchdog = nullptr,
           TraceSink *tracer = nullptr);

    /** Simulate to completion and return the aggregate statistics. */
    RunStats run();

    /**
     * Queue @p count launch warps starting at global warp id
     * @p first onto this SM (one CTA); up to the resident cap start
     * immediately, the rest are admitted as resident warps finish.
     * Only valid with SmContext::externalAdmission.
     */
    void assignWarps(WarpId first, unsigned count);

    /**
     * Advance one global cycle. A finished (or still-empty) SM just
     * ticks its clock so every SmCore of a GpuCore stays in lockstep
     * with the global cycle; a busy SM simulates one pipeline cycle,
     * counts it against its own watchdog budget, and checks the
     * maxCycles safety valve.
     */
    void step();

    /** All assigned warps retired and the pipeline drained. */
    bool finished() const;

    /**
     * Idle fast-forward probe (docs/PERFORMANCE.md). Returns the
     * earliest future cycle at which this SM can possibly do work
     * again:
     *
     *  - `now()` when the SM is not provably inert (it just did
     *    work, fast-forward is disabled, or the event wheel is empty
     *    — the latter keeps a genuine deadlock spinning toward the
     *    maxCycles diagnostic exactly as before);
     *  - the next completion cycle, clamped to the maxCycles /
     *    watchdog budgets so those still trip on the same cycle;
     *  - kNoCycle when the SM is finished (nothing will ever wake
     *    it).
     *
     * The caller (run() or GpuCore) jumps with fastForwardTo() when
     * the returned cycle is beyond now().
     */
    Cycle nextWakeCycle() const;

    /**
     * Jump the clock to @p target (> now()) without simulating the
     * intervening cycles. Only legal when every skipped cycle is
     * provably inert — i.e. immediately after nextWakeCycle()
     * returned @p target or later. Replays the per-cycle statistic
     * side-effects an inert cycle still has (scoreboard hazard-stall
     * counters, BOC occupancy samples) so results stay bit-identical
     * to stepping.
     */
    void fastForwardTo(Cycle target);

    /**
     * Execute this SM's staged memory instructions (in dispatch
     * order): functional evaluation against the shared MemoryStore,
     * the destination-register write, the L1/L2 timing access, and
     * the completion-event schedule — everything the inline dispatch
     * path would have done at dispatch time, stamped with the
     * dispatch cycle so latencies and L2 bank/MSHR decisions are
     * identical. Called by GpuCore between SM steps, in ascending
     * SM-index order; no sibling SM may be stepping concurrently.
     * No-op (and cheap) when nothing is staged.
     */
    void drainStagedMem();

    // --- epoch stepping (docs/PERFORMANCE.md "Epoch stepping") ---

    /**
     * Start a new epoch at cycle @p t0 (== now()): clears the
     * workless-cycle record and carries the inert flag of the
     * previous epoch's final cycle over as the `t0 - 1` seed, so the
     * GpuCore's deferred fast-forward credit sees exactly the spans
     * serial stepping would have skipped. The staged FIFO must be
     * fully committed (epochs begin at commit boundaries).
     */
    void beginEpoch(Cycle t0);

    /**
     * Free-run this SM up to (at most) cycle @p target: simulate
     * cycles — staging memory instructions as usual — until now()
     * reaches @p target, the SM finishes, or the SM blocks on an
     * uncommitted staged access (it may not simulate a cycle at
     * which that access's completion could be due, nor a cycle whose
     * inline completion could share a wheel bucket with it; see
     * stagedStallCycle()). Provably-inert stretches are jumped like
     * run()'s idle fast-forward, but the skipped cycles are recorded
     * as workless spans instead of being credited to
     * stats_.fastforwardCycles — the GpuCore reconciles the credit
     * at the epoch barrier (creditFastforward()) so the counter
     * stays byte-identical to serial per-cycle stepping. Budget
     * valves (maxCycles, watchdog) trip on exactly the same busy
     * cycle as step() would.
     */
    void runEpoch(Cycle target);

    /** Dispatch cycle of the oldest uncommitted staged access, or
     *  kNoCycle when the FIFO is fully committed. The GpuCore merges
     *  these fronts across SMs in ascending (cycle, smIndex) order. */
    Cycle stagedFrontCycle() const;

    /** Commit exactly the oldest uncommitted staged access (the
     *  FIFO front): functional evaluation, register/memory effects
     *  and the L1/L2 timing access, stamped with its dispatch cycle
     *  — one step of drainStagedMem(). Only while no sibling SM is
     *  stepping. */
    void commitStagedFront();

    /** Workless (provably inert) cycle spans recorded since
     *  beginEpoch(), as half-open [begin, end) pairs, ascending and
     *  disjoint. May include the `t0 - 1` carry seed. */
    const std::vector<std::pair<Cycle, Cycle>> &
    worklessSpans() const
    {
        return worklessSpans_;
    }

    /** Add @p n cycles to stats_.fastforwardCycles: the epoch
     *  barrier's deferred credit for cycles serial stepping would
     *  have jumped with fastForwardTo(). */
    void
    creditFastforward(std::uint64_t n)
    {
        stats_.fastforwardCycles += n;
    }

    Cycle now() const { return now_; }

    /** Warps assigned to this SM that have not yet retired. */
    unsigned
    unfinishedAssigned() const
    {
        return static_cast<unsigned>(assigned_.size()) -
            finishedWarps_;
    }

    /** Number of CTAs/warp-groups assigned so far. */
    unsigned ctasAssigned() const { return ctasAssigned_; }

    unsigned smIndex() const { return smIndex_; }

    /**
     * Seal the run: fill in the derived RunStats fields and return
     * them. run() calls this internally; GpuCore calls it once every
     * SM is finished. Panics if the SM is not finished or finalize()
     * already ran.
     */
    RunStats finalize();

    /** Architectural register state of every launch warp (after
     *  run()); used by the correctness invariants. */
    const std::vector<RegFileState> &finalRegs() const;

    /** Functional memory contents (after run()). */
    const MemoryStore &memory() const { return *mem_; }

    const StatGroup &rfStats() const { return rf_.stats(); }
    const StatGroup &memStats() const { return memTiming_.stats(); }

    /**
     * Export every statistic of the finished run into @p out under
     * the stable dotted names catalogued in docs/OBSERVABILITY.md,
     * prefixed with this SM's index (`sm0.core.cycles`,
     * `sm3.boc.bypass_hits`, ...): the RunStats aggregates plus the
     * per-component StatGroups (register-file banks, memory system,
     * execution units, scoreboard). Panics before finalize().
     */
    void exportMetrics(MetricsRegistry &out) const;

    // --- snapshots (core/snapshot.h) ---

    /**
     * Serialize the complete mid-run microarchitectural state of this
     * SM — warps, registers, collector slots, BOC/RFC contents,
     * scoreboard, RF bank queues, pending completions, schedulers,
     * caches and statistics — at a cycle boundary (i.e. between two
     * step() calls, never mid-cycle). The staged-memory FIFO must be
     * drained (GpuCore's barrier guarantees this). Restoring the
     * result with loadState() into an SmCore built from the same
     * config+launch resumes bit-exactly.
     */
    JsonValue saveState() const;

    /**
     * Overwrite this SM's state from saveState() output. Only legal
     * on a freshly constructed core (before any step()) with no fault
     * injector or tracer attached; decode problems are fatal(), never
     * a panic.
     */
    void loadState(const JsonValue &v);

    // --- sampled mode (core/sampled.h) ---

    /** While frozen, issuePhase is skipped: in-flight instructions
     *  drain but no new ones enter the pipeline. Used to quiesce an
     *  SM at the end of a detailed sample window. */
    void setIssueFrozen(bool frozen) { issueFrozen_ = frozen; }

    /** No instruction anywhere in the pipeline: nothing in flight,
     *  no pending completions, no queued RF requests, nothing
     *  staged. The state a sample window must reach before the
     *  functional gap may run. */
    bool pipelineQuiet() const;

    /**
     * Spill live operand state back to the register file so the
     * architectural registers are the single source of truth: BOCs
     * are flushed (write-bypassed values forced home, "safety"
     * writes) and re-created empty, dirty RFC entries written back.
     * The resulting RF writes drain through the banked ports on
     * subsequent (issue-frozen) cycles. Requires pipelineQuiet().
     */
    void flushOperandState();

    /**
     * Functionally execute up to @p budget instructions round-robin
     * across this SM's active warps without advancing the clock —
     * the SMARTS-style warming gap between detailed windows.
     * Architectural registers, memory and cache tags stay warm
     * (accesses touch the L1/L2 tag arrays); timing state does not
     * advance. Finishing warps retire and queued warps are admitted.
     * Requires pipelineQuiet() and a flushed operand state.
     * @return instructions actually executed (< budget only when the
     *         SM ran out of runnable warps).
     */
    std::uint64_t functionalAdvance(std::uint64_t budget);

    /** Live (pre-finalize) aggregate counters; sampled mode reads
     *  instruction counts between windows. */
    const RunStats &liveStats() const { return stats_; }

  private:
    /** A completed execution awaiting retire-side effects. */
    struct Completion
    {
        WarpId warp = 0;
        InstIdx idx = 0;
        SeqNum seq = 0;
        ExecEffect fx;
        Cycle issueCycle = 0;
        Cycle readyCycle = 0;
        Cycle dispatchCycle = 0;
    };

    /**
     * A memory instruction that dispatched under SmContext::
     * stagedMemory: everything tryDispatch would have needed to
     * evaluate it inline, minus the evaluation itself (which
     * drainStagedMem performs after the cycle barrier, against the
     * shared MemoryStore / L2). The instruction and its latencies
     * are re-derived from (warp, idx) at drain time.
     */
    struct StagedAccess
    {
        WarpId warp = 0;
        InstIdx idx = 0;
        SeqNum seq = 0;
        Cycle issueCycle = 0;
        Cycle readyCycle = 0;
        Cycle dispatchCycle = 0;
        /** Earliest cycle the commit-time completion can be due:
         *  dispatchCycle + max(1, unitLat + the space's minimum
         *  memory latency), or just the unit latency when a guard
         *  predicate might suppress the access. Epoch stepping may
         *  not free-run to (or past) this cycle while the access is
         *  uncommitted. */
        Cycle minDue = 0;
        /** Dispatch-time snapshot of the source registers (guard
         *  predicate included). Serial semantics read operands at
         *  dispatch; read locks also release at dispatch, so by
         *  commit time a later instruction of the same warp may
         *  have overwritten them (WAR is legal the moment the read
         *  lock drops). The commit temporarily replays these values
         *  so the deferred evaluation sees exactly the registers
         *  the inline path would have read. */
        Instruction::SrcRegList srcRegs;
        SmallVec<Value, 4> srcVals;
    };

    bool usesBoc() const;
    Warp &warpAt(WarpId w) { return warps_[w]; }

    const Kernel &
    kernelOf(WarpId w) const
    {
        return launch_->kernelOf(w);
    }

    void activateWarp(WarpId w);
    void admitWarps();
    void finishWarp(Warp &warp);
    void handleEviction(WarpId w, const BocEviction &ev);

    void handleRfServed(const RfRequest &req);
    void processCompletions();
    void collectPhase();
    void dispatchPhase();
    bool tryDispatch(InstSlot &slot);
    void issuePhase();
    bool tryIssue(WarpId w);
    /** Sample per-warp BOC occupancy, weighted so fast-forward can
     *  replay @p weight identical cycles in one call. */
    void samplePhase(std::uint64_t weight);
    void cycle();
    /** Latest cycle the budget valves allow before tripping. */
    Cycle budgetCap() const;

    /** One busy cycle: the maxCycles valve, the watchdog checkpoint
     *  and cycle(); shared by step() and runEpoch(). */
    void stepBusy();
    /** Commit one staged access (the drainStagedMem() body). */
    void commitOne(const StagedAccess &sa);
    /** Earliest cycle the SM must not simulate while @p sa is
     *  uncommitted (free-run stall bound; see runEpoch()). */
    Cycle stagedStallOf(const StagedAccess &sa) const;
    /** Recompute stagedStall_ over the uncommitted FIFO tail. */
    void recomputeStagedStall();
    /** Record cycle @p c as workless (merges adjacent spans). */
    void recordWorkless(Cycle c);
    /** Jump an inert stretch to @p target like fastForwardTo(), but
     *  record it as a workless span instead of crediting
     *  fastforwardCycles (epoch mode defers that to the barrier). */
    void fastForwardEpoch(Cycle target);

    /** Per-warp stall snapshot reported when maxCycles trips. */
    std::string deadlockDiagnostics() const;

    SimConfig config_;
    const Launch *launch_;
    FaultInjector *injector_ = nullptr;
    const Watchdog *watchdog_ = nullptr;
    TraceSink *tracer_ = nullptr;

    unsigned smIndex_ = 0;
    unsigned residentCap_ = 0;
    bool externalAdmission_ = false;
    bool stagedMemory_ = false;

    std::vector<Warp> warps_;
    Scoreboard scoreboard_;
    RegisterFile rf_;
    MemoryStore ownMem_;
    MemoryStore *mem_ = nullptr;
    MemoryTiming memTiming_;
    ExecUnits units_;
    WarpSchedulers schedulers_;

    /** Shared collector slots (baseline / RFC). */
    std::vector<InstSlot> sharedSlots_;
    /** Per-warp collector slots (BOW family; windowSize each). */
    std::vector<std::vector<InstSlot>> warpSlots_;
    std::vector<std::optional<Boc>> bocs_;
    std::vector<std::uint8_t> bocFetchOutstanding_;
    std::vector<Rfc> rfcs_;

    /** Pending completions, keyed by retire cycle (event wheel; see
     *  docs/PERFORMANCE.md). Sized so every pipeline + memory
     *  latency fits the ring; longer (queueing-delayed) events land
     *  in the overflow map and stay correct. */
    EventWheel<Completion> completions_;
    /** Memory instructions dispatched this cycle under stagedMemory,
     *  in dispatch order (= the serial path's execution order);
     *  drained at the GpuCore barrier. Pre-sized: at most ldstWidth
     *  memory dispatches fit one cycle. */
    std::vector<StagedAccess> stagedMem_;
    /** Commit progress into stagedMem_ (epoch stepping commits the
     *  FIFO incrementally; the vector is cleared once fully
     *  committed so stagedMem_.empty() keeps meaning "nothing
     *  outstanding"). */
    std::size_t stagedHead_ = 0;
    /** Earliest cycle this SM may not simulate while any staged
     *  access is uncommitted (min of stagedStallOf() over the tail);
     *  kNoCycle when nothing is staged. */
    Cycle stagedStall_ = kNoCycle;
    /** max(1, aluLatency, sfuLatency, ctrlLatency): the furthest
     *  ahead a free-running cycle can schedule an inline (non-
     *  memory) completion. */
    Cycle maxNonMemLat_ = 1;
    /** Workless cycles since beginEpoch() as merged [begin, end)
     *  spans (epoch fast-forward credit reconciliation). */
    std::vector<std::pair<Cycle, Cycle>> worklessSpans_;
    unsigned outstandingLoads_ = 0;
    unsigned residentWarps_ = 0;
    /** Global warp ids queued onto this SM, in arrival order. */
    std::vector<WarpId> assigned_;
    std::size_t nextToActivate_ = 0;  ///< index into assigned_
    unsigned ctasAssigned_ = 0;
    unsigned finishedWarps_ = 0;
    Cycle now_ = 0;
    /** Cycles this SM actually simulated (excludes the idle lockstep
     *  ticks of a finished SM); the per-SM watchdog currency. */
    Cycle busyCycles_ = 0;

    std::vector<RegFileState> finalRegs_;
    RunStats stats_;
    bool ran_ = false;

    // --- idle fast-forward state (docs/PERFORMANCE.md) ---
    /** hostFastForward, and no per-cycle observer attached. */
    bool ffEnabled_ = false;
    /** The last simulated cycle did no work (no RF serve, retire,
     *  fetch, dispatch or issue), so the SM state can only change at
     *  the next completion event. */
    bool lastCycleInert_ = false;
    /** Scoreboard raw/waw/war stall increments of that inert cycle;
     *  each skipped cycle replays exactly this delta. */
    std::array<std::uint64_t, 3> inertStallDelta_{};
    /** Set by the pipeline phases whenever the current cycle does
     *  observable work; cleared at the top of cycle(). */
    bool cycleDidWork_ = false;

    /** Sampled-mode quiesce: skip issuePhase while set. */
    bool issueFrozen_ = false;

    // --- per-cycle scratch buffers (docs/PERFORMANCE.md: the hot
    // path never allocates; these are cleared and refilled every
    // cycle, retaining their capacity) ---
    std::vector<RfRequest> servedScratch_;
    std::vector<Completion> doneScratch_;
    std::vector<WarpId> orderScratch_;
    std::vector<InstSlot *> readyScratch_;
    BocInsertResult insertScratch_;
    BocWriteResult writeScratch_;
    std::vector<BocEviction> flushScratch_;

    /** Collector-id encoding: BOW reads carry the warp id + flag. */
    static constexpr std::uint32_t kBocFlag = 0x80000000u;
};

} // namespace bow

#endif // BOWSIM_SM_SM_CORE_H
