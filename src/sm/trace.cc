#include "sm/trace.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/log.h"
#include "isa/assembler.h"
#include "isa/disassembler.h"

namespace bow {

namespace {

bool
startsWithWarpHeader(const std::string &line, unsigned &warpId)
{
    std::istringstream is(line);
    std::string word;
    if (!(is >> word) || word != "warp")
        return false;
    long id = -1;
    if (!(is >> id) || id < 0 || id > 0xFFFF)
        fatal(strf("trace: malformed warp header '", line, "'"));
    std::string extra;
    if (is >> extra)
        fatal(strf("trace: trailing text after warp header '", line,
                   "'"));
    warpId = static_cast<unsigned>(id);
    return true;
}

std::string
stripComment(std::string line)
{
    for (const char *marker : {"//", "#"}) {
        const std::size_t c = line.find(marker);
        if (c != std::string::npos)
            line = line.substr(0, c);
    }
    return line;
}

bool
isBlank(const std::string &s)
{
    for (char c : s) {
        if (!std::isspace(static_cast<unsigned char>(c)))
            return false;
    }
    return true;
}

} // namespace

Launch
loadWarpTraces(const std::string &text, const std::string &name)
{
    // Split into warp sections.
    std::vector<std::pair<unsigned, std::string>> sections;
    std::istringstream is(text);
    std::string line;
    bool inSection = false;
    while (std::getline(is, line)) {
        const std::string bare = stripComment(line);
        unsigned warpId = 0;
        if (startsWithWarpHeader(bare, warpId)) {
            sections.push_back({warpId, ""});
            inSection = true;
            continue;
        }
        if (isBlank(bare))
            continue;
        if (!inSection)
            fatal(strf("trace '", name,
                       "': statements before the first warp header"));
        sections.back().second += bare + "\n";
    }
    if (sections.empty())
        fatal(strf("trace '", name, "': no warp sections"));

    unsigned maxWarp = 0;
    for (const auto &[id, body] : sections)
        maxWarp = std::max(maxWarp, id);

    Launch launch;
    launch.numWarps = maxWarp + 1;
    launch.warpKernels.resize(launch.numWarps);

    std::vector<bool> seen(launch.numWarps, false);
    for (auto &[id, body] : sections) {
        if (seen[id])
            fatal(strf("trace '", name, "': duplicate section for "
                       "warp ", id));
        seen[id] = true;
        // Dynamic traces are straight-line: labels or branches mean
        // the producer exported static code by mistake.
        if (body.find(':') != std::string::npos)
            fatal(strf("trace '", name, "': warp ", id,
                       " contains a label; traces must be "
                       "straight-line"));
        std::string code = body;
        if (code.find("exit") == std::string::npos)
            code += "exit;\n";
        Kernel k = assemble(code, strf(name, ".warp", id));
        for (InstIdx i = 0; i < k.size(); ++i) {
            if (k.inst(i).isBranch())
                fatal(strf("trace '", name, "': warp ", id,
                           " contains a branch; traces must be "
                           "straight-line"));
        }
        launch.warpKernels[id] = std::move(k);
    }
    for (unsigned w = 0; w < launch.numWarps; ++w) {
        if (!seen[w])
            fatal(strf("trace '", name, "': missing section for "
                       "warp ", w));
    }
    launch.kernel = launch.warpKernels[0];
    return launch;
}

Launch
loadWarpTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal(strf("trace: cannot open '", path, "'"));
    std::ostringstream text;
    text << in.rdbuf();
    return loadWarpTraces(text.str(), path);
}

std::string
dumpWarpTraces(const Launch &launch, std::uint64_t maxPerWarp)
{
    const FunctionalResult fn =
        runFunctional(launch, maxPerWarp, /*recordTraces=*/true);

    std::ostringstream os;
    os << "# bowsim warp trace (dynamic streams, control flow "
          "unrolled)\n";
    for (WarpId w = 0; w < launch.numWarps; ++w) {
        os << "warp " << w << "\n";
        const Kernel &kernel = launch.kernelOf(w);
        for (const DynInst &dyn : fn.traces[w].insts) {
            const Instruction &inst = kernel.inst(dyn.idx);
            if (inst.isBranch())
                continue;   // already resolved in the stream
            os << disassemble(inst) << ";\n";
        }
    }
    return os.str();
}

} // namespace bow
