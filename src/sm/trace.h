/**
 * @file
 * Trace-driven front end: load per-warp dynamic instruction traces
 * (Accel-Sim style, rendered in bowsim assembly) and replay them
 * through the timing model, or export a launch's dynamic streams as
 * such a trace.
 *
 * Trace format — sections per warp, straight-line code (branches are
 * already resolved in a dynamic trace and are rejected):
 *
 *     # comment
 *     warp 0
 *     mov $r1, 0x10;
 *     ld.global $r2, [$r1+0x40];
 *     add $r1, $r1, $r2;
 *     exit;            # optional; appended when missing
 *     warp 1
 *     ...
 *
 * Every warp id in [0, maxWarp] must have a section. Replaying the
 * export of a launch reproduces that launch's architectural results
 * warp for warp (control flow is unrolled; see dumpWarpTraces).
 */

#ifndef BOWSIM_SM_TRACE_H
#define BOWSIM_SM_TRACE_H

#include <string>

#include "sm/functional.h"

namespace bow {

/**
 * Parse trace @p text into a per-warp-kernel Launch.
 *
 * @param text Trace text in the format above.
 * @param name Diagnostic name for the trace.
 * @throws FatalError on malformed sections, branches/labels inside a
 *         section, or missing warp ids.
 */
Launch loadWarpTraces(const std::string &text,
                      const std::string &name = "trace");

/** Read @p path and loadWarpTraces() its contents. */
Launch loadWarpTraceFile(const std::string &path);

/**
 * Render the dynamic instruction streams of @p launch as a trace.
 *
 * Control-flow instructions (bra) are dropped — the stream is already
 * unrolled — and a final `exit` is kept per warp, so the result
 * replays to the same architectural register and memory state.
 *
 * @param launch     The launch to trace.
 * @param maxPerWarp Per-warp dynamic instruction budget.
 */
std::string dumpWarpTraces(const Launch &launch,
                           std::uint64_t maxPerWarp = 4'000'000);

} // namespace bow

#endif // BOWSIM_SM_TRACE_H
