/**
 * @file
 * Per-warp hardware state tracked by the SM timing model.
 */

#ifndef BOWSIM_SM_WARP_H
#define BOWSIM_SM_WARP_H

#include "common/types.h"
#include "sm/semantics.h"

namespace bow {

/** Lifecycle of a warp slot. */
enum class WarpState
{
    Inactive,   ///< slot empty (warp not yet launched)
    Active,     ///< fetching/issuing instructions
    Draining,   ///< exit issued; waiting for in-flight to complete
    Finished    ///< all done
};

/** One hardware warp context. */
struct Warp
{
    WarpId id = 0;
    WarpState state = WarpState::Inactive;
    InstIdx pc = 0;
    RegFileState regs{};

    /** Issue is stalled until an in-flight branch resolves. */
    bool waitingBranch = false;

    /** Number of instructions issued so far (the BOC window seq). */
    SeqNum nextSeq = 0;

    /** In-flight (issued, not yet completed) instruction count. */
    unsigned inFlight = 0;

    /** Cycle this warp last issued (GTO greediness/oldest order). */
    Cycle lastIssue = 0;

    /** Cycle the warp was activated (age for GTO's "oldest"). */
    Cycle activated = 0;

    /**
     * Per-warp memory ordering: memory instructions dispatch to the
     * LSU in program order (loads must observe older same-warp
     * stores even without register dependences).
     */
    std::uint32_t memIssued = 0;
    std::uint32_t memDispatched = 0;

    /** Loads in flight (two-level scheduling demotes such warps). */
    std::uint32_t pendingLoads = 0;

    bool
    canIssue() const
    {
        return state == WarpState::Active && !waitingBranch;
    }
};

} // namespace bow

#endif // BOWSIM_SM_WARP_H
