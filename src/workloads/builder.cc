#include "workloads/builder.h"

#include "common/log.h"

namespace bow {

KernelBuilder::KernelBuilder(std::string name)
    : kernel_(std::move(name))
{
}

KernelBuilder::Label
KernelBuilder::newLabel()
{
    labelTargets_.push_back(kNoInst);
    return Label{static_cast<unsigned>(labelTargets_.size() - 1)};
}

void
KernelBuilder::bind(Label label)
{
    if (label.id >= labelTargets_.size())
        panic("KernelBuilder::bind: unknown label");
    if (labelTargets_[label.id] != kNoInst)
        panic("KernelBuilder::bind: label bound twice");
    labelTargets_[label.id] = static_cast<InstIdx>(kernel_.size());
}

InstIdx
KernelBuilder::emit(Instruction inst)
{
    return kernel_.add(std::move(inst));
}

InstIdx
KernelBuilder::movImm(RegId d, std::uint32_t imm)
{
    Instruction i;
    i.op = Opcode::MOV;
    i.dst = d;
    i.addSrc(Operand::makeImm(imm));
    return emit(i);
}

InstIdx
KernelBuilder::movReg(RegId d, RegId s)
{
    Instruction i;
    i.op = Opcode::MOV;
    i.dst = d;
    i.addSrc(Operand::makeReg(s));
    return emit(i);
}

InstIdx
KernelBuilder::movSpecial(RegId d, SpecialReg s)
{
    Instruction i;
    i.op = Opcode::MOV;
    i.dst = d;
    i.addSrc(Operand::makeSpecial(s));
    return emit(i);
}

InstIdx
KernelBuilder::alu1(Opcode op, RegId d, RegId a)
{
    Instruction i;
    i.op = op;
    i.dst = d;
    i.addSrc(Operand::makeReg(a));
    return emit(i);
}

InstIdx
KernelBuilder::alu2(Opcode op, RegId d, RegId a, RegId b)
{
    Instruction i;
    i.op = op;
    i.dst = d;
    i.addSrc(Operand::makeReg(a));
    i.addSrc(Operand::makeReg(b));
    return emit(i);
}

InstIdx
KernelBuilder::alu2Imm(Opcode op, RegId d, RegId a, std::uint32_t imm)
{
    Instruction i;
    i.op = op;
    i.dst = d;
    i.addSrc(Operand::makeReg(a));
    i.addSrc(Operand::makeImm(imm));
    return emit(i);
}

InstIdx
KernelBuilder::mad(RegId d, RegId a, RegId b, RegId c)
{
    Instruction i;
    i.op = Opcode::MAD;
    i.dst = d;
    i.addSrc(Operand::makeReg(a));
    i.addSrc(Operand::makeReg(b));
    i.addSrc(Operand::makeReg(c));
    return emit(i);
}

InstIdx
KernelBuilder::load(Opcode op, RegId d, RegId addr, std::int32_t off)
{
    if (!opcodeInfo(op).isLoad)
        panic("KernelBuilder::load: not a load opcode");
    Instruction i;
    i.op = op;
    i.dst = d;
    i.addSrc(Operand::makeReg(addr));
    i.memOffset = off;
    return emit(i);
}

InstIdx
KernelBuilder::store(Opcode op, RegId addr, std::int32_t off, RegId data)
{
    if (!opcodeInfo(op).isStore)
        panic("KernelBuilder::store: not a store opcode");
    Instruction i;
    i.op = op;
    i.addSrc(Operand::makeReg(addr));
    i.addSrc(Operand::makeReg(data));
    i.memOffset = off;
    return emit(i);
}

InstIdx
KernelBuilder::setp(CondCode cc, RegId pd, RegId a, RegId b)
{
    Instruction i;
    i.op = Opcode::SETP;
    i.cc = cc;
    i.dst = pd;
    i.addSrc(Operand::makeReg(a));
    i.addSrc(Operand::makeReg(b));
    return emit(i);
}

InstIdx
KernelBuilder::setpImm(CondCode cc, RegId pd, RegId a,
                       std::uint32_t imm)
{
    Instruction i;
    i.op = Opcode::SETP;
    i.cc = cc;
    i.dst = pd;
    i.addSrc(Operand::makeReg(a));
    i.addSrc(Operand::makeImm(imm));
    return emit(i);
}

InstIdx
KernelBuilder::bra(Label target, RegId pred, bool negate)
{
    if (target.id >= labelTargets_.size())
        panic("KernelBuilder::bra: unknown label");
    Instruction i;
    i.op = Opcode::BRA;
    i.pred = pred;
    i.predNegate = negate;
    const InstIdx idx = emit(i);
    fixups_.push_back({idx, target.id});
    return idx;
}

InstIdx
KernelBuilder::nop()
{
    Instruction i;
    i.op = Opcode::NOP;
    return emit(i);
}

InstIdx
KernelBuilder::barSync()
{
    Instruction i;
    i.op = Opcode::BAR;
    return emit(i);
}

InstIdx
KernelBuilder::exit()
{
    Instruction i;
    i.op = Opcode::EXIT;
    return emit(i);
}

Kernel
KernelBuilder::build()
{
    for (const auto &[idx, label] : fixups_) {
        if (labelTargets_[label] == kNoInst)
            panic(strf("KernelBuilder: label ", label,
                       " never bound in kernel '", kernel_.name(),
                       "'"));
        kernel_.inst(idx).branchTarget = labelTargets_[label];
    }
    kernel_.finalize();
    return std::move(kernel_);
}

} // namespace bow
