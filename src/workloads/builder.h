/**
 * @file
 * Programmatic kernel construction with forward-referencing labels;
 * the workload generators and hand-written test kernels use this
 * instead of assembling text.
 */

#ifndef BOWSIM_WORKLOADS_BUILDER_H
#define BOWSIM_WORKLOADS_BUILDER_H

#include <string>
#include <vector>

#include "isa/kernel.h"

namespace bow {

/** Fluent builder for Kernel objects. */
class KernelBuilder
{
  public:
    /** Opaque branch-target handle. */
    struct Label
    {
        unsigned id = 0;
    };

    explicit KernelBuilder(std::string name);

    /** Create an unbound label. */
    Label newLabel();

    /** Bind @p label to the next emitted instruction. */
    void bind(Label label);

    // --- emission helpers (all return the instruction index) ---
    InstIdx movImm(RegId d, std::uint32_t imm);
    InstIdx movReg(RegId d, RegId s);
    InstIdx movSpecial(RegId d, SpecialReg s);
    InstIdx alu1(Opcode op, RegId d, RegId a);
    InstIdx alu2(Opcode op, RegId d, RegId a, RegId b);
    InstIdx alu2Imm(Opcode op, RegId d, RegId a, std::uint32_t imm);
    InstIdx mad(RegId d, RegId a, RegId b, RegId c);
    InstIdx load(Opcode op, RegId d, RegId addr, std::int32_t off = 0);
    InstIdx store(Opcode op, RegId addr, std::int32_t off, RegId data);
    InstIdx setp(CondCode cc, RegId pd, RegId a, RegId b);
    InstIdx setpImm(CondCode cc, RegId pd, RegId a, std::uint32_t imm);
    InstIdx bra(Label target, RegId pred = kNoReg,
                bool negate = false);
    InstIdx nop();
    InstIdx barSync();
    InstIdx exit();

    /** Append an arbitrary pre-built instruction. */
    InstIdx emit(Instruction inst);

    /** Number of instructions emitted so far. */
    std::size_t size() const { return kernel_.size(); }

    /** Resolve labels, finalize, and return the kernel. */
    Kernel build();

  private:
    Kernel kernel_;
    std::vector<InstIdx> labelTargets_;     ///< kNoInst when unbound
    std::vector<std::pair<InstIdx, unsigned>> fixups_;
};

} // namespace bow

#endif // BOWSIM_WORKLOADS_BUILDER_H
