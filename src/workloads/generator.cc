#include "workloads/generator.h"

#include <algorithm>
#include <deque>
#include <optional>

#include "common/log.h"
#include "common/rng.h"
#include "workloads/builder.h"

namespace bow {

namespace {

// Fixed register roles (see generator design in DESIGN.md).
constexpr RegId kBaseA = 0;     ///< primary global base address
constexpr RegId kCounter = 1;   ///< loop induction variable
constexpr RegId kLimit = 2;     ///< loop bound
constexpr RegId kStride = 3;    ///< stride constant
constexpr RegId kAccum = 4;     ///< long-lived accumulator
constexpr RegId kBaseB = 5;     ///< secondary base address
constexpr RegId kWarpOff = 6;   ///< per-warp address offset
constexpr RegId kConst = 7;     ///< misc constant
constexpr RegId kPoolBase = 8;  ///< first working-pool register

const RegId kLoopPred = predReg(0);
const RegId kBodyPred = predReg(1);

/**
 * Consumption scheduler. When the generator produces a value it
 * draws the value's *fate* — transient (read once or twice nearby),
 * near+far (read nearby and again beyond any window), or far-only
 * (first read beyond any window) — mirroring the paper's Fig. 7
 * classes, and schedules read obligations at the corresponding
 * instruction distances. Source operands then satisfy due
 * obligations, which gives the generated code the window-sensitive
 * read/write reuse structure real compiled kernels exhibit.
 */
class ConsumePlan
{
  public:
    struct Obligation
    {
        RegId reg;
        std::uint64_t due;  ///< body-instruction index it matures at
    };

    /** Schedule a read of @p reg at time @p due. */
    void
    schedule(RegId reg, std::uint64_t due)
    {
        obligations_.push_back({reg, due});
    }

    /** Drop every obligation on @p reg (the value was killed). */
    void
    kill(RegId reg)
    {
        for (std::size_t i = 0; i < obligations_.size();) {
            if (obligations_[i].reg == reg) {
                obligations_[i] = obligations_.back();
                obligations_.pop_back();
            } else {
                ++i;
            }
        }
    }

    /** True when @p reg still has scheduled readers. */
    bool
    pending(RegId reg) const
    {
        for (const auto &o : obligations_) {
            if (o.reg == reg)
                return true;
        }
        return false;
    }

    /** Number of obligations due at time @p now. */
    unsigned
    dueCount(std::uint64_t now) const
    {
        unsigned n = 0;
        for (const auto &o : obligations_) {
            if (o.due <= now)
                ++n;
        }
        return n;
    }

    /**
     * Pop the most overdue obligation at time @p now, if any is due.
     */
    std::optional<RegId>
    popDue(std::uint64_t now)
    {
        std::size_t best = obligations_.size();
        for (std::size_t i = 0; i < obligations_.size(); ++i) {
            if (obligations_[i].due <= now &&
                (best == obligations_.size() ||
                 obligations_[i].due < obligations_[best].due)) {
                best = i;
            }
        }
        if (best == obligations_.size())
            return std::nullopt;
        const RegId reg = obligations_[best].reg;
        obligations_[best] = obligations_.back();
        obligations_.pop_back();
        return reg;
    }

  private:
    std::vector<Obligation> obligations_;
};

/** Stateful body generator for one workload. */
class BodyGen
{
  public:
    BodyGen(const WorkloadProfile &p, KernelBuilder &kb, Rng &rng)
        : p_(p), kb_(kb), rng_(rng)
    {
    }

    RegId
    pickSrc()
    {
        // Satisfy a due consumption obligation first: that read is
        // what the value's fate scheduled.
        if (auto due = plan_.popDue(now()))
            return *due;
        const double x = rng_.uniform();
        if (x >= p_.pPersistentSrc && !lastWritten_.empty()) {
            // An extra near read of a fresh value.
            return lastWritten_[rng_.below(std::min<std::size_t>(
                lastWritten_.size(), 3))];
        }
        // Long-lived persistent registers.
        static const RegId persistent[] = {kBaseA, kStride, kAccum,
                                           kBaseB, kWarpOff, kConst};
        return persistent[rng_.below(std::size(persistent))];
    }

    RegId
    pickDest()
    {
        const RegId d = allocDest();
        scheduleFate(d);
        return d;
    }

    /**
     * Destination for an emitter-internal temporary (address
     * computations): the emitter itself consumes it on the next
     * instruction, so no fate is scheduled.
     */
    RegId
    pickDestInternal()
    {
        return allocDest();
    }

    /** Allocate a destination register, avoiding values with
     *  scheduled readers. */
    RegId
    allocDest()
    {
        RegId d = kNoReg;
        for (unsigned tries = 0; tries < p_.workingRegs; ++tries) {
            const RegId cand = static_cast<RegId>(
                kPoolBase + (rotor_++ % p_.workingRegs));
            if (!plan_.pending(cand)) {
                d = cand;
                break;
            }
        }
        if (d == kNoReg) {
            d = static_cast<RegId>(kPoolBase +
                                   (rotor_++ % p_.workingRegs));
            plan_.kill(d);
        }
        lastWritten_.push_front(d);
        if (lastWritten_.size() > 4)
            lastWritten_.pop_back();
        return d;
    }

    /** Draw the new value's consumer fate and schedule its reads. */
    void
    scheduleFate(RegId d)
    {
        const std::uint64_t t = now();
        const double wT = p_.fateTransient;
        const double wNF = p_.fateNearFar;
        const double wFO = p_.fateFarOnly;
        const double total = wT + wNF + wFO;
        double x = rng_.uniform() * (total > 0 ? total : 1.0);

        // Near the body end there is no room for a far read; those
        // fates degrade to transient.
        const bool farFits = t + p_.farMinDist + 2 < bodyEnd_;

        auto near_dist = [&]() -> std::uint64_t {
            // Most near consumers read the value on the very next
            // instruction (incrementally computed chains).
            if (rng_.chance(0.7))
                return 1;
            return 1 + rng_.below(std::max(1u, p_.nearMaxDist));
        };
        auto far_dist = [&] {
            const unsigned span = std::max(
                1u, p_.farMaxDist - p_.farMinDist + 1);
            return p_.farMinDist + rng_.below(span);
        };

        if (x < wT || !farFits) {
            const std::uint64_t first = t + near_dist();
            plan_.schedule(d, first);
            if (rng_.chance(0.25))
                plan_.schedule(d, first + 1 + rng_.below(2));
        } else if (x < wT + wNF) {
            plan_.schedule(d, t + near_dist());
            plan_.schedule(d, t + far_dist());
        } else {
            plan_.schedule(d, t + far_dist());
        }
    }

    void
    emitLoad()
    {
        const Opcode op = rng_.chance(0.15) ? Opcode::LD_SHARED
                                            : Opcode::LD_GLOBAL;
        const RegId base = rng_.chance(0.5) ? kBaseA : kBaseB;
        if (op == Opcode::LD_GLOBAL && rng_.chance(p_.pIndirect)) {
            // Data-dependent address: mask a recent value into range
            // and add the base (natural short dependence chains).
            const RegId masked = pickDestInternal();
            kb_.alu2Imm(Opcode::AND, masked, pickSrc(),
                        (p_.addrRange - 1) & ~3u);
            const RegId addr = pickDestInternal();
            kb_.alu2(Opcode::ADD, addr, masked, base);
            kb_.load(op, pickDest(), addr, 0);
        } else {
            const auto off = static_cast<std::int32_t>(
                rng_.below(p_.addrRange) & ~3u);
            kb_.load(op, pickDest(), base, off);
        }
    }

    void
    emitStore()
    {
        const Opcode op = rng_.chance(0.15) ? Opcode::ST_SHARED
                                            : Opcode::ST_GLOBAL;
        const auto off = static_cast<std::int32_t>(
            rng_.below(p_.addrRange) & ~3u);
        kb_.store(op, rng_.chance(0.5) ? kBaseA : kBaseB, off,
                  pickSrc());
    }

    void
    emitAlu2()
    {
        static const Opcode ops[] = {Opcode::ADD, Opcode::SUB,
                                     Opcode::MUL, Opcode::AND,
                                     Opcode::OR,  Opcode::XOR,
                                     Opcode::SHL, Opcode::SHR,
                                     Opcode::MIN, Opcode::MAX};
        const Opcode op = ops[rng_.below(std::size(ops))];
        const RegId a = pickSrc();
        const RegId b = pickSrc();
        kb_.alu2(op, pickDest(), a, b);
    }

    void
    emitAlu1()
    {
        static const Opcode ops[] = {Opcode::ABS, Opcode::NEG,
                                     Opcode::MOV, Opcode::CVT};
        const Opcode op = ops[rng_.below(std::size(ops))];
        const RegId a = pickSrc();
        kb_.alu1(op, pickDest(), a);
    }

    void
    emitSfu()
    {
        static const Opcode ops[] = {Opcode::RCP, Opcode::SQRT,
                                     Opcode::SIN, Opcode::LG2};
        const Opcode op = ops[rng_.below(std::size(ops))];
        const RegId a = pickSrc();
        kb_.alu1(op, pickDest(), a);
    }

    void
    emitMad()
    {
        const RegId a = pickSrc();
        const RegId b = pickSrc();
        const RegId c = pickSrc();
        kb_.mad(pickDest(), a, b, c);
    }

    void
    emitAccum()
    {
        // Long-lived accumulator update: kAccum is read far outside
        // any window (persistent value).
        kb_.alu2(Opcode::ADD, kAccum, kAccum, pickSrc());
    }

    /** Generate the whole loop body. */
    void
    generate()
    {
        bodyEnd_ = now() + p_.bodyLen;
        unsigned sinceBranch = 0;
        unsigned i = 0;
        while (i < p_.bodyLen) {
            if (p_.branchEvery && sinceBranch >= p_.branchEvery &&
                i + p_.skipLen + 2 < p_.bodyLen) {
                emitGuardedSkip();
                sinceBranch = 0;
                i += p_.skipLen + 2;
                continue;
            }
            emitOne();
            ++sinceBranch;
            ++i;
        }
    }

  private:
    void
    emitOne()
    {
        // Drain consumption backlog first: when several scheduled
        // reads are due, emit a multi-source consumer so planned
        // reuse distances stay tight (real code consumes values at
        // the rate it produces them).
        if (plan_.dueCount(now()) >= 2) {
            if (p_.fMad > 0 && rng_.chance(0.08))
                emitMad();
            else
                emitAlu2();
            return;
        }
        const double x = rng_.uniform();
        double acc = p_.fLoad;
        if (x < acc) {
            emitLoad();
            return;
        }
        if (x < (acc += p_.fStore)) {
            emitStore();
            return;
        }
        if (x < (acc += p_.fMad)) {
            emitMad();
            return;
        }
        if (x < (acc += p_.fAlu1)) {
            emitAlu1();
            return;
        }
        if (x < (acc += p_.fSfu)) {
            emitSfu();
            return;
        }
        if (x < (acc += p_.fMovImm)) {
            kb_.movImm(pickDest(),
                       static_cast<std::uint32_t>(rng_.next()));
            return;
        }
        if (rng_.chance(p_.pAccum)) {
            emitAccum();
            return;
        }
        emitAlu2();
    }

    void
    emitGuardedSkip()
    {
        // Data-dependent skip over a short instruction run: taken
        // when the (signed) value is negative, i.e. ~50% of draws.
        kb_.setpImm(CondCode::LT, kBodyPred, pickSrc(), 0);
        auto skip = kb_.newLabel();
        kb_.bra(skip, kBodyPred, false);
        for (unsigned k = 0; k < p_.skipLen; ++k)
            emitOne();
        kb_.bind(skip);
    }

    /** Generation time base: the next instruction's index. */
    std::uint64_t now() const { return kb_.size(); }

    const WorkloadProfile &p_;
    KernelBuilder &kb_;
    Rng &rng_;
    ConsumePlan plan_;
    std::deque<RegId> lastWritten_;
    std::uint64_t bodyEnd_ = 0;
    unsigned rotor_ = 0;
};

} // namespace

Launch
generateWorkload(const WorkloadProfile &profile, double scale)
{
    if (profile.workingRegs == 0 ||
        kPoolBase + profile.workingRegs >= kPredRegBase) {
        fatal(strf("workload '", profile.name,
                   "': working-register pool out of range"));
    }
    if (profile.bodyLen == 0)
        fatal(strf("workload '", profile.name, "': empty body"));

    const auto iters = std::max<std::uint32_t>(
        2, static_cast<std::uint32_t>(
               static_cast<double>(profile.iterations) * scale));

    Rng rng(profile.seed * 0x9E3779B97F4A7C15ull + 0x1234);
    KernelBuilder kb(profile.name);

    // Prologue: persistent registers and the working pool.
    kb.movSpecial(kWarpOff, SpecialReg::WARP_ID);
    kb.alu2Imm(Opcode::SHL, kWarpOff, kWarpOff, 18);
    kb.movImm(kBaseA, 0x00100000u);
    kb.alu2(Opcode::ADD, kBaseA, kBaseA, kWarpOff);
    kb.movImm(kBaseB, 0x08000000u);
    kb.alu2(Opcode::ADD, kBaseB, kBaseB, kWarpOff);
    kb.movImm(kCounter, 0);
    kb.movImm(kLimit, iters);
    kb.movImm(kStride, profile.stride);
    kb.movImm(kAccum, 0);
    kb.movImm(kConst, 0x9E3779B9u);
    for (unsigned w = 0; w < profile.workingRegs; ++w) {
        kb.movImm(static_cast<RegId>(kPoolBase + w),
                  static_cast<std::uint32_t>(rng.next()));
    }

    auto loop = kb.newLabel();
    kb.bind(loop);

    BodyGen body(profile, kb, rng);
    body.generate();

    // Loop epilogue.
    kb.alu2Imm(Opcode::ADD, kCounter, kCounter, 1);
    kb.setp(CondCode::LT, kLoopPred, kCounter, kLimit);
    kb.bra(loop, kLoopPred, false);

    // Publish the accumulator so memory comparison is meaningful.
    kb.store(Opcode::ST_GLOBAL, kBaseA, 0, kAccum);
    kb.exit();

    Launch launch;
    launch.kernel = kb.build();
    launch.numWarps = profile.numWarps;
    return launch;
}

} // namespace bow
