/**
 * @file
 * Synthetic kernel generator: expands a WorkloadProfile into a
 * deterministic Launch (kernel + environment). The same profile and
 * scale always produce the identical kernel.
 */

#ifndef BOWSIM_WORKLOADS_GENERATOR_H
#define BOWSIM_WORKLOADS_GENERATOR_H

#include "sm/functional.h"
#include "workloads/profiles.h"

namespace bow {

/**
 * Generate the launch for @p profile.
 *
 * @param profile The benchmark parameters.
 * @param scale   Multiplies the loop trip count (1.0 = the bench
 *                harness size; tests use smaller scales). The
 *                effective trip count is clamped to at least 2.
 */
Launch generateWorkload(const WorkloadProfile &profile,
                        double scale = 1.0);

} // namespace bow

#endif // BOWSIM_WORKLOADS_GENERATOR_H
