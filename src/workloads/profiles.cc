#include "workloads/profiles.h"

#include <cctype>

#include "common/log.h"

namespace bow {

namespace {

std::vector<WorkloadProfile>
buildProfiles()
{
    std::vector<WorkloadProfile> all;

    {   // LIBOR Monte Carlo: ALU/SFU-heavy path simulation with tight
        // value chains.
        WorkloadProfile p;
        p.name = "LIB";
        p.fateTransient = 0.49;
        p.fateNearFar = 0.27;
        p.fateFarOnly = 0.24;
        p.suite = "ISPASS";
        p.description = "LIBOR Monte Carlo";
        p.bodyLen = 56;
        p.iterations = 26;
        p.fLoad = 0.06;
        p.fStore = 0.02;
        p.fMad = 0.035;
        p.fSfu = 0.08;
        p.seed = 101;
        all.push_back(p);
    }
    {   // 3D Laplace solver: stencil loads + add chains, no 3-source
        // instructions (Fig. 8).
        WorkloadProfile p;
        p.name = "LPS";
        p.fateTransient = 0.49;
        p.fateNearFar = 0.25;
        p.fateFarOnly = 0.26;
        p.suite = "ISPASS";
        p.description = "3D Laplace solver";
        p.bodyLen = 52;
        p.fLoad = 0.14;
        p.fStore = 0.05;
        p.fMad = 0.000;
        p.fSfu = 0.02;
        p.stride = 512;
        p.seed = 102;
        all.push_back(p);
    }
    {   // StoreGPU: long multi-operand ALU stretches; the paper's
        // highest operand-collection residency (Fig. 4).
        WorkloadProfile p;
        p.name = "STO";
        p.fateTransient = 0.42;
        p.fateNearFar = 0.28;
        p.fateFarOnly = 0.30;
        p.suite = "ISPASS";
        p.description = "StoreGPU";
        p.bodyLen = 64;
        p.fLoad = 0.03;
        p.fStore = 0.05;
        p.fMad = 0.049;
        p.fSfu = 0.0;
        p.fAlu1 = 0.06;
        p.fMovImm = 0.03;
        p.seed = 103;
        all.push_back(p);
    }
    {   // Weather prediction: wide working set, low operand reuse
        // ("lower register usage and fewer reuse opportunities").
        WorkloadProfile p;
        p.name = "WP";
        p.fateTransient = 0.24;
        p.fateNearFar = 0.25;
        p.fateFarOnly = 0.51;
        p.nearMaxDist = 3;
        p.farMaxDist = 18;
        p.suite = "ISPASS";
        p.description = "Weather prediction";
        p.bodyLen = 60;
        p.workingRegs = 28;
        p.fLoad = 0.10;
        p.fStore = 0.06;
        p.fMad = 0.10;
        p.fSfu = 0.06;
        p.seed = 104;
        all.push_back(p);
    }
    {   // Back-propagation: mad chains over layer data.
        WorkloadProfile p;
        p.name = "BACKPROP";
        p.fateTransient = 0.44;
        p.fateNearFar = 0.28;
        p.fateFarOnly = 0.28;
        p.suite = "Rodinia";
        p.description = "Back-propagation NN training";
        p.bodyLen = 48;
        p.fLoad = 0.10;
        p.fStore = 0.05;
        p.fMad = 0.042;
        p.seed = 105;
        all.push_back(p);
    }
    {   // Breadth-first search: pointer chasing, branchy, small
        // operand counts, no 3-source instructions.
        WorkloadProfile p;
        p.name = "BFS";
        p.fateTransient = 0.39;
        p.fateNearFar = 0.22;
        p.fateFarOnly = 0.39;
        p.suite = "Rodinia";
        p.description = "Breadth-first search";
        p.bodyLen = 40;
        p.fLoad = 0.18;
        p.fStore = 0.04;
        p.fMad = 0.000;
        p.fAlu1 = 0.14;
        p.fMovImm = 0.10;
        p.branchEvery = 8;
        p.skipLen = 5;
        p.pIndirect = 0.5;
        p.seed = 106;
        all.push_back(p);
    }
    {   // Braided B+ tree search: branchy key comparisons, no mads.
        WorkloadProfile p;
        p.name = "BTREE";
        p.fateTransient = 0.44;
        p.fateNearFar = 0.25;
        p.fateFarOnly = 0.31;
        p.suite = "Rodinia";
        p.description = "Braided B+ tree";
        p.bodyLen = 44;
        p.fLoad = 0.16;
        p.fStore = 0.03;
        p.fMad = 0.000;
        p.fAlu1 = 0.10;
        p.fMovImm = 0.08;
        p.branchEvery = 10;
        p.skipLen = 4;
        p.pIndirect = 0.45;
        p.seed = 107;
        all.push_back(p);
    }
    {   // Gaussian elimination: row updates (mad) with stores.
        WorkloadProfile p;
        p.name = "GAUSSIAN";
        p.fateTransient = 0.46;
        p.fateNearFar = 0.27;
        p.fateFarOnly = 0.27;
        p.suite = "Rodinia";
        p.description = "Gaussian elimination";
        p.bodyLen = 46;
        p.fLoad = 0.12;
        p.fStore = 0.08;
        p.fMad = 0.035;
        p.seed = 108;
        all.push_back(p);
    }
    {   // MummerGPU: suffix-tree matching; loads + compares, lower
        // reuse, branchy.
        WorkloadProfile p;
        p.name = "MUM";
        p.fateTransient = 0.34;
        p.fateNearFar = 0.25;
        p.fateFarOnly = 0.41;
        p.farMaxDist = 18;
        p.suite = "Rodinia";
        p.description = "MummerGPU sequence matching";
        p.bodyLen = 48;
        p.fLoad = 0.20;
        p.fStore = 0.03;
        p.fMad = 0.007;
        p.branchEvery = 7;
        p.skipLen = 4;
        p.pIndirect = 0.55;
        p.addrRange = 1u << 17;
        p.seed = 109;
        all.push_back(p);
    }
    {   // Needleman-Wunsch: DP wavefront; min/max chains with very
        // tight reuse.
        WorkloadProfile p;
        p.name = "NW";
        p.fateTransient = 0.52;
        p.fateNearFar = 0.27;
        p.fateFarOnly = 0.21;
        p.suite = "Rodinia";
        p.description = "Needleman-Wunsch alignment";
        p.bodyLen = 44;
        p.fLoad = 0.14;
        p.fStore = 0.07;
        p.fMad = 0.014;
        p.seed = 110;
        all.push_back(p);
    }
    {   // SRAD: anisotropic diffusion stencil with transcendentals.
        WorkloadProfile p;
        p.name = "SRAD";
        p.fateTransient = 0.46;
        p.fateNearFar = 0.28;
        p.fateFarOnly = 0.26;
        p.suite = "Rodinia";
        p.description = "Speckle-reducing anisotropic diffusion";
        p.bodyLen = 50;
        p.fLoad = 0.12;
        p.fStore = 0.06;
        p.fMad = 0.021;
        p.fSfu = 0.10;
        p.stride = 256;
        p.seed = 111;
        all.push_back(p);
    }
    {   // CifarNet: dense convolution; mad-dominated with strong
        // accumulator reuse.
        WorkloadProfile p;
        p.name = "CIFARNET";
        p.fateTransient = 0.52;
        p.fateNearFar = 0.30;
        p.fateFarOnly = 0.18;
        p.suite = "Tango";
        p.description = "CifarNet convolutional NN";
        p.bodyLen = 72;
        p.iterations = 20;
        p.fLoad = 0.10;
        p.fStore = 0.03;
        p.fMad = 0.063;
        p.pAccum = 0.10;
        p.seed = 112;
        all.push_back(p);
    }
    {   // SqueezeNet: conv NN, slightly lighter mad mix.
        WorkloadProfile p;
        p.name = "SQUEEZENET";
        p.fateTransient = 0.49;
        p.fateNearFar = 0.28;
        p.fateFarOnly = 0.23;
        p.suite = "Tango";
        p.description = "SqueezeNet convolutional NN";
        p.bodyLen = 64;
        p.iterations = 20;
        p.fLoad = 0.12;
        p.fStore = 0.04;
        p.fMad = 0.056;
        p.pAccum = 0.08;
        p.seed = 113;
        all.push_back(p);
    }
    {   // Vector addition: the canonical streaming kernel
        // (ld, ld, add, st).
        WorkloadProfile p;
        p.name = "VECTORADD";
        p.fateTransient = 0.49;
        p.fateNearFar = 0.15;
        p.fateFarOnly = 0.36;
        p.suite = "CUDA SDK";
        p.description = "Vector-vector addition";
        p.bodyLen = 12;
        p.iterations = 80;
        p.workingRegs = 8;
        p.fLoad = 0.30;
        p.fStore = 0.15;
        p.fMad = 0.000;
        p.fAlu1 = 0.05;
        p.fSfu = 0.0;
        p.fMovImm = 0.05;
        p.pIndirect = 0.0;
        p.stride = 4;
        p.seed = 114;
        all.push_back(p);
    }
    {   // Sum of absolute differences: abs/add accumulation; the
        // paper's most register-sensitive benchmark with the highest
        // BOC occupancy.
        WorkloadProfile p;
        p.name = "SAD";
        p.fateTransient = 0.54;
        p.fateNearFar = 0.30;
        p.fateFarOnly = 0.16;
        p.suite = "Parboil";
        p.description = "Sum of absolute differences";
        p.bodyLen = 60;
        p.workingRegs = 20;
        p.fLoad = 0.12;
        p.fStore = 0.04;
        p.fMad = 0.12;
        p.fAlu1 = 0.16;
        p.pAccum = 0.15;
        p.seed = 115;
        all.push_back(p);
    }
    return all;
}

} // namespace

const std::vector<WorkloadProfile> &
allProfiles()
{
    static const std::vector<WorkloadProfile> profiles =
        buildProfiles();
    return profiles;
}

const WorkloadProfile &
profileByName(const std::string &name)
{
    std::string upper = name;
    for (auto &c : upper)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(
            c)));
    for (const auto &p : allProfiles()) {
        if (p.name == upper)
            return p;
    }
    fatal(strf("unknown workload '", name, "'"));
}

} // namespace bow
