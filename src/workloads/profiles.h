/**
 * @file
 * Parameter profiles for the 15 synthetic benchmark generators
 * standing in for the paper's Table III workloads (Rodinia, Parboil,
 * ISPASS, Tango, CUDA SDK).
 *
 * Each profile shapes the generated kernel's instruction mix,
 * register-operand locality, control flow and memory behaviour to
 * match the corresponding benchmark's *published characterisation*
 * in the paper: its reuse curves (Fig. 3), operand counts (Fig. 8),
 * operand-collection residency (Fig. 4) and BOC occupancy (Fig. 9).
 * See DESIGN.md ("substitutions") for why this preserves the
 * behaviours BOW exercises.
 */

#ifndef BOWSIM_WORKLOADS_PROFILES_H
#define BOWSIM_WORKLOADS_PROFILES_H

#include <cstdint>
#include <string>
#include <vector>

namespace bow {

/** Generator parameters for one synthetic benchmark. */
struct WorkloadProfile
{
    std::string name;
    std::string suite;
    std::string description;

    // Scale.
    unsigned numWarps = 32;
    unsigned iterations = 24;   ///< loop trip count per warp
    unsigned bodyLen = 48;      ///< generated instructions per body

    // Destination-register pool.
    unsigned workingRegs = 12;

    // Instruction mix (fractions of body slots; remainder = 2-source
    // ALU ops).
    double fLoad = 0.10;
    double fStore = 0.04;
    double fMad = 0.08;     ///< 3-source fused multiply-add
    double fAlu1 = 0.10;    ///< 1-source ALU (abs/neg/mov/cvt)
    double fSfu = 0.03;     ///< transcendental (SFU) ops
    double fMovImm = 0.06;  ///< 0-register-source immediates

    // Operand-locality shaping (the reuse knobs).
    double pAccum = 0.06;     ///< long-distance accumulator updates

    // Value-consumer fates: every produced value is scheduled to be
    // read per one of the paper's Fig. 7 classes. The three weights
    // are normalized internally.
    double fateTransient = 0.52; ///< read 1-2x within a few insts,
                                 ///< then dead
    double fateNearFar = 0.27;   ///< read near AND again far away
    double fateFarOnly = 0.21;   ///< first read beyond any window
    unsigned nearMaxDist = 2;    ///< near-read distance 1..nearMax
    unsigned farMinDist = 4;     ///< far-read distance band
    unsigned farMaxDist = 14;
    double pPersistentSrc = 0.22;///< fallback reads of long-lived
                                 ///< registers (bases, constants)

    // Control flow.
    unsigned branchEvery = 0; ///< guarded skip every ~N body slots
                              ///< (0 = straight-line body)
    unsigned skipLen = 4;     ///< instructions under the guard

    // Memory behaviour.
    double pIndirect = 0.30;            ///< data-dependent addresses
    std::uint32_t addrRange = 1u << 14; ///< footprint per warp, bytes
    std::uint32_t stride = 128;

    std::uint64_t seed = 1;
};

/** All 15 profiles, in the paper's Table III order. */
const std::vector<WorkloadProfile> &allProfiles();

/** Look up a profile by (case-insensitive) name; fatal() if absent. */
const WorkloadProfile &profileByName(const std::string &name);

} // namespace bow

#endif // BOWSIM_WORKLOADS_PROFILES_H
