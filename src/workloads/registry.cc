#include "workloads/registry.h"

#include "workloads/generator.h"

namespace bow {
namespace workloads {

std::vector<std::string>
allNames()
{
    std::vector<std::string> names;
    for (const auto &p : allProfiles())
        names.push_back(p.name);
    return names;
}

Workload
make(const std::string &name, double scale)
{
    const WorkloadProfile &p = profileByName(name);
    Workload w;
    w.name = p.name;
    w.suite = p.suite;
    w.description = p.description;
    w.scale = scale;
    w.launch = generateWorkload(p, scale);
    return w;
}

std::vector<Workload>
makeAll(double scale)
{
    std::vector<Workload> all;
    for (const auto &p : allProfiles()) {
        Workload w;
        w.name = p.name;
        w.suite = p.suite;
        w.description = p.description;
        w.scale = scale;
        w.launch = generateWorkload(p, scale);
        all.push_back(std::move(w));
    }
    return all;
}

} // namespace workloads
} // namespace bow
