/**
 * @file
 * Workload registry: named access to the 15 benchmark launches
 * (Table III) used by every bench harness and by the examples.
 */

#ifndef BOWSIM_WORKLOADS_REGISTRY_H
#define BOWSIM_WORKLOADS_REGISTRY_H

#include <string>
#include <vector>

#include "sm/functional.h"
#include "workloads/profiles.h"

namespace bow {

/** A named, ready-to-run benchmark. */
struct Workload
{
    std::string name;
    std::string suite;
    std::string description;
    /** Generation scale the launch was built at; together with the
     *  name it identifies the launch exactly (generation is
     *  deterministic), which is what the result cache keys on. */
    double scale = 1.0;
    Launch launch;
};

namespace workloads {

/** Benchmark names in Table III order. */
std::vector<std::string> allNames();

/** Build one benchmark (case-insensitive name). */
Workload make(const std::string &name, double scale = 1.0);

/** Build all 15 benchmarks. */
std::vector<Workload> makeAll(double scale = 1.0);

} // namespace workloads

} // namespace bow

#endif // BOWSIM_WORKLOADS_REGISTRY_H
