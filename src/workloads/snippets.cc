#include "workloads/snippets.h"

#include "isa/assembler.h"
#include "workloads/builder.h"

namespace bow {
namespace snippets {

const char *
btreeSnippetAsm()
{
    // Figure 6 of the paper, verbatim (SASS-style); the assembler
    // discards the width suffixes and half-register selectors, and
    // maps the $p0/$o127 compound destination to $p0.
    return R"(
        // write to $r3, immediate use in the set.ne below
        ld.global.u32 $r3, [$r8];
        mov.u32 $r2, 0x00000ff4;
        mul.wide.u16 $r1, $r0.lo, $r2.hi;
        mad.wide.u16 $r1, $r0.hi, $r2.lo, $r1;
        shl.u32 $r1, $r1, 0x00000010;
        mad.wide.u16 $r0, $r0.lo, $r2.lo, $r1;
        add.half.u32 $r0, s[0x0018], $r0;
        add.half.u32 $r0, $r9, $r0;
        add.u32 $r1, $r0, 0x000007f8;
        ld.global.u32 $r2, [$r1];
        shl.u32 $r2, $r2, 0x00000100;
        add.u32 $r4, $r2, 0x0000008f;
        set.ne.s32.s32 $p0/$o127, $r3, $r1;
        exit;
    )";
}

Launch
btreeSnippet()
{
    Launch launch;
    launch.kernel = assemble(btreeSnippetAsm(), "btree_fig6");
    launch.numWarps = 1;
    launch.initRegs = {{8, 0x2000}, {9, 0x40}, {0, 0x1234}};
    return launch;
}

Launch
tinyVadd(unsigned numWarps, unsigned elems)
{
    KernelBuilder kb("tiny_vadd");
    // r0 = base, r1 = i, r2 = n, r3..r5 temps
    kb.movSpecial(6, SpecialReg::WARP_ID);
    kb.alu2Imm(Opcode::SHL, 6, 6, 12);
    kb.movImm(0, 0x1000);
    kb.alu2(Opcode::ADD, 0, 0, 6);
    kb.movImm(1, 0);
    kb.movImm(2, elems);
    auto loop = kb.newLabel();
    kb.bind(loop);
    kb.alu2Imm(Opcode::SHL, 3, 1, 2);           // r3 = i*4
    kb.alu2(Opcode::ADD, 3, 3, 0);              // addr
    kb.load(Opcode::LD_GLOBAL, 4, 3, 0);        // a[i]
    kb.load(Opcode::LD_GLOBAL, 5, 3, 0x100000); // b[i]
    kb.alu2(Opcode::ADD, 4, 4, 5);
    kb.store(Opcode::ST_GLOBAL, 3, 0x200000, 4);
    kb.alu2Imm(Opcode::ADD, 1, 1, 1);
    kb.setp(CondCode::LT, predReg(0), 1, 2);
    kb.bra(loop, predReg(0));
    kb.exit();

    Launch launch;
    launch.kernel = kb.build();
    launch.numWarps = numWarps;
    return launch;
}

Launch
chainLoop(unsigned numWarps, unsigned iters)
{
    KernelBuilder kb("chain_loop");
    kb.movImm(0, 1);        // r0 = chained value
    kb.movImm(1, 0);        // counter
    kb.movImm(2, iters);
    auto loop = kb.newLabel();
    kb.bind(loop);
    // A tight 4-deep dependence chain: every operand is reused
    // immediately (ideal bypassing fodder).
    kb.alu2Imm(Opcode::ADD, 0, 0, 3);
    kb.alu2Imm(Opcode::MUL, 3, 0, 5);
    kb.alu2(Opcode::XOR, 4, 3, 0);
    kb.alu2(Opcode::ADD, 0, 4, 3);
    kb.alu2Imm(Opcode::ADD, 1, 1, 1);
    kb.setp(CondCode::LT, predReg(0), 1, 2);
    kb.bra(loop, predReg(0));
    kb.store(Opcode::ST_GLOBAL, 0, 0x4000, 0);
    kb.exit();

    Launch launch;
    launch.kernel = kb.build();
    launch.numWarps = numWarps;
    return launch;
}

Launch
branchDiamond(unsigned numWarps)
{
    KernelBuilder kb("branch_diamond");
    kb.movSpecial(0, SpecialReg::WARP_ID);
    kb.alu2Imm(Opcode::AND, 1, 0, 1);           // parity
    kb.setpImm(CondCode::NE, predReg(0), 1, 0);
    auto odd = kb.newLabel();
    auto join = kb.newLabel();
    kb.bra(odd, predReg(0));
    kb.alu2Imm(Opcode::ADD, 2, 0, 100);         // even path
    kb.bra(join);
    kb.bind(odd);
    kb.alu2Imm(Opcode::MUL, 2, 0, 7);           // odd path
    kb.bind(join);
    kb.alu2Imm(Opcode::SHL, 3, 0, 2);
    kb.store(Opcode::ST_GLOBAL, 3, 0x8000, 2);
    kb.exit();

    Launch launch;
    launch.kernel = kb.build();
    launch.numWarps = numWarps;
    return launch;
}

} // namespace snippets
} // namespace bow
