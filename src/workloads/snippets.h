/**
 * @file
 * Hand-written kernels: the paper's Figure 6 BTREE listing (used for
 * Table I) and small kernels shared by tests and examples.
 */

#ifndef BOWSIM_WORKLOADS_SNIPPETS_H
#define BOWSIM_WORKLOADS_SNIPPETS_H

#include "sm/functional.h"

namespace bow {
namespace snippets {

/** The verbatim assembly text of the paper's Fig. 6 BTREE listing. */
const char *btreeSnippetAsm();

/** The Fig. 6 listing as a single-warp launch (drives Table I). */
Launch btreeSnippet();

/** A minimal vadd-style kernel: load two values, add, store. */
Launch tinyVadd(unsigned numWarps = 4, unsigned elems = 16);

/** A counted loop with a tight dependence chain (reuse-heavy). */
Launch chainLoop(unsigned numWarps = 4, unsigned iters = 16);

/** A kernel with a data-dependent diamond (tests branch handling). */
Launch branchDiamond(unsigned numWarps = 4);

} // namespace snippets
} // namespace bow

#endif // BOWSIM_WORKLOADS_SNIPPETS_H
