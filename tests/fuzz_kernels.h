/**
 * @file
 * The shared random-kernel generator behind the differential fuzz
 * suites. Kernels are random but valid: a bounded counter loop whose
 * body mixes ALU/MAD/SQRT work, guarded forward skips, and shared-
 * memory traffic that is warp-disjoint (every address is offset by
 * WARP_ID << shift), so the functional oracle's final state is
 * independent of warp interleaving — and therefore of the SM count
 * and CTA placement policy in the multi-SM model.
 *
 * Used by tests/test_fuzz.cc (per-architecture timing vs functional)
 * and tests/test_gpu_core.cc (SM-count/placement invariance).
 */

#ifndef BOWSIM_TESTS_FUZZ_KERNELS_H
#define BOWSIM_TESTS_FUZZ_KERNELS_H

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "sm/functional.h"
#include "workloads/builder.h"

namespace bow {

/** Build a small random-but-valid kernel launch from @p seed. */
inline Launch
fuzzKernelLaunch(std::uint64_t seed)
{
    Rng rng(seed * 0x2545F4914F6CDD1Dull + 99);
    KernelBuilder kb("fuzz_" + std::to_string(seed));

    // Registers r0..r11; r0 counter, r1 limit, rest data.
    const unsigned iters = 2 + static_cast<unsigned>(rng.below(6));
    kb.movImm(0, 0);
    kb.movImm(1, iters);
    for (RegId r = 2; r < 12; ++r)
        kb.movImm(r, static_cast<std::uint32_t>(rng.next()));
    // r12: per-warp memory offset so warps never race.
    kb.movSpecial(12, SpecialReg::WARP_ID);
    kb.alu2Imm(Opcode::SHL, 12, 12, 12);

    auto loop = kb.newLabel();
    kb.bind(loop);

    const unsigned bodyLen = 6 + static_cast<unsigned>(rng.below(26));
    auto dataReg = [&] {
        return static_cast<RegId>(2 + rng.below(10));
    };
    unsigned pendingSkip = 0;
    KernelBuilder::Label skipLabel;
    for (unsigned i = 0; i < bodyLen; ++i) {
        if (pendingSkip && --pendingSkip == 0)
            kb.bind(skipLabel);
        switch (rng.below(10)) {
          case 0:
            kb.movImm(dataReg(),
                      static_cast<std::uint32_t>(rng.next()));
            break;
          case 1:
            kb.alu1(Opcode::NEG, dataReg(), dataReg());
            break;
          case 2:
            kb.mad(dataReg(), dataReg(), dataReg(), dataReg());
            break;
          case 3: {
            // Shared-memory access, warp-disjoint via the r12 offset.
            const RegId addr = dataReg();
            kb.alu2Imm(Opcode::AND, addr, dataReg(), 0xFFC);
            kb.alu2(Opcode::ADD, addr, addr, 12);
            if (rng.chance(0.5))
                kb.load(Opcode::LD_SHARED, dataReg(), addr, 0);
            else
                kb.store(Opcode::ST_SHARED, addr, 0, dataReg());
            break;
          }
          case 4:
            kb.alu1(Opcode::SQRT, dataReg(), dataReg());
            break;
          case 5:
            if (pendingSkip == 0 && i + 3 < bodyLen) {
                // Guarded forward skip.
                kb.setpImm(CondCode::LT, predReg(1), dataReg(), 0);
                skipLabel = kb.newLabel();
                kb.bra(skipLabel, predReg(1));
                pendingSkip = 2 + static_cast<unsigned>(rng.below(3));
                break;
            }
            [[fallthrough]];
          default: {
            static const Opcode ops[] = {Opcode::ADD, Opcode::SUB,
                                         Opcode::MUL, Opcode::XOR,
                                         Opcode::MIN, Opcode::SHR};
            kb.alu2(ops[rng.below(std::size(ops))], dataReg(),
                    dataReg(), dataReg());
            break;
          }
        }
    }
    if (pendingSkip)
        kb.bind(skipLabel);

    kb.alu2Imm(Opcode::ADD, 0, 0, 1);
    kb.setp(CondCode::LT, predReg(0), 0, 1);
    kb.bra(loop, predReg(0));
    kb.exit();

    Launch launch;
    launch.kernel = kb.build();
    launch.numWarps = 1 + static_cast<unsigned>(rng.below(40));
    return launch;
}

} // namespace bow

#endif // BOWSIM_TESTS_FUZZ_KERNELS_H
