/**
 * @file
 * Assembler and disassembler tests, including the verbatim paper
 * Figure 6 listing.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "isa/assembler.h"
#include "isa/disassembler.h"
#include "workloads/snippets.h"

namespace bow {
namespace {

TEST(Assembler, SimpleArithmetic)
{
    Kernel k = assemble("add.u32 $r1, $r2, $r3; exit;");
    ASSERT_EQ(k.size(), 2u);
    EXPECT_EQ(k.inst(0).op, Opcode::ADD);
    EXPECT_EQ(k.inst(0).dst, 1);
    EXPECT_EQ(k.inst(0).srcs[0].reg, 2);
    EXPECT_EQ(k.inst(0).srcs[1].reg, 3);
    EXPECT_EQ(k.inst(1).op, Opcode::EXIT);
}

TEST(Assembler, ImmediateForms)
{
    Kernel k = assemble(
        "mov $r1, 0x10;\n"
        "add $r2, $r1, 42;\n"
        "sub $r3, $r2, -1;\n"
        "exit;");
    EXPECT_EQ(k.inst(0).srcs[0].imm, 0x10u);
    EXPECT_EQ(k.inst(1).srcs[1].imm, 42u);
    EXPECT_EQ(k.inst(2).srcs[1].imm, 0xFFFFFFFFu);
}

TEST(Assembler, LoadStoreAddressing)
{
    Kernel k = assemble(
        "ld.global.u32 $r1, [$r2];\n"
        "ld.global $r3, [$r2+0x10];\n"
        "ld.shared $r4, [$r2-4];\n"
        "st.global [$r5+8], $r1;\n"
        "exit;");
    EXPECT_EQ(k.inst(0).op, Opcode::LD_GLOBAL);
    EXPECT_EQ(k.inst(0).memOffset, 0);
    EXPECT_EQ(k.inst(1).memOffset, 0x10);
    EXPECT_EQ(k.inst(2).op, Opcode::LD_SHARED);
    EXPECT_EQ(k.inst(2).memOffset, -4);
    EXPECT_EQ(k.inst(3).op, Opcode::ST_GLOBAL);
    EXPECT_EQ(k.inst(3).srcs[0].reg, 5);
    EXPECT_EQ(k.inst(3).srcs[1].reg, 1);
    EXPECT_EQ(k.inst(3).memOffset, 8);
}

TEST(Assembler, PredicatesAndBranches)
{
    Kernel k = assemble(
        "top:\n"
        "setp.lt.s32 $p1, $r1, $r2;\n"
        "@$p1 bra top;\n"
        "@!$p0 bra done;\n"
        "nop;\n"
        "done:\n"
        "exit;");
    EXPECT_EQ(k.inst(0).op, Opcode::SETP);
    EXPECT_EQ(k.inst(0).cc, CondCode::LT);
    EXPECT_EQ(k.inst(0).dst, predReg(1));
    EXPECT_EQ(k.inst(1).pred, predReg(1));
    EXPECT_FALSE(k.inst(1).predNegate);
    EXPECT_EQ(k.inst(1).branchTarget, 0u);
    EXPECT_TRUE(k.inst(2).predNegate);
    EXPECT_EQ(k.inst(2).branchTarget, 4u);
}

TEST(Assembler, SuffixesAndHalfRegsAreDiscarded)
{
    Kernel k = assemble(
        "mul.wide.u16 $r1, $r0.lo, $r2.hi;\n"
        "add.half.u32 $r0, s[0x0018], $r0;\n"
        "exit;");
    EXPECT_EQ(k.inst(0).op, Opcode::MUL);
    EXPECT_EQ(k.inst(0).srcs[0].reg, 0);
    EXPECT_EQ(k.inst(0).srcs[1].reg, 2);
    EXPECT_EQ(k.inst(1).srcs[0].kind, Operand::Kind::CONST_MEM);
    EXPECT_EQ(k.inst(1).srcs[0].imm, 0x18u);
}

TEST(Assembler, CompoundDestinationTakesFirstPart)
{
    Kernel k = assemble("set.ne.s32.s32 $p0/$o127, $r3, $r1; exit;");
    EXPECT_EQ(k.inst(0).op, Opcode::SET);
    EXPECT_EQ(k.inst(0).dst, predReg(0));
    EXPECT_EQ(k.inst(0).cc, CondCode::NE);
}

TEST(Assembler, SpecialRegisters)
{
    Kernel k = assemble("mov $r1, %warpid; mov $r2, %nwarps; exit;");
    EXPECT_EQ(k.inst(0).srcs[0].kind, Operand::Kind::SPECIAL);
    EXPECT_EQ(k.inst(0).srcs[0].special, SpecialReg::WARP_ID);
    EXPECT_EQ(k.inst(1).srcs[0].special, SpecialReg::WARP_COUNT);
}

TEST(Assembler, CommentsAndBlankLines)
{
    Kernel k = assemble(
        "// a comment\n"
        "# another\n"
        "\n"
        "nop; // trailing\n"
        "exit;");
    EXPECT_EQ(k.size(), 2u);
}

TEST(Assembler, Fig6SnippetAssemblesVerbatim)
{
    Kernel k = assemble(snippets::btreeSnippetAsm(), "fig6");
    ASSERT_EQ(k.size(), 14u); // 13 listing lines + exit
    EXPECT_EQ(k.inst(0).op, Opcode::LD_GLOBAL);
    EXPECT_EQ(k.inst(0).dst, 3);
    EXPECT_EQ(k.inst(3).op, Opcode::MAD);
    EXPECT_EQ(k.inst(3).numSrcs, 3u);
    EXPECT_EQ(k.inst(12).op, Opcode::SET);
    EXPECT_EQ(k.inst(12).dst, predReg(0));
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        assemble("nop;\nfrobnicate $r1;\nexit;");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

TEST(Assembler, UndefinedLabelFails)
{
    EXPECT_THROW(assemble("bra nowhere; exit;"), FatalError);
}

TEST(Assembler, DuplicateLabelFails)
{
    EXPECT_THROW(assemble("l: nop;\nl: nop;\nexit;"), FatalError);
}

TEST(Assembler, WrongOperandCountFails)
{
    EXPECT_THROW(assemble("add $r1, $r2; exit;"), FatalError);
    EXPECT_THROW(assemble("mov $r1, $r2, $r3; exit;"), FatalError);
}

TEST(Assembler, TrailingLabelFails)
{
    EXPECT_THROW(assemble("exit;\ndangling:"), FatalError);
}

TEST(Assembler, AbsoluteAddressLoads)
{
    Kernel k = assemble(
        "ld.global $r1, [0x1000];\n"
        "st.global [0x2000], $r1;\n"
        "exit;");
    // Absolute addresses: the base operand is a zero immediate and
    // the address lives in memOffset.
    EXPECT_EQ(k.inst(0).srcs[0].kind, Operand::Kind::IMM);
    EXPECT_EQ(k.inst(0).memOffset, 0x1000);
    EXPECT_EQ(k.inst(1).memOffset, 0x2000);
    EXPECT_EQ(k.inst(0).numRegSrcs(), 0u);
}

TEST(Assembler, MemorySpaceAliases)
{
    Kernel k = assemble(
        "ld.param $r1, [$r2];\n"
        "ld.local $r3, [$r2];\n"
        "st.local [$r2], $r3;\n"
        "exit;");
    EXPECT_EQ(k.inst(0).op, Opcode::LD_CONST);
    EXPECT_EQ(k.inst(1).op, Opcode::LD_GLOBAL);
    EXPECT_EQ(k.inst(2).op, Opcode::ST_GLOBAL);
}

TEST(Assembler, MultipleStatementsPerLine)
{
    Kernel k = assemble("mov $r1, 1; mov $r2, 2; exit;");
    EXPECT_EQ(k.size(), 3u);
}

TEST(Assembler, BarAndSsyTakeOptionalOperand)
{
    Kernel k = assemble(
        "ssy target;\n"
        "bar.sync 0;\n"
        "bar;\n"
        "target:\n"
        "exit;");
    EXPECT_EQ(k.inst(0).op, Opcode::SSY);
    EXPECT_EQ(k.inst(1).op, Opcode::BAR);
    EXPECT_EQ(k.size(), 4u);
}

TEST(Assembler, GuardOnNonBranchInstruction)
{
    Kernel k = assemble("@!$p2 add $r1, $r2, $r3; exit;");
    EXPECT_EQ(k.inst(0).pred, predReg(2));
    EXPECT_TRUE(k.inst(0).predNegate);
    // Guard is a register source.
    EXPECT_EQ(k.inst(0).srcRegs().size(), 3u);
}

TEST(Assembler, PredicateIndexOutOfRangeFails)
{
    EXPECT_THROW(assemble("setp.ne.s32 $p16, $r1, $r2; exit;"),
                 FatalError);
}

TEST(Assembler, GprIndexOutOfRangeFails)
{
    EXPECT_THROW(assemble("mov $r300, 1; exit;"), FatalError);
}

TEST(Disassembler, RegNames)
{
    EXPECT_EQ(regName(5), "$r5");
    EXPECT_EQ(regName(predReg(2)), "$p2");
}

TEST(Disassembler, RoundTripsSimpleKernel)
{
    const char *src =
        "top:\n"
        "add $r1, $r2, $r3;\n"
        "ld.global $r4, [$r1+0x10];\n"
        "setp.lt.s32 $p0, $r1, $r4;\n"
        "@$p0 bra top;\n"
        "st.global [$r1], $r4;\n"
        "exit;";
    Kernel k1 = assemble(src, "rt");
    const std::string text = disassemble(k1);
    Kernel k2 = assemble(text, "rt2");
    ASSERT_EQ(k1.size(), k2.size());
    for (InstIdx i = 0; i < k1.size(); ++i) {
        EXPECT_EQ(k1.inst(i).op, k2.inst(i).op) << "inst " << i;
        EXPECT_EQ(k1.inst(i).dst, k2.inst(i).dst) << "inst " << i;
        EXPECT_EQ(k1.inst(i).numSrcs, k2.inst(i).numSrcs);
        EXPECT_EQ(k1.inst(i).branchTarget, k2.inst(i).branchTarget);
        EXPECT_EQ(k1.inst(i).memOffset, k2.inst(i).memOffset);
    }
}

} // namespace
} // namespace bow
