/**
 * @file
 * Bypassing-operand-collector unit tests: forwarding, the sliding
 * extended window, write policies (write-through, write-back,
 * compiler hints), FIFO capacity eviction and safety write-backs.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "sm/boc.h"

namespace bow {
namespace {

TEST(Boc, RejectsNonBocArchitecture)
{
    EXPECT_THROW(Boc(Architecture::Baseline, 3, 12), PanicError);
    EXPECT_THROW(Boc(Architecture::RFC, 3, 12), PanicError);
}

TEST(Boc, RejectsTinyCapacity)
{
    EXPECT_THROW(Boc(Architecture::BOW, 3, 1), FatalError);
}

TEST(Boc, FirstReadFetchesSecondForwards)
{
    Boc boc(Architecture::BOW, 3, 12);
    auto r0 = boc.insert(0, {5});
    ASSERT_EQ(r0.toFetch.size(), 1u);
    EXPECT_EQ(r0.toFetch[0], 5);
    EXPECT_EQ(r0.forwarded, 0u);
    boc.fetchComplete(5);
    auto r1 = boc.insert(1, {5});
    EXPECT_TRUE(r1.toFetch.empty());
    EXPECT_EQ(r1.forwarded, 1u);
}

TEST(Boc, InFlightFetchIsShared)
{
    Boc boc(Architecture::BOW, 3, 12);
    auto r0 = boc.insert(0, {5});
    ASSERT_EQ(r0.toFetch.size(), 1u);
    // Second instruction needs the same register while the fetch is
    // still outstanding: no extra RF read.
    auto r1 = boc.insert(1, {5});
    EXPECT_TRUE(r1.toFetch.empty());
    ASSERT_EQ(r1.sharedFetch.size(), 1u);
    EXPECT_EQ(r1.sharedFetch[0], 5);
}

TEST(Boc, WindowExpiryEvictsCleanEntrySilently)
{
    Boc boc(Architecture::BOW, 3, 12);
    boc.insert(0, {5});
    boc.fetchComplete(5);
    // Register 5's last access is at 0: it serves windows up to
    // seq 2 and expires at seq 3.
    auto r2 = boc.insert(2, {5});
    EXPECT_EQ(r2.forwarded, 1u);
    auto r5 = boc.insert(5, {});
    EXPECT_TRUE(r5.evictions.empty() ||
                !r5.evictions[0].needsRfWrite);
}

TEST(Boc, ReadAtWindowBoundaryMisses)
{
    Boc boc(Architecture::BOW, 3, 12);
    boc.insert(0, {5});
    boc.fetchComplete(5);
    // Distance exactly windowSize: must refetch.
    auto r3 = boc.insert(3, {5});
    EXPECT_EQ(r3.forwarded, 0u);
    ASSERT_EQ(r3.toFetch.size(), 1u);
}

TEST(Boc, AccessExtendsResidency)
{
    Boc boc(Architecture::BOW, 3, 12);
    boc.insert(0, {5});
    boc.fetchComplete(5);
    boc.insert(2, {5});     // extends lastUse to 2
    auto r4 = boc.insert(4, {5}); // distance 2 from the extension
    EXPECT_EQ(r4.forwarded, 1u);
}

TEST(Boc, WriteThroughNeverDirty)
{
    Boc boc(Architecture::BOW, 3, 12);
    auto w = boc.writeResult(0, 7, WritebackHint::BocAndRf);
    EXPECT_TRUE(w.wroteBoc);
    EXPECT_TRUE(w.writeRfNow);
    // Expiry writes nothing: the RF copy is already current.
    auto r = boc.insert(5, {});
    for (const auto &ev : r.evictions)
        EXPECT_FALSE(ev.needsRfWrite);
}

TEST(Boc, WriteBackWritesOnEviction)
{
    Boc boc(Architecture::BOW_WR, 3, 12);
    auto w = boc.writeResult(0, 7, WritebackHint::BocAndRf);
    EXPECT_TRUE(w.wroteBoc);
    EXPECT_FALSE(w.writeRfNow);
    auto r = boc.insert(5, {});
    ASSERT_EQ(r.evictions.size(), 1u);
    EXPECT_EQ(r.evictions[0].reg, 7);
    EXPECT_TRUE(r.evictions[0].needsRfWrite);
}

TEST(Boc, WriteBackConsolidatesRepeatedWrites)
{
    Boc boc(Architecture::BOW_WR, 3, 12);
    boc.writeResult(0, 7, WritebackHint::BocAndRf);
    auto w1 = boc.writeResult(1, 7, WritebackHint::BocAndRf);
    EXPECT_TRUE(w1.consolidatedPrev);
    auto w2 = boc.writeResult(2, 7, WritebackHint::BocAndRf);
    EXPECT_TRUE(w2.consolidatedPrev);
    // Only one RF write at eviction for three BOC writes.
    auto r = boc.insert(6, {});
    ASSERT_EQ(r.evictions.size(), 1u);
    EXPECT_TRUE(r.evictions[0].needsRfWrite);
}

TEST(Boc, HintRfOnlySkipsBocAndInvalidatesStaleCopy)
{
    Boc boc(Architecture::BOW_WR_OPT, 3, 12);
    boc.insert(0, {7});
    boc.fetchComplete(7);
    auto w = boc.writeResult(1, 7, WritebackHint::RfOnly);
    EXPECT_FALSE(w.wroteBoc);
    EXPECT_TRUE(w.writeRfNow);
    // The stale copy is gone: a later read must refetch.
    auto r = boc.insert(2, {7});
    EXPECT_EQ(r.forwarded, 0u);
    EXPECT_EQ(r.toFetch.size(), 1u);
}

TEST(Boc, HintBocOnlyExpiresWithoutRfWrite)
{
    Boc boc(Architecture::BOW_WR_OPT, 3, 12);
    boc.writeResult(0, 7, WritebackHint::BocOnly);
    auto r = boc.insert(5, {});
    ASSERT_EQ(r.evictions.size(), 1u);
    EXPECT_FALSE(r.evictions[0].needsRfWrite);
    EXPECT_TRUE(r.evictions[0].transientDrop);
}

TEST(Boc, CapacityEvictionIsFifo)
{
    Boc boc(Architecture::BOW_WR, 4, 2);
    boc.writeResult(0, 1, WritebackHint::BocAndRf);
    boc.writeResult(1, 2, WritebackHint::BocAndRf);
    // Third allocation: register 1 (oldest) is evicted.
    auto w = boc.writeResult(2, 3, WritebackHint::BocAndRf);
    ASSERT_EQ(w.evictions.size(), 1u);
    EXPECT_EQ(w.evictions[0].reg, 1);
    EXPECT_TRUE(w.evictions[0].needsRfWrite);
    EXPECT_EQ(boc.occupied(), 2u);
}

TEST(Boc, EarlyEvictionOfTransientForcesSafetyWrite)
{
    Boc boc(Architecture::BOW_WR_OPT, 4, 2);
    // A transient value evicted by capacity pressure while its
    // window is still open must be saved to the RF (Sec. IV-C).
    boc.writeResult(0, 1, WritebackHint::BocOnly);
    boc.writeResult(1, 2, WritebackHint::BocAndRf);
    auto w = boc.writeResult(2, 3, WritebackHint::BocAndRf);
    ASSERT_EQ(w.evictions.size(), 1u);
    EXPECT_EQ(w.evictions[0].reg, 1);
    EXPECT_TRUE(w.evictions[0].needsRfWrite);
    EXPECT_TRUE(w.evictions[0].safetyWrite);
}

TEST(Boc, FetchingEntriesAreNotEvicted)
{
    Boc boc(Architecture::BOW_WR, 3, 2);
    boc.insert(0, {1});     // fetching
    boc.insert(1, {2});     // fetching
    // Capacity full with two fetches in flight: a result write has
    // nowhere to go and must fall back to the RF.
    auto w = boc.writeResult(1, 3, WritebackHint::BocAndRf);
    EXPECT_FALSE(w.wroteBoc);
    EXPECT_TRUE(w.writeRfNow);
    EXPECT_EQ(boc.occupied(), 2u);
}

TEST(Boc, FlushWritesDirtyEntries)
{
    Boc boc(Architecture::BOW_WR, 3, 12);
    boc.writeResult(0, 1, WritebackHint::BocAndRf);
    boc.insert(1, {2});
    boc.fetchComplete(2);   // clean entry
    auto evs = boc.flush();
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_EQ(evs[0].reg, 1);
    EXPECT_TRUE(evs[0].needsRfWrite);
    EXPECT_EQ(boc.occupied(), 0u);
}

TEST(Boc, FlushDropsTaggedTransients)
{
    Boc boc(Architecture::BOW_WR_OPT, 3, 12);
    boc.writeResult(0, 1, WritebackHint::BocOnly);
    auto evs = boc.flush();
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_FALSE(evs[0].needsRfWrite);
    EXPECT_TRUE(evs[0].transientDrop);
}

TEST(Boc, ExtendedWindowKeepsEntriesUntilCapacity)
{
    Boc boc(Architecture::BOW_WR, 3, 4, /*extendedWindow=*/true);
    boc.insert(0, {5});
    boc.fetchComplete(5);
    // Far beyond the nominal window: still forwarded.
    auto r = boc.insert(20, {5});
    EXPECT_EQ(r.forwarded, 1u);
    EXPECT_TRUE(r.evictions.empty());
}

TEST(Boc, ExtendedWindowEvictsByCapacityOnly)
{
    Boc boc(Architecture::BOW_WR, 3, 2, /*extendedWindow=*/true);
    boc.writeResult(0, 1, WritebackHint::BocAndRf);
    boc.writeResult(10, 2, WritebackHint::BocAndRf);
    auto w = boc.writeResult(20, 3, WritebackHint::BocAndRf);
    ASSERT_EQ(w.evictions.size(), 1u);
    EXPECT_EQ(w.evictions[0].reg, 1);
    EXPECT_TRUE(w.evictions[0].needsRfWrite);
}

TEST(Boc, ExtendedWindowRejectsCompilerHints)
{
    EXPECT_THROW(Boc(Architecture::BOW_WR_OPT, 3, 12, true),
                 FatalError);
}

TEST(Boc, OccupiedTracksEntries)
{
    Boc boc(Architecture::BOW, 3, 12);
    EXPECT_EQ(boc.occupied(), 0u);
    boc.insert(0, {1, 2, 3});
    EXPECT_EQ(boc.occupied(), 3u);
}

} // namespace
} // namespace bow
