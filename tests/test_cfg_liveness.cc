/**
 * @file
 * CFG construction and dataflow liveness tests.
 */

#include <gtest/gtest.h>

#include "compiler/cfg.h"
#include "compiler/liveness.h"
#include "isa/assembler.h"

namespace bow {
namespace {

TEST(Cfg, StraightLineIsOneBlock)
{
    Kernel k = assemble("mov $r1, 1; add $r2, $r1, $r1; exit;");
    Cfg cfg(k);
    ASSERT_EQ(cfg.numBlocks(), 1u);
    EXPECT_EQ(cfg.block(0).first, 0u);
    EXPECT_EQ(cfg.block(0).last, 2u);
    EXPECT_TRUE(cfg.block(0).succs.empty());
}

TEST(Cfg, LoopHasBackEdge)
{
    Kernel k = assemble(
        "mov $r1, 0;\n"
        "loop:\n"
        "add $r1, $r1, 1;\n"
        "setp.lt.s32 $p0, $r1, $r2;\n"
        "@$p0 bra loop;\n"
        "exit;");
    Cfg cfg(k);
    // Blocks: [0,0] prologue, [1,3] loop, [4,4] exit.
    ASSERT_EQ(cfg.numBlocks(), 3u);
    EXPECT_EQ(cfg.blockOf(0), 0u);
    EXPECT_EQ(cfg.blockOf(2), 1u);
    EXPECT_EQ(cfg.blockOf(4), 2u);
    // Loop block has two successors: itself and the exit block.
    const auto &loop = cfg.block(1);
    ASSERT_EQ(loop.succs.size(), 2u);
    EXPECT_EQ(loop.succs[0], 1u);
    EXPECT_EQ(loop.succs[1], 2u);
    EXPECT_EQ(cfg.block(2).preds.size(), 1u);
}

TEST(Cfg, UnconditionalBranchHasSingleSuccessor)
{
    Kernel k = assemble(
        "bra skip;\n"
        "nop;\n"
        "skip:\n"
        "exit;");
    Cfg cfg(k);
    ASSERT_EQ(cfg.numBlocks(), 3u);
    ASSERT_EQ(cfg.block(0).succs.size(), 1u);
    EXPECT_EQ(cfg.block(0).succs[0], 2u);
}

TEST(Liveness, StrongDefRequiresUnguardedDest)
{
    Kernel k = assemble("@$p0 mov $r1, 1; mov $r2, 2; exit;");
    EXPECT_FALSE(Liveness::isStrongDef(k.inst(0)));
    EXPECT_TRUE(Liveness::isStrongDef(k.inst(1)));
    EXPECT_FALSE(Liveness::isStrongDef(k.inst(2)));
}

TEST(Liveness, StraightLineLifetimes)
{
    // r1 defined at 0, used at 1; r2 defined at 1, used at 2.
    Kernel k = assemble(
        "mov $r1, 1;\n"
        "add $r2, $r1, $r1;\n"
        "st.global [$r3], $r2;\n"
        "exit;");
    Cfg cfg(k);
    Liveness lv(cfg);
    EXPECT_TRUE(lv.liveAfter(0).test(1));
    EXPECT_FALSE(lv.liveAfter(1).test(1));
    EXPECT_TRUE(lv.liveAfter(1).test(2));
    EXPECT_FALSE(lv.liveAfter(2).test(2));
    // r3 is upward-exposed: live on entry.
    EXPECT_TRUE(lv.liveBefore(0).test(3));
    EXPECT_TRUE(lv.liveIn(0).test(3));
}

TEST(Liveness, LoopCarriedValueStaysLive)
{
    Kernel k = assemble(
        "mov $r1, 0;\n"
        "loop:\n"
        "add $r1, $r1, 1;\n"
        "setp.lt.s32 $p0, $r1, $r2;\n"
        "@$p0 bra loop;\n"
        "st.global [$r3], $r1;\n"
        "exit;");
    Cfg cfg(k);
    Liveness lv(cfg);
    // r1 is live around the back edge and after the loop.
    const unsigned loopBlk = cfg.blockOf(1);
    EXPECT_TRUE(lv.liveIn(loopBlk).test(1));
    EXPECT_TRUE(lv.liveOut(loopBlk).test(1));
    // r2 (the bound) is live throughout the loop.
    EXPECT_TRUE(lv.liveOut(loopBlk).test(2));
    // After the final store nothing is live.
    EXPECT_FALSE(lv.liveAfter(4).test(1));
}

TEST(Liveness, GuardedWriteDoesNotKill)
{
    // The guarded def of r1 may not execute, so the incoming r1
    // remains live above it.
    Kernel k = assemble(
        "@$p0 mov $r1, 5;\n"
        "st.global [$r2], $r1;\n"
        "exit;");
    Cfg cfg(k);
    Liveness lv(cfg);
    EXPECT_TRUE(lv.liveBefore(0).test(1));
}

TEST(Liveness, UnguardedWriteKills)
{
    Kernel k = assemble(
        "mov $r1, 5;\n"
        "st.global [$r2], $r1;\n"
        "exit;");
    Cfg cfg(k);
    Liveness lv(cfg);
    EXPECT_FALSE(lv.liveBefore(0).test(1));
}

TEST(Liveness, DiamondMergesLiveness)
{
    Kernel k = assemble(
        "setp.ne.s32 $p0, $r0, 0;\n"
        "@$p0 bra odd;\n"
        "mov $r1, 1;\n"
        "bra join;\n"
        "odd:\n"
        "mov $r1, 2;\n"
        "join:\n"
        "st.global [$r2], $r1;\n"
        "exit;");
    Cfg cfg(k);
    Liveness lv(cfg);
    // r1 defined on both paths and consumed at the join: live out of
    // both arms, not live into the entry.
    const unsigned evenBlk = cfg.blockOf(2);
    const unsigned oddBlk = cfg.blockOf(4);
    EXPECT_TRUE(lv.liveOut(evenBlk).test(1));
    EXPECT_TRUE(lv.liveOut(oddBlk).test(1));
    EXPECT_FALSE(lv.liveIn(0).test(1));
    // r2 is live from the entry down to the join.
    EXPECT_TRUE(lv.liveIn(0).test(2));
}

} // namespace
} // namespace bow
