/**
 * @file
 * Unit tests for the common utilities: logging/errors, RNG, stats
 * primitives and the table printer.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include <sstream>

#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/sweep.h"

namespace bow {
namespace {

TEST(Log, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("boom"), FatalError);
    try {
        fatal("bad config");
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad config"),
                  std::string::npos);
    }
}

TEST(Log, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Log, StrfConcatenatesMixedTypes)
{
    EXPECT_EQ(strf("x=", 42, " y=", 1.5), "x=42 y=1.5");
    EXPECT_EQ(strf(), "");
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    bool differ = false;
    for (int i = 0; i < 10 && !differ; ++i)
        differ = a.next() != b.next();
    EXPECT_TRUE(differ);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BetweenInclusiveBounds)
{
    Rng rng(9);
    bool sawLo = false;
    bool sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.between(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= (v == -3);
        sawHi |= (v == 3);
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInHalfOpenUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(5);
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, MeanOfSamples)
{
    Average a;
    // An empty average has no mean; NaN (rendered as null in JSON
    // exports) instead of a fake 0.
    EXPECT_TRUE(std::isnan(a.mean()));
    a.sample(2.0);
    a.sample(4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.samples(), 2u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4); // exact buckets 0..3 plus overflow
    h.sample(0);
    h.sample(1);
    h.sample(1);
    h.sample(9); // overflow
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
}

TEST(Histogram, FractionAtLeast)
{
    Histogram h(8);
    for (std::uint64_t v = 0; v < 8; ++v)
        h.sample(v);
    EXPECT_DOUBLE_EQ(h.fractionAtLeast(4), 0.5);
    EXPECT_DOUBLE_EQ(h.fractionAtLeast(0), 1.0);
}

TEST(Histogram, WeightedSamplesAndMean)
{
    Histogram h(8);
    h.sample(2, 3);
    h.sample(4, 1);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), (2.0 * 3 + 4.0) / 4.0);
}

TEST(StatGroup, AutoCreatesAndReads)
{
    StatGroup g("test");
    g.counter("a").inc(3);
    EXPECT_EQ(g.counterValue("a"), 3u);
    EXPECT_EQ(g.counterValue("missing"), 0u);
    g.resetAll();
    EXPECT_EQ(g.counterValue("a"), 0u);
}

TEST(Table, PrintsHeaderAndRows)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.beginRow().cell("foo").cell(std::uint64_t{42});
    t.beginRow().cell("bar").pct(0.5);
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("foo"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("50.0%"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t("csv");
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, CsvEnvEmitsFencedBlock)
{
    setenv("BOWSIM_CSV", "1", 1);
    Table t("env");
    t.setHeader({"a"});
    t.addRow({"1"});
    std::ostringstream os;
    t.print(os);
    unsetenv("BOWSIM_CSV");
    const std::string s = os.str();
    EXPECT_NE(s.find("#csv env"), std::string::npos);
    EXPECT_NE(s.find("#endcsv"), std::string::npos);

    std::ostringstream plain;
    t.print(plain);
    EXPECT_EQ(plain.str().find("#csv"), std::string::npos);
}

TEST(Table, RowWidthMismatchPanics)
{
    Table t("bad");
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(formatPct(0.123, 1), "12.3%");
    EXPECT_EQ(formatFixed(1.005, 2), "1.00"); // NOLINT: rounding mode
    EXPECT_EQ(formatFixed(2.5, 1), "2.5");
}

TEST(Table, UndefinedValuesRenderAsNa)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(formatPct(nan, 1), "n/a");
    EXPECT_EQ(formatFixed(nan, 2), "n/a");
    EXPECT_EQ(formatImprovement(nan), "n/a");
    EXPECT_EQ(formatImprovement(8.7), "8.7%");
    // A zero or non-finite baseline makes "improvement" undefined.
    EXPECT_TRUE(std::isnan(improvementPct(1.0, 0.0)));
    EXPECT_TRUE(std::isnan(improvementPct(1.0, nan)));
}

} // namespace
} // namespace bow
