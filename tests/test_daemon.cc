/**
 * @file
 * The bowsimd daemon and its client library (docs/SERVICE.md),
 * exercised end to end over real Unix-domain sockets against an
 * in-process Daemon — the same code path `bowsim_cli --remote`
 * drives, so the binary's remote path is tested without spawning
 * processes.
 *
 * Guarantees under test:
 *
 *  - Protocol: ping reports the build identity; unknown message
 *    types and malformed/unknown-workload sweeps produce error
 *    frames that fail the client call but keep the daemon serving;
 *    an acknowledged shutdown frame releases wait().
 *
 *  - Equivalence: remote summaries are bit-identical to a local
 *    ParallelRunner run of the same jobs, and arrive in submission
 *    order regardless of completion order.
 *
 *  - Concurrency (the TSan target): several clients sweeping the
 *    same daemon simultaneously all get complete, identical answers.
 *
 *  - Persistence: with the global result store attached, a sweep
 *    simulates once; after a simulated daemon restart (memory cache
 *    cleared, new Daemon), the same sweep is served entirely from
 *    the store — the property the CI service job gates on.
 *
 * Suite names start with "Daemon" / "RemoteCli" so the CI sanitizer
 * jobs (.github/workflows/ci.yml) can select them by regex.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "core/parallel_runner.h"
#include "core/result_cache.h"
#include "core/run_manifest.h"
#include "service/daemon.h"
#include "service/remote_client.h"
#include "service/result_store.h"
#include "service/sim_codec.h"
#include "workloads/registry.h"

namespace bow {
namespace {

constexpr double kScale = 0.05; // pinned like the golden gate

/** Short socket paths: sun_path caps at ~107 characters and gtest
 *  temp roots stay well under that. */
std::string
socketPath(const std::string &name)
{
    return testing::TempDir() + name + ".sock";
}

SimConfig
testConfig(Architecture arch = Architecture::BOW_WR)
{
    SimConfig config = SimConfig::titanXPascal();
    config.arch = arch;
    return config;
}

/** A daemon running for the duration of one test. */
class ScopedDaemon
{
  public:
    explicit ScopedDaemon(const std::string &name, unsigned jobs = 2)
        : daemon_([&] {
              DaemonOptions options;
              options.socketPath = socketPath(name);
              options.jobs = jobs;
              return options;
          }())
    {
        daemon_.start();
    }
    ~ScopedDaemon() { daemon_.stop(); }
    Daemon &get() { return daemon_; }
    const std::string &path() const { return daemon_.socketPath(); }

  private:
    Daemon daemon_;
};

std::vector<RemoteJobSpec>
specs(const std::vector<std::string> &names, const SimConfig &config,
      double scale = kScale)
{
    std::vector<RemoteJobSpec> jobs;
    for (const std::string &name : names)
        jobs.push_back({name, scale, config});
    return jobs;
}

/** The local truth the remote summaries must match bit-for-bit. */
std::vector<SimResult>
runLocally(const std::vector<RemoteJobSpec> &jobSpecs)
{
    std::vector<Workload> pool;
    std::vector<SimJob> jobs;
    pool.reserve(jobSpecs.size());
    jobs.reserve(jobSpecs.size());
    for (const RemoteJobSpec &spec : jobSpecs) {
        pool.push_back(workloads::make(spec.workload, spec.scale));
        jobs.emplace_back(pool.back(), spec.config);
    }
    return ParallelRunner(2).run(jobs);
}

void
expectMatchesLocal(const RemoteSummary &remote, const SimResult &local)
{
    EXPECT_EQ(remote.arch, local.arch);
    EXPECT_EQ(remote.windowSize, local.windowSize);
    EXPECT_EQ(remote.cycles, local.stats.cycles);
    EXPECT_EQ(remote.instructions, local.stats.instructions);
    EXPECT_EQ(remote.rfReads, local.stats.rfReads);
    EXPECT_EQ(remote.rfWrites, local.stats.rfWrites);
    EXPECT_EQ(remote.bocForwards, local.stats.bocForwards);
    EXPECT_EQ(remote.consolidatedWrites,
              local.stats.consolidatedWrites);
    EXPECT_EQ(remote.transientDrops, local.stats.transientDrops);
    EXPECT_EQ(remote.energyTotalPj, local.energy.totalPj);
    EXPECT_EQ(remote.ipc(), local.stats.ipc());
}

// ---------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------

TEST(Daemon, PingReportsBuildIdentity)
{
    globalResultCache().reset();
    ScopedDaemon daemon("ping");
    const RemotePong pong = remotePing(daemon.path());
    EXPECT_EQ(pong.version, RunManifest::buildVersion());
    EXPECT_EQ(pong.schema, simSchemaHash());
    EXPECT_EQ(pong.hasStore, globalResultStore() != nullptr);
    EXPECT_GE(pong.jobs, 1u);
}

TEST(Daemon, UnreachableSocketIsFatal)
{
    EXPECT_THROW(remotePing(socketPath("nobody-home")), FatalError);
}

TEST(Daemon, BadRequestKeepsConnectionServing)
{
    globalResultCache().reset();
    ScopedDaemon daemon("badreq");
    const SimConfig config = testConfig();

    // Unknown workload: the daemon answers with an error frame (the
    // client surfaces it as FatalError) and must keep serving.
    std::vector<RemoteSummary> summaries;
    EXPECT_THROW(runRemoteSweep(daemon.path(),
                                specs({"NO-SUCH-KERNEL"}, config),
                                summaries),
                 FatalError);

    const auto jobs = specs({"VECTORADD"}, config);
    const RemoteSweepStats stats =
        runRemoteSweep(daemon.path(), jobs, summaries);
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_EQ(stats.results, 1u);
    expectMatchesLocal(summaries[0], runLocally(jobs)[0]);
}

TEST(Daemon, ShutdownFrameReleasesWait)
{
    globalResultCache().reset();
    ScopedDaemon daemon("shutdown");
    std::atomic<bool> released{false};
    std::thread waiter([&] {
        daemon.get().wait();
        released.store(true);
    });
    EXPECT_TRUE(remoteShutdown(daemon.path()));
    waiter.join();
    EXPECT_TRUE(released.load());
}

// ---------------------------------------------------------------------
// Equivalence
// ---------------------------------------------------------------------

TEST(Daemon, SweepMatchesLocalRunBitForBit)
{
    globalResultCache().reset();
    ScopedDaemon daemon("sweep");
    const SimConfig config = testConfig(Architecture::BOW_WR_OPT);
    const auto jobs =
        specs({"VECTORADD", "SAD", "VECTORADD"}, config);

    std::vector<RemoteSummary> summaries;
    const RemoteSweepStats stats =
        runRemoteSweep(daemon.path(), jobs, summaries);

    ASSERT_EQ(summaries.size(), jobs.size());
    EXPECT_EQ(stats.results, jobs.size());
    // The duplicate VECTORADD is a memory-cache hit daemon-side.
    EXPECT_GE(stats.memoryHits, 1u);

    const std::vector<SimResult> local = runLocally(jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(summaries[i].workload, jobs[i].workload);
        expectMatchesLocal(summaries[i], local[i]);
    }
}

TEST(Daemon, ResultsArriveInSubmissionOrder)
{
    globalResultCache().reset();
    ScopedDaemon daemon("order");
    const SimConfig config = testConfig();
    // Mixed sizes so completion order differs from submission order.
    std::vector<RemoteJobSpec> jobs = specs(
        {"BACKPROP", "VECTORADD", "SAD", "VECTORADD"}, config);
    jobs[1].scale = 0.02;

    std::vector<RemoteSummary> summaries;
    runRemoteSweep(daemon.path(), jobs, summaries);
    ASSERT_EQ(summaries.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(summaries[i].workload, jobs[i].workload);
}

// ---------------------------------------------------------------------
// Concurrency (the TSan target)
// ---------------------------------------------------------------------

TEST(Daemon, ConcurrentClientsGetCompleteIdenticalAnswers)
{
    globalResultCache().reset();
    ScopedDaemon daemon("concurrent", 4);
    const SimConfig config = testConfig();
    const auto jobs = specs({"VECTORADD", "SAD"}, config);
    const std::vector<SimResult> local = runLocally(jobs);

    constexpr int kClients = 4;
    std::vector<std::vector<RemoteSummary>> answers(kClients);
    std::vector<std::thread> clients;
    std::atomic<int> failures{0};
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            try {
                runRemoteSweep(daemon.path(), jobs, answers[c]);
            } catch (const FatalError &) {
                failures.fetch_add(1);
            }
        });
    }
    for (std::thread &t : clients)
        t.join();

    EXPECT_EQ(failures.load(), 0);
    for (int c = 0; c < kClients; ++c) {
        ASSERT_EQ(answers[c].size(), jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i)
            expectMatchesLocal(answers[c][i], local[i]);
    }
}

TEST(Daemon, StopUnblocksIdleConnections)
{
    globalResultCache().reset();
    auto daemon = std::make_unique<ScopedDaemon>("stop");
    const std::string path = daemon->path();

    // A client parked in a blocking read must be released by stop()
    // (shutdown() on its fd), not leak a thread.
    std::thread client([&] {
        try {
            remotePing(path); // handshake proves we connected
            // Second ping races stop(); either answer or a clean
            // failure is acceptable — hanging is not.
            remotePing(path);
        } catch (const FatalError &) {
        }
    });
    remotePing(path);
    daemon.reset(); // stop() joins the daemon's connection threads
    client.join();
    EXPECT_FALSE(std::filesystem::exists(path))
        << "stop() must unlink the socket file";
}

// ---------------------------------------------------------------------
// Persistence across restarts
// ---------------------------------------------------------------------

TEST(Daemon, WarmSweepIsServedFromStoreAcrossRestart)
{
    ASSERT_EQ(globalResultStore(), nullptr)
        << "another test leaked a global store attachment";
    const std::string dir = testing::TempDir() + "daemon_store";
    std::filesystem::remove_all(dir);
    attachGlobalResultStore(dir);
    globalResultCache().reset();

    const SimConfig config = testConfig(Architecture::BOW_WR_OPT);
    // A scale no other test uses, so the keys are certainly cold.
    const auto jobs = specs({"VECTORADD", "SAD"}, config, 0.07);

    std::vector<RemoteSummary> cold;
    RemoteSweepStats coldStats;
    {
        ScopedDaemon daemon("warm1");
        coldStats = runRemoteSweep(daemon.path(), jobs, cold);
    }
    EXPECT_EQ(coldStats.simulated, jobs.size());
    EXPECT_EQ(coldStats.storeHits, 0u);

    // "Restart": a new daemon with an empty memory cache. The store
    // keeps its tier attachment across reset().
    globalResultCache().reset();
    std::vector<RemoteSummary> warm;
    RemoteSweepStats warmStats;
    {
        ScopedDaemon daemon("warm2");
        warmStats = runRemoteSweep(daemon.path(), jobs, warm);
    }
    EXPECT_EQ(warmStats.simulated, 0u)
        << "a warm sweep must not simulate anything";
    EXPECT_EQ(warmStats.storeHits, jobs.size());

    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < cold.size(); ++i)
        expectMatchesLocal(warm[i], [&] {
            SimResult local;
            local.arch = cold[i].arch;
            local.windowSize = cold[i].windowSize;
            local.stats.cycles = cold[i].cycles;
            local.stats.instructions = cold[i].instructions;
            local.stats.rfReads = cold[i].rfReads;
            local.stats.rfWrites = cold[i].rfWrites;
            local.stats.bocForwards = cold[i].bocForwards;
            local.stats.consolidatedWrites =
                cold[i].consolidatedWrites;
            local.stats.transientDrops = cold[i].transientDrops;
            local.energy.totalPj = cold[i].energyTotalPj;
            return local;
        }());

    detachGlobalResultStore();
    globalResultCache().reset();
}

// ---------------------------------------------------------------------
// The CLI's remote path (the RemoteCli regex target)
// ---------------------------------------------------------------------

TEST(RemoteCli, SuiteSweepMatchesLocalSuite)
{
    globalResultCache().reset();
    ScopedDaemon daemon("cli_suite", 4);
    const SimConfig config = testConfig(Architecture::BOW_WR);
    const auto jobs = specs(workloads::allNames(), config);

    std::vector<RemoteSummary> summaries;
    const RemoteSweepStats stats =
        runRemoteSweep(daemon.path(), jobs, summaries);
    EXPECT_EQ(stats.results, jobs.size());

    const std::vector<SimResult> local = runLocally(jobs);
    ASSERT_EQ(summaries.size(), local.size());
    for (std::size_t i = 0; i < local.size(); ++i) {
        EXPECT_EQ(summaries[i].workload, jobs[i].workload);
        expectMatchesLocal(summaries[i], local[i]);
    }
}

TEST(RemoteCli, ConfigFieldsShipFaithfully)
{
    globalResultCache().reset();
    ScopedDaemon daemon("cli_config");
    SimConfig config = testConfig(Architecture::BOW_WR_OPT);
    config.windowSize = 5;
    config.numSms = 2;

    std::vector<RemoteSummary> summaries;
    runRemoteSweep(daemon.path(),
                   specs({"VECTORADD"}, config), summaries);
    ASSERT_EQ(summaries.size(), 1u);
    expectMatchesLocal(summaries[0],
                       runLocally(specs({"VECTORADD"}, config))[0]);
    EXPECT_EQ(summaries[0].windowSize, 5u);
}

TEST(RemoteCli, RepeatSweepIsAllMemoryHits)
{
    globalResultCache().reset();
    ScopedDaemon daemon("cli_repeat");
    const SimConfig config = testConfig();
    const auto jobs = specs({"VECTORADD", "SAD"}, config);

    std::vector<RemoteSummary> first, second;
    runRemoteSweep(daemon.path(), jobs, first);
    const RemoteSweepStats stats =
        runRemoteSweep(daemon.path(), jobs, second);
    EXPECT_EQ(stats.simulated, 0u);
    EXPECT_EQ(stats.memoryHits, jobs.size());
    ASSERT_EQ(second.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(second[i].cycles, first[i].cycles);
        EXPECT_EQ(second[i].energyTotalPj, first[i].energyTotalPj);
    }
}

} // namespace
} // namespace bow
