/**
 * @file
 * Energy-model tests: Table IV constants, accounting identities and
 * normalization (the Fig. 13 arithmetic).
 */

#include <gtest/gtest.h>

#include "energy/energy_model.h"

namespace bow {
namespace {

TEST(Energy, TableFourDefaults)
{
    const EnergyParams p;
    EXPECT_DOUBLE_EQ(p.rfBankAccessPj, 185.26);
    EXPECT_DOUBLE_EQ(p.bocAccessPj, 2.72);
    EXPECT_DOUBLE_EQ(p.rfBankLeakageMw, 111.84);
    EXPECT_DOUBLE_EQ(p.bocLeakageMw, 1.11);
    // The paper's ratios: BOC access energy is 1.4% of a bank access
    // and leakage is ~1% of bank leakage.
    EXPECT_NEAR(p.bocAccessPj / p.rfBankAccessPj, 0.0147, 0.001);
    EXPECT_NEAR(p.bocLeakageMw / p.rfBankLeakageMw, 0.0099, 0.001);
}

TEST(Energy, BocSizeReporting)
{
    // 12 entries x 128 B = 1.5 KB (paper Sec. IV-C).
    EXPECT_DOUBLE_EQ(EnergyParams::bocKb(12), 1.536);
    EXPECT_DOUBLE_EQ(EnergyParams::bocKb(6), 0.768);
}

TEST(Energy, RfDynamicIsAccessesTimesConstant)
{
    RunStats stats;
    stats.rfReads = 100;
    stats.rfWrites = 50;
    const auto e = computeEnergy(stats);
    EXPECT_DOUBLE_EQ(e.rfDynamicPj, 150 * 185.26);
    EXPECT_DOUBLE_EQ(e.overheadPj, 0.0);
    EXPECT_DOUBLE_EQ(e.totalPj, e.rfDynamicPj);
}

TEST(Energy, BocAccessesChargeOverhead)
{
    RunStats stats;
    stats.bocForwards = 10;
    stats.bocDeposits = 5;
    stats.bocResultWrites = 5;
    const auto e = computeEnergy(stats);
    EXPECT_DOUBLE_EQ(e.rfDynamicPj, 0.0);
    EXPECT_GT(e.overheadPj, 20 * 2.72); // accesses + network share
    EXPECT_LT(e.overheadPj, 20 * 6.0);  // but still tiny vs RF
}

TEST(Energy, RfcAccessesChargeOverhead)
{
    RunStats stats;
    stats.rfcReads = 4;
    stats.rfcWrites = 6;
    const auto e = computeEnergy(stats);
    EXPECT_DOUBLE_EQ(e.overheadPj, 10 * 5.44);
}

TEST(Energy, NormalizationAgainstBaseline)
{
    RunStats baseStats;
    baseStats.rfReads = 1000;
    const auto base = computeEnergy(baseStats);

    RunStats bowStats;
    bowStats.rfReads = 400; // 60% of reads bypassed
    bowStats.bocForwards = 600;
    const auto bow = computeEnergy(bowStats);

    const double norm = bow.normalizedTo(base);
    EXPECT_LT(norm, 0.45);  // large saving despite overhead
    EXPECT_GT(norm, 0.40);  // overhead is visible
    EXPECT_DOUBLE_EQ(base.normalizedTo(base), 1.0);
}

TEST(Energy, LeakageScalesWithTimeAndStructures)
{
    // One bank leaking 111.84 mW over 1000 cycles at 1 GHz (1 us):
    // 111.84e-3 W x 1e-6 s = 1.1184e-7 J = 111840 pJ.
    const double oneBank = leakagePj(1000, 1, 0);
    EXPECT_NEAR(oneBank, 111840.0, 1.0);
    // Adding 32 BOCs adds 32 x 1.11 mW.
    const double withBocs = leakagePj(1000, 1, 32);
    EXPECT_NEAR(withBocs - oneBank, 32 * 1.11e-3 * 1e-6 * 1e12, 1.0);
    // Linear in time.
    EXPECT_NEAR(leakagePj(2000, 1, 0), 2 * oneBank, 1.0);
    EXPECT_DOUBLE_EQ(leakagePj(0, 32, 32), 0.0);
}

TEST(Energy, BocLeakageIsTinyVersusBanks)
{
    // The paper's pitch: 32 BOCs leak ~1% of what 4 banks' worth of
    // equivalent SRAM would; adding them barely moves static power.
    const double banksOnly = leakagePj(10000, 32, 0);
    const double withBocs = leakagePj(10000, 32, 32);
    EXPECT_LT((withBocs - banksOnly) / banksOnly, 0.02);
}

TEST(Energy, ZeroBaselineNormalizesToZero)
{
    const EnergyBreakdown zero;
    EnergyBreakdown x;
    x.totalPj = 5.0;
    EXPECT_DOUBLE_EQ(x.normalizedTo(zero), 0.0);
}

} // namespace
} // namespace bow
